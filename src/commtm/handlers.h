/**
 * @file
 * Execution context for user-defined reduction handlers and splitters
 * (Secs. III-B4 and IV).
 *
 * Handlers run on the shadow hardware thread of the core that triggered
 * the reduction. They are NOT transactional: they operate on
 * non-speculative data only and have no atomicity guarantees. They may
 * access arbitrary memory with read-only or exclusive permissions, but
 * must not touch lines in the reducible (U) state — that would trigger a
 * nested reduction, which the deadlock-avoidance rules forbid.
 */

#ifndef COMMTM_COMMTM_HANDLERS_H
#define COMMTM_COMMTM_HANDLERS_H

#include <cstddef>
#include <type_traits>

#include "sim/types.h"

namespace commtm {

/**
 * Memory/compute interface handed to reduction handlers and splitters.
 * Implemented by the memory system; every access is charged to the
 * latency of the reduction-triggering request.
 */
class HandlerContext
{
  public:
    virtual ~HandlerContext() = default;

    /** Non-speculative read of @p size bytes at @p addr. */
    virtual void rawRead(Addr addr, void *out, size_t size) = 0;
    /** Non-speculative write of @p size bytes at @p addr. */
    virtual void rawWrite(Addr addr, const void *src, size_t size) = 0;
    /** Charge @p instrs cycles of handler computation. */
    virtual void compute(uint64_t instrs) = 0;

    template <typename T>
    T
    read(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        rawRead(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        rawWrite(addr, &value, sizeof(T));
    }
};

} // namespace commtm

#endif // COMMTM_COMMTM_HANDLERS_H
