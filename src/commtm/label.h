/**
 * @file
 * Commutativity labels: per-label identity values, reduction handlers,
 * and splitters (Secs. III-A and IV), plus the label-virtualization
 * fallback of Sec. III-D.
 */

#ifndef COMMTM_COMMTM_LABEL_H
#define COMMTM_COMMTM_LABEL_H

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "commtm/handlers.h"
#include "sim/memory.h"
#include "sim/types.h"

namespace commtm {

/**
 * Merges one forwarded reducible line into the local one.
 * @param ctx     shadow-thread context for extra memory accesses
 * @param local   the requester's copy; updated in place
 * @param incoming a forwarded partial copy from another cache
 */
using ReduceFn =
    std::function<void(HandlerContext &ctx, LineData &local,
                       const LineData &incoming)>;

/**
 * Donates part of the local reducible line to a gather requester
 * (Sec. IV). Writes the donation into @p out (which starts as the
 * label's identity) and removes it from @p local.
 * @param num_sharers number of U-state sharers, forwarded by the
 *        directory so splitters can rebalance appropriately
 */
using SplitFn =
    std::function<void(HandlerContext &ctx, LineData &local, LineData &out,
                       uint32_t num_sharers)>;

/**
 * Pure (side-effect-free) check: would split() donate anything from
 * @p local? Sharers whose split would be a no-op are skipped entirely:
 * they neither run the splitter nor trigger conflicts, since a no-op
 * split cannot affect any transaction's observed values. Without this,
 * every gather conflicts with every in-flight transaction holding the
 * line in its labeled set, and gathers livelock at high thread counts.
 */
using SplitProbeFn =
    std::function<bool(const LineData &local, uint32_t num_sharers)>;

/** Definition of one commutative-operation label. */
struct LabelInfo {
    std::string name;
    /** Identity value used to initialize lines entering U without data.
     *  Reducing any data with the identity leaves it unchanged. */
    LineData identity{};
    ReduceFn reduce;
    /** Optional; labels without a splitter do not support gathers. */
    SplitFn split;
    /** Optional; conservative (always donate) when absent. */
    SplitProbeFn splitProbe;
};

/**
 * Registry of labels defined by the program. The architecture supports a
 * limited number of hardware labels; labels defined beyond that limit
 * are *demoted*: their accesses execute as conventional loads and stores
 * (the always-safe fallback of Sec. III-D).
 */
class LabelRegistry
{
  public:
    explicit LabelRegistry(uint32_t hw_labels = kMaxHwLabels)
        : hwLabels_(hw_labels)
    {
    }

    /** Define a new label; returns its id. */
    Label
    define(LabelInfo info)
    {
        assert(info.reduce && "labels must define a reduction handler");
        assert(labels_.size() < kNoLabel);
        labels_.push_back(std::move(info));
        return Label(labels_.size() - 1);
    }

    const LabelInfo &
    get(Label label) const
    {
        assert(label < labels_.size());
        return labels_[label];
    }

    size_t size() const { return labels_.size(); }

    /** True if @p label fits in hardware and its accesses stay labeled. */
    bool
    inHardware(Label label) const
    {
        return label < hwLabels_;
    }

    uint32_t hwLabels() const { return hwLabels_; }

  private:
    uint32_t hwLabels_;
    std::vector<LabelInfo> labels_;
};

/**
 * Convenience builders for the strictly-commutative labels the paper's
 * workloads use (Table II): integer/FP addition, MIN, and MAX over
 * fixed-width elements packed in a line.
 */
namespace labels {

/** Commutative addition over ElemT elements; identity = 0. */
template <typename ElemT>
LabelInfo
makeAdd(std::string name)
{
    LabelInfo info;
    info.name = std::move(name);
    info.identity.fill(0);
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        constexpr size_t n = kLineSize / sizeof(ElemT);
        auto *dst = reinterpret_cast<ElemT *>(local.data());
        auto *src = reinterpret_cast<const ElemT *>(incoming.data());
        for (size_t i = 0; i < n; i++)
            dst[i] = dst[i] + src[i];
        ctx.compute(n);
    };
    info.split = [](HandlerContext &ctx, LineData &local, LineData &out,
                    uint32_t num_sharers) {
        // Donate a fraction 1/numSharers of each element (Sec. IV).
        // Rounding DOWN matters: the paper's example code rounds up,
        // but ceil donates 1 from every sharer whose value is below
        // numSharers, draining small sharers to zero and triggering a
        // positive-feedback gather storm at high thread counts. With
        // floor, sharers whose fair share rounds to zero donate
        // nothing; if every copy is small the gather returns zero and
        // the caller falls back to a conventional load, whose full
        // reduction re-concentrates the value (see
        // docs/ARCHITECTURE.md Sec. 6).
        constexpr size_t n = kLineSize / sizeof(ElemT);
        auto *loc = reinterpret_cast<ElemT *>(local.data());
        auto *dst = reinterpret_cast<ElemT *>(out.data());
        for (size_t i = 0; i < n; i++) {
            const ElemT donation = loc[i] / ElemT(num_sharers);
            dst[i] = donation;
            loc[i] = loc[i] - donation;
        }
        ctx.compute(2 * n);
    };
    info.splitProbe = [](const LineData &local, uint32_t num_sharers) {
        constexpr size_t n = kLineSize / sizeof(ElemT);
        auto *loc = reinterpret_cast<const ElemT *>(local.data());
        for (size_t i = 0; i < n; i++) {
            if (loc[i] / ElemT(num_sharers) > ElemT(0))
                return true;
        }
        return false;
    };
    return info;
}

/** Keep-minimum over ElemT elements; identity = max representable. */
template <typename ElemT>
LabelInfo
makeMin(std::string name)
{
    LabelInfo info;
    info.name = std::move(name);
    constexpr size_t n = kLineSize / sizeof(ElemT);
    auto *id = reinterpret_cast<ElemT *>(info.identity.data());
    for (size_t i = 0; i < n; i++)
        id[i] = std::numeric_limits<ElemT>::max();
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        auto *dst = reinterpret_cast<ElemT *>(local.data());
        auto *src = reinterpret_cast<const ElemT *>(incoming.data());
        for (size_t i = 0; i < n; i++)
            dst[i] = std::min(dst[i], src[i]);
        ctx.compute(n);
    };
    return info;
}

/** Keep-maximum over ElemT elements; identity = min representable. */
template <typename ElemT>
LabelInfo
makeMax(std::string name)
{
    LabelInfo info;
    info.name = std::move(name);
    constexpr size_t n = kLineSize / sizeof(ElemT);
    auto *id = reinterpret_cast<ElemT *>(info.identity.data());
    for (size_t i = 0; i < n; i++)
        id[i] = std::numeric_limits<ElemT>::lowest();
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        auto *dst = reinterpret_cast<ElemT *>(local.data());
        auto *src = reinterpret_cast<const ElemT *>(incoming.data());
        for (size_t i = 0; i < n; i++)
            dst[i] = std::max(dst[i], src[i]);
        ctx.compute(n);
    };
    return info;
}

} // namespace labels
} // namespace commtm

#endif // COMMTM_COMMTM_LABEL_H
