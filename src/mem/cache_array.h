/**
 * @file
 * Generic set-associative cache tag array with LRU replacement.
 *
 * The array stores metadata only; functional data lives in SimMemory and
 * in per-core U-state copies (see mem/coherence.h). Used for the private
 * L1s/L2s and the shared L3 (whose entries embed the in-cache directory).
 *
 * Sets materialize lazily on first fill: constructing an array
 * allocates one pointer per set, not the entries. The Table I L3 tag
 * array is ~1M entries (~50MB), and eagerly zero-filling it dominated
 * Machine construction — which short benchmark rows pay per Machine.
 * A lookup in an untouched set misses without allocating, which is
 * exactly what the eager all-invalid initialization answered.
 */

#ifndef COMMTM_MEM_CACHE_ARRAY_H
#define COMMTM_MEM_CACHE_ARRAY_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.h"

namespace commtm {

/**
 * Set-associative array of Entry. Entry must provide fields:
 *   Addr line; bool valid; uint64_t lru;
 * plus whatever payload the owner needs, and a reset() method that
 * returns it to the invalid state.
 */
template <typename Entry>
class CacheArray
{
  public:
    /**
     * @param num_lines total capacity in lines (sets = num_lines / ways)
     * @param ways associativity
     */
    CacheArray(uint32_t num_lines, uint32_t ways)
        : ways_(ways), sets_(num_lines / ways), setStore_(num_lines / ways)
    {
        assert(ways_ > 0 && sets_ > 0);
        assert(num_lines % ways == 0);
        // Every Table I geometry has a power-of-two set count, and the
        // set index sits on the L1-lookup path of every simulated
        // access: replace the 64-bit modulo with a mask when possible
        // (identical index, so placement and behavior do not change).
        setMask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
    }

    uint32_t numSets() const { return sets_; }
    uint32_t ways() const { return ways_; }

    /** Find the entry caching @p line, or nullptr. Does not touch LRU. */
    Entry *
    lookup(Addr line)
    {
        Entry *base = setBase(line);
        if (!base)
            return nullptr; // untouched set: guaranteed miss
        for (uint32_t w = 0; w < ways_; w++) {
            if (base[w].valid && base[w].line == line)
                return &base[w];
        }
        return nullptr;
    }

    const Entry *
    lookup(Addr line) const
    {
        return const_cast<CacheArray *>(this)->lookup(line);
    }

    /** Mark @p entry most-recently used. */
    void touch(Entry *entry) { entry->lru = ++lruClock_; }

    /** Outcome of an insert: the filled slot plus any displaced entry.
     *  The victim is returned *by copy* and the slot is re-used before
     *  the caller processes the eviction, so eviction side effects that
     *  re-enter the array (e.g., reduction handlers) see a consistent
     *  state. */
    struct InsertResult {
        Entry *entry = nullptr;
        bool evicted = false;
        Entry victim{};
    };

    /**
     * Pick the entry that will host @p line, evicting if necessary.
     * Never call when lookup(line) already hits.
     *
     * @param line the incoming line
     * @param may_evict predicate; entries for which it returns false
     *        are skipped during victim selection (used to keep
     *        reduction-handler fills from evicting U-state lines,
     *        Sec. III-B4's reserved-way rule). At least one way per set
     *        must remain eligible; asserted. Template parameter, not
     *        std::function: insert runs on every cache fill.
     * @return the filled (still field-less) entry plus the victim copy.
     */
    template <typename Pred>
    InsertResult
    insert(Addr line, Pred &&may_evict)
    {
        InsertResult res;
        Entry *base = materialize(line);
        // Prefer an invalid way.
        for (uint32_t w = 0; w < ways_; w++) {
            if (!base[w].valid) {
                prepare(&base[w], line);
                res.entry = &base[w];
                return res;
            }
        }
        // Evict the least-recently-used eligible way.
        Entry *victim = nullptr;
        for (uint32_t w = 0; w < ways_; w++) {
            if (!may_evict(base[w]))
                continue;
            if (!victim || base[w].lru < victim->lru)
                victim = &base[w];
        }
        assert(victim && "no eligible victim (reserved-way invariant)");
        res.evicted = true;
        res.victim = *victim;
        prepare(victim, line);
        res.entry = victim;
        return res;
    }

    /** insert() with every way eligible for eviction. */
    InsertResult
    insert(Addr line)
    {
        return insert(line, [](const Entry &) { return true; });
    }

    /** LRU valid entry in @p line's set satisfying @p pred, or nullptr. */
    template <typename Pred>
    Entry *
    findLruWhere(Addr line, Pred &&pred)
    {
        Entry *base = setBase(line);
        if (!base)
            return nullptr;
        Entry *best = nullptr;
        for (uint32_t w = 0; w < ways_; w++) {
            if (!base[w].valid || !pred(base[w]))
                continue;
            if (!best || base[w].lru < best->lru)
                best = &base[w];
        }
        return best;
    }

    /** Invalidate the entry caching @p line if present. */
    void
    erase(Addr line)
    {
        if (Entry *e = lookup(line)) {
            e->reset();
            e->valid = false;
        }
    }

    /** Count valid entries in @p line's set satisfying @p pred. */
    template <typename Pred>
    uint32_t
    countInSet(Addr line, Pred &&pred) const
    {
        const Entry *base =
            const_cast<CacheArray *>(this)->setBase(line);
        if (!base)
            return 0;
        uint32_t n = 0;
        for (uint32_t w = 0; w < ways_; w++) {
            if (base[w].valid && pred(base[w]))
                n++;
        }
        return n;
    }

    /** Iterate over all valid entries. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &set : setStore_) {
            if (!set)
                continue;
            for (uint32_t w = 0; w < ways_; w++) {
                if (set[w].valid)
                    fn(set[w]);
            }
        }
    }

    /** Iterate over all valid entries (read-only). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &set : setStore_) {
            if (!set)
                continue;
            for (uint32_t w = 0; w < ways_; w++) {
                const Entry &entry = set[w];
                if (entry.valid)
                    fn(entry);
            }
        }
    }

    /** Invalidate everything (between experiments); materialized sets
     *  are released, returning the array to its lazy initial state. */
    void
    clear()
    {
        for (auto &set : setStore_)
            set.reset();
    }

  private:
    /** Set index of @p line: a mask for power-of-two set counts (the
     *  common case), the general modulo otherwise. */
    size_t
    setIndex(Addr line) const
    {
        return setMask_ ? size_t(line & setMask_)
                        : size_t(line % sets_);
    }

    /** The set holding @p line, or nullptr if never filled. */
    Entry *setBase(Addr line) { return setStore_[setIndex(line)].get(); }

    /** The set holding @p line, allocated (all-invalid) on first use. */
    Entry *
    materialize(Addr line)
    {
        auto &set = setStore_[setIndex(line)];
        if (!set)
            set = std::make_unique<Entry[]>(ways_);
        return set.get();
    }

    void
    prepare(Entry *entry, Addr line)
    {
        entry->reset();
        entry->valid = true;
        entry->line = line;
        entry->lru = ++lruClock_;
    }

    uint32_t ways_;
    uint32_t sets_;
    /** sets_ - 1 when sets_ is a power of two, 0 otherwise. */
    Addr setMask_ = 0;
    uint64_t lruClock_ = 0;
    /** One lazily-allocated array of @c ways_ entries per set. */
    std::vector<std::unique_ptr<Entry[]>> setStore_;
};

} // namespace commtm

#endif // COMMTM_MEM_CACHE_ARRAY_H
