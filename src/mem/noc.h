/**
 * @file
 * Latency model of the on-chip interconnect: a meshDim x meshDim mesh of
 * tiles with 2-cycle routers and 1-cycle links (Table I). CommTM adds a
 * dedicated virtual network for forwarded U-state data (Sec. III-B4);
 * virtual networks share physical links, so the latency model is common.
 */

#ifndef COMMTM_MEM_NOC_H
#define COMMTM_MEM_NOC_H

#include <cstdlib>

#include "sim/config.h"
#include "sim/types.h"

namespace commtm {

class NocModel
{
  public:
    explicit NocModel(const MachineConfig &cfg) : cfg_(cfg) {}

    /** Manhattan hop count between two tiles of the mesh. */
    uint32_t
    hops(uint32_t tile_a, uint32_t tile_b) const
    {
        const int ax = tile_a % cfg_.meshDim, ay = tile_a / cfg_.meshDim;
        const int bx = tile_b % cfg_.meshDim, by = tile_b / cfg_.meshDim;
        return std::abs(ax - bx) + std::abs(ay - by);
    }

    /** One-way message latency between two tiles. */
    Cycle
    latency(uint32_t tile_a, uint32_t tile_b) const
    {
        const uint32_t h = hops(tile_a, tile_b);
        // Each hop crosses a router and a link; injection pays one router.
        return cfg_.routerLatency +
               h * (cfg_.routerLatency + cfg_.linkLatency);
    }

    /** Core-to-L3-bank one-way latency. The bank-to-tile placement is
     *  owned by MachineConfig::bankTile; the old `bank % numTiles`
     *  here silently aliased banks onto wrong tiles whenever
     *  l3Banks != numTiles. */
    Cycle
    coreToBank(CoreId core, uint32_t bank) const
    {
        return latency(cfg_.coreTile(core), cfg_.bankTile(bank));
    }

    /** Core-to-core one-way latency (data forwards, invalidations). */
    Cycle
    coreToCore(CoreId a, CoreId b) const
    {
        return latency(cfg_.coreTile(a), cfg_.coreTile(b));
    }

  private:
    const MachineConfig &cfg_;
};

} // namespace commtm

#endif // COMMTM_MEM_NOC_H
