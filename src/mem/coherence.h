/**
 * @file
 * The simulated memory system: private L1/L2s, shared banked L3 with an
 * in-cache directory, and the MESI coherence protocol extended with
 * CommTM's user-defined reducible (U) state (Sec. III), reductions
 * (Sec. III-B4), gather requests (Sec. IV), and the U-line eviction
 * rules (Sec. III-B5).
 *
 * The memory system handles coherence *state* and *timing*; functional
 * values live in SimMemory, per-core U-state copies (owned here), and
 * the HTM's transactional write buffers (owned by HtmManager).
 *
 * Key functional invariant (Sec. III-B3): while a line is in U, its
 * value equals the reduction of all private U copies; the first GETU
 * requester absorbs the memory value, later requesters initialize to
 * the label's identity.
 */

#ifndef COMMTM_MEM_COHERENCE_H
#define COMMTM_MEM_COHERENCE_H

#include <memory>
#include <vector>

#include "commtm/label.h"
#include "mem/cache_array.h"
#include "mem/line.h"
#include "mem/noc.h"
#include "sim/config.h"
#include "sim/flat_map.h"
#include "sim/memory.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace commtm {

/** Memory operation kinds the cores can issue. */
enum class MemOp : uint8_t {
    Load,         //!< conventional load
    Store,        //!< conventional store
    LabeledLoad,  //!< load[label] (Sec. III-A)
    LabeledStore, //!< store[label]
    Gather,       //!< load_gather[label] (Sec. IV)
};

/** One memory request from a core (or its shadow thread). */
struct Access {
    CoreId core = 0;
    Addr addr = 0;
    uint32_t size = 8;
    MemOp op = MemOp::Load;
    Label label = kNoLabel;
    bool isTx = false;    //!< inside a transaction (speculative)
    Timestamp ts = 0;     //!< conflict-resolution timestamp when isTx
    bool handler = false; //!< issued by a reduction handler / splitter
    /** Lazy-mode transactional store: walks the protocol as a load
     *  (stores buffer silently until commit) but joins the write set. */
    bool lazyWrite = false;
};

/** Which speculative set an access joined (for HtmHooks tracking). */
enum class SpecKind : uint8_t { Read, Write, Labeled };

/** Outcome of an access: latency plus any abort the requester owes. */
struct AccessResult {
    Cycle latency = 0;
    /** The request was NACKed (Fig. 6b): the requester must abort. */
    bool nackAbort = false;
    /** Unlabeled access to own speculatively-modified labeled data
     *  (Sec. III-B4): abort and retry with labeled ops demoted. */
    bool selfDemote = false;
    AbortCause cause = AbortCause::Explicit;

    bool mustAbort() const { return nackAbort || selfDemote; }
};

/**
 * What the coherence protocol needs to know about transactions. The HTM
 * implements this; the indirection keeps mem/ free of htm/ dependencies.
 */
class HtmHooks
{
  public:
    virtual ~HtmHooks() = default;
    /** Core @p c runs an active, not-yet-doomed transaction. */
    virtual bool inTx(CoreId c) const = 0;
    /** Timestamp of @p c's transaction (valid when inTx). */
    virtual Timestamp txTs(CoreId c) const = 0;
    /** @p c's transaction has buffered speculative writes to @p line. */
    virtual bool specModified(CoreId c, Addr line) const = 0;
    /** Doom @p victim's transaction (it aborts when next scheduled). */
    virtual void remoteAbort(CoreId victim, AbortCause cause) = 0;
    /** A speculative-access bit was newly set for (core, line). */
    virtual void noteSpecLine(CoreId c, Addr line, SpecKind kind) = 0;
};

/** The production HtmHooks implementation (htm/htm.h); final, so the
 *  memory system can dispatch to it without virtual calls. */
class HtmManager;

/** Machine-wide protocol invariant checker (sim/invariants.h). */
class InvariantChecker;

/**
 * The whole simulated memory hierarchy and coherence protocol. All
 * methods execute atomically in simulated time (zsim-style simple-core
 * model; see docs/ARCHITECTURE.md Sec. 2.1).
 */
class MemorySystem
{
  public:
    MemorySystem(const MachineConfig &cfg, SimMemory &memory,
                 const LabelRegistry &labels, MachineStats &stats,
                 Rng &rng);

    /** Install generic hooks (tests, instrumentation): virtual dispatch. */
    void
    setHtm(HtmHooks *htm)
    {
        htm_ = htm;
        mgr_ = nullptr;
    }

    /** Install the production HtmManager: the access fast path calls it
     *  directly (HtmManager is final, so the calls devirtualize and
     *  inline). Defined in coherence.cc, which sees htm/htm.h. */
    void setHtmManager(HtmManager *mgr);

    /**
     * Perform one access: coherence-state transitions, conflict
     * detection/resolution, reductions, and timing. The caller performs
     * the functional read/write afterwards (consulting uCopy() for
     * U-state lines).
     */
    AccessResult access(const Access &req);

    /** True iff @p core's private hierarchy holds @p line in U. */
    bool coreHasU(CoreId core, Addr line) const;

    /** @p core's non-speculative U copy of @p line; must exist. */
    LineData &uCopy(CoreId core, Addr line);
    const LineData &uCopy(CoreId core, Addr line) const;

    /** Clear the L1 speculative bits of (core, line); called on
     *  commit/abort for each line the transaction touched. */
    void clearSpec(CoreId core, Addr line);

    // --- introspection (tests, benches) ---
    PrivState privState(CoreId core, Addr line) const;
    DirState dirState(Addr line) const;
    Label dirLabel(Addr line) const;
    uint32_t sharerCount(Addr line) const;
    const MachineConfig &config() const { return cfg_; }

    /**
     * Functional-only (untimed, state-preserving) view of @p line's
     * committed value: the reduction of all U copies if the line is in
     * U, else the SimMemory contents. For verification; never changes
     * simulated state or time.
     */
    LineData debugReducedValue(Addr line) const;

    /** All per-core U copies of @p line (empty when not in U); untimed
     *  verification helper for indirection-based structures whose
     *  reductions write memory (lists, top-K sets). */
    std::vector<LineData> debugUCopies(Addr line) const;

    /** Install the invariant checker for end-of-drain-loop sweeps
     *  (MachineConfig::invariantOnDrain); nullptr disables them. */
    void setInvariantChecker(InvariantChecker *checker)
    {
        invariants_ = checker;
    }

    // --- test-only fault injection (tests/invariants_test.cc) ---
    // Directory/private-state flip hooks, the invariant-checker
    // counterpart of CommitLog::setTestOperandFlip: each corrupts ONE
    // field of the machine, modeling the protocol bug class the
    // checker must catch, and is never called outside tests.
    void testFlipDirState(Addr line, DirState to);
    void testFlipSharerBit(Addr line, CoreId core);
    void testFlipPrivState(CoreId core, Addr line, PrivState to);
    void testFlipL1State(CoreId core, Addr line, PrivState to);
    void testDropUCopy(CoreId core, Addr line);
    void testFlipNotedBit(CoreId core, Addr line);
    void testSetHandlerDepth(uint32_t depth);

  private:
    friend class InvariantChecker;
    /** Per-core private cache hierarchy. */
    struct PerCore {
        PerCore(uint32_t l1_lines, uint32_t l1_ways, uint32_t l2_lines,
                uint32_t l2_ways)
            : l1(l1_lines, l1_ways), l2(l2_lines, l2_ways)
        {
        }
        CacheArray<PrivLine> l1;
        CacheArray<PrivLine> l2;
        /** Non-speculative U-state copies (functional). Flat map: these
         *  lookups sit under every labeled access and every reduction. */
        FlatLineMap<LineData> uCopies;
    };

    /** Shadow-thread context for reduction handlers and splitters. */
    class HandlerCtx : public HandlerContext
    {
      public:
        HandlerCtx(MemorySystem &ms, CoreId core, Cycle &lat)
            : ms_(ms), core_(core), lat_(lat)
        {
        }
        void rawRead(Addr addr, void *out, size_t size) override;
        void rawWrite(Addr addr, const void *src, size_t size) override;
        void compute(uint64_t instrs) override { lat_ += instrs; }

      private:
        MemorySystem &ms_;
        CoreId core_;
        Cycle &lat_;
    };

    /** Which protocol action a conflict check is about. */
    enum class InvalKind : uint8_t {
        ForRead,      //!< GETS downgrade of an M owner
        ForWrite,     //!< GETX invalidation
        ForLabeled,   //!< GETU invalidation/downgrade
        ForReduction, //!< reduction-triggered invalidation of a U sharer
        ForSplit,     //!< gather-triggered split at a U sharer
    };

    /**
     * Follow-on directory work a request handler defers to access()'s
     * drain loop instead of executing nested: when a GETS/GETX/GETU
     * finds the line in dir-U, the required reduction runs as the next
     * popped work item at access()'s own frame depth, not as a callee
     * of the handler (see the drain loop in access()).
     */
    struct DirFollowUp {
        bool reduce = false;
        bool toM = false;        //!< reduceLine's to_m argument
        Label newLabel = kNoLabel;
    };

    // Directory-side request handlers. They perform the non-reducing
    // protocol actions inline and defer reductions via DirFollowUp.
    DirFollowUp handleGETS(const Access &req, L3Line *e, AccessResult &res);
    DirFollowUp handleGETX(const Access &req, L3Line *e, AccessResult &res);
    DirFollowUp handleGETU(const Access &req, L3Line *e, AccessResult &res);
    /** Gather body proper (split/merge over the sharers); runs only
     *  once the requester holds the line in U (re-acquisition is a
     *  separate drain-loop step). */
    void runGather(const Access &req, L3Line *e, AccessResult &res);

    /**
     * Reduce a dir-U line into @p req.core (Sec. III-B4, Fig. 7).
     * On success the requester ends in M (to_m) or in U with
     * @p new_label (GETU with a different label, case 3).
     * On a NACK the requester keeps/acquires U with the merged partial
     * value and must abort (res.nackAbort).
     */
    void reduceLine(const Access &req, L3Line *e, AccessResult &res,
                    bool to_m, Label new_label);

    /**
     * Conflict-check an invalidation/downgrade/split against @p victim
     * and resolve it (Sec. III-B3, Fig. 6). Returns true if the action
     * may proceed (no conflict, or the victim lost and was aborted);
     * false if the victim NACKed (sets res.nackAbort and res.cause).
     */
    bool battle(const Access &req, CoreId victim, Addr line,
                InvalKind kind, AccessResult &res);

    /** Classify the dependence for Fig. 18 given the victim's bits. */
    AbortCause classifyConflict(InvalKind kind, const PrivLine &victim)
        const;

    // Private-hierarchy management.
    PrivLine *findL1(CoreId core, Addr line);
    const PrivLine *findL1(CoreId core, Addr line) const;
    PrivLine *findL2(CoreId core, Addr line);
    /** Install/refresh (core, line) in both L1 and L2 with @p state. */
    void setPriv(CoreId core, Addr line, PrivState state, Label label,
                 bool dirty, bool handler, Cycle &lat);
    /** Before converting @p line to U in place in @p core's caches,
        evict LRU U lines until each set keeps a non-U way
        (reserved-way rule, Sec. III-B4). */
    void reserveWayForU(CoreId core, Addr line, Cycle &lat);
    /** Drop (core, line) from L1+L2 (invalidations, reductions). */
    void dropPriv(CoreId core, Addr line);
    /** Mark speculative bits for a transactional access. Pass the
     *  line's L1 entry when the caller already holds it (the L1-hit
     *  fast path); markSpec re-finds it otherwise. */
    void markSpec(const Access &req, Addr line,
                  PrivLine *e1 = nullptr);

    // Evictions.
    void onEvictL1(CoreId core, PrivLine &victim);
    void onEvictL2(CoreId core, PrivLine &victim, Cycle &lat);
    void onEvictL3(L3Line &victim, Cycle &lat);
    /** Sec. III-B5: evict a U line from a private hierarchy. */
    void uEvict(CoreId core, Addr line, Cycle &lat);

    /** Lookup/fill the L3 entry (and directory state) for @p line. */
    L3Line *getL3(const Access &req, Addr line, Cycle &lat);

    /** True iff (state, label) satisfies @p op locally. */
    bool satisfiesLocally(const PrivLine &entry, MemOp op,
                          Label label) const;

    /** Remove @p core from @p line's U sharers, dropping its copy. */
    void removeUSharer(L3Line *e, CoreId core);

    // HtmHooks dispatch: direct (devirtualized) through mgr_ when the
    // production HtmManager is installed, virtual through htm_
    // otherwise, no-op/false when no hooks are installed. Bodies live
    // in coherence.cc, where htm/htm.h is visible.
    bool hookInTx(CoreId c) const;
    Timestamp hookTxTs(CoreId c) const;
    bool hookSpecModified(CoreId c, Addr line) const;
    void hookRemoteAbort(CoreId victim, AbortCause cause);

    const MachineConfig &cfg_;
    SimMemory &memory_;
    const LabelRegistry &labels_;
    MachineStats &stats_;
    Rng &rng_;
    NocModel noc_;
    HtmHooks *htm_ = nullptr;
    HtmManager *mgr_ = nullptr;

    std::vector<std::unique_ptr<PerCore>> cores_;
    CacheArray<L3Line> l3_;
    /** End-of-drain-loop sweep hook; installed only when
     *  MachineConfig::invariantOnDrain is set. */
    InvariantChecker *invariants_ = nullptr;

    /** Live handler-issued access() frames. Handlers cannot touch U
     *  lines nor evict them, so a handler access never runs another
     *  handler: the only recursion left in the memory system is the
     *  handler -> access() re-entry, bounded at depth one (asserted
     *  in access()). */
    uint32_t handlerDepth_ = 0;
};

} // namespace commtm

#endif // COMMTM_MEM_COHERENCE_H
