/**
 * @file
 * Cache-line metadata: private-cache entries, sharer sets, and the L3
 * entries that embed the in-cache directory.
 */

#ifndef COMMTM_MEM_LINE_H
#define COMMTM_MEM_LINE_H

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>

#include "sim/types.h"

namespace commtm {

/** Coherence state of a line in a private (L1/L2) cache. */
enum class PrivState : uint8_t {
    I, //!< invalid
    S, //!< shared, read-only
    E, //!< exclusive, clean (MESI)
    M, //!< modified
    U, //!< user-defined reducible (CommTM)
};

const char *privStateName(PrivState state);

/** Entry of a private L1/L2 tag array. */
struct PrivLine {
    Addr line = 0;
    bool valid = false;
    uint64_t lru = 0;

    PrivState state = PrivState::I;
    Label label = kNoLabel; //!< meaningful when state == U
    bool dirty = false;
    /**
     * Speculative-access bits (L1 only; Fig. 5). Whether they denote the
     * read/write set or the labeled set is inferred from the line state:
     * state U => labeled set.
     */
    bool specRead = false;
    bool specWrite = false;
    /**
     * Which Tx signature kinds this entry has reported (markSpec).
     * One line can be in several kinds within one transaction — the
     * conditionally-commutative fallback reads a line conventionally
     * after labeled accesses, and the state transition (U -> M)
     * changes what an access means — and lazy commit-time arbitration
     * needs every kind recorded, not just the first.
     */
    bool notedRead = false;
    bool notedWrite = false;
    bool notedLabeled = false;

    bool spec() const { return specRead || specWrite; }

    void
    reset()
    {
        state = PrivState::I;
        label = kNoLabel;
        dirty = false;
        specRead = false;
        specWrite = false;
        notedRead = false;
        notedWrite = false;
        notedLabeled = false;
    }
};

/**
 * Set of sharer cores, exact at any machine size. Core ids below
 * kInlineSharers live in a fixed inline bitmask — the common case, and
 * the only case at Table I scale, so directory actions on <= 128-core
 * machines never allocate. Larger ids spill to a heap-allocated
 * extension bitmask sized at runtime to the highest id seen, so the
 * same directory models 256-, 512-, or N-core chips with no
 * compile-time cap. The extension stays bit-exact rather than
 * coarsening: every U sharer owns a U copy that reductions, gathers,
 * and evictions must visit individually (Sec. III-B3).
 */
class Sharers
{
  public:
    /** Core ids below this are tracked inline (allocation-free). */
    static constexpr uint32_t kInlineSharers = 128;

    Sharers() = default;
    Sharers(const Sharers &o) : words_(o.words_) { copyExt(o); }
    Sharers(Sharers &&o) noexcept : words_(o.words_), ext_(o.ext_)
    {
        o.words_[0] = o.words_[1] = 0;
        o.ext_ = nullptr;
    }
    Sharers &
    operator=(const Sharers &o)
    {
        if (this != &o) {
            words_ = o.words_;
            delete[] ext_;
            ext_ = nullptr;
            copyExt(o);
        }
        return *this;
    }
    Sharers &
    operator=(Sharers &&o) noexcept
    {
        if (this != &o) {
            delete[] ext_;
            words_ = o.words_;
            ext_ = o.ext_;
            o.words_[0] = o.words_[1] = 0;
            o.ext_ = nullptr;
        }
        return *this;
    }
    ~Sharers() { delete[] ext_; }

    void
    set(CoreId c)
    {
        if (c < kInlineSharers) {
            words_[c >> 6] |= bit(c);
            return;
        }
        growExt(extIndex(c) + 1);
        extWords()[extIndex(c)] |= bit(c);
    }

    void
    clear(CoreId c)
    {
        if (c < kInlineSharers)
            words_[c >> 6] &= ~bit(c);
        else if (extIndex(c) < extWordCount())
            extWords()[extIndex(c)] &= ~bit(c);
    }

    bool
    test(CoreId c) const
    {
        if (c < kInlineSharers)
            return words_[c >> 6] & bit(c);
        return extIndex(c) < extWordCount() &&
               (extWords()[extIndex(c)] & bit(c));
    }

    bool
    any() const
    {
        if (words_[0] || words_[1])
            return true;
        for (uint32_t w = 0; w < extWordCount(); w++) {
            if (extWords()[w])
                return true;
        }
        return false;
    }

    void
    resetAll()
    {
        words_[0] = words_[1] = 0;
        delete[] ext_;
        ext_ = nullptr;
    }

    uint32_t
    count() const
    {
        uint32_t n = __builtin_popcountll(words_[0]) +
                     __builtin_popcountll(words_[1]);
        for (uint32_t w = 0; w < extWordCount(); w++)
            n += __builtin_popcountll(extWords()[w]);
        return n;
    }

    /** True iff @p c is the only sharer. */
    bool
    only(CoreId c) const
    {
        return test(c) && count() == 1;
    }

    /** Lowest-numbered sharer; only valid when any(). */
    CoreId
    first() const
    {
        assert(any());
        if (words_[0])
            return __builtin_ctzll(words_[0]);
        if (words_[1])
            return 64 + __builtin_ctzll(words_[1]);
        for (uint32_t w = 0; w < extWordCount(); w++) {
            if (extWords()[w]) {
                return kInlineSharers + w * 64 +
                       __builtin_ctzll(extWords()[w]);
            }
        }
        return kNoCore;
    }

    /** Invoke @p fn for every sharer, in increasing core order. The
     *  callback is a template parameter (not std::function): this runs
     *  on the coherence fast path, where a std::function per directory
     *  action would allocate. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (int w = 0; w < 2; w++) {
            uint64_t bits = words_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(CoreId(w * 64 + b));
                bits &= bits - 1;
            }
        }
        for (uint32_t w = 0; w < extWordCount(); w++) {
            uint64_t bits = extWords()[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(CoreId(kInlineSharers + w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

  private:
    static uint32_t extIndex(CoreId c) { return (c - kInlineSharers) >> 6; }
    uint64_t bit(CoreId c) const { return 1ull << (c & 63); }

    uint32_t extWordCount() const { return ext_ ? uint32_t(ext_[0]) : 0; }
    uint64_t *extWords() { return ext_ + 1; }
    const uint64_t *extWords() const { return ext_ + 1; }

    void
    growExt(uint32_t words)
    {
        if (extWordCount() >= words)
            return;
        uint64_t *grown = new uint64_t[words + 1]();
        grown[0] = words;
        for (uint32_t w = 0; w < extWordCount(); w++)
            grown[w + 1] = ext_[w + 1];
        delete[] ext_;
        ext_ = grown;
    }

    void
    copyExt(const Sharers &o)
    {
        if (!o.ext_)
            return;
        const uint32_t words = o.extWordCount();
        ext_ = new uint64_t[words + 1];
        for (uint32_t w = 0; w <= words; w++)
            ext_[w] = o.ext_[w];
    }

    std::array<uint64_t, 2> words_{};
    /** Extension bitmask for cores >= kInlineSharers: word 0 holds the
     *  word count, the mask words follow. Null until a large id is
     *  set, so Table I machines never touch the heap here. */
    uint64_t *ext_ = nullptr;
};

/**
 * Stack-allocated snapshot of a sharer set. The directory handlers
 * snapshot sharers before invalidation/reduction loops (battle() and
 * handlers mutate the live set mid-walk); the snapshot is contiguous
 * (sortable for fanout-limited gathers) and stays on the stack for up
 * to kInlineSharers entries, spilling to the heap only on >128-core
 * machines.
 */
class SharerList
{
  public:
    // data_ is set in the body: members initialize in declaration
    // order, so naming inline_.data() in the init-list would read
    // inline_ before its own initialization.
    SharerList() : cap_(Sharers::kInlineSharers) { data_ = inline_.data(); }
    SharerList(const SharerList &) = delete;
    SharerList &operator=(const SharerList &) = delete;

    void
    push(CoreId c)
    {
        if (size_ == cap_)
            grow();
        data_[size_++] = c;
    }

    /** Keep only the first @p n entries (fanout-limited gathers). */
    void
    truncate(uint32_t n)
    {
        assert(n <= size_);
        size_ = n;
    }

    uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    CoreId operator[](uint32_t i) const { return data_[i]; }
    CoreId *begin() { return data_; }
    CoreId *end() { return data_ + size_; }
    const CoreId *begin() const { return data_; }
    const CoreId *end() const { return data_ + size_; }

  private:
    void
    grow()
    {
        const uint32_t grown_cap = cap_ * 2;
        CoreId *grown = new CoreId[grown_cap];
        for (uint32_t i = 0; i < size_; i++)
            grown[i] = data_[i];
        heap_.reset(grown);
        data_ = grown;
        cap_ = grown_cap;
    }

    CoreId *data_;
    uint32_t size_ = 0;
    uint32_t cap_;
    std::array<CoreId, Sharers::kInlineSharers> inline_;
    std::unique_ptr<CoreId[]> heap_;
};

/** Global (directory) view of a line's state. */
enum class DirState : uint8_t {
    NonCached, //!< present in L3 (or memory) only; no private copies
    S,         //!< one or more read-only private sharers
    M,         //!< one exclusive private owner (E or M locally)
    U,         //!< one or more reducible private sharers (CommTM)
};

const char *dirStateName(DirState state);

/** Entry of the shared L3, which embeds the in-cache directory. */
struct L3Line {
    Addr line = 0;
    bool valid = false;
    uint64_t lru = 0;

    DirState dir = DirState::NonCached;
    Sharers sharers;
    Label label = kNoLabel; //!< meaningful when dir == U

    void
    reset()
    {
        dir = DirState::NonCached;
        sharers.resetAll();
        label = kNoLabel;
    }
};

} // namespace commtm

#endif // COMMTM_MEM_LINE_H
