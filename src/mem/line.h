/**
 * @file
 * Cache-line metadata: private-cache entries, sharer sets, and the L3
 * entries that embed the in-cache directory.
 */

#ifndef COMMTM_MEM_LINE_H
#define COMMTM_MEM_LINE_H

#include <array>
#include <cassert>
#include <cstdint>

#include "sim/types.h"

namespace commtm {

/** Coherence state of a line in a private (L1/L2) cache. */
enum class PrivState : uint8_t {
    I, //!< invalid
    S, //!< shared, read-only
    E, //!< exclusive, clean (MESI)
    M, //!< modified
    U, //!< user-defined reducible (CommTM)
};

const char *privStateName(PrivState state);

/** Entry of a private L1/L2 tag array. */
struct PrivLine {
    Addr line = 0;
    bool valid = false;
    uint64_t lru = 0;

    PrivState state = PrivState::I;
    Label label = kNoLabel; //!< meaningful when state == U
    bool dirty = false;
    /**
     * Speculative-access bits (L1 only; Fig. 5). Whether they denote the
     * read/write set or the labeled set is inferred from the line state:
     * state U => labeled set.
     */
    bool specRead = false;
    bool specWrite = false;

    bool spec() const { return specRead || specWrite; }

    void
    reset()
    {
        state = PrivState::I;
        label = kNoLabel;
        dirty = false;
        specRead = false;
        specWrite = false;
    }
};

/** Bitmask of up-to-128 sharer cores. */
class Sharers
{
  public:
    /** Upper bound on sharer count (size for stack-allocated snapshots). */
    static constexpr uint32_t kMaxSharers = 128;

    void set(CoreId c) { word(c) |= bit(c); }
    void clear(CoreId c) { word(c) &= ~bit(c); }
    bool test(CoreId c) const { return words_[c >> 6] & bit(c); }
    bool any() const { return words_[0] || words_[1]; }
    void resetAll() { words_[0] = words_[1] = 0; }

    uint32_t
    count() const
    {
        return __builtin_popcountll(words_[0]) +
               __builtin_popcountll(words_[1]);
    }

    /** True iff @p c is the only sharer. */
    bool
    only(CoreId c) const
    {
        return test(c) && count() == 1;
    }

    /** Lowest-numbered sharer; only valid when any(). */
    CoreId
    first() const
    {
        assert(any());
        if (words_[0])
            return __builtin_ctzll(words_[0]);
        return 64 + __builtin_ctzll(words_[1]);
    }

    /** Invoke @p fn for every sharer, in increasing core order. The
     *  callback is a template parameter (not std::function): this runs
     *  on the coherence fast path, where a std::function per directory
     *  action would allocate. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (int w = 0; w < 2; w++) {
            uint64_t bits = words_[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                fn(CoreId(w * 64 + b));
                bits &= bits - 1;
            }
        }
    }

    /** Return the sharers as a small vector (stable snapshot). */
    std::array<uint64_t, 2> raw() const { return words_; }

  private:
    uint64_t &word(CoreId c) { return words_[c >> 6]; }
    uint64_t bit(CoreId c) const { return 1ull << (c & 63); }

    std::array<uint64_t, 2> words_{};
};

/** Global (directory) view of a line's state. */
enum class DirState : uint8_t {
    NonCached, //!< present in L3 (or memory) only; no private copies
    S,         //!< one or more read-only private sharers
    M,         //!< one exclusive private owner (E or M locally)
    U,         //!< one or more reducible private sharers (CommTM)
};

const char *dirStateName(DirState state);

/** Entry of the shared L3, which embeds the in-cache directory. */
struct L3Line {
    Addr line = 0;
    bool valid = false;
    uint64_t lru = 0;

    DirState dir = DirState::NonCached;
    Sharers sharers;
    Label label = kNoLabel; //!< meaningful when dir == U

    void
    reset()
    {
        dir = DirState::NonCached;
        sharers.resetAll();
        label = kNoLabel;
    }
};

} // namespace commtm

#endif // COMMTM_MEM_LINE_H
