/**
 * @file
 * MemorySystem implementation: the MESI+U protocol state machine
 * (GETS/GETX/GETU/gather directory handlers), reductions and splits on
 * the shadow thread, timestamp conflict resolution (battle), private-
 * and shared-cache evictions, and latency accounting over the NoC.
 */

#include "mem/coherence.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

// The production hooks implementation. Including it here (not in
// coherence.h) keeps mem/ headers free of htm/ dependencies while
// letting the dispatch helpers below call the final HtmManager methods
// directly — no virtual dispatch on the access fast path.
#include "htm/htm.h"
#include "sim/check.h"
#include "sim/invariants.h"

namespace commtm {

void
MemorySystem::setHtmManager(HtmManager *mgr)
{
    mgr_ = mgr;
    htm_ = mgr;
}

bool
MemorySystem::hookInTx(CoreId c) const
{
    if (mgr_)
        return mgr_->inTx(c);
    return htm_ && htm_->inTx(c);
}

Timestamp
MemorySystem::hookTxTs(CoreId c) const
{
    if (mgr_)
        return mgr_->txTs(c);
    assert(htm_);
    return htm_->txTs(c);
}

bool
MemorySystem::hookSpecModified(CoreId c, Addr line) const
{
    if (mgr_)
        return mgr_->specModified(c, line);
    return htm_ && htm_->specModified(c, line);
}

void
MemorySystem::hookRemoteAbort(CoreId victim, AbortCause cause)
{
    if (mgr_)
        mgr_->remoteAbort(victim, cause);
    else if (htm_)
        htm_->remoteAbort(victim, cause);
}

const char *
privStateName(PrivState state)
{
    switch (state) {
      case PrivState::I: return "I";
      case PrivState::S: return "S";
      case PrivState::E: return "E";
      case PrivState::M: return "M";
      case PrivState::U: return "U";
    }
    return "?";
}

const char *
dirStateName(DirState state)
{
    switch (state) {
      case DirState::NonCached: return "NonCached";
      case DirState::S: return "S";
      case DirState::M: return "M";
      case DirState::U: return "U";
    }
    return "?";
}

MemorySystem::MemorySystem(const MachineConfig &cfg, SimMemory &memory,
                           const LabelRegistry &labels, MachineStats &stats,
                           Rng &rng)
    : cfg_(cfg), memory_(memory), labels_(labels), stats_(stats), rng_(rng),
      noc_(cfg), l3_(cfg.l3Lines(), cfg.l3Ways)
{
    cores_.reserve(cfg.numCores);
    for (uint32_t c = 0; c < cfg.numCores; c++) {
        cores_.push_back(std::make_unique<PerCore>(
            cfg.l1Lines(), cfg.l1Ways, cfg.l2Lines(), cfg.l2Ways));
    }
}

// ---------------------------------------------------------------------
// Handler (shadow thread) context
// ---------------------------------------------------------------------

void
MemorySystem::HandlerCtx::rawRead(Addr addr, void *out, size_t size)
{
    auto *dst = static_cast<uint8_t *>(out);
    while (size > 0) {
        const size_t chunk =
            std::min(size, size_t(kLineSize - lineOffset(addr)));
        Access a;
        a.core = core_;
        a.addr = addr;
        a.size = uint32_t(chunk);
        a.op = MemOp::Load;
        a.handler = true;
        const AccessResult r = ms_.access(a);
        COMMTM_CHECK(!r.mustAbort(),
                     "handler read of 0x%llx aborted; handlers are "
                     "non-speculative and must always win",
                     (unsigned long long)addr);
        lat_ += r.latency;
        ms_.memory_.read(addr, dst, chunk);
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
MemorySystem::HandlerCtx::rawWrite(Addr addr, const void *src, size_t size)
{
    const auto *from = static_cast<const uint8_t *>(src);
    while (size > 0) {
        const size_t chunk =
            std::min(size, size_t(kLineSize - lineOffset(addr)));
        Access a;
        a.core = core_;
        a.addr = addr;
        a.size = uint32_t(chunk);
        a.op = MemOp::Store;
        a.handler = true;
        const AccessResult r = ms_.access(a);
        COMMTM_CHECK(!r.mustAbort(),
                     "handler write of 0x%llx aborted; handlers are "
                     "non-speculative and must always win",
                     (unsigned long long)addr);
        lat_ += r.latency;
        ms_.memory_.write(addr, from, chunk);
        from += chunk;
        addr += chunk;
        size -= chunk;
    }
}

// ---------------------------------------------------------------------
// Lookup helpers
// ---------------------------------------------------------------------

PrivLine *
MemorySystem::findL1(CoreId core, Addr line)
{
    return cores_[core]->l1.lookup(line);
}

const PrivLine *
MemorySystem::findL1(CoreId core, Addr line) const
{
    return cores_[core]->l1.lookup(line);
}

PrivLine *
MemorySystem::findL2(CoreId core, Addr line)
{
    return cores_[core]->l2.lookup(line);
}

bool
MemorySystem::coreHasU(CoreId core, Addr line) const
{
    return cores_[core]->uCopies.contains(line);
}

LineData &
MemorySystem::uCopy(CoreId core, Addr line)
{
    // Deliberately a plain reference (not a sanitizer handle): the
    // contract is "must exist", callers use it immediately, and the
    // functional accessors sit on the hot path.
    const auto copy = cores_[core]->uCopies.find(line);
    assert(copy);
    return *copy;
}

const LineData &
MemorySystem::uCopy(CoreId core, Addr line) const
{
    const auto copy = cores_[core]->uCopies.find(line);
    assert(copy);
    return *copy;
}

void
MemorySystem::clearSpec(CoreId core, Addr line)
{
    if (PrivLine *e1 = findL1(core, line)) {
        e1->specRead = false;
        e1->specWrite = false;
        e1->notedRead = false;
        e1->notedWrite = false;
        e1->notedLabeled = false;
    }
}

PrivState
MemorySystem::privState(CoreId core, Addr line) const
{
    if (const PrivLine *e1 = findL1(core, line))
        return e1->state;
    if (const PrivLine *e2 = cores_[core]->l2.lookup(line))
        return e2->state;
    return PrivState::I;
}

DirState
MemorySystem::dirState(Addr line) const
{
    const L3Line *e = l3_.lookup(line);
    return e ? e->dir : DirState::NonCached;
}

Label
MemorySystem::dirLabel(Addr line) const
{
    const L3Line *e = l3_.lookup(line);
    return e ? e->label : kNoLabel;
}

uint32_t
MemorySystem::sharerCount(Addr line) const
{
    const L3Line *e = l3_.lookup(line);
    return e ? e->sharers.count() : 0;
}

namespace {

/** Functional-only handler context: reads/writes go straight to the
 *  backing store with no timing or coherence effects. Used only for
 *  debug/verification reductions that must not perturb the simulation. */
class UntimedHandlerCtx : public HandlerContext
{
  public:
    explicit UntimedHandlerCtx(const SimMemory &mem)
        : mem_(const_cast<SimMemory &>(mem))
    {
    }
    void
    rawRead(Addr addr, void *out, size_t size) override
    {
        mem_.read(addr, out, size);
    }
    void
    rawWrite(Addr, const void *, size_t) override
    {
        assert(false && "debug reductions must not write memory");
    }
    void compute(uint64_t) override {}

  private:
    SimMemory &mem_;
};

} // namespace

LineData
MemorySystem::debugReducedValue(Addr line) const
{
    const L3Line *e = l3_.lookup(line);
    if (!e || e->dir != DirState::U)
        return memory_.readLine(line);
    const LabelInfo &li = labels_.get(e->label);
    UntimedHandlerCtx ctx(memory_);
    LineData acc{};
    bool have = false;
    e->sharers.forEach([&](CoreId s) {
        const auto copy = cores_[s]->uCopies.find(line);
        assert(copy);
        if (!have) {
            acc = *copy;
            have = true;
        } else {
            LineData local = acc;
            li.reduce(ctx, local, *copy);
            acc = local;
        }
    });
    assert(have);
    return acc;
}

std::vector<LineData>
MemorySystem::debugUCopies(Addr line) const
{
    std::vector<LineData> copies;
    const L3Line *e = l3_.lookup(line);
    if (!e || e->dir != DirState::U)
        return copies;
    e->sharers.forEach([&](CoreId s) {
        const auto copy = cores_[s]->uCopies.find(line);
        assert(copy);
        copies.push_back(*copy);
    });
    return copies;
}

// ---------------------------------------------------------------------
// Conflict detection and resolution
// ---------------------------------------------------------------------

AbortCause
MemorySystem::classifyConflict(InvalKind kind, const PrivLine &victim) const
{
    if (victim.state == PrivState::U) {
        return kind == InvalKind::ForSplit ? AbortCause::GatherAfterLabeled
                                           : AbortCause::LabeledConflict;
    }
    switch (kind) {
      case InvalKind::ForRead:
        return AbortCause::ReadAfterWrite;
      case InvalKind::ForWrite:
        return victim.specWrite ? AbortCause::WriteAfterWrite
                                : AbortCause::WriteAfterRead;
      case InvalKind::ForLabeled:
      case InvalKind::ForReduction:
        return AbortCause::LabeledConflict;
      case InvalKind::ForSplit:
        return AbortCause::GatherAfterLabeled;
    }
    return AbortCause::LabeledConflict;
}

bool
MemorySystem::battle(const Access &req, CoreId victim, Addr line,
                     InvalKind kind, AccessResult &res)
{
    if (victim == req.core)
        return true;
    // Lazy (commit-time) detection: a speculative request never flags
    // conventional read/write conflicts; the committing transaction
    // arbitrates. U-state interactions — reductions, splits, AND GETU
    // invalidations of conventional sharers (ForLabeled) — stay
    // immediate (docs/ARCHITECTURE.md Sec. 6). Deferring ForLabeled
    // let a line re-enter U between a transaction's conventional
    // full-value read and its labeled write of the derived value; the
    // write then committed into a fresh identity copy as a commutative
    // partial on top of the still-circulating old value, minting
    // tokens (caught by the GridClaim fuzz wall).
    if (cfg_.conflictDetection == ConflictDetection::Lazy && req.isTx &&
        (kind == InvalKind::ForRead || kind == InvalKind::ForWrite)) {
        return true;
    }
    PrivLine *e1 = findL1(victim, line);
    if (!e1 || !e1->spec() || !hookInTx(victim))
        return true; // no speculative holder: plain coherence action
    // A downgrade for a read only conflicts with a speculative writer.
    if (kind == InvalKind::ForRead && !e1->specWrite)
        return true;

    const AbortCause cause = classifyConflict(kind, *e1);
    const bool requester_wins =
        cfg_.conflictPolicy == ConflictPolicy::RequesterWins ||
        !req.isTx || // non-speculative requests cannot be NACKed
        req.ts < hookTxTs(victim); // the earlier transaction wins

    if (requester_wins) {
        hookRemoteAbort(victim, cause);
        return true;
    }
    stats_.nacks++;
    res.nackAbort = true;
    res.cause = cause;
    return false;
}

// ---------------------------------------------------------------------
// Private-hierarchy fills and evictions
// ---------------------------------------------------------------------

void
MemorySystem::markSpec(const Access &req, Addr line, PrivLine *e1)
{
    if (e1)
        assert(e1 == findL1(req.core, line));
    else
        e1 = findL1(req.core, line);
    COMMTM_CHECK(e1,
                 "speculative access must leave the line in the L1: "
                 "core=%u op=%d label=%d line=0x%llx l2=%s dir=%s "
                 "sharers=%u hasU=%d",
                 req.core, int(req.op), int(req.label),
                 (unsigned long long)line,
                 privStateName(privState(req.core, line)),
                 dirStateName(dirState(line)), sharerCount(line),
                 int(coreHasU(req.core, line)));
    // A labeled op is only a *commutative* access while the line is in
    // U: satisfied by an exclusively-held (E/M) line it executes on
    // the fully-reduced value (Fig. 3) — the conditionally-commutative
    // fallback pattern (conventional read, then labeled write of the
    // derived value) — so for commit-time arbitration it must count as
    // a conventional read/write. Classifying it as Labeled let two
    // lazy-mode transactions both claim the last token of a bounded
    // cell: neither joined the write set, so lazyArbitrate's
    // "commutative users don't conflict" rule never aborted the stale
    // reader (caught by the GridClaim fuzz wall).
    const bool labeled = (req.op == MemOp::LabeledLoad ||
                          req.op == MemOp::LabeledStore ||
                          req.op == MemOp::Gather) &&
                         e1->state == PrivState::U;
    const bool is_load = !req.lazyWrite &&
                         (req.op == MemOp::Load ||
                          req.op == MemOp::LabeledLoad ||
                          req.op == MemOp::Gather);
    if (is_load)
        e1->specRead = true;
    else
        e1->specWrite = true;
    // Note each signature KIND once per line (notedRead/Write/Labeled
    // are separate bits): gating on specRead/specWrite alone dropped
    // the conventional read of a line whose labeled access came first
    // — so a lazy-mode transaction's stale full-value read was
    // invisible to commit-time arbitration (GridClaim fuzz wall).
    const SpecKind kind = labeled ? SpecKind::Labeled
                          : is_load ? SpecKind::Read
                                    : SpecKind::Write;
    bool *noted = labeled ? &e1->notedLabeled
                  : is_load ? &e1->notedRead
                            : &e1->notedWrite;
    if (!*noted) {
        *noted = true;
        // Hottest hook on the tx path (43.7M calls on fig12): a single
        // well-predicted test takes the devirtualized HtmManager call.
        // Whenever markSpec fires a transaction is live, so hooks are
        // installed; tests driving raw accesses install theirs via
        // setHtm and take the virtual fallback.
        if (mgr_)
            mgr_->noteSpecLine(req.core, line, kind);
        else
            htm_->noteSpecLine(req.core, line, kind);
    }
}

bool
MemorySystem::satisfiesLocally(const PrivLine &entry, MemOp op,
                               Label label) const
{
    switch (entry.state) {
      case PrivState::I:
        return false;
      case PrivState::S:
        return op == MemOp::Load;
      case PrivState::E:
      case PrivState::M:
        // Exclusive states satisfy all requests, labeled or not (Fig. 3).
        // A gather on an exclusively-held line is trivially satisfied:
        // the whole value is local, so there is nothing to gather.
        return true;
      case PrivState::U:
        return (op == MemOp::LabeledLoad || op == MemOp::LabeledStore) &&
               entry.label == label;
    }
    return false;
}

namespace {

bool
isULine(const PrivLine &entry)
{
    return entry.state == PrivState::U;
}

} // namespace

void
MemorySystem::dropPriv(CoreId core, Addr line)
{
    cores_[core]->l1.erase(line);
    cores_[core]->l2.erase(line);
}

void
MemorySystem::removeUSharer(L3Line *e, CoreId core)
{
    e->sharers.clear(core);
    dropPriv(core, e->line);
    cores_[core]->uCopies.erase(e->line);
}

void
MemorySystem::onEvictL1(CoreId core, PrivLine &victim)
{
    // Evicting speculatively-accessed data from the L1 aborts the
    // transaction (Sec. III-B1 capacity rule). Lazy mode tracks the
    // conventional read/write sets in signatures, so residency is not
    // required for those — but U-state (labeled) conflicts are
    // detected eagerly in BOTH modes (docs/ARCHITECTURE.md Sec. 6),
    // and that detection lives in the L1 entry's spec bits: evicting a
    // spec U line would let a reduction merge this transaction's copy
    // away without a battle, and the commit would then re-apply its
    // buffered absolute bytes onto a fresh identity copy, minting
    // value out of thin air (caught by the GridClaim fuzz wall under
    // lazy + tiny caches).
    if (victim.spec() && hookInTx(core) &&
        (cfg_.conflictDetection == ConflictDetection::Eager ||
         victim.state == PrivState::U))
        hookRemoteAbort(core, AbortCause::Capacity);
    if (victim.dirty) {
        if (PrivLine *e2 = findL2(core, victim.line))
            e2->dirty = true;
    }
    // U lines stay resident in the L2; the U copy is untouched.
}

void
MemorySystem::onEvictL2(CoreId core, PrivLine &victim, Cycle &lat)
{
    // Back-invalidate the L1 (inclusive hierarchy). Same capacity
    // rule as onEvictL1: U-state spec lines abort in BOTH detection
    // modes — the labeled conflict detection lives in the L1 entry's
    // spec bits, and dropping them silently would reopen the
    // token-minting hazard on this path.
    if (PrivLine *e1 = findL1(core, victim.line)) {
        if (e1->spec() && hookInTx(core) &&
            (cfg_.conflictDetection == ConflictDetection::Eager ||
             e1->state == PrivState::U))
            hookRemoteAbort(core, AbortCause::Capacity);
        cores_[core]->l1.erase(victim.line);
    }
    if (victim.state == PrivState::U) {
        uEvict(core, victim.line, lat);
        return;
    }
    if (L3Line *e = l3_.lookup(victim.line)) {
        if (e->sharers.test(core)) {
            e->sharers.clear(core);
            if (victim.dirty)
                stats_.writebacks++;
            if (!e->sharers.any() && e->dir != DirState::U)
                e->dir = DirState::NonCached;
        }
    }
}

void
MemorySystem::uEvict(CoreId core, Addr line, Cycle &lat)
{
    // Guards: a recursive handler access may already have reduced this
    // core's copy away (see docs/ARCHITECTURE.md Sec. 2.3); then there
    // is nothing left to do.
    auto &copies = cores_[core]->uCopies;
    const auto found = copies.find(line);
    if (!found)
        return;
    L3Line *e = l3_.lookup(line);
    COMMTM_CHECK(e, "U eviction of line 0x%llx with no L3 entry",
                 (unsigned long long)line);
    COMMTM_CHECK(e->dir == DirState::U && e->sharers.test(core),
                 "U eviction of line 0x%llx by core %u, but the "
                 "directory has it %s with sharer bit %d",
                 (unsigned long long)line, core, dirStateName(e->dir),
                 int(e->sharers.test(core)));
    const LineData copy = *found;
    copies.erase(line);
    e->sharers.clear(core);

    if (!e->sharers.any()) {
        // Sole sharer: treated as a normal dirty writeback (Sec. III-B5).
        memory_.writeLine(line, copy);
        e->dir = DirState::NonCached;
        e->label = kNoLabel;
        stats_.uWritebacks++;
        return;
    }
    // Forward to a random sharer, which reduces it with its local line.
    const uint32_t pick = uint32_t(rng_.below(e->sharers.count()));
    CoreId target = kNoCore;
    uint32_t idx = 0;
    e->sharers.forEach([&](CoreId s) {
        if (idx++ == pick)
            target = s;
    });
    assert(target != kNoCore);
    // If the chosen core's transaction touches this line, it aborts.
    if (PrivLine *te = findL1(target, line)) {
        if (te->spec() && hookInTx(target))
            hookRemoteAbort(target, AbortCause::UEviction);
    }
    HandlerCtx hctx(*this, target, lat);
    // Reduce into a local copy, not a live map reference: the handler
    // may recurse into access() and reshuffle the target's uCopies
    // (flat-map growth/backshift invalidates references).
    LineData merged = cores_[target]->uCopies[line];
    labels_.get(e->label).reduce(hctx, merged, copy);
    cores_[target]->uCopies[line] = merged;
    lat += cfg_.reductionFixedCost + noc_.coreToCore(core, target);
    stats_.uForwards++;
}

void
MemorySystem::setPriv(CoreId core, Addr line, PrivState state, Label label,
                      bool dirty, bool handler, Cycle &lat)
{
    assert(!(handler && state == PrivState::U));
    PerCore &pc = *cores_[core];
    const bool filling_u = state == PrivState::U;

    const auto may_evict = [handler](const PrivLine &v) {
        return !(handler && v.state == PrivState::U);
    };

    // Reserved-way rule (Sec. III-B4): keep at least one non-U way per
    // set so reduction-handler fills never displace reducible data. A U
    // fill that would break the invariant first evicts the LRU U line.
    const auto reserve = [&](CacheArray<PrivLine> &arr, bool is_l2) {
        if (!filling_u)
            return;
        while (arr.countInSet(line, isULine) >= arr.ways() - 1) {
            PrivLine *v = arr.findLruWhere(line, isULine);
            assert(v);
            PrivLine copy = *v;
            arr.erase(copy.line);
            if (is_l2)
                onEvictL2(core, copy, lat);
            else
                onEvictL1(core, copy);
        }
    };

    // L2 first (inclusive parent), then L1.
    bool evicted2 = false;
    PrivLine victim2;
    PrivLine *e2 = pc.l2.lookup(line);
    if (!e2) {
        reserve(pc.l2, true);
        auto r = pc.l2.insert(line, may_evict);
        e2 = r.entry;
        evicted2 = r.evicted;
        victim2 = r.victim;
    } else if (filling_u && e2->state != PrivState::U) {
        // In-place upgrade of a conventional line to U counts against
        // the reserved way exactly like a U fill; without this a hit
        // path could fill every way of the set with U lines and a
        // later handler fill would find no eligible victim (caught by
        // the invariant checker's reserved-way sweep under fuzz).
        reserve(pc.l2, true);
        e2 = pc.l2.lookup(line);
    }
    e2->state = state;
    e2->label = label;
    e2->dirty = e2->dirty || dirty;
    pc.l2.touch(e2);

    bool evicted1 = false;
    PrivLine victim1;
    PrivLine *e1 = pc.l1.lookup(line);
    if (!e1) {
        reserve(pc.l1, false);
        auto r = pc.l1.insert(line, may_evict);
        e1 = r.entry;
        evicted1 = r.evicted;
        victim1 = r.victim;
    } else if (filling_u && e1->state != PrivState::U) {
        reserve(pc.l1, false); // same reserved-way rule as the L2
        e1 = pc.l1.lookup(line);
    }
    e1->state = state;
    e1->label = label;
    e1->dirty = e1->dirty || dirty;
    pc.l1.touch(e1);

    // Deferred eviction side effects: run after the fills so handler
    // recursion observes a consistent hierarchy.
    if (evicted1)
        onEvictL1(core, victim1);
    if (evicted2)
        onEvictL2(core, victim2, lat);
}

void
MemorySystem::reserveWayForU(CoreId core, Addr line, Cycle &lat)
{
    // An in-place downgrade of a conventional copy to U (e.g. the
    // exclusive owner in GETU Case 5) bypasses setPriv's fill path,
    // but counts against the reserved way all the same: without this
    // the set could end up all-U and a later reduction-handler fill
    // would find no eligible victim.
    PerCore &pc = *cores_[core];
    const auto reserve = [&](CacheArray<PrivLine> &arr, bool is_l2) {
        const PrivLine *cur = arr.lookup(line);
        if (!cur || cur->state == PrivState::U)
            return; // no conversion at this level, or already U
        while (arr.countInSet(line, isULine) >= arr.ways() - 1) {
            PrivLine *v = arr.findLruWhere(line, isULine);
            assert(v);
            PrivLine copy = *v;
            arr.erase(copy.line);
            if (is_l2)
                onEvictL2(core, copy, lat);
            else
                onEvictL1(core, copy);
        }
    };
    // L2 first: back-invalidation of an evicted L2 U line frees its
    // L1 way too.
    reserve(pc.l2, true);
    reserve(pc.l1, false);
}

// ---------------------------------------------------------------------
// L3 / directory
// ---------------------------------------------------------------------

void
MemorySystem::onEvictL3(L3Line &victim, Cycle &lat)
{
    const Addr vline = victim.line;
    if (victim.dir == DirState::U) {
        // Inclusive L3: evicting a U line reduces it at one core and
        // aborts every transaction that accessed it (Sec. III-B5).
        const LabelInfo &li = labels_.get(victim.label);
        LineData acc{};
        bool have = false;
        const CoreId host = victim.sharers.first();
        HandlerCtx hctx(*this, host, lat);
        victim.sharers.forEach([&](CoreId s) {
            if (PrivLine *e1 = findL1(s, vline)) {
                if (e1->spec() && hookInTx(s))
                    hookRemoteAbort(s, AbortCause::UEviction);
            }
            const auto found = cores_[s]->uCopies.find(vline);
            if (!found)
                return;
            // Copy the donor value before running the reduction
            // handler: recursion may reshuffle s's uCopies.
            const LineData donor = *found;
            cores_[s]->uCopies.erase(vline);
            dropPriv(s, vline);
            if (!have) {
                acc = donor;
                have = true;
            } else {
                li.reduce(hctx, acc, donor);
                lat += cfg_.reductionFixedCost;
            }
        });
        if (have)
            memory_.writeLine(vline, acc);
        stats_.reductions++;
        stats_.uWritebacks++;
        return;
    }
    // Normal line: back-invalidate all private copies.
    victim.sharers.forEach([&](CoreId s) {
        if (PrivLine *e1 = findL1(s, vline)) {
            if (e1->spec() &&
                cfg_.conflictDetection == ConflictDetection::Eager &&
                hookInTx(s))
                hookRemoteAbort(s, AbortCause::Capacity);
        }
        dropPriv(s, vline);
    });
    if (victim.dir == DirState::M)
        stats_.writebacks++;
}

L3Line *
MemorySystem::getL3(const Access &req, Addr line, Cycle &lat)
{
    if (L3Line *e = l3_.lookup(line)) {
        l3_.touch(e);
        stats_.l3Hits++;
        return e;
    }
    stats_.l3Misses++;
    lat += cfg_.memLatency;

    const auto non_cached = [](const L3Line &v) {
        return v.dir == DirState::NonCached;
    };
    CacheArray<L3Line>::InsertResult r;
    if (l3_.countInSet(line, non_cached) > 0) {
        r = l3_.insert(line, non_cached);
    } else if (req.handler) {
        // Handlers must never trigger a reduction (deadlock avoidance):
        // they cannot evict directory-U lines. With 16 ways this always
        // leaves an eligible victim in practice; asserted in insert().
        r = l3_.insert(line,
                       [](const L3Line &v) { return v.dir != DirState::U; });
    } else {
        r = l3_.insert(line);
    }
    if (r.evicted)
        onEvictL3(r.victim, lat);
    // Handler recursion inside onEvictL3 may have reshuffled the set;
    // re-find our entry.
    L3Line *e = l3_.lookup(line);
    COMMTM_CHECK(e, "line 0x%llx lost its L3 entry during the fill's "
                    "own eviction",
                 (unsigned long long)line);
    return e;
}

// ---------------------------------------------------------------------
// Directory-side request handling
// ---------------------------------------------------------------------

MemorySystem::DirFollowUp
MemorySystem::handleGETS(const Access &req, L3Line *e, AccessResult &res)
{
    const Addr line = e->line;
    const CoreId c = req.core;
    switch (e->dir) {
      case DirState::NonCached:
        // MESI: the first reader gets the line exclusive-clean.
        e->dir = DirState::M;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::E, kNoLabel, false, req.handler,
                res.latency);
        break;
      case DirState::S:
        e->sharers.set(c);
        setPriv(c, line, PrivState::S, kNoLabel, false, req.handler,
                res.latency);
        break;
      case DirState::M: {
        const CoreId owner = e->sharers.first();
        assert(owner != c && "exclusive holder would have hit locally");
        if (!battle(req, owner, line, InvalKind::ForRead, res))
            return {};
        // Downgrade the owner to S; it forwards the data.
        if (PrivLine *oe1 = findL1(owner, line)) {
            if (oe1->dirty)
                stats_.writebacks++;
            oe1->state = PrivState::S;
            oe1->dirty = false;
        }
        if (PrivLine *oe2 = findL2(owner, line)) {
            if (oe2->dirty)
                stats_.writebacks++;
            oe2->state = PrivState::S;
            oe2->dirty = false;
        }
        stats_.downgrades++;
        res.latency += noc_.coreToCore(owner, c);
        e->dir = DirState::S;
        e->sharers.set(c);
        setPriv(c, line, PrivState::S, kNoLabel, false, req.handler,
                res.latency);
        break;
      }
      case DirState::U:
        assert(!req.handler && "handlers must not touch U lines");
        return {true, true, kNoLabel};
    }
    return {};
}

MemorySystem::DirFollowUp
MemorySystem::handleGETX(const Access &req, L3Line *e, AccessResult &res)
{
    const Addr line = e->line;
    const CoreId c = req.core;
    switch (e->dir) {
      case DirState::NonCached:
        e->dir = DirState::M;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::M, kNoLabel, true, req.handler,
                res.latency);
        break;
      case DirState::S: {
        bool nacked = false;
        Cycle max_leg = 0;
        // Stack snapshot: battle() may mutate the sharer set, and a
        // heap vector per invalidation shows up in host time.
        SharerList sharers;
        e->sharers.forEach([&](CoreId s) {
            if (s != c)
                sharers.push(s);
        });
        for (const CoreId s : sharers) {
            if (!battle(req, s, line, InvalKind::ForWrite, res)) {
                nacked = true;
                continue;
            }
            dropPriv(s, line);
            e->sharers.clear(s);
            stats_.invalidations++;
            max_leg = std::max(max_leg, noc_.coreToCore(s, c));
        }
        res.latency += max_leg;
        if (nacked)
            return {};
        e->dir = DirState::M;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::M, kNoLabel, true, req.handler,
                res.latency);
        break;
      }
      case DirState::M: {
        const CoreId owner = e->sharers.first();
        assert(owner != c && "exclusive holder would have hit locally");
        if (!battle(req, owner, line, InvalKind::ForWrite, res))
            return {};
        const PrivLine *oe2 = findL2(owner, line);
        if (oe2 && oe2->dirty)
            stats_.writebacks++;
        dropPriv(owner, line);
        stats_.invalidations++;
        res.latency += noc_.coreToCore(owner, c);
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::M, kNoLabel, true, req.handler,
                res.latency);
        break;
      }
      case DirState::U:
        assert(!req.handler && "handlers must not touch U lines");
        return {true, true, kNoLabel};
    }
    return {};
}

MemorySystem::DirFollowUp
MemorySystem::handleGETU(const Access &req, L3Line *e, AccessResult &res)
{
    const Addr line = e->line;
    const CoreId c = req.core;
    const Label l = req.label;
    PerCore &pc = *cores_[c];

    switch (e->dir) {
      case DirState::NonCached:
        // Case 1: no other private cache has the line; the directory
        // serves the data, which the requester absorbs into its U copy.
        pc.uCopies[line] = memory_.readLine(line);
        e->dir = DirState::U;
        e->label = l;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::U, l, false, false, res.latency);
        break;
      case DirState::S: {
        // Case 2: invalidate read-only sharers, then serve the data.
        bool nacked = false;
        Cycle max_leg = 0;
        SharerList sharers;
        e->sharers.forEach([&](CoreId s) {
            if (s != c)
                sharers.push(s);
        });
        for (const CoreId s : sharers) {
            if (!battle(req, s, line, InvalKind::ForLabeled, res)) {
                nacked = true;
                continue;
            }
            dropPriv(s, line);
            e->sharers.clear(s);
            stats_.invalidations++;
            max_leg = std::max(max_leg, noc_.coreToCore(s, c));
        }
        res.latency += max_leg;
        if (nacked)
            return {};
        pc.uCopies[line] = memory_.readLine(line);
        e->dir = DirState::U;
        e->label = l;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::U, l, false, false, res.latency);
        break;
      }
      case DirState::M: {
        // Case 5: downgrade the exclusive owner to U; it retains the
        // data, the requester initializes to the identity (Fig. 4b).
        const CoreId owner = e->sharers.first();
        assert(owner != c && "exclusive holder would have hit locally");
        if (!battle(req, owner, line, InvalKind::ForLabeled, res))
            return {};
        // The in-place M->U downgrade below counts against the
        // owner's reserved way like any U fill. The eviction may run
        // a reduction handler that recurses into access() and
        // reshuffles the L3 flat map, so re-find our entry after.
        reserveWayForU(owner, line, res.latency);
        e = l3_.lookup(line);
        COMMTM_CHECK(e, "L3 entry for line 0x%llx vanished during "
                        "reserved-way eviction",
                     (unsigned long long)line);
        cores_[owner]->uCopies[line] = memory_.readLine(line);
        if (PrivLine *oe1 = findL1(owner, line)) {
            oe1->state = PrivState::U;
            oe1->label = l;
            oe1->dirty = false;
        }
        if (PrivLine *oe2 = findL2(owner, line)) {
            oe2->state = PrivState::U;
            oe2->label = l;
            oe2->dirty = false;
        }
        stats_.downgrades++;
        res.latency += noc_.coreToBank(owner, cfg_.lineBank(line));
        pc.uCopies[line] = labels_.get(l).identity;
        e->dir = DirState::U;
        e->label = l;
        e->sharers.set(c);
        setPriv(c, line, PrivState::U, l, false, false, res.latency);
        break;
      }
      case DirState::U:
        if (e->label == l) {
            // Case 4: same label; grant U without serving data.
            assert(!e->sharers.test(c) && "sharer would have hit locally");
            pc.uCopies[line] = labels_.get(l).identity;
            e->sharers.set(c);
            setPriv(c, line, PrivState::U, l, false, false, res.latency);
        } else {
            // Case 3: different label; reduce, then re-enter U relabeled.
            return {true, false, l};
        }
        break;
    }
    return {};
}

void
MemorySystem::reduceLine(const Access &req, L3Line *e, AccessResult &res,
                         bool to_m, Label new_label)
{
    assert(!req.handler);
    const Addr line = e->line;
    const CoreId c = req.core;
    const Label old_label = e->label;
    const LabelInfo &li = labels_.get(old_label);
    PerCore &pc = *cores_[c];

    // Unlabeled access to our own speculatively-modified labeled data
    // while others share it: abort and retry with labeled operations
    // demoted to conventional ones (Sec. III-B4).
    if (to_m && e->sharers.test(c) && e->sharers.count() > 1 && req.isTx &&
        hookSpecModified(c, line)) {
        res.selfDemote = true;
        res.cause = AbortCause::SelfDemotion;
        return;
    }

    LineData acc{};
    bool have = false;
    if (e->sharers.test(c)) {
        acc = pc.uCopies[line];
        have = true;
    }

    bool nacked = false;
    Cycle max_leg = 0;
    HandlerCtx hctx(*this, c, res.latency);
    SharerList others;
    e->sharers.forEach([&](CoreId s) {
        if (s != c)
            others.push(s);
    });
    for (const CoreId s : others) {
        if (!battle(req, s, line, InvalKind::ForReduction, res)) {
            nacked = true;
            continue;
        }
        const auto fwd_copy = cores_[s]->uCopies.find(line);
        COMMTM_CHECK(fwd_copy,
                     "directory-U sharer %u of line 0x%llx holds no U "
                     "copy to forward",
                     s, (unsigned long long)line);
        const LineData fwd = *fwd_copy;
        if (!have) {
            // The requester transitions to U on the first forwarded line.
            acc = fwd;
            have = true;
        } else {
            li.reduce(hctx, acc, fwd);
            res.latency += cfg_.reductionFixedCost;
            stats_.reductionLinesMerged++;
        }
        max_leg = std::max(max_leg, noc_.coreToCore(s, c));
        removeUSharer(e, s);
        stats_.invalidations++;
    }
    res.latency += max_leg;
    stats_.reductions++;

    if (nacked) {
        // NACKed reduction (Sec. III-B4): the requester keeps what it
        // merged, in U with the old label, and aborts afterwards.
        if (have) {
            pc.uCopies[line] = acc;
            e->sharers.set(c);
            setPriv(c, line, PrivState::U, old_label, false, false,
                    res.latency);
        }
        return;
    }

    COMMTM_CHECK(have,
                 "reduction of line 0x%llx found no sharer copies; a "
                 "directory-U line must have at least one",
                 (unsigned long long)line);
    if (to_m) {
        pc.uCopies.erase(line);
        memory_.writeLine(line, acc);
        e->dir = DirState::M;
        e->label = kNoLabel;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::M, kNoLabel, true, false, res.latency);
    } else {
        pc.uCopies[line] = acc;
        e->dir = DirState::U;
        e->label = new_label;
        e->sharers.resetAll();
        e->sharers.set(c);
        setPriv(c, line, PrivState::U, new_label, false, false,
                res.latency);
    }
}

void
MemorySystem::runGather(const Access &req, L3Line *e, AccessResult &res)
{
    const Addr line = e->line;
    const CoreId c = req.core;
    // The requester holds the line in U by now: access()'s drain loop
    // re-acquires it with an AcquireU step (the GETU flow, plus any
    // reduction it defers) before this body runs (Sec. IV).
    assert(e->dir == DirState::U && e->sharers.test(c));
    const LabelInfo &li = labels_.get(req.label);
    assert(li.split && "gather on a label without a splitter");
    stats_.gathers++;

    // Refresh the requester's private entries up front: under cache
    // pressure the line may have fallen back to L2-only, and every exit
    // path below must leave it in the L1 for speculative tracking.
    setPriv(c, line, PrivState::U, req.label, false, false, res.latency);

    const uint32_t num_sharers = e->sharers.count();
    if (num_sharers <= 1)
        return; // nothing to gather

    PerCore &pc = *cores_[c];
    HandlerCtx hctx(*this, c, res.latency);
    Cycle max_leg = 0;
    SharerList others;
    e->sharers.forEach([&](CoreId s) {
        if (s != c)
            others.push(s);
    });
    // Subset gathers (paper future work, Sec. IV): query only the N
    // sharers nearest the requester on the mesh.
    if (cfg_.gatherFanoutLimit != 0 &&
        others.size() > cfg_.gatherFanoutLimit) {
        std::sort(others.begin(), others.end(),
                  [&](CoreId a, CoreId b) {
                      const Cycle la = noc_.coreToCore(a, c);
                      const Cycle lb = noc_.coreToCore(b, c);
                      return la != lb ? la < lb : a < b;
                  });
        others.truncate(cfg_.gatherFanoutLimit);
    }
    for (const CoreId s : others) {
        // Sharers with nothing to donate are skipped entirely: a no-op
        // split leaves their line unchanged, so it cannot invalidate
        // anything a transaction observed — no conflict, no splitter
        // run (label.h, SplitProbeFn).
        if (li.splitProbe &&
            !li.splitProbe(cores_[s]->uCopies[line], num_sharers)) {
            continue;
        }
        if (!battle(req, s, line, InvalKind::ForSplit, res))
            continue; // NACKed; requester aborts after merging the rest
        // Run the splitter and reduction on local copies: the handler
        // may recurse into access() and reshuffle either core's
        // uCopies, invalidating flat-map references.
        LineData donor = cores_[s]->uCopies[line];
        LineData out = li.identity;
        li.split(hctx, donor, out, num_sharers);
        cores_[s]->uCopies[line] = donor;
        stats_.splits++;
        LineData mine = pc.uCopies[line];
        li.reduce(hctx, mine, out);
        pc.uCopies[line] = mine;
        res.latency += cfg_.reductionFixedCost;
        max_leg = std::max(max_leg, 2 * noc_.coreToCore(s, c));
    }
    res.latency += max_leg;
    // Refresh the requester's private entries (it may only hold the line
    // in its L2 by now); speculative bits are preserved.
    setPriv(c, line, PrivState::U, req.label, false, false, res.latency);
}

// ---------------------------------------------------------------------
// Top-level access
// ---------------------------------------------------------------------

AccessResult
MemorySystem::access(const Access &req)
{
    const Addr line = lineAddr(req.addr);
    assert(lineOffset(req.addr) + req.size <= kLineSize &&
           "accesses must not straddle cache lines");
    assert(!(req.handler &&
             (req.op != MemOp::Load && req.op != MemOp::Store)));

    // Reduction/split handlers re-enter access() for their own reads
    // and writes. Handlers cannot touch U lines (asserted below) nor
    // evict them (reserved-way rule + the getL3 handler predicate), so
    // a handler access never runs another handler: this re-entry is
    // the memory system's only remaining recursion, bounded at depth
    // one regardless of gather fanout or sharer count.
    struct HandlerDepthGuard {
        uint32_t &depth;
        const bool active;
        ~HandlerDepthGuard()
        {
            if (active)
                depth--;
        }
    } handler_guard{handlerDepth_, req.handler};
    if (req.handler) {
        handlerDepth_++;
        COMMTM_CHECK(handlerDepth_ == 1,
                     "handler accesses must not nest (depth=%u)",
                     handlerDepth_);
    }

    AccessResult res;
    res.latency = cfg_.l1Latency;
    PerCore &pc = *cores_[req.core];

    // L1.
    if (PrivLine *e1 = pc.l1.lookup(line)) {
        if (satisfiesLocally(*e1, req.op, req.label)) {
            pc.l1.touch(e1);
            if (req.op == MemOp::Store || req.op == MemOp::LabeledStore) {
                if (e1->state == PrivState::E)
                    e1->state = PrivState::M;
                if (e1->state == PrivState::M)
                    e1->dirty = true;
                if (PrivLine *e2 = pc.l2.lookup(line)) {
                    if (e2->state == PrivState::E)
                        e2->state = PrivState::M;
                    e2->dirty = e1->dirty || e2->dirty;
                }
            }
            stats_.l1Hits++;
            if (req.isTx && !req.handler)
                markSpec(req, line, e1);
            return res;
        }
    }
    stats_.l1Misses++;
    res.latency += cfg_.l2Latency;

    // L2.
    if (PrivLine *e2 = pc.l2.lookup(line)) {
        if (satisfiesLocally(*e2, req.op, req.label)) {
            pc.l2.touch(e2);
            stats_.l2Hits++;
            PrivState state = e2->state;
            if (req.op == MemOp::Store || req.op == MemOp::LabeledStore) {
                if (state == PrivState::E)
                    state = PrivState::M;
            }
            const bool dirty =
                e2->dirty || ((req.op == MemOp::Store ||
                               req.op == MemOp::LabeledStore) &&
                              state == PrivState::M);
            setPriv(req.core, line, state, e2->label, dirty, req.handler,
                    res.latency);
            if (req.isTx && !req.handler)
                markSpec(req, line);
            return res;
        }
    }
    stats_.l2Misses++;

    // Directory (L3 bank).
    const uint32_t bank = cfg_.lineBank(line);
    res.latency +=
        2 * noc_.coreToBank(req.core, bank) + cfg_.l3BankLatency;
    GetType get_type = GetType::GETS;
    switch (req.op) {
      case MemOp::Load:
        get_type = GetType::GETS;
        break;
      case MemOp::Store:
        get_type = GetType::GETX;
        break;
      case MemOp::LabeledLoad:
      case MemOp::LabeledStore:
      case MemOp::Gather:
        get_type = GetType::GETU;
        break;
    }
    stats_.l3Gets[size_t(get_type)]++;

    L3Line *e = getL3(req, line, res.latency);

    // Directory steps drain from an explicit LIFO work stack instead
    // of nesting calls: a gather used to stack handleGather ->
    // handleGETU -> reduceLine frames (each with its own SharerList
    // snapshot) before the reduction handlers re-entered access().
    // Popping LIFO preserves the nested flow's exact execution order
    // (pop == return-to-caller), so counters are bit-identical; the
    // steps just run at this frame's depth. The only recursion left is
    // the bounded handler -> access() re-entry (handlerDepth_ above).
    enum class Step : uint8_t { Dispatch, AcquireU, GatherBody, Reduce };
    struct Work {
        Step step;
        bool toM;
        Label newLabel;
    };
    Work stack[3];
    uint32_t depth = 0;
    stack[depth++] = {Step::Dispatch, false, kNoLabel};
    const auto push_follow_up = [&](const DirFollowUp &f) {
        if (f.reduce)
            stack[depth++] = {Step::Reduce, f.toM, f.newLabel};
    };
    while (depth > 0 && !res.mustAbort()) {
        const Work w = stack[--depth];
        // Earlier steps (reductions, evictions) may have reshuffled
        // the L3 set; re-find our entry.
        e = l3_.lookup(line);
        COMMTM_CHECK(e, "line 0x%llx lost its L3 entry mid-drain",
                     (unsigned long long)line);
        switch (w.step) {
          case Step::Dispatch:
            switch (req.op) {
              case MemOp::Load:
                push_follow_up(handleGETS(req, e, res));
                break;
              case MemOp::Store:
                push_follow_up(handleGETX(req, e, res));
                break;
              case MemOp::LabeledLoad:
              case MemOp::LabeledStore:
                assert(!req.handler);
                push_follow_up(handleGETU(req, e, res));
                break;
              case MemOp::Gather:
                assert(!req.handler);
                stack[depth++] = {Step::GatherBody, false, kNoLabel};
                if (e->dir != DirState::U || e->label != req.label ||
                    !e->sharers.test(req.core)) {
                    // The requester lost U between its labeled access
                    // and the gather; re-acquire with the GETU flow
                    // (LIFO: the acquire and any reduction it defers
                    // run before the gather body).
                    stack[depth++] = {Step::AcquireU, false, kNoLabel};
                }
                break;
            }
            break;
          case Step::AcquireU:
            push_follow_up(handleGETU(req, e, res));
            break;
          case Step::GatherBody:
            runGather(req, e, res);
            break;
          case Step::Reduce:
            reduceLine(req, e, res, w.toM, w.newLabel);
            break;
        }
    }

    if (req.isTx && !req.handler && !res.mustAbort())
        markSpec(req, line);

    // End-of-drain sweep (MachineConfig::invariantOnDrain). Handler
    // re-entries are skipped: mid-reduction the machine is legitimately
    // transient (e.g. onEvictL3 reuses the L3 slot while the remaining
    // sharers still hold their copies), and only the top-level drain
    // loop's end is a consistent sync point.
    if (invariants_ && !req.handler)
        invariants_->check(InvariantChecker::SyncPoint::DrainEnd);
    return res;
}

// --- test-only fault injection ---------------------------------------
// Each hook corrupts exactly one field of the machine so the negative
// tests in tests/invariants_test.cc can prove the checker catches that
// violation class with the right diagnostic. Never called outside
// tests.

void
MemorySystem::testFlipDirState(Addr line, DirState to)
{
    L3Line *e = l3_.lookup(line);
    assert(e);
    e->dir = to;
}

void
MemorySystem::testFlipSharerBit(Addr line, CoreId core)
{
    L3Line *e = l3_.lookup(line);
    assert(e);
    if (e->sharers.test(core))
        e->sharers.clear(core);
    else
        e->sharers.set(core);
}

void
MemorySystem::testFlipPrivState(CoreId core, Addr line, PrivState to)
{
    if (PrivLine *e1 = findL1(core, line))
        e1->state = to;
    if (PrivLine *e2 = findL2(core, line))
        e2->state = to;
}

void
MemorySystem::testFlipL1State(CoreId core, Addr line, PrivState to)
{
    PrivLine *e1 = findL1(core, line);
    assert(e1);
    e1->state = to;
}

void
MemorySystem::testDropUCopy(CoreId core, Addr line)
{
    cores_[core]->uCopies.erase(line);
}

void
MemorySystem::testFlipNotedBit(CoreId core, Addr line)
{
    PrivLine *e1 = findL1(core, line);
    assert(e1);
    e1->notedRead = !e1->notedRead;
}

void
MemorySystem::testSetHandlerDepth(uint32_t depth)
{
    handlerDepth_ = depth;
}

} // namespace commtm
