/**
 * @file
 * The workload frontend interface (docs/ARCHITECTURE.md Sec. 11):
 * what produces the per-thread operation streams a Machine simulates.
 * Two implementations exist — ClosedLoopFrontend runs compiled-in
 * workload bodies (the classic mode, used by src/apps/ and the figure
 * benches), and ReplayFrontend (src/trace/replay.h) re-executes a
 * captured trace. Decoupling the two means "a workload" is data: the
 * same capture sweeps detection modes, thread-count geometries, and
 * cache sizes without recompiling.
 */

#ifndef COMMTM_RT_FRONTEND_H
#define COMMTM_RT_FRONTEND_H

#include <cstdint>
#include <functional>
#include <vector>

namespace commtm {

class Machine;
class ThreadContext;

/**
 * A source of simulated-thread work. Frontends are attached to a
 * Machine before run(): attach() registers one simulated thread per
 * workload thread, in a deterministic order (thread i lands on core
 * threadCore(i), exactly like direct Machine::addThread calls).
 */
class Frontend
{
  public:
    virtual ~Frontend() = default;

    /** Number of simulated threads this frontend drives. */
    virtual uint32_t threads() const = 0;

    /** Register this frontend's threads with @p machine. Call before
     *  Machine::run(); a frontend attaches to one machine at a time. */
    virtual void attach(Machine &machine) = 0;
};

/**
 * The compiled-in closed-loop frontend: workload bodies (C++ callables
 * programming against ThreadContext) added in thread order. Behavior
 * is identical to calling Machine::addThread directly — this is the
 * historical path, refactored behind the Frontend interface.
 */
class ClosedLoopFrontend final : public Frontend
{
  public:
    using Body = std::function<void(ThreadContext &)>;

    /** Append one workload thread body (runs on core threads()). */
    void add(Body body) { bodies_.push_back(std::move(body)); }

    uint32_t threads() const override
    {
        return uint32_t(bodies_.size());
    }

    void attach(Machine &machine) override;

  private:
    std::vector<Body> bodies_;
};

} // namespace commtm

#endif // COMMTM_RT_FRONTEND_H
