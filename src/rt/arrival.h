/**
 * @file
 * Deterministic, seeded arrival streams and the Zipfian key sampler
 * for the open-loop service frontend (docs/ARCHITECTURE.md Sec. 12).
 * Timestamps are simulated cycles; every draw comes from a private
 * xoshiro generator seeded from the stream config, and all math goes
 * through sim/det_math.h, so a stream is a bit-identical function of
 * (pattern, seed) on every platform — which is what lets open-loop
 * bench rows pin exact quantiles in bench/baselines.json.
 */

#ifndef COMMTM_RT_ARRIVAL_H
#define COMMTM_RT_ARRIVAL_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/det_math.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace commtm {

/**
 * An arrival process. Poisson draws i.i.d. exponential inter-arrival
 * gaps with mean meanGap. Bursty is an on-off modulated Poisson
 * process (a contention-spike model): phases alternate between ON —
 * arrivals at burstFactor times the base rate — and OFF (no arrivals
 * at all), with exponentially distributed phase lengths.
 */
struct ArrivalPattern {
    enum class Kind { Poisson, Bursty };

    Kind kind = Kind::Poisson;
    /** Mean inter-arrival gap in cycles (the base rate). */
    double meanGap = 1000.0;

    // Bursty parameters (ignored for Poisson).
    double burstFactor = 8.0; //!< ON-phase rate multiplier
    double onMean = 4000.0;   //!< mean ON-phase length, cycles
    double offMean = 4000.0;  //!< mean OFF-phase length, cycles
};

/**
 * One deterministic arrival stream: next() yields strictly increasing
 * arrival cycles. Gaps are quantized to whole cycles and floored at 1
 * so arrivals never alias.
 */
class ArrivalStream
{
  public:
    ArrivalStream(const ArrivalPattern &pattern, uint64_t seed)
        : pattern_(pattern), rng_(seed)
    {
    }

    /** Cycle of the next arrival. */
    Cycle
    next()
    {
        if (pattern_.kind == ArrivalPattern::Kind::Poisson) {
            now_ += expGap(pattern_.meanGap);
            return now_;
        }
        // Bursty: arrivals exist only inside ON phases. A drawn gap
        // that crosses the phase end is discarded and the stream
        // re-draws from the start of the next ON phase (memorylessness
        // makes the re-draw statistically equivalent to thinning).
        const double on_gap =
            pattern_.meanGap / pattern_.burstFactor;
        for (;;) {
            if (!on_) {
                now_ = phaseEnd_;
                on_ = true;
                phaseEnd_ = now_ + expGap(pattern_.onMean);
            }
            const Cycle gap = expGap(on_gap);
            if (now_ + gap < phaseEnd_) {
                now_ += gap;
                return now_;
            }
            now_ = phaseEnd_;
            on_ = false;
            phaseEnd_ = now_ + expGap(pattern_.offMean);
        }
    }

  private:
    /** Exponential gap with mean @p mean, in whole cycles (>= 1). */
    Cycle
    expGap(double mean)
    {
        // 1 - uniform() is in (0, 1], so the log argument is never 0.
        const double u = 1.0 - rng_.uniform();
        const double gap = -mean * detmath::detLog(u);
        if (gap <= 1.0)
            return 1;
        return Cycle(std::llround(gap));
    }

    ArrivalPattern pattern_;
    Rng rng_;
    Cycle now_ = 0;
    Cycle phaseEnd_ = 0;
    bool on_ = false;
};

/**
 * Deterministic Zipfian sampler over [0, items): P(k) proportional to
 * (k + 1)^-s. s = 0 degenerates to uniform; s around 1 gives the
 * classic heavy head where a few hot keys absorb most arrivals. The
 * cumulative weights are precomputed with det_math, so same (items,
 * s, draw sequence) means same keys everywhere.
 */
class ZipfSampler
{
  public:
    ZipfSampler(uint64_t items, double s) : cum_(items)
    {
        double total = 0.0;
        for (uint64_t k = 0; k < items; k++) {
            total += detmath::detPow(double(k + 1), -s);
            cum_[k] = total;
        }
    }

    /** Draw one key using @p rng. */
    uint64_t
    sample(Rng &rng)
    {
        const double u = rng.uniform() * cum_.back();
        // Binary search: first cumulative weight above u.
        uint64_t lo = 0;
        uint64_t hi = cum_.size() - 1;
        while (lo < hi) {
            const uint64_t mid = lo + (hi - lo) / 2;
            if (cum_[mid] > u)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

    uint64_t items() const { return cum_.size(); }

  private:
    std::vector<double> cum_;
};

} // namespace commtm

#endif // COMMTM_RT_ARRIVAL_H
