/**
 * @file
 * Machine implementation: thread creation, the deterministic
 * smallest-next-cycle scheduler loop, barriers, txRun's
 * begin/commit/backoff-retry driver, and stats collection.
 */

#include "rt/machine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace commtm {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), labels_(cfg.hwLabels)
{
    // Geometry is runtime-configurable (forCores scales past Table I);
    // reject inconsistent configs up front rather than corrupting a
    // run with out-of-grid tiles or ragged cache sets.
    if (const char *err = cfg_.validate()) {
        std::fprintf(stderr, "invalid MachineConfig: %s\n", err);
        std::abort();
    }
    mem_ = std::make_unique<MemorySystem>(cfg_, memory_, labels_,
                                          machineStats_, rng_);
    htm_ = std::make_unique<HtmManager>(cfg_, *mem_, memory_);
    // COMMTM_RECORD_COMMITS forces observation-only commit recording
    // on for any run (the CI oracle legs use it to prove the baseline
    // wall is bit-identical with the log enabled).
    if (cfg_.recordCommits || std::getenv("COMMTM_RECORD_COMMITS")) {
        commitLog_ = std::make_unique<CommitLog>(cfg_.numCores);
        htm_->setCommitLog(commitLog_.get());
    }
    // COMMTM_CHECK_INVARIANTS forces observation-only invariant sweeps
    // on for any run: any value enables the periodic sweeps, "commit"
    // adds transaction-boundary sweeps, "drain" adds both those and
    // end-of-drain-loop sweeps (fuzz-scale machines only; see
    // MachineConfig). mem_/htm_ hold references to this cfg_, so the
    // upgraded knobs are visible to them.
    if (const char *env = std::getenv("COMMTM_CHECK_INVARIANTS")) {
        cfg_.checkInvariants = true;
        if (std::strcmp(env, "commit") == 0) {
            cfg_.invariantOnTxEnd = true;
        } else if (std::strcmp(env, "drain") == 0) {
            cfg_.invariantOnTxEnd = true;
            cfg_.invariantOnDrain = true;
        }
    }
    if (cfg_.checkInvariants) {
        invariants_ =
            std::make_unique<InvariantChecker>(cfg_, *mem_, *htm_);
        if (cfg_.invariantOnDrain)
            mem_->setInvariantChecker(invariants_.get());
    }
}

Machine::~Machine() = default;

ThreadContext &
Machine::addThread(ThreadFn fn)
{
    assert(!running_);
    assert(threads_.size() < cfg_.numCores &&
           "more simulated threads than cores");
    const CoreId core = cfg_.threadCore(uint32_t(threads_.size()));
    assert(core < cfg_.numCores);
    SimThread st;
    st.ctx = std::make_unique<ThreadContext>(
        *this, core, cfg_.seed ^ (0x1234567ull * (core + 1)));
    ThreadContext *ctx = st.ctx.get();
    st.fiber = std::make_unique<Fiber>([this, ctx, fn = std::move(fn)]() {
        fn(*ctx);
        ctx->finished_ = true;
    });
    ctx->fiber_ = st.fiber.get();
    threads_.push_back(std::move(st));
    return *ctx;
}

uint32_t
Machine::liveThreads() const
{
    uint32_t live = 0;
    for (const auto &t : threads_) {
        if (!t.ctx->finished_)
            live++;
    }
    return live;
}

Cycle
Machine::othersMin(const ThreadContext *self) const
{
    Cycle min = kInfinity;
    for (const auto &t : threads_) {
        const ThreadContext *c = t.ctx.get();
        if (c == self || c->finished_ || c->blocked_)
            continue;
        min = std::min(min, c->nextCycle_);
    }
    return min;
}

void
Machine::run()
{
    assert(!threads_.empty());
    running_ = true;
    for (;;) {
        // Resume the runnable thread with the smallest next-ready cycle
        // (ties broken by core id for determinism). One fused scan
        // finds both the winner and the runner-up cycle: the runner-up
        // is exactly othersMin(best), and a second O(threads) pass per
        // resume was the single largest host-time cost of 128-thread
        // runs.
        ThreadContext *best = nullptr;
        Cycle second = kInfinity;
        for (const auto &t : threads_) {
            ThreadContext *c = t.ctx.get();
            if (c->finished_ || c->blocked_)
                continue;
            if (!best) {
                best = c;
            } else if (c->nextCycle_ < best->nextCycle_) {
                second = best->nextCycle_;
                best = c;
            } else if (c->nextCycle_ < second) {
                second = c->nextCycle_;
            }
        }
        if (!best) {
            assert(liveThreads() == 0 &&
                   "deadlock: all live threads blocked on a barrier");
            break;
        }
        assert(second == othersMin(best));
        // Scheduler boundaries are consistent sync points: no access()
        // frame or handler is in flight between fiber resumes.
        if (invariants_ && cfg_.invariantPeriod &&
            best->nextCycle_ >= nextInvariantSweep_) {
            invariants_->check(InvariantChecker::SyncPoint::Periodic);
            nextInvariantSweep_ =
                best->nextCycle_ + cfg_.invariantPeriod;
        }
        yieldThreshold_ = second;
        if (yieldThreshold_ != kInfinity)
            yieldThreshold_ += cfg_.schedQuantum;
        best->fiber_->resume();
        if (best->fiber_->finished()) {
            best->finished_ = true;
            // A finishing thread may make a pending barrier releasable.
            checkBarrierRelease();
        }
    }
    running_ = false;
    // Final sweep: every run ends with at least one full check, even
    // when it was shorter than invariantPeriod.
    if (invariants_)
        invariants_->check(InvariantChecker::SyncPoint::Manual);
}

void
Machine::barrierArrive(ThreadContext &t)
{
    assert(!t.inTx_ && "barriers inside transactions would deadlock");
    barrier_.waiting++;
    barrier_.maxCycle = std::max(barrier_.maxCycle, t.nextCycle_);
    const uint64_t my_epoch = barrier_.epoch;
    t.blocked_ = true;
    checkBarrierRelease();
    while (barrier_.epoch == my_epoch) {
        assert(t.blocked_);
        t.fiber_->yield();
    }
    assert(!t.blocked_);
}

void
Machine::checkBarrierRelease()
{
    if (barrier_.waiting == 0)
        return;
    // Count live threads that have not yet arrived.
    uint32_t pending = 0;
    for (const auto &t : threads_) {
        if (!t.ctx->finished_ && !t.ctx->blocked_)
            pending++;
    }
    if (pending > 0)
        return;
    // Everyone alive has arrived: release.
    const Cycle release = barrier_.maxCycle + 2;
    barrier_.epoch++;
    barrier_.waiting = 0;
    barrier_.maxCycle = 0;
    for (const auto &t : threads_) {
        if (t.ctx->blocked_) {
            t.ctx->blocked_ = false;
            t.ctx->nextCycle_ = release;
        }
    }
}

StatsSnapshot
Machine::stats() const
{
    StatsSnapshot snap;
    snap.threads.reserve(threads_.size());
    for (const auto &t : threads_)
        snap.threads.push_back(t.ctx->stats);
    snap.machine = machineStats_;
    return snap;
}

void
Machine::resetStats()
{
    for (auto &t : threads_)
        t.ctx->stats = ThreadStats{};
    machineStats_ = MachineStats{};
}

// ---------------------------------------------------------------------
// ThreadContext out-of-line members
// ---------------------------------------------------------------------

void
ThreadContext::barrier()
{
    machine_.barrierArrive(*this);
}

} // namespace commtm
