/**
 * @file
 * Machine implementation: thread creation, the deterministic
 * smallest-next-cycle scheduler loop (event-driven wakeup list with a
 * sampled linear-scan cross-check), barriers, txRun's
 * begin/commit/backoff-retry driver, and stats collection.
 */

#include "rt/machine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/check.h"

namespace commtm {

/** Default reference-scheduler cross-check cadence when the config
 *  leaves schedCrossCheckEvery at 0: sampled in Debug builds (dense
 *  enough that every fuzz/determinism run exercises the comparison,
 *  sparse enough that Debug fuzz stays linear in thread count), off in
 *  Release. */
#ifndef NDEBUG
static constexpr uint32_t kDefaultCrossCheckEvery = 1024;
#else
static constexpr uint32_t kDefaultCrossCheckEvery = 0;
#endif

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), labels_(cfg.hwLabels)
{
    // Geometry is runtime-configurable (forCores scales past Table I);
    // reject inconsistent configs up front rather than corrupting a
    // run with out-of-grid tiles or ragged cache sets.
    if (const char *err = cfg_.validate()) {
        std::fprintf(stderr, "invalid MachineConfig: %s\n", err);
        std::abort();
    }
    mem_ = std::make_unique<MemorySystem>(cfg_, memory_, labels_,
                                          machineStats_, rng_);
    htm_ = std::make_unique<HtmManager>(cfg_, *mem_, memory_);
    // COMMTM_RECORD_COMMITS forces observation-only commit recording
    // on for any run (the CI oracle legs use it to prove the baseline
    // wall is bit-identical with the log enabled).
    if (cfg_.recordCommits || std::getenv("COMMTM_RECORD_COMMITS")) {
        commitLog_ = std::make_unique<CommitLog>(cfg_.numCores);
        htm_->setCommitLog(commitLog_.get());
    }
    // COMMTM_CAPTURE_TRACE forces observation-only trace capture on
    // for any run (the CI baseline legs use it to prove the wall is
    // bit-identical with the hooks live). Any value enables capture;
    // a value containing '/' or '.' is additionally taken as a path
    // that run() serializes the capture to (tools/trace_info.py
    // consumes it).
    const char *trace_env = std::getenv("COMMTM_CAPTURE_TRACE");
    if (cfg_.captureTrace || trace_env) {
        trace_ = std::make_unique<TraceWriter>(cfg_);
        if (trace_env && (std::strchr(trace_env, '/') ||
                          std::strchr(trace_env, '.'))) {
            traceFile_ = trace_env;
        }
    }
    // COMMTM_CHECK_INVARIANTS forces observation-only invariant sweeps
    // on for any run: any value enables the periodic sweeps, "commit"
    // adds transaction-boundary sweeps, "drain" adds both those and
    // end-of-drain-loop sweeps (fuzz-scale machines only; see
    // MachineConfig). mem_/htm_ hold references to this cfg_, so the
    // upgraded knobs are visible to them.
    if (const char *env = std::getenv("COMMTM_CHECK_INVARIANTS")) {
        cfg_.checkInvariants = true;
        if (std::strcmp(env, "commit") == 0) {
            cfg_.invariantOnTxEnd = true;
        } else if (std::strcmp(env, "drain") == 0) {
            cfg_.invariantOnTxEnd = true;
            cfg_.invariantOnDrain = true;
        }
    }
    if (cfg_.checkInvariants) {
        invariants_ =
            std::make_unique<InvariantChecker>(cfg_, *mem_, *htm_);
        if (cfg_.invariantOnDrain)
            mem_->setInvariantChecker(invariants_.get());
    }
    // COMMTM_SCHED_CROSSCHECK=<n> overrides the cross-check cadence
    // for any run (n resumes per reference-scan comparison; 0 off).
    crossCheckEvery_ = cfg_.schedCrossCheckEvery
                           ? cfg_.schedCrossCheckEvery
                           : kDefaultCrossCheckEvery;
    if (const char *env = std::getenv("COMMTM_SCHED_CROSSCHECK"))
        crossCheckEvery_ = uint32_t(std::strtoul(env, nullptr, 10));
}

Machine::~Machine() = default;

ThreadContext &
Machine::addThread(ThreadFn fn)
{
    assert(!running_);
    assert(threads_.size() < cfg_.numCores &&
           "more simulated threads than cores");
    const CoreId core = cfg_.threadCore(uint32_t(threads_.size()));
    assert(core < cfg_.numCores);
    SimThread st;
    st.ctx = std::make_unique<ThreadContext>(
        *this, core, cfg_.seed ^ (0x1234567ull * (core + 1)));
    st.ctx->trace_ = trace_.get();
    ThreadContext *ctx = st.ctx.get();
    st.fiber = std::make_unique<Fiber>([this, ctx, fn = std::move(fn)]() {
        fn(*ctx);
        ctx->finished_ = true;
    });
    ctx->fiber_ = st.fiber.get();
    threads_.push_back(std::move(st));
    return *ctx;
}

uint32_t
Machine::liveThreads() const
{
    uint32_t live = 0;
    for (const auto &t : threads_) {
        if (!t.ctx->finished_)
            live++;
    }
    return live;
}

void
Machine::readyPush(ThreadContext *t)
{
    assert(!t->finished_ && !t->blocked_);
    const ReadyEntry entry{t->nextCycle_, t->core_, t};
    size_t i = ready_.size();
    ready_.push_back(entry);
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!readyBefore(entry, ready_[parent]))
            break;
        ready_[i] = ready_[parent];
        i = parent;
    }
    ready_[i] = entry;
}

ThreadContext *
Machine::readyPop()
{
    if (ready_.empty())
        return nullptr;
    ThreadContext *top = ready_.front().ctx;
    const ReadyEntry last = ready_.back();
    ready_.pop_back();
    const size_t n = ready_.size();
    if (n > 0) {
        size_t i = 0;
        for (;;) {
            size_t child = 2 * i + 1;
            if (child >= n)
                break;
            const size_t right = child + 1;
            if (right < n && readyBefore(ready_[right], ready_[child]))
                child = right;
            if (!readyBefore(ready_[child], last))
                break;
            ready_[i] = ready_[child];
            i = child;
        }
        ready_[i] = last;
    }
    return top;
}

Cycle
Machine::readyPeekCycle() const
{
    return ready_.empty() ? kInfinity : ready_.front().cycle;
}

void
Machine::schedulerCrossCheck(const ThreadContext *picked,
                             Cycle second) const
{
    // Reference scheduler: the pre-wakeup-list fused linear scan
    // (winner = first thread with a strictly smaller key in creation
    // order, runner-up = smallest key among the rest). The heap must
    // agree on both; sampling keeps the comparison from re-making
    // Debug runs quadratic in thread count the way the old per-resume
    // othersMin assert did.
    const ThreadContext *ref = nullptr;
    Cycle refSecond = kInfinity;
    for (const auto &t : threads_) {
        const ThreadContext *c = t.ctx.get();
        if (c->finished_ || c->blocked_)
            continue;
        if (!ref) {
            ref = c;
        } else if (c->nextCycle_ < ref->nextCycle_) {
            refSecond = ref->nextCycle_;
            ref = c;
        } else if (c->nextCycle_ < refSecond) {
            refSecond = c->nextCycle_;
        }
    }
    COMMTM_CHECK(ref == picked,
                 "scheduler divergence: wakeup list resumed core %u "
                 "@%llu; the reference scan picks core %d @%llu",
                 picked->core_,
                 (unsigned long long)picked->nextCycle_,
                 ref ? int(ref->core_) : -1,
                 (unsigned long long)(ref ? ref->nextCycle_ : 0));
    COMMTM_CHECK(refSecond == second,
                 "scheduler divergence: wakeup-list runner-up key "
                 "%llu; the reference scan says %llu",
                 (unsigned long long)second,
                 (unsigned long long)refSecond);
}

void
Machine::run()
{
    assert(!threads_.empty());
    running_ = true;
    // Seed the wakeup list with every runnable thread. (A second run()
    // after all threads finished pops nothing and exits through the
    // deadlock assert's liveThreads() == 0 arm, as before.)
    ready_.clear();
    ready_.reserve(threads_.size());
    for (const auto &t : threads_) {
        ThreadContext *c = t.ctx.get();
        if (!c->finished_ && !c->blocked_)
            readyPush(c);
    }
    crossCheckCountdown_ = crossCheckEvery_;
    for (;;) {
        // Resume the runnable thread with the smallest next-ready cycle
        // (ties broken by core id for determinism): the heap minimum.
        // The runner-up key — what the old fused scan called `second`
        // — is a peek at the new minimum after the pop.
        ThreadContext *best = readyPop();
        if (!best) {
            assert(liveThreads() == 0 &&
                   "deadlock: all live threads blocked on a barrier");
            break;
        }
        const Cycle second = readyPeekCycle();
        if (crossCheckEvery_ != 0 && --crossCheckCountdown_ == 0) {
            crossCheckCountdown_ = crossCheckEvery_;
            schedulerCrossCheck(best, second);
        }
        // Scheduler boundaries are consistent sync points: no access()
        // frame or handler is in flight between fiber resumes.
        if (invariants_ && cfg_.invariantPeriod &&
            best->nextCycle_ >= nextInvariantSweep_) {
            invariants_->check(InvariantChecker::SyncPoint::Periodic);
            nextInvariantSweep_ =
                best->nextCycle_ + cfg_.invariantPeriod;
        }
        yieldThreshold_ = second;
        if (yieldThreshold_ != kInfinity)
            yieldThreshold_ += cfg_.schedQuantum;
        current_ = best;
        best->fiber_->resume();
        current_ = nullptr;
        if (best->fiber_->finished()) {
            best->finished_ = true;
            // A finishing thread may make a pending barrier releasable.
            checkBarrierRelease();
        } else if (!best->blocked_) {
            // The fiber yielded past its quantum (compute, memory
            // latency, or an abort-backoff stall): re-register its
            // wakeup at the advanced next-ready cycle. A blocked
            // thread stays off the list until the barrier release
            // re-registers it.
            readyPush(best);
        }
    }
    running_ = false;
    // Final sweep: every run ends with at least one full check, even
    // when it was shorter than invariantPeriod.
    if (invariants_)
        invariants_->check(InvariantChecker::SyncPoint::Manual);
    // COMMTM_CAPTURE_TRACE=<path>: persist the capture (re-written at
    // the end of every run; the last machine/run wins).
    if (trace_ && !traceFile_.empty()) {
        const std::vector<uint8_t> bytes = trace_->serialize();
        if (std::FILE *f = std::fopen(traceFile_.c_str(), "wb")) {
            std::fwrite(bytes.data(), 1, bytes.size(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot write trace file %s\n",
                         traceFile_.c_str());
        }
    }
}

void
Machine::barrierArrive(ThreadContext &t)
{
    assert(!t.inTx_ && "barriers inside transactions would deadlock");
    barrier_.waiting++;
    barrier_.maxCycle = std::max(barrier_.maxCycle, t.nextCycle_);
    const uint64_t my_epoch = barrier_.epoch;
    t.blocked_ = true;
    checkBarrierRelease();
    while (barrier_.epoch == my_epoch) {
        assert(t.blocked_);
        t.fiber_->yield();
    }
    assert(!t.blocked_);
}

void
Machine::checkBarrierRelease()
{
    if (barrier_.waiting == 0)
        return;
    // Count live threads that have not yet arrived.
    uint32_t pending = 0;
    for (const auto &t : threads_) {
        if (!t.ctx->finished_ && !t.ctx->blocked_)
            pending++;
    }
    if (pending > 0)
        return;
    // Everyone alive has arrived: release. Each released thread
    // re-registers its wakeup at the release cycle — except the
    // currently-running one (the last arriver releasing itself from
    // inside barrierArrive), which is off the list while it runs and
    // re-queues itself when it next yields.
    const Cycle release = barrier_.maxCycle + 2;
    barrier_.epoch++;
    barrier_.waiting = 0;
    barrier_.maxCycle = 0;
    for (const auto &t : threads_) {
        if (t.ctx->blocked_) {
            t.ctx->blocked_ = false;
            t.ctx->nextCycle_ = release;
            if (t.ctx.get() != current_)
                readyPush(t.ctx.get());
        }
    }
}

StatsSnapshot
Machine::stats() const
{
    StatsSnapshot snap;
    snap.threads.reserve(threads_.size());
    for (const auto &t : threads_)
        snap.threads.push_back(t.ctx->stats);
    snap.machine = machineStats_;
    return snap;
}

void
Machine::resetStats()
{
    for (auto &t : threads_)
        t.ctx->stats = ThreadStats{};
    machineStats_ = MachineStats{};
}

// ---------------------------------------------------------------------
// ThreadContext out-of-line members
// ---------------------------------------------------------------------

void
ThreadContext::barrier()
{
    // Barriers are forbidden inside transactions (asserted by
    // barrierArrive), so no pending-abort check is needed here.
    if (trace_)
        trace_->noteBarrier(core_);
    machine_.barrierArrive(*this);
}

} // namespace commtm
