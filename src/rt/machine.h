/**
 * @file
 * The simulated machine and its per-thread programming interface.
 *
 * Machine builds the simulated chip (memory system + HTM) and runs the
 * simulated threads, each on a fiber, always resuming the thread with
 * the smallest next-ready cycle (within a small scheduling quantum, like
 * zsim's bound phases). Runnable threads live on an event-driven wakeup
 * list — a binary min-heap keyed by (next-ready cycle, core id) — so a
 * resume costs O(log threads) even when most fibers are parked on
 * multi-thousand-cycle abort backoffs (docs/ARCHITECTURE.md Sec. 2.2).
 * ThreadContext is the "ISA" workloads program against: conventional
 * and labeled loads/stores, load_gather, txRun (tx_begin/tx_end with
 * retry and backoff), compute, and barriers.
 */

#ifndef COMMTM_RT_MACHINE_H
#define COMMTM_RT_MACHINE_H

#include <cassert>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "commtm/label.h"
#include "htm/htm.h"
#include "mem/coherence.h"
#include "sim/commit_log.h"
#include "sim/config.h"
#include "sim/fiber.h"
#include "sim/invariants.h"
#include "sim/memory.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "trace/trace_writer.h"

namespace commtm {

class Machine;

/**
 * Execution context of one simulated hardware thread. Workload code
 * receives a ThreadContext& and uses it for every interaction with the
 * simulated machine.
 */
class ThreadContext
{
  public:
    ThreadContext(Machine &machine, CoreId core, uint64_t seed)
        : machine_(machine), core_(core), rng_(seed)
    {
    }

    CoreId id() const { return core_; }
    Cycle now() const { return nextCycle_; }
    Machine &machine() { return machine_; }
    Rng &rng() { return rng_; }

    /** Charge @p instrs cycles of computation (IPC-1 cores). */
    void compute(uint64_t instrs);

    /** Conventional load/store of a small scalar. */
    template <typename T> T read(Addr addr);
    template <typename T> void write(Addr addr, const T &value);

    /**
     * Untyped single-issue access paths: the typed templates (and the
     * per-line chunks of readBytes/writeBytes) reduce to these, and
     * the trace ReplayFrontend re-issues captured records through
     * them. An access must not straddle a cache line (the templates
     * guarantee this for scalars; readBytes chunks at line bounds).
     */
    void readUntyped(Addr addr, void *out, size_t size);
    void writeUntyped(Addr addr, const void *src, size_t size);
    void readLabeledUntyped(Addr addr, Label label, void *out,
                            size_t size);
    void writeLabeledUntyped(Addr addr, Label label, const void *src,
                             size_t size);
    void readGatherUntyped(Addr addr, Label label, void *out,
                           size_t size);

    /** Block (vector-style) access: one memory operation per line
     *  touched. For bulk reads/writes of arrays (e.g., feature
     *  vectors); same coherence/conflict semantics as scalar ops. */
    void readBytes(Addr addr, void *out, size_t size);
    void writeBytes(Addr addr, const void *src, size_t size);

    /** Labeled load/store (Sec. III-A). */
    template <typename T> T readLabeled(Addr addr, Label label);
    template <typename T>
    void writeLabeled(Addr addr, Label label, const T &value);

    /** load_gather (Sec. IV): redistribute partial updates, then read. */
    template <typename T> T readGather(Addr addr, Label label);

    /**
     * Run @p body as a transaction: begin, execute, commit; on abort,
     * back off and retry (the timestamped conflict-resolution protocol
     * makes a software fallback unnecessary, Sec. V). Nested calls
     * execute flat (closed nesting). @p body is a template parameter
     * (not std::function): workloads start millions of transactions,
     * and a type-erased callable per transaction costs an allocation.
     */
    template <typename Body> void txRun(Body &&body);

    bool inTx() const { return inTx_; }

    /**
     * True once the current transaction attempt has aborted (remote
     * conflict, NACK, capacity, or txAbort). From that point every
     * machine operation is a no-op returning zero data; transaction
     * bodies must check this after reads whose values steer control
     * flow or host-side state and return, letting txRun() retry. This
     * is the cooperative-unwind contract (docs/ARCHITECTURE.md,
     * "Abort control flow"); bodies that never check are eventually
     * force-unwound via the AbortException fallback.
     */
    bool txAborted() const { return txAbortPending_; }

    /** Cooperatively abort the current transaction attempt: latches
     *  the pending-abort flag; the body must still return. */
    void
    txAbort(AbortCause cause = AbortCause::Explicit)
    {
        assert(inTx_);
        if (!txAbortPending_)
            noteAbort(cause, false);
    }

    /**
     * Structure-op annotation: note a library-level operation (e.g.
     * "counter add", trace_format.h codes) into the capture trace.
     * Strictly observation-only — a no-op unless a trace is being
     * captured, and never affects simulated behavior either way.
     */
    void
    annotate(uint32_t code, uint64_t value)
    {
        if (trace_ && !txAbortPending_)
            trace_->noteAnnotation(core_, code, value);
    }

    /** Wait until every live simulated thread reaches the barrier. */
    void barrier();

    /** This thread's statistics (cycle breakdowns, commits, aborts). */
    ThreadStats stats;

  private:
    friend class Machine;

    /** Advance simulated time, attribute cycles, maybe yield. */
    void advance(Cycle cycles);
    /** Latch a pending abort if a remote conflict doomed our
     *  transaction (no unwinding: operations turn into no-ops and the
     *  body is expected to return; see txAborted()). */
    void checkDoomed();
    /** Record why the current attempt aborts; operations become
     *  no-ops until txRun()'s retry loop observes the flag. */
    void noteAbort(AbortCause cause, bool demote);
    /** Called per operation issued while the abort is pending; throws
     *  the AbortException fallback once the no-op budget is spent. */
    void abortedNoOp();
    /** Map a (possibly labeled) op through the system mode and label
     *  virtualization: baseline/demoted ops become conventional. */
    MemOp effectiveOp(MemOp op, Label &label) const;

    AccessResult issue(Addr addr, uint32_t size, MemOp op, Label label);
    void functionalRead(Addr addr, void *out, size_t size, bool labeled);
    void functionalWrite(Addr addr, const void *src, size_t size,
                         bool labeled);
    /** Observation-only: fold a labeled op that stayed labeled into
     *  the commit log's pending digests (no-op when recording is off
     *  or outside a transaction). */
    void noteLabeledOp(CommitOpKind kind, Addr addr, Label label,
                       const void *operand, uint32_t size);

    Machine &machine_;
    CoreId core_;
    Rng rng_;

    /** Capture sink, or nullptr when tracing is off (the common case:
     *  every hook below is then a single pointer test, the same
     *  zero-cost discipline as commit recording). Wired by
     *  Machine::addThread. */
    TraceWriter *trace_ = nullptr;

    Fiber *fiber_ = nullptr;
    Cycle nextCycle_ = 0;
    bool finished_ = false;
    bool blocked_ = false;

    bool inTx_ = false;
    Cycle txAcc_ = 0; //!< cycles accumulated by the current attempt

    /** Cooperative-unwind state: set by noteAbort, consumed by txRun.
     *  While pending, issue()/compute() and the functional accessors
     *  are no-ops (no cycles, no stats, no memory effects), exactly as
     *  if the old throw had already unwound the body. */
    bool txAbortPending_ = false;
    AbortCause abortCause_ = AbortCause::Explicit;
    bool abortDemote_ = false;
    /** Operations issued since the abort latched; the exception
     *  fallback fires when it exceeds kAbortNoOpBudget. */
    uint32_t abortedOps_ = 0;

    /** No-op operations a non-cooperative body may issue after its
     *  abort before the AbortException fallback force-unwinds it.
     *  Generous: cooperative bodies check txAborted() at loop heads
     *  and return long before this; the budget only bounds bodies
     *  whose control flow never consults the (zeroed) read results. */
    static constexpr uint32_t kAbortNoOpBudget = 4096;
};

/**
 * The simulated chip plus the threads running on it. Typical use:
 *
 *   Machine m(cfg);
 *   Label add = m.labels().define(labels::makeAdd<int64_t>("ADD"));
 *   Addr counter = m.allocator().allocLines(1);
 *   for (int t = 0; t < n; t++)
 *       m.addThread([&](ThreadContext &ctx) { ... });
 *   m.run();
 *   StatsSnapshot s = m.stats();
 */
class Machine
{
  public:
    explicit Machine(MachineConfig cfg);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    const MachineConfig &config() const { return cfg_; }
    LabelRegistry &labels() { return labels_; }
    SimMemory &memory() { return memory_; }
    SimAllocator &allocator() { return alloc_; }
    MemorySystem &memSys() { return *mem_; }
    HtmManager &htm() { return *htm_; }
    Rng &rng() { return rng_; }

    /** The commit log, or nullptr when recording is off (see
     *  MachineConfig::recordCommits and COMMTM_RECORD_COMMITS). */
    CommitLog *commitLog() { return commitLog_.get(); }
    const CommitLog *commitLog() const { return commitLog_.get(); }

    /** The invariant checker, or nullptr when checking is off (see
     *  MachineConfig::checkInvariants and COMMTM_CHECK_INVARIANTS). */
    InvariantChecker *invariantChecker() { return invariants_.get(); }

    /** The trace writer, or nullptr when capture is off (see
     *  MachineConfig::captureTrace and COMMTM_CAPTURE_TRACE). */
    TraceWriter *traceWriter() { return trace_.get(); }
    const TraceWriter *traceWriter() const { return trace_.get(); }

    using ThreadFn = std::function<void(ThreadContext &)>;

    /** Add a simulated thread; it runs when run() is called. Threads
     *  are assigned cores in creation order. */
    ThreadContext &addThread(ThreadFn fn);

    /** Run all threads to completion. */
    void run();

    /** Snapshot of per-thread and machine-wide statistics. */
    StatsSnapshot stats() const;

    /** Zero all statistics (e.g., after a warm-up phase). */
    void resetStats();

    /** Machine-wide statistics (coherence events). */
    MachineStats &machineStats() { return machineStats_; }

  private:
    friend class ThreadContext;

    static constexpr Cycle kInfinity =
        std::numeric_limits<Cycle>::max();

    /** One wakeup-list entry. The (cycle, core) key is copied inline
     *  so heap sifts compare contiguous memory instead of chasing
     *  ThreadContext pointers spread across the heap-allocated
     *  contexts — the sift comparisons are the hot half of a resume. */
    struct ReadyEntry {
        Cycle cycle;
        CoreId core;
        ThreadContext *ctx;
    };

    /** Wakeup-list ordering: earlier next-ready cycle first, core id
     *  breaking ties (the same total order the reference scan's
     *  first-strictly-smaller walk over creation order yields, since
     *  threadCore is the identity mapping). */
    static bool
    readyBefore(const ReadyEntry &a, const ReadyEntry &b)
    {
        return a.cycle != b.cycle ? a.cycle < b.cycle : a.core < b.core;
    }

    /** Register a wakeup: sift @p t into the ready heap keyed by its
     *  current nextCycle_. The key must not change while queued. */
    void readyPush(ThreadContext *t);
    /** Pop the (cycle, core)-smallest runnable thread, or nullptr. */
    ThreadContext *readyPop();
    /** Key of the heap minimum, or kInfinity when empty. */
    Cycle readyPeekCycle() const;
    /** Reference scheduler: re-pick via the pre-wakeup-list linear
     *  scan and COMMTM_CHECK it agrees with the heap's choice. */
    void schedulerCrossCheck(const ThreadContext *picked,
                             Cycle second) const;

    void barrierArrive(ThreadContext &t);
    void checkBarrierRelease();
    uint32_t liveThreads() const;

    /** Commit/abort-boundary invariant sweep (txRun); a no-op unless
     *  checking is on and MachineConfig::invariantOnTxEnd asks for
     *  transaction-boundary density. */
    void
    invariantSync(InvariantChecker::SyncPoint where)
    {
        if (invariants_ && cfg_.invariantOnTxEnd)
            invariants_->check(where);
    }

    MachineConfig cfg_;
    Rng rng_;
    LabelRegistry labels_;
    SimMemory memory_;
    SimAllocator alloc_;
    MachineStats machineStats_;
    std::unique_ptr<CommitLog> commitLog_;
    std::unique_ptr<TraceWriter> trace_;
    /** When nonempty, run() writes the serialized capture here at the
     *  end of every run (COMMTM_CAPTURE_TRACE=<path>). */
    std::string traceFile_;
    std::unique_ptr<MemorySystem> mem_;
    std::unique_ptr<HtmManager> htm_;
    std::unique_ptr<InvariantChecker> invariants_;
    /** Next cycle at which run() owes a periodic invariant sweep. */
    Cycle nextInvariantSweep_ = 0;

    struct SimThread {
        std::unique_ptr<ThreadContext> ctx;
        std::unique_ptr<Fiber> fiber;
    };
    std::vector<SimThread> threads_;
    bool running_ = false;

    /** Event-driven wakeup list: a binary min-heap (readyBefore order)
     *  of every runnable thread except the one currently on its fiber.
     *  advance() yields re-register through run(); barrier releases
     *  and finishes register through checkBarrierRelease(). Blocked
     *  and finished threads are simply absent, so parked fibers cost
     *  nothing per resume. */
    std::vector<ReadyEntry> ready_;
    /** The thread currently executing on its fiber (popped off the
     *  ready heap), or nullptr between resumes. A barrier release must
     *  not re-queue it: it is still running and re-queues itself when
     *  it next yields. */
    ThreadContext *current_ = nullptr;
    /** Cross-check cadence resolved from MachineConfig and the
     *  COMMTM_SCHED_CROSSCHECK environment variable (0 = never). */
    uint32_t crossCheckEvery_ = 0;
    uint32_t crossCheckCountdown_ = 0;

    /** Yield threshold for the running thread (scheduling quantum). */
    Cycle yieldThreshold_ = kInfinity;

    struct BarrierState {
        uint64_t epoch = 0;
        uint32_t waiting = 0;
        Cycle maxCycle = 0;
    } barrier_;
};

// ---------------------------------------------------------------------
// ThreadContext inline/template implementation
// ---------------------------------------------------------------------

inline void
ThreadContext::advance(Cycle cycles)
{
    nextCycle_ += cycles;
    if (inTx_)
        txAcc_ += cycles;
    else
        stats.nonTxCycles += cycles;
    if (nextCycle_ > machine_.yieldThreshold_ && fiber_)
        fiber_->yield();
}

inline void
ThreadContext::noteAbort(AbortCause cause, bool demote)
{
    assert(inTx_);
    txAbortPending_ = true;
    abortCause_ = cause;
    abortDemote_ = demote;
    abortedOps_ = 0;
}

inline void
ThreadContext::abortedNoOp()
{
    // Fiber-boundary fallback for bodies that never check txAborted():
    // after a generous budget of no-op operations, force the unwind
    // the old way. Cooperative bodies never reach this; either way the
    // counters are identical, since no-op operations have no simulated
    // effect.
    if (++abortedOps_ > kAbortNoOpBudget)
        throw AbortException{abortCause_, abortDemote_};
}

inline void
ThreadContext::checkDoomed()
{
    if (inTx_ && !txAbortPending_ && machine_.htm().doomed(core_))
        noteAbort(machine_.htm().doomCause(core_), false);
}

inline void
ThreadContext::compute(uint64_t instrs)
{
    if (txAbortPending_) {
        abortedNoOp();
        return;
    }
    checkDoomed();
    if (txAbortPending_)
        return;
    if (trace_)
        trace_->noteCompute(core_, instrs);
    stats.instrs += instrs;
    advance(instrs);
}

inline MemOp
ThreadContext::effectiveOp(MemOp op, Label &label) const
{
    if (op == MemOp::Load || op == MemOp::Store)
        return op;
    const MachineConfig &cfg = machine_.config();
    const bool demote =
        cfg.mode == SystemMode::BaselineHtm ||
        !machine_.labels_.inHardware(label) ||
        (inTx_ && machine_.htm_->demoted(core_));
    if (demote) {
        label = kNoLabel;
        return op == MemOp::LabeledStore ? MemOp::Store : MemOp::Load;
    }
    if (op == MemOp::Gather && cfg.mode == SystemMode::CommTmNoGather) {
        // Without gather support the conditional check falls back to a
        // conventional load, which triggers a full reduction (Sec. IV).
        label = kNoLabel;
        return MemOp::Load;
    }
    return op;
}

inline AccessResult
ThreadContext::issue(Addr addr, uint32_t size, MemOp op, Label label)
{
    if (txAbortPending_) {
        abortedNoOp();
        return AccessResult{};
    }
    checkDoomed();
    if (txAbortPending_)
        return AccessResult{};
    stats.instrs++;
    if (op == MemOp::LabeledLoad || op == MemOp::LabeledStore ||
        op == MemOp::Gather) {
        stats.labeledInstrs++;
    }
    Access a;
    a.core = core_;
    a.addr = addr;
    a.size = size;
    a.op = op;
    a.label = label;
    a.isTx = inTx_;
    a.ts = inTx_ ? machine_.htm().txTs(core_) : 0;
    if (inTx_ && op == MemOp::Store &&
        machine_.config().conflictDetection == ConflictDetection::Lazy) {
        // Lazy mode: transactional stores buffer silently; fetch the
        // line shared for timing, join the write set for commit-time
        // arbitration (TCC-style, Sec. III-D).
        a.op = MemOp::Load;
        a.lazyWrite = true;
    }
    const AccessResult res = machine_.memSys().access(a);
    advance(res.latency);
    if (res.mustAbort()) {
        assert(inTx_);
        noteAbort(res.cause, res.selfDemote);
        return res;
    }
    checkDoomed(); // our own access may have doomed us (capacity abort)
    return res;
}

inline void
ThreadContext::functionalRead(Addr addr, void *out, size_t size,
                              bool labeled)
{
    // U-held lines read from the core's reducible copy; everything else
    // from committed simulated memory; the transaction's own buffered
    // writes overlay both.
    const Addr line = lineAddr(addr);
    if (labeled && machine_.memSys().coreHasU(core_, line)) {
        const LineData &copy = machine_.memSys().uCopy(core_, line);
        std::memcpy(out, copy.data() + lineOffset(addr), size);
    } else {
        machine_.memory().read(addr, out, size);
    }
    if (inTx_)
        machine_.htm().writeBuffer(core_).overlay(addr, out, size);
}

inline void
ThreadContext::functionalWrite(Addr addr, const void *src, size_t size,
                               bool labeled)
{
    if (inTx_) {
        machine_.htm().writeBuffer(core_).write(addr, src, size);
        return;
    }
    const Addr line = lineAddr(addr);
    if (labeled && machine_.memSys().coreHasU(core_, line)) {
        LineData &copy = machine_.memSys().uCopy(core_, line);
        std::memcpy(copy.data() + lineOffset(addr), src, size);
    } else {
        machine_.memory().write(addr, src, size);
    }
}

inline void
ThreadContext::noteLabeledOp(CommitOpKind kind, Addr addr, Label label,
                             const void *operand, uint32_t size)
{
    if (inTx_ && machine_.commitLog_) {
        machine_.commitLog_->noteLabeledOp(core_, kind, addr, label,
                                           operand, size);
    }
}

inline void
ThreadContext::readBytes(Addr addr, void *out, size_t size)
{
    auto *dst = static_cast<uint8_t *>(out);
    while (size > 0) {
        const size_t chunk =
            std::min(size, size_t(kLineSize - lineOffset(addr)));
        readUntyped(addr, dst, chunk);
        if (txAbortPending_)
            return; // buffer contents are garbage; caller must retry
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

inline void
ThreadContext::writeBytes(Addr addr, const void *src, size_t size)
{
    const auto *from = static_cast<const uint8_t *>(src);
    while (size > 0) {
        const size_t chunk =
            std::min(size, size_t(kLineSize - lineOffset(addr)));
        writeUntyped(addr, from, chunk);
        if (txAbortPending_)
            return;
        from += chunk;
        addr += chunk;
        size -= chunk;
    }
}

// On a pending abort, reads return T{} (all-zero) and writes vanish:
// with the old throw the functional half never ran either, and the
// zero sentinel keeps pointer-chasing loops in non-yet-checked body
// code terminating harmlessly until the body observes txAborted().
//
// Capture hooks record each op at the API level, before the issue
// path resolves label demotion, gather fallback, or the lazy-mode
// store conversion: a replay re-resolves those through the machine it
// runs on. Ops issued while an abort is already pending are true
// no-ops and are not recorded; ops of an attempt that later aborts
// are buffered and discarded by the writer (trace/trace_writer.h), so
// the captured stream holds exactly the committed attempts.

inline void
ThreadContext::readUntyped(Addr addr, void *out, size_t size)
{
    assert(lineOffset(addr) + size <= kLineSize);
    if (trace_ && !txAbortPending_)
        trace_->noteLoad(core_, addr, uint32_t(size));
    issue(addr, uint32_t(size), MemOp::Load, kNoLabel);
    if (txAbortPending_)
        return;
    functionalRead(addr, out, size, false);
}

inline void
ThreadContext::writeUntyped(Addr addr, const void *src, size_t size)
{
    assert(lineOffset(addr) + size <= kLineSize);
    if (trace_ && !txAbortPending_)
        trace_->noteStore(core_, addr, uint32_t(size), src);
    issue(addr, uint32_t(size), MemOp::Store, kNoLabel);
    if (txAbortPending_)
        return;
    functionalWrite(addr, src, size, false);
}

inline void
ThreadContext::readLabeledUntyped(Addr addr, Label label, void *out,
                                  size_t size)
{
    assert(lineOffset(addr) + size <= kLineSize);
    if (trace_ && !txAbortPending_)
        trace_->noteLabeledLoad(core_, addr, uint32_t(size), label);
    const MemOp op = effectiveOp(MemOp::LabeledLoad, label);
    issue(addr, uint32_t(size), op, label);
    if (txAbortPending_)
        return;
    functionalRead(addr, out, size, op == MemOp::LabeledLoad);
    if (op == MemOp::LabeledLoad) {
        noteLabeledOp(CommitOpKind::LabeledLoad, addr, label, nullptr,
                      uint32_t(size));
    }
}

inline void
ThreadContext::writeLabeledUntyped(Addr addr, Label label,
                                   const void *src, size_t size)
{
    assert(lineOffset(addr) + size <= kLineSize);
    if (trace_ && !txAbortPending_)
        trace_->noteLabeledStore(core_, addr, uint32_t(size), label,
                                 src);
    const MemOp op = effectiveOp(MemOp::LabeledStore, label);
    issue(addr, uint32_t(size), op, label);
    if (txAbortPending_)
        return;
    functionalWrite(addr, src, size, op == MemOp::LabeledStore);
    if (op == MemOp::LabeledStore) {
        noteLabeledOp(CommitOpKind::LabeledStore, addr, label, src,
                      uint32_t(size));
    }
}

inline void
ThreadContext::readGatherUntyped(Addr addr, Label label, void *out,
                                 size_t size)
{
    assert(lineOffset(addr) + size <= kLineSize);
    if (trace_ && !txAbortPending_)
        trace_->noteGather(core_, addr, uint32_t(size), label);
    const MemOp op = effectiveOp(MemOp::Gather, label);
    issue(addr, uint32_t(size), op, label);
    if (txAbortPending_)
        return;
    functionalRead(addr, out, size, op == MemOp::Gather);
    if (op == MemOp::Gather) {
        noteLabeledOp(CommitOpKind::Gather, addr, label, nullptr,
                      uint32_t(size));
    }
}

template <typename T>
T
ThreadContext::read(Addr addr)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    readUntyped(addr, &value, sizeof(T));
    return value;
}

template <typename T>
void
ThreadContext::write(Addr addr, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    writeUntyped(addr, &value, sizeof(T));
}

template <typename T>
T
ThreadContext::readLabeled(Addr addr, Label label)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    readLabeledUntyped(addr, label, &value, sizeof(T));
    return value;
}

template <typename T>
void
ThreadContext::writeLabeled(Addr addr, Label label, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    writeLabeledUntyped(addr, label, &value, sizeof(T));
}

template <typename T>
T
ThreadContext::readGather(Addr addr, Label label)
{
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    readGatherUntyped(addr, label, &value, sizeof(T));
    return value;
}

template <typename Body>
void
ThreadContext::txRun(Body &&body)
{
    if (inTx_) {
        // Closed flat nesting: the inner transaction is subsumed.
        body();
        return;
    }
    HtmManager &htm = machine_.htm();
    for (;;) {
        htm.beginAttempt(core_);
        if (trace_)
            trace_->beginAttempt(core_);
        stats.txStarted++;
        inTx_ = true;
        txAcc_ = 0;
        txAbortPending_ = false;
        try {
            advance(machine_.config().txBeginCost);
            body();
        } catch (const AbortException &e) {
            // Fallback for non-cooperative bodies (explicit throws,
            // exhausted no-op budget). Latch the fields and leave the
            // catch block before doing anything that can switch
            // fibers: the C++ exception state is per host thread,
            // shared by all fibers, so a live exception must never be
            // suspended across a yield.
            noteAbort(e.cause, e.demoteLabeled);
        }
        // Commit point. The body returned; any abort it absorbed is in
        // txAbortPending_. The two checkDoomed() calls mirror the old
        // throw sites exactly: a doom latched during the body, then
        // one latched while the commit-cost advance yielded.
        if (!txAbortPending_)
            checkDoomed();
        if (!txAbortPending_) {
            advance(machine_.config().txCommitCost);
            checkDoomed();
        }
        if (!txAbortPending_) {
            // Commit (and seal the commit-log record, if recording).
            // The commit itself is atomic in simulated time; flushing
            // the captured attempt before the latency advance (which
            // can yield) guarantees the trace's commit order equals
            // the functional commit order.
            const Cycle commitLat = htm.commit(core_, nextCycle_);
            if (trace_)
                trace_->commitAttempt(core_);
            advance(commitLat);
            stats.txCommitted++;
            stats.txCommittedCycles += txAcc_;
            txAcc_ = 0;
            inTx_ = false;
            htm.finish(core_);
            machine_.invariantSync(InvariantChecker::SyncPoint::Commit);
            return;
        }
        const AbortCause cause = abortCause_;
        if (trace_)
            trace_->abortAttempt(core_);
        const Cycle backoff = htm.abortAttempt(core_, cause, rng_);
        if (abortDemote_)
            htm.setDemoted(core_);
        advance(backoff); // stall attributed to the wasted attempt
        stats.txAborted++;
        stats.abortsByCause[size_t(cause)]++;
        stats.txAbortedCycles += txAcc_;
        stats.wastedByCause[size_t(wasteBucket(cause))] += txAcc_;
        txAcc_ = 0;
        txAbortPending_ = false;
        inTx_ = false;
        machine_.invariantSync(InvariantChecker::SyncPoint::Abort);
        // retry
    }
}

} // namespace commtm

#endif // COMMTM_RT_MACHINE_H
