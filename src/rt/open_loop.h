/**
 * @file
 * The open-loop service frontend (docs/ARCHITECTURE.md Sec. 12): the
 * third Frontend implementation, modeling independent users arriving
 * at a service rather than a fixed op count per thread. Each simulated
 * thread owns a deterministic, pre-generated arrival schedule (Poisson
 * or bursty cycles from rt/arrival.h, keys from the Zipfian sampler)
 * and a bounded FIFO request queue: arrivals that find the queue full
 * are dropped and counted, everything admitted is serviced in arrival
 * order by the caller-supplied transaction body, and each request's
 * enqueue-to-commit latency lands in a per-thread log-spaced histogram
 * (sim/latency_hist.h), split into warmup and measurement windows.
 *
 * All waiting is expressed as ThreadContext::compute, so an open-loop
 * run is captured and replayed by the PR 9 trace machinery exactly
 * like a closed-loop one, and composes unchanged with the commit-order
 * oracle and the invariant checker.
 */

#ifndef COMMTM_RT_OPEN_LOOP_H
#define COMMTM_RT_OPEN_LOOP_H

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/arrival.h"
#include "rt/frontend.h"
#include "sim/latency_hist.h"
#include "sim/types.h"

namespace commtm {

class ThreadContext;

/** Open-loop run shape: arrival process, windows, queue bound, and
 *  the key distribution. */
struct OpenLoopConfig {
    ArrivalPattern pattern;
    /** Arrivals generated per thread (warmup + measurement). */
    uint32_t arrivalsPerThread = 48;
    /** The first N serviced requests per thread are the warmup
     *  window: recorded into the warmup histogram, excluded from the
     *  measurement one. */
    uint32_t warmupPerThread = 8;
    /** Bounded per-thread queue: an arrival that finds this many
     *  requests already pending is dropped. */
    uint32_t queueDepth = 16;
    /** Keys are drawn Zipf(zipfS) over [0, zipfItems). */
    uint64_t zipfItems = 16;
    double zipfS = 0.99;
    /** Stream seed; per-thread streams derive from it via splitmix. */
    uint64_t seed = 0x0010;
};

/** Queueing outcomes of one thread (or, via total(), the machine). */
struct ServiceStats {
    uint64_t admitted = 0;  //!< arrivals that joined the queue
    uint64_t dropped = 0;   //!< arrivals rejected by the full queue
    uint64_t completed = 0; //!< admitted requests serviced to commit
    uint64_t maxDepth = 0;  //!< peak queue occupancy observed

    void
    merge(const ServiceStats &other)
    {
        admitted += other.admitted;
        dropped += other.dropped;
        completed += other.completed;
        maxDepth = maxDepth > other.maxDepth ? maxDepth
                                             : other.maxDepth;
    }
};

/**
 * Frontend that drives @p threads simulated threads from seeded
 * arrival streams. The schedule (arrival cycles and keys) is fully
 * materialized at construction, before any simulation runs, so it is
 * independent of machine config and identical for every machine the
 * frontend shape is instantiated against.
 */
class OpenLoopFrontend final : public Frontend
{
  public:
    /** Services one request: runs (at least) one transaction against
     *  key @p key. Called once per admitted arrival, in order. */
    using TxnBody = std::function<void(ThreadContext &ctx,
                                       uint64_t key)>;

    OpenLoopFrontend(const OpenLoopConfig &cfg, uint32_t threads,
                     TxnBody body);

    uint32_t threads() const override;
    void attach(Machine &machine) override;

    /** Per-thread measurement-window latency histogram. */
    const LatencyHistogram &measureHist(uint32_t thread) const;
    /** Per-thread warmup-window latency histogram. */
    const LatencyHistogram &warmupHist(uint32_t thread) const;
    const ServiceStats &serviceStats(uint32_t thread) const;

    /** Deterministic cross-thread merges (thread order). */
    LatencyHistogram mergedMeasure() const;
    LatencyHistogram mergedWarmup() const;
    ServiceStats totalService() const;

  private:
    struct Arrival {
        Cycle cycle;
        uint64_t key;
    };

    struct ThreadState {
        std::vector<Arrival> schedule;
        LatencyHistogram measure;
        LatencyHistogram warmup;
        ServiceStats service;
    };

    void serviceLoop(ThreadContext &ctx, ThreadState &state);

    OpenLoopConfig cfg_;
    TxnBody body_;
    std::vector<ThreadState> states_;
};

} // namespace commtm

#endif // COMMTM_RT_OPEN_LOOP_H
