/**
 * @file
 * OpenLoopFrontend implementation: schedule materialization at
 * construction, and the per-thread admit/service loop.
 */

#include "rt/open_loop.h"

#include <deque>

#include "rt/machine.h"

namespace commtm {

namespace {

/** One splitmix64 step: derives independent per-thread stream seeds
 *  from the config seed (matches Rng's own seeding discipline). */
uint64_t
mixSeed(uint64_t seed, uint64_t salt)
{
    uint64_t z = seed + (salt + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

OpenLoopFrontend::OpenLoopFrontend(const OpenLoopConfig &cfg,
                                   uint32_t threads, TxnBody body)
    : cfg_(cfg), body_(std::move(body)), states_(threads)
{
    ZipfSampler zipf(cfg_.zipfItems, cfg_.zipfS);
    for (uint32_t t = 0; t < threads; t++) {
        ArrivalStream stream(cfg_.pattern, mixSeed(cfg_.seed, 2 * t));
        Rng key_rng(mixSeed(cfg_.seed, 2 * t + 1));
        ThreadState &state = states_[t];
        state.schedule.reserve(cfg_.arrivalsPerThread);
        for (uint32_t i = 0; i < cfg_.arrivalsPerThread; i++) {
            state.schedule.push_back(
                Arrival{stream.next(), zipf.sample(key_rng)});
        }
    }
}

uint32_t
OpenLoopFrontend::threads() const
{
    return uint32_t(states_.size());
}

void
OpenLoopFrontend::attach(Machine &machine)
{
    for (uint32_t t = 0; t < states_.size(); t++) {
        machine.addThread([this, t](ThreadContext &ctx) {
            serviceLoop(ctx, states_[t]);
        });
    }
}

/**
 * The open-loop discipline. The thread is the queue's only producer
 * and consumer, and the queue can only drain between transactions, so
 * admitting lazily — every arrival with cycle <= now, in arrival
 * order, whenever the loop is between requests — is exactly
 * equivalent to admitting each arrival at its own cycle: occupancy
 * at any arrival instant is the deque size it observes here.
 */
void
OpenLoopFrontend::serviceLoop(ThreadContext &ctx, ThreadState &state)
{
    const std::vector<Arrival> &sched = state.schedule;
    std::deque<Arrival> queue;
    size_t next = 0;
    uint64_t serviced = 0;
    while (next < sched.size() || !queue.empty()) {
        const Cycle now = ctx.now();
        while (next < sched.size() && sched[next].cycle <= now) {
            if (queue.size() >= cfg_.queueDepth) {
                state.service.dropped++;
            } else {
                queue.push_back(sched[next]);
                state.service.admitted++;
                if (queue.size() > state.service.maxDepth)
                    state.service.maxDepth = queue.size();
            }
            next++;
        }
        if (queue.empty()) {
            // Idle until the next arrival. compute() (not a special
            // idle op) keeps the wait inside the captured op stream,
            // so trace replays re-time open-loop runs bit-exactly.
            ctx.compute(sched[next].cycle - now);
            continue;
        }
        const Arrival arrival = queue.front();
        queue.pop_front();
        body_(ctx, arrival.key);
        const Cycle latency = ctx.now() - arrival.cycle;
        if (serviced < cfg_.warmupPerThread)
            state.warmup.record(latency);
        else
            state.measure.record(latency);
        serviced++;
        state.service.completed++;
    }
}

const LatencyHistogram &
OpenLoopFrontend::measureHist(uint32_t thread) const
{
    return states_[thread].measure;
}

const LatencyHistogram &
OpenLoopFrontend::warmupHist(uint32_t thread) const
{
    return states_[thread].warmup;
}

const ServiceStats &
OpenLoopFrontend::serviceStats(uint32_t thread) const
{
    return states_[thread].service;
}

LatencyHistogram
OpenLoopFrontend::mergedMeasure() const
{
    LatencyHistogram merged;
    for (const ThreadState &state : states_)
        merged.merge(state.measure);
    return merged;
}

LatencyHistogram
OpenLoopFrontend::mergedWarmup() const
{
    LatencyHistogram merged;
    for (const ThreadState &state : states_)
        merged.merge(state.warmup);
    return merged;
}

ServiceStats
OpenLoopFrontend::totalService() const
{
    ServiceStats total;
    for (const ThreadState &state : states_)
        total.merge(state.service);
    return total;
}

} // namespace commtm
