/**
 * @file
 * ClosedLoopFrontend implementation: register each body with the
 * machine in thread order.
 */

#include "rt/frontend.h"

#include "rt/machine.h"

namespace commtm {

void
ClosedLoopFrontend::attach(Machine &machine)
{
    for (const Body &body : bodies_)
        machine.addThread(body);
}

} // namespace commtm
