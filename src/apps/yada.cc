/**
 * @file
 * yada implementation: worklist-driven refinement over a synthetic
 * deterministic refinement forest. Each root element spans a binary
 * tree of potential refinements; whether an element splits is a pure
 * function of its handle, so the host can walk the same forest and
 * predict the exact element count and quality minimum.
 */

#include "apps/yada.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "lib/comm_queue.h"
#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {

namespace {

uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace

YadaResult
runYada(const MachineConfig &machine_cfg, uint32_t threads,
        const YadaConfig &cfg)
{
    // Element handles: root r owns node indices [1, stride) of a
    // binary tree; handle = r * stride + node.
    const uint32_t stride = 2u << cfg.maxDepth;
    const uint32_t mesh_size = cfg.initialBad * stride;
    const auto splits = [&](uint64_t handle) {
        const uint32_t node = uint32_t(handle % stride);
        return node < (stride >> 1) &&
               mix(handle ^ cfg.seed) % 100 < cfg.refinePct;
    };
    const auto quality = [&](uint64_t handle) {
        return int64_t(mix(handle * 31 + cfg.seed) % 100000);
    };

    // Host reference: walk the forest the workload will produce.
    uint64_t expected = 0;
    int64_t expected_min = std::numeric_limits<int64_t>::max();
    {
        std::vector<uint64_t> work;
        for (uint32_t r = 0; r < cfg.initialBad; r++)
            work.push_back(uint64_t(r) * stride + 1);
        while (!work.empty()) {
            const uint64_t h = work.back();
            work.pop_back();
            expected++;
            expected_min = std::min(expected_min, quality(h));
            if (splits(h)) {
                const uint64_t node = h % stride;
                const uint64_t root = h / stride;
                work.push_back(root * stride + node * 2);
                work.push_back(root * stride + node * 2 + 1);
            }
        }
    }

    Machine m(machine_cfg);
    const Label queue_label = CommQueue::defineLabel(m);
    const Label add = CommCounter::defineLabel(m);
    const Label mn = m.labels().define(labels::makeMin<int64_t>("MINQ"));
    CommQueue worklist(m, queue_label,
                       machine_cfg.mode == SystemMode::BaselineHtm);
    CommCounter processed_ctr(m, add);
    const Addr min_cell = m.allocator().allocLines(1);
    m.memory().write<int64_t>(min_cell,
                              std::numeric_limits<int64_t>::max());
    const Addr mesh = m.allocator().alloc(mesh_size, kLineSize);

    std::vector<uint64_t> processed(threads, 0), dups(threads, 0);

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            // Seed the worklist with the partitioned roots.
            const uint32_t lo =
                uint32_t(uint64_t(cfg.initialBad) * t / threads);
            const uint32_t hi =
                uint32_t(uint64_t(cfg.initialBad) * (t + 1) / threads);
            for (uint32_t r = lo; r < hi; r++)
                worklist.enqueue(ctx, uint64_t(r) * stride + 1);
            ctx.barrier();

            // Refinement loop. Work stays distributed: tryDequeue
            // consumes the local partial list and steals whole chunks
            // via gathers, but never triggers the full reduction that
            // would collapse every partial list into one reader (and,
            // at high thread counts, NACK-storm every idle sharer). A
            // worker retires after kIdlePolls failed steals with
            // exponential backoff; retirement cannot strand work,
            // because a worker's own local list always satisfies its
            // next tryDequeue — only threads with nothing left retire,
            // and whoever holds the remaining elements drains them.
            constexpr uint32_t kIdlePolls = 8;
            uint32_t idle = 0;
            uint64_t h;
            bool was_dup = false;
            while (idle < kIdlePolls) {
                if (!worklist.tryDequeue(ctx, &h)) {
                    idle++;
                    ctx.compute(Cycle(64) << std::min(idle, 6u));
                    continue;
                }
                idle = 0;
                const int64_t q = quality(h);
                ctx.txRun([&] {
                    was_dup = false;
                    // Cavity reads: this element and its neighbors.
                    const uint8_t mark =
                        ctx.read<uint8_t>(mesh + h);
                    if (h > 0)
                        (void)ctx.read<uint8_t>(mesh + h - 1);
                    if (h + 1 < mesh_size)
                        (void)ctx.read<uint8_t>(mesh + h + 1);
                    if (ctx.txAborted())
                        return; // mark is garbage; txRun retries
                    if (mark != 0) {
                        was_dup = true;
                        return; // already refined (must not happen)
                    }
                    ctx.write<uint8_t>(mesh + h, 1);
                    // Retriangulate: quality stats are commutative.
                    // lint: allow-tx-aborted (labeled min-RMW)
                    const int64_t lo_q =
                        ctx.readLabeled<int64_t>(min_cell, mn);
                    ctx.writeLabeled<int64_t>(min_cell, mn,
                                              std::min(lo_q, q));
                    processed_ctr.add(ctx, 1); // flat-nested
                    ctx.compute(cfg.cavityCost);
                    // New bad elements join the worklist atomically
                    // with the retriangulation (flat nesting).
                    if (splits(h)) {
                        const uint64_t node = h % stride;
                        const uint64_t root = h / stride;
                        worklist.enqueue(ctx,
                                         root * stride + node * 2);
                        worklist.enqueue(
                            ctx, root * stride + node * 2 + 1);
                    }
                });
                if (was_dup)
                    dups[t]++;
                else
                    processed[t]++;
            }
        });
    }

    m.run();

    YadaResult result;
    result.stats = m.stats();
    result.expectedElements = expected;
    result.expectedMinQuality = expected_min;
    for (uint32_t t = 0; t < threads; t++) {
        result.elementsProcessed += processed[t];
        result.duplicates += dups[t];
    }
    result.processedCounter = processed_ctr.peek(m);
    const LineData min_line =
        m.memSys().debugReducedValue(lineAddr(min_cell));
    std::memcpy(&result.minQuality, min_line.data(),
                sizeof(result.minQuality));
    result.queueLeftover = worklist.peekSize(m);
    if (m.commitLog())
        result.commitLog = m.commitLog()->serialize();
    return result;
}

} // namespace commtm
