/**
 * @file
 * The paper's microbenchmarks (Sec. VI): counter increments (Fig. 9),
 * reference counting on bounded counters (Fig. 10), linked-list
 * enqueues/dequeues (Fig. 12), ordered puts (Fig. 13), and top-K
 * insertions (Fig. 14). Each returns statistics plus host-validated
 * functional results.
 */

#ifndef COMMTM_APPS_MICRO_H
#define COMMTM_APPS_MICRO_H

#include <cstdint>

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct MicroResult {
    StatsSnapshot stats;
    bool valid = false;
    /** What "valid" checked, for diagnostics. */
    int64_t observed = 0;
    int64_t expected = 0;

    Cycle cycles() const { return stats.runtimeCycles(); }
};

/** Fig. 9: @p total_ops increments of one shared counter. */
MicroResult runCounterMicro(const MachineConfig &cfg, uint32_t threads,
                            uint64_t total_ops);

/**
 * Fig. 10: reference counting. Threads acquire/release @p total_ops
 * references over @p objects bounded counters; each thread starts with
 * three references per object and holds at most ten; the probability of
 * acquiring decreases linearly with references held (Sec. VI).
 */
MicroResult runRefcountMicro(const MachineConfig &cfg, uint32_t threads,
                             uint64_t total_ops, uint32_t objects = 16);

/**
 * Fig. 12: linked list. @p enqueue_pct = 100 reproduces Fig. 12a;
 * 50 reproduces Fig. 12b (randomly interleaved enqueues/dequeues).
 * The baseline layout splits head/tail across lines automatically.
 *
 * @p prefill_per_thread elements are enqueued by each thread up front.
 * The paper's 10M-op mixed run builds a standing buffer (failed
 * dequeues tilt the enq/deq balance, so the list length random-walks
 * upward); scaled-down runs must seed that buffer explicitly or the
 * cold-start gather burst dominates (see docs/BENCHMARKS.md).
 */
MicroResult runListMicro(const MachineConfig &cfg, uint32_t threads,
                         uint64_t total_ops, uint32_t enqueue_pct,
                         uint32_t prefill_per_thread = 0);

/** Fig. 13: ordered puts with random 64-bit keys and values. */
MicroResult runOputMicro(const MachineConfig &cfg, uint32_t threads,
                         uint64_t total_ops);

/** Fig. 14: top-K insertion of random keys (paper: K = 1000). */
MicroResult runTopkMicro(const MachineConfig &cfg, uint32_t threads,
                         uint64_t total_ops, uint32_t k = 1000);

} // namespace commtm

#endif // COMMTM_APPS_MICRO_H
