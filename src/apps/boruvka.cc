/**
 * @file
 * boruvka: minimum spanning forest where each component's
 * minimum-weight outgoing edge is an ordered put (Table II),
 * validated against a host-side Kruskal reference.
 */

#include "apps/boruvka.h"

#include <algorithm>

#include "lib/ordered_put.h"
#include "rt/machine.h"

namespace commtm {

namespace {

/** Simulated-memory layout of the boruvka working set. */
struct BoruvkaMem {
    Addr parent;     //!< numVertices x int64 (MIN label)
    Addr minEdge;    //!< numVertices x OrderedPut::Pair (OPUT label)
    Addr edges;      //!< numEdges x {u32 u, u32 v, u64 w}
    Addr marks;      //!< numEdges x int64 (MAX label)
    Addr weight;     //!< int64 (ADD label)
    Addr roots;      //!< per-round int64 root counters (ADD label)
    Addr contFlag;   //!< int64, written by thread 0

    static constexpr uint32_t kEdgeSize = 16;
};

/** Walk parent pointers to the component root (no path compression:
 *  parents only change at unions, via MIN). */
uint32_t
find(ThreadContext &ctx, const BoruvkaMem &mem, uint32_t x)
{
    for (;;) {
        const int64_t p = ctx.read<int64_t>(mem.parent + 8 * Addr(x));
        if (ctx.txAborted())
            return x; // zeroed reads; caller's body unwinds
        if (p == int64_t(x))
            return x;
        x = uint32_t(p);
    }
}

} // namespace

BoruvkaResult
runBoruvka(const MachineConfig &machine_cfg, uint32_t threads,
           const BoruvkaConfig &cfg)
{
    const HostGraph graph = roadNetwork(cfg.numVertices, cfg.graphSeed);
    const uint32_t num_v = graph.numVertices;
    const uint32_t num_e = uint32_t(graph.edges.size());
    constexpr uint32_t kMaxRounds = 64;

    Machine m(machine_cfg);
    const Label oput = OrderedPut::defineLabel(m);
    const Label lmin = m.labels().define(labels::makeMin<int64_t>("MIN"));
    const Label lmax = m.labels().define(labels::makeMax<int64_t>("MAX"));
    const Label ladd = m.labels().define(labels::makeAdd<int64_t>("ADD"));

    BoruvkaMem mem;
    mem.parent = m.allocator().alloc(8 * Addr(num_v), kLineSize);
    mem.minEdge = m.allocator().alloc(16 * Addr(num_v), kLineSize);
    mem.edges = m.allocator().alloc(
        Addr(BoruvkaMem::kEdgeSize) * num_e, kLineSize);
    mem.marks = m.allocator().alloc(8 * Addr(num_e), kLineSize);
    mem.weight = m.allocator().allocLines(1);
    mem.roots = m.allocator().alloc(8 * kMaxRounds, kLineSize);
    mem.contFlag = m.allocator().allocLines(1);

    // Host-side initialization (before the measured parallel region).
    for (uint32_t v = 0; v < num_v; v++) {
        m.memory().write<int64_t>(mem.parent + 8 * Addr(v), v);
        OrderedPut::initCell(m, mem.minEdge + 16 * Addr(v));
    }
    for (uint32_t e = 0; e < num_e; e++) {
        const Addr rec = mem.edges + Addr(BoruvkaMem::kEdgeSize) * e;
        m.memory().write<uint32_t>(rec + 0, graph.edges[e].u);
        m.memory().write<uint32_t>(rec + 4, graph.edges[e].v);
        m.memory().write<uint64_t>(rec + 8, graph.edges[e].weight);
        m.memory().write<int64_t>(mem.marks + 8 * Addr(e),
                                  std::numeric_limits<int64_t>::lowest());
    }
    m.memory().write<int64_t>(mem.contFlag, 1);

    uint32_t rounds_done = 0;

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            const uint32_t e_lo = uint32_t(uint64_t(num_e) * t / threads);
            const uint32_t e_hi =
                uint32_t(uint64_t(num_e) * (t + 1) / threads);
            const uint32_t v_lo = uint32_t(uint64_t(num_v) * t / threads);
            const uint32_t v_hi =
                uint32_t(uint64_t(num_v) * (t + 1) / threads);
            // Thread-local dead-edge cache (a register/stack-level
            // optimization; real implementations compact edge lists).
            std::vector<bool> dead(e_hi - e_lo, false);

            for (uint32_t round = 0; round < kMaxRounds; round++) {
                // Phase A: record each component's minimum-weight edge.
                for (uint32_t e = e_lo; e < e_hi; e++) {
                    if (dead[e - e_lo])
                        continue;
                    const Addr rec =
                        mem.edges + Addr(BoruvkaMem::kEdgeSize) * e;
                    bool is_dead = false;
                    ctx.txRun([&] {
                        is_dead = false;
                        const auto u = ctx.read<uint32_t>(rec + 0);
                        const auto v = ctx.read<uint32_t>(rec + 4);
                        const auto w = ctx.read<uint64_t>(rec + 8);
                        const uint32_t cu = find(ctx, mem, u);
                        const uint32_t cv = find(ctx, mem, v);
                        if (cu == cv) {
                            is_dead = true;
                            return;
                        }
                        OrderedPut pu(mem.minEdge + 16 * Addr(cu), oput);
                        OrderedPut pv(mem.minEdge + 16 * Addr(cv), oput);
                        pu.put(ctx, int64_t(w), e);
                        pv.put(ctx, int64_t(w), e);
                        ctx.compute(8);
                    });
                    if (is_dead)
                        dead[e - e_lo] = true;
                }
                ctx.barrier();

                // Phase B: for every live root, add its minimum edge to
                // the MST and union the two components (MIN), marking
                // the edge (MAX).
                int64_t my_roots = 0;
                for (uint32_t c = v_lo; c < v_hi; c++) {
                    bool is_root = false;
                    ctx.txRun([&] {
                        is_root = false;
                        if (ctx.read<int64_t>(mem.parent + 8 * Addr(c)) !=
                            int64_t(c)) {
                            return;
                        }
                        is_root = true;
                        const Addr cell = mem.minEdge + 16 * Addr(c);
                        const auto key = ctx.read<int64_t>(cell);
                        const auto eid = ctx.read<uint64_t>(cell + 8);
                        if (key == OrderedPut::kEmptyKey)
                            return;
                        // Reset the cell for the next round.
                        ctx.write<int64_t>(cell, OrderedPut::kEmptyKey);
                        ctx.write<uint64_t>(cell + 8, 0);
                        const Addr rec = mem.edges +
                                         Addr(BoruvkaMem::kEdgeSize) * eid;
                        const auto u = ctx.read<uint32_t>(rec + 0);
                        const auto v = ctx.read<uint32_t>(rec + 4);
                        const uint32_t cu = find(ctx, mem, u);
                        const uint32_t cv = find(ctx, mem, v);
                        if (cu == cv)
                            return;
                        const uint32_t hi = std::max(cu, cv);
                        const uint32_t lo = std::min(cu, cv);
                        // Union: parents only decrease (64b MIN).
                        ctx.writeLabeled<int64_t>(
                            mem.parent + 8 * Addr(hi), lmin, lo);
                        // Mark the edge as part of the MST (64b MAX).
                        ctx.writeLabeled<int64_t>(
                            mem.marks + 8 * Addr(eid), lmax, 1);
                        ctx.compute(8);
                    });
                    if (is_root)
                        my_roots++;
                }
                // Count live roots (64b ADD) to decide termination.
                ctx.txRun([&] {
                    const Addr cell = mem.roots + 8 * Addr(round);
                    // lint: allow-tx-aborted (labeled RMW)
                    const int64_t local =
                        ctx.readLabeled<int64_t>(cell, ladd);
                    ctx.writeLabeled<int64_t>(cell, ladd,
                                              local + my_roots);
                });
                ctx.barrier();
                if (t == 0) {
                    int64_t roots = 0;
                    ctx.txRun([&] {
                        roots = ctx.read<int64_t>(mem.roots +
                                                  8 * Addr(round));
                    });
                    ctx.write<int64_t>(mem.contFlag, roots > 1 ? 1 : 0);
                    rounds_done = round + 1;
                }
                ctx.barrier();
                int64_t cont = 0;
                ctx.txRun(
                    [&] { cont = ctx.read<int64_t>(mem.contFlag); });
                if (cont == 0)
                    break;
            }

            // Weight pass: sum the weights of marked edges (64b ADD).
            int64_t local_weight = 0;
            for (uint32_t e = e_lo; e < e_hi; e++) {
                int64_t mark = 0;
                uint64_t w = 0;
                ctx.txRun([&] {
                    mark = ctx.read<int64_t>(mem.marks + 8 * Addr(e));
                    w = ctx.read<uint64_t>(
                        mem.edges + Addr(BoruvkaMem::kEdgeSize) * e + 8);
                });
                if (mark > 0)
                    local_weight += int64_t(w);
            }
            ctx.txRun([&] {
                // lint: allow-tx-aborted (labeled RMW)
                const int64_t cur =
                    ctx.readLabeled<int64_t>(mem.weight, ladd);
                ctx.writeLabeled<int64_t>(mem.weight, ladd,
                                          cur + local_weight);
            });
        });
    }

    m.run();

    BoruvkaResult result;
    result.stats = m.stats();
    const LineData wline =
        m.memSys().debugReducedValue(lineAddr(mem.weight));
    int64_t weight;
    std::memcpy(&weight, wline.data() + lineOffset(mem.weight),
                sizeof(weight));
    result.mstWeight = uint64_t(weight);
    result.referenceWeight = kruskalMstWeight(graph);
    result.rounds = rounds_done;
    return result;
}

} // namespace commtm
