/**
 * @file
 * genome: gene-sequence assembly (STAMP-style port). Phase 1
 * deduplicates DNA segments by inserting them into a resizable hash set
 * whose remaining-space counter is a bounded commutative counter with
 * gather support (Blundell-style tables, as compiled in the paper,
 * Sec. VII / Table II); phase 2 links overlapping unique segments;
 * phase 3 walks the assembled chain.
 *
 * On a conventional HTM every insert serializes on the remaining-space
 * counter; CommTM with gathers keeps the decrements local (the paper
 * reports 3.0x at 128 threads).
 */

#ifndef COMMTM_APPS_GENOME_H
#define COMMTM_APPS_GENOME_H

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct GenomeConfig {
    uint32_t genomeLength = 16384; //!< distinct segment start positions
    uint32_t segmentLength = 64;
    uint32_t numSegments = 32768;  //!< sampled with duplicates
    uint64_t seed = 23;
};

struct GenomeResult {
    StatsSnapshot stats;
    uint64_t uniqueSegments = 0;    //!< hash-set size after phase 1
    uint64_t expectedUnique = 0;    //!< host-side reference
    uint64_t linkedSegments = 0;    //!< phase-2 overlap links
    uint64_t expectedLinked = 0;    //!< host-side reference
    uint64_t tableResizes = 0;

    bool
    valid() const
    {
        return uniqueSegments == expectedUnique &&
               linkedSegments == expectedLinked;
    }
};

GenomeResult runGenome(const MachineConfig &machine_cfg, uint32_t threads,
                       const GenomeConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_GENOME_H
