/**
 * @file
 * intruder: network-intrusion detection (STAMP-style port). Packet
 * fragments stream through a shared FIFO work queue; worker threads
 * pull fragments, reassemble flows in a shared hash map, and run
 * signature detection on completed flows. The queue descriptor is the
 * contended structure: on a conventional HTM every enqueue/dequeue
 * serializes on it, while CommTM keeps per-core partial queues and
 * moves whole chunks between consumers with gathers (CommQueue).
 */

#ifndef COMMTM_APPS_INTRUDER_H
#define COMMTM_APPS_INTRUDER_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct IntruderConfig {
    uint32_t numFlows = 512;  //!< flows in the captured stream
    uint32_t maxFrags = 8;    //!< fragments per flow in [1, maxFrags]
    uint32_t attackPct = 10;  //!< fraction of flows carrying a signature
    uint32_t detectCost = 96; //!< detection work per completed flow
    uint64_t seed = 7;
};

struct IntruderResult {
    StatsSnapshot stats;
    uint64_t fragmentsSent = 0;
    uint64_t fragmentsProcessed = 0;
    uint64_t flowsCompleted = 0;
    uint64_t expectedFlows = 0;
    int64_t attacksDetected = 0;  //!< simulated commutative counter
    int64_t attacksFlagged = 0;   //!< host tally of detection hits
    int64_t expectedAttacks = 0;  //!< host-side reference
    uint64_t queueLeftover = 0;   //!< fragments left enqueued (must be 0)
    /** Serialized commit log (empty unless recording was enabled);
     *  determinism tests diff it across same-seed runs. */
    std::vector<uint8_t> commitLog;

    bool
    valid() const
    {
        // attacksDetected (the simulated ADD counter) and
        // attacksFlagged (host tallies of the same events) must both
        // match the reference: a divergence between the two is a
        // counter-machinery bug, not a workload bug.
        return fragmentsProcessed == fragmentsSent &&
               flowsCompleted == expectedFlows &&
               attacksDetected == expectedAttacks &&
               attacksFlagged == expectedAttacks && queueLeftover == 0;
    }
};

IntruderResult runIntruder(const MachineConfig &machine_cfg,
                           uint32_t threads, const IntruderConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_INTRUDER_H
