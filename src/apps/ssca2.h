/**
 * @file
 * ssca2: kernel 1 (graph construction) of the SSCA2 benchmark
 * (STAMP-style port). Transactions are tiny — append one directed edge
 * to a vertex's adjacency chunk — and touch shared, global graph
 * metadata (32b ADD) only rarely, so commutativity barely matters:
 * the paper reports a 0.2% gain (Fig. 16c), and this port preserves
 * that profile.
 */

#ifndef COMMTM_APPS_SSCA2_H
#define COMMTM_APPS_SSCA2_H

#include "apps/graph.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct Ssca2Config {
    uint32_t scale = 11;      //!< 2^scale vertices (paper: -s16, scaled)
    uint32_t edgeFactor = 8;  //!< edges per vertex
    uint64_t seed = 17;
    /** Update global metadata every this many edges (rare, as in the
     *  original: ssca2's labeled-instruction fraction is ~6e-7). */
    uint32_t metadataPeriod = 1024;
};

struct Ssca2Result {
    StatsSnapshot stats;
    uint64_t edgesInserted = 0;
    uint64_t degreeSum = 0;     //!< sum of constructed degrees
    int64_t metadataCount = 0;  //!< global counter (commutative ADD)

    bool
    valid() const
    {
        return degreeSum == edgesInserted;
    }
};

Ssca2Result runSsca2(const MachineConfig &machine_cfg, uint32_t threads,
                     const Ssca2Config &cfg);

} // namespace commtm

#endif // COMMTM_APPS_SSCA2_H
