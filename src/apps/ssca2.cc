/**
 * @file
 * ssca2: graph kernel building an adjacency structure (STAMP-derived,
 * Table II). Shared commutative updates are rare; serves as the
 * control case where CommTM must simply not hurt.
 */

#include "apps/ssca2.h"

#include <vector>

#include "rt/machine.h"

namespace commtm {

Ssca2Result
runSsca2(const MachineConfig &machine_cfg, uint32_t threads,
         const Ssca2Config &cfg)
{
    const HostGraph graph = rmat(cfg.scale, cfg.edgeFactor, cfg.seed);
    const uint32_t num_v = graph.numVertices;
    const uint32_t num_e = uint32_t(graph.edges.size());

    Machine m(machine_cfg);
    const Label i_add =
        m.labels().define(labels::makeAdd<int32_t>("ADD32"));

    const Addr edges = m.allocator().alloc(8 * Addr(num_e), kLineSize);
    const Addr deg = m.allocator().alloc(4 * Addr(num_v), kLineSize);
    const Addr base = m.allocator().alloc(4 * Addr(num_v), kLineSize);
    const Addr fill = m.allocator().alloc(4 * Addr(num_v), kLineSize);
    const Addr adj = m.allocator().alloc(4 * Addr(num_e), kLineSize);
    const Addr metadata = m.allocator().allocLines(1);

    for (uint32_t e = 0; e < num_e; e++) {
        m.memory().write<uint32_t>(edges + 8 * Addr(e), graph.edges[e].u);
        m.memory().write<uint32_t>(edges + 8 * Addr(e) + 4,
                                   graph.edges[e].v);
    }

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            const uint32_t lo = uint32_t(uint64_t(num_e) * t / threads);
            const uint32_t hi =
                uint32_t(uint64_t(num_e) * (t + 1) / threads);

            // Pass 1: degree counting; rare global-metadata updates.
            for (uint32_t e = lo; e < hi; e++) {
                ctx.txRun([&] {
                    const auto u = ctx.read<uint32_t>(edges + 8 * Addr(e));
                    const Addr cell = deg + 4 * Addr(u);
                    ctx.write<int32_t>(cell,
                                       ctx.read<int32_t>(cell) + 1);
                    if (e % cfg.metadataPeriod == 0) {
                        const int32_t md =
                            ctx.readLabeled<int32_t>(metadata, i_add);
                        ctx.writeLabeled<int32_t>(metadata, i_add,
                                                  md + 1);
                    }
                    ctx.compute(4);
                });
            }
            ctx.barrier();

            // Prefix sums (thread 0; small fraction of the runtime).
            if (t == 0) {
                int32_t running = 0;
                std::vector<int32_t> degs(num_v);
                ctx.readBytes(deg, degs.data(), 4 * size_t(num_v));
                std::vector<int32_t> bases(num_v);
                for (uint32_t v = 0; v < num_v; v++) {
                    bases[v] = running;
                    running += degs[v];
                }
                ctx.writeBytes(base, bases.data(), 4 * size_t(num_v));
                ctx.compute(num_v);
            }
            ctx.barrier();

            // Pass 2: fill adjacency arrays.
            for (uint32_t e = lo; e < hi; e++) {
                ctx.txRun([&] {
                    const auto u = ctx.read<uint32_t>(edges + 8 * Addr(e));
                    const auto v =
                        ctx.read<uint32_t>(edges + 8 * Addr(e) + 4);
                    const Addr fcell = fill + 4 * Addr(u);
                    const int32_t idx = ctx.read<int32_t>(fcell);
                    ctx.write<int32_t>(fcell, idx + 1);
                    const int32_t b =
                        ctx.read<int32_t>(base + 4 * Addr(u));
                    if (ctx.txAborted())
                        return; // b/idx are garbage; txRun retries
                    ctx.write<uint32_t>(adj + 4 * (Addr(b) + idx), v);
                    ctx.compute(4);
                });
            }
        });
    }

    m.run();

    Ssca2Result result;
    result.stats = m.stats();
    result.edgesInserted = num_e;
    for (uint32_t v = 0; v < num_v; v++) {
        result.degreeSum += uint64_t(
            m.memory().read<int32_t>(deg + 4 * Addr(v)));
    }
    const LineData mdline =
        m.memSys().debugReducedValue(lineAddr(metadata));
    int32_t md;
    std::memcpy(&md, mdline.data() + lineOffset(metadata), sizeof(md));
    result.metadataCount = md;
    return result;
}

} // namespace commtm
