/**
 * @file
 * vacation: travel-reservation database (STAMP-style port). Tables of
 * cars, rooms, and flights plus a customer table, all resizable hash
 * maps with bounded remaining-space counters (Table II). User
 * transactions query several items and reserve the cheapest; admin
 * transactions add/remove rows and customers, driving table inserts.
 */

#ifndef COMMTM_APPS_VACATION_H
#define COMMTM_APPS_VACATION_H

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct VacationConfig {
    uint32_t relations = 4096; //!< rows per table (paper: -r32768)
    uint32_t numTasks = 8192;  //!< client transactions (-t8192)
    uint32_t queriesPerTask = 4; //!< -n4
    uint32_t queryRangePct = 60; //!< -q60: % of rows queried
    uint32_t userPct = 90;       //!< -u90: % user (reserve) tasks
    uint64_t seed = 31;
};

struct VacationResult {
    StatsSnapshot stats;
    int64_t reservationsMade = 0;
    int64_t unitsSold = 0;       //!< total "free" decrements
    int64_t initialFree = 0;
    int64_t finalFree = 0;
    uint64_t customerCount = 0;

    /** Conservation: units sold == free units consumed. */
    bool
    valid() const
    {
        return finalFree + unitsSold == initialFree &&
               reservationsMade == unitsSold;
    }
};

VacationResult runVacation(const MachineConfig &machine_cfg,
                           uint32_t threads, const VacationConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_VACATION_H
