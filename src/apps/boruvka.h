/**
 * @file
 * boruvka: parallel minimum-spanning-tree via Boruvka's algorithm
 * (implemented from scratch, as in the paper, Sec. VII / Table II).
 *
 * Commutative operations used:
 *  - OPUT (64b-key ordered put): record the minimum-weight edge leaving
 *    each component.
 *  - MIN (64b): union two components (parent pointers only decrease).
 *  - MAX (64b): mark edges added to the MST (idempotent).
 *  - ADD (64b): accumulate the MST weight and live-root counts.
 */

#ifndef COMMTM_APPS_BORUVKA_H
#define COMMTM_APPS_BORUVKA_H

#include "apps/graph.h"
#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct BoruvkaConfig {
    uint32_t numVertices = 4096;
    uint64_t graphSeed = 42;
};

struct BoruvkaResult {
    StatsSnapshot stats;
    uint64_t mstWeight = 0;
    uint64_t referenceWeight = 0; //!< Kruskal, host-side
    uint32_t rounds = 0;

    bool valid() const { return mstWeight == referenceWeight; }
};

/** Build a machine with @p machine_cfg, run boruvka on @p threads. */
BoruvkaResult runBoruvka(const MachineConfig &machine_cfg,
                         uint32_t threads, const BoruvkaConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_BORUVKA_H
