/**
 * @file
 * labyrinth implementation: deterministic L-shaped routing over a
 * GridClaim table. Each task tries the horizontal-first bend, then the
 * vertical-first bend; a route succeeds when claimPath takes every
 * cell all-or-nothing.
 */

#include "apps/labyrinth.h"

#include <algorithm>
#include <set>
#include <vector>

#include "lib/comm_queue.h"
#include "lib/grid_claim.h"
#include "rt/machine.h"

namespace commtm {

namespace {

struct Endpoints {
    uint32_t x0, y0, x1, y1;
};

/** Cells of an L-shaped route; the corner cell appears once. */
std::vector<uint32_t>
bendCells(const Endpoints &e, uint32_t width, bool horizontal_first)
{
    std::vector<uint32_t> cells;
    const auto push = [&](uint32_t x, uint32_t y) {
        cells.push_back(y * width + x);
    };
    const auto step = [](uint32_t from, uint32_t to) {
        return from < to ? 1 : -1;
    };
    if (horizontal_first) {
        for (uint32_t x = e.x0; x != e.x1; x += step(e.x0, e.x1))
            push(x, e.y0);
        for (uint32_t y = e.y0; y != e.y1; y += step(e.y0, e.y1))
            push(e.x1, y);
    } else {
        for (uint32_t y = e.y0; y != e.y1; y += step(e.y0, e.y1))
            push(e.x0, y);
        for (uint32_t x = e.x0; x != e.x1; x += step(e.x0, e.x1))
            push(x, e.y1);
    }
    push(e.x1, e.y1);
    return cells;
}

} // namespace

LabyrinthResult
runLabyrinth(const MachineConfig &machine_cfg, uint32_t threads,
             const LabyrinthConfig &cfg)
{
    // Host-side task list: endpoint pairs, distinct per task.
    Rng host_rng(cfg.seed);
    std::vector<Endpoints> tasks(cfg.numPaths);
    const auto displace = [&](uint32_t from, uint32_t extent) {
        if (cfg.maxDisp == 0)
            return uint32_t(host_rng.below(extent));
        const int64_t span = 2 * int64_t(cfg.maxDisp) + 1;
        int64_t to = int64_t(from) +
                     int64_t(host_rng.below(uint64_t(span))) -
                     cfg.maxDisp;
        to = std::max<int64_t>(0, std::min<int64_t>(extent - 1, to));
        return uint32_t(to);
    };
    for (auto &e : tasks) {
        do {
            e.x0 = uint32_t(host_rng.below(cfg.width));
            e.y0 = uint32_t(host_rng.below(cfg.height));
            e.x1 = displace(e.x0, cfg.width);
            e.y1 = displace(e.y0, cfg.height);
        } while (e.x0 == e.x1 && e.y0 == e.y1);
    }

    Machine m(machine_cfg);
    const Label grid_label = GridClaim::defineLabel(m);
    const Label queue_label = CommQueue::defineLabel(m);
    GridClaim grid(m, grid_label, cfg.width, cfg.height);
    // Routing tasks are distributed through a shared worklist, as in
    // STAMP's labyrinth: on a conventional HTM the queue serializes
    // task distribution on top of the claim conflicts, while CommTM
    // keeps per-core partial queues and steals whole chunks.
    CommQueue tasks_q(m, queue_label,
                      machine_cfg.mode == SystemMode::BaselineHtm);

    std::vector<uint64_t> routed(threads, 0), failed(threads, 0);
    std::vector<std::vector<uint32_t>> claimed(threads);

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            const uint32_t lo =
                uint32_t(uint64_t(cfg.numPaths) * t / threads);
            const uint32_t hi =
                uint32_t(uint64_t(cfg.numPaths) * (t + 1) / threads);
            for (uint32_t p = lo; p < hi; p++)
                tasks_q.enqueue(ctx, p);
            ctx.barrier();

            // Route until the worklist runs dry. No task spawns new
            // tasks, so a worker that cannot steal work retires; its
            // own local list always satisfies its next tryDequeue, so
            // no enqueued task is ever stranded.
            constexpr uint32_t kIdlePolls = 4;
            uint32_t idle = 0;
            uint64_t task;
            while (idle < kIdlePolls) {
                if (!tasks_q.tryDequeue(ctx, &task)) {
                    idle++;
                    ctx.compute(Cycle(64) << std::min(idle, 6u));
                    continue;
                }
                idle = 0;
                const auto p = uint32_t(task);
                bool ok = false;
                for (int attempt = 0; attempt < 2 && !ok; attempt++) {
                    const std::vector<uint32_t> cells = bendCells(
                        tasks[p], cfg.width, attempt == 0);
                    // Maze expansion over the candidate route (grid
                    // copy + Lee's algorithm in the original; modeled
                    // as per-cell compute here).
                    ctx.compute(cfg.routeCostPerCell *
                                uint64_t(cells.size()));
                    if (grid.claimPath(ctx, cells)) {
                        ok = true;
                        claimed[t].insert(claimed[t].end(),
                                          cells.begin(), cells.end());
                    }
                    // The two bends coincide on straight routes; do
                    // not retry the identical cell set.
                    if (tasks[p].x0 == tasks[p].x1 ||
                        tasks[p].y0 == tasks[p].y1) {
                        break;
                    }
                }
                if (ok)
                    routed[t]++;
                else
                    failed[t]++;
            }
        });
    }

    m.run();
    assert(tasks_q.peekSize(m) == 0 && "stranded routing tasks");

    LabyrinthResult result;
    result.stats = m.stats();
    result.numPathsTotal = cfg.numPaths;
    std::set<uint32_t> all_claimed;
    for (uint32_t t = 0; t < threads; t++) {
        result.pathsRouted += routed[t];
        result.pathsFailed += failed[t];
        result.cellsClaimed += claimed[t].size();
        for (uint32_t c : claimed[t]) {
            if (!all_claimed.insert(c).second)
                result.overlapFree = false;
        }
    }
    result.tokensConsumed =
        uint64_t(grid.numCells()) * grid.capacity() -
        grid.peekTokens(m);
    if (m.commitLog())
        result.commitLog = m.commitLog()->serialize();
    return result;
}

} // namespace commtm
