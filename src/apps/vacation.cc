/**
 * @file
 * vacation: travel-reservation database over resizable hash tables
 * (STAMP-derived, Table II). Uses gathers via the tables'
 * remaining-space counters.
 */

#include "apps/vacation.h"

#include <vector>

#include "lib/hash_table.h"
#include "rt/machine.h"

namespace commtm {

namespace {

constexpr uint64_t
pack(uint32_t free, uint32_t price)
{
    return (uint64_t(price) << 32) | free;
}

constexpr uint32_t
freeOf(uint64_t value)
{
    return uint32_t(value & 0xffffffffu);
}

constexpr uint32_t
priceOf(uint64_t value)
{
    return uint32_t(value >> 32);
}

} // namespace

VacationResult
runVacation(const MachineConfig &machine_cfg, uint32_t threads,
            const VacationConfig &cfg)
{
    constexpr uint32_t kInitialFreePerItem = 100;
    constexpr uint32_t kNumTables = 3; // cars, rooms, flights

    Machine m(machine_cfg);
    const Label bounded = BoundedCounter::defineLabel(m);
    std::vector<std::unique_ptr<ResizableHashMap>> tables;
    for (uint32_t i = 0; i < kNumTables; i++) {
        tables.push_back(std::make_unique<ResizableHashMap>(
            m, bounded, 1024, 1.5));
    }
    ResizableHashMap customers(m, bounded, 256, 1.5);

    // Populate the relations host-side via a setup thread would be
    // costly; instead run a short single-threaded simulated setup?
    // No: tables need transactional inserts for their counters, so
    // populate through a setup pass executed by the threads before a
    // barrier, excluded from nothing (the paper measures the whole
    // parallel region; setup is a small fraction of tasks).
    Rng host_rng(cfg.seed);
    std::vector<uint32_t> prices(size_t(cfg.relations) * kNumTables);
    for (auto &p : prices)
        p = 50 + uint32_t(host_rng.below(450));

    // Host-side tallies, per thread (merged after the run).
    std::vector<int64_t> reservations(threads, 0), sold(threads, 0);
    std::vector<std::vector<uint64_t>> added_ids(threads);

    const uint32_t query_range =
        std::max(1u, cfg.relations * cfg.queryRangePct / 100);
    const uint32_t customer_domain = std::max(1u, cfg.numTasks / 4);

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            // Setup: threads partition the initial row inserts.
            const uint32_t r_lo =
                uint32_t(uint64_t(cfg.relations) * t / threads);
            const uint32_t r_hi =
                uint32_t(uint64_t(cfg.relations) * (t + 1) / threads);
            for (uint32_t tab = 0; tab < kNumTables; tab++) {
                for (uint32_t r = r_lo; r < r_hi; r++) {
                    tables[tab]->insert(
                        ctx, r + 1,
                        pack(kInitialFreePerItem,
                             prices[size_t(tab) * cfg.relations + r]));
                }
            }
            ctx.barrier();

            const uint32_t task_lo =
                uint32_t(uint64_t(cfg.numTasks) * t / threads);
            const uint32_t task_hi =
                uint32_t(uint64_t(cfg.numTasks) * (t + 1) / threads);
            Rng &rng = ctx.rng();

            for (uint32_t task = task_lo; task < task_hi; task++) {
                const uint32_t action = uint32_t(rng.below(100));
                if (action < cfg.userPct) {
                    // User task: query items, reserve the cheapest
                    // available, record it on the customer.
                    const uint32_t tab = uint32_t(rng.below(kNumTables));
                    uint64_t best_id = 0;
                    uint32_t best_price = ~0u;
                    for (uint32_t q = 0; q < cfg.queriesPerTask; q++) {
                        const uint64_t id = 1 + rng.below(query_range);
                        uint64_t value = 0;
                        if (tables[tab]->lookup(ctx, id, &value) &&
                            freeOf(value) > 0 &&
                            priceOf(value) < best_price) {
                            best_price = priceOf(value);
                            best_id = id;
                        }
                        ctx.compute(16);
                    }
                    if (best_id == 0)
                        continue;
                    // Reserve one unit if still available (atomic RMW).
                    const bool got = tables[tab]->updateWith(
                        ctx, best_id, [](uint64_t &v) {
                            if (freeOf(v) == 0)
                                return false;
                            v = pack(freeOf(v) - 1, priceOf(v));
                            return true;
                        });
                    if (!got)
                        continue;
                    sold[t]++;
                    reservations[t]++;
                    // Record on the customer: insert or bump the count.
                    const uint64_t cust =
                        1 + rng.below(customer_domain);
                    if (!customers.insert(ctx, cust, 1)) {
                        customers.updateWith(ctx, cust, [](uint64_t &v) {
                            v++;
                            return true;
                        });
                    }
                } else if (action < cfg.userPct + 5) {
                    // Admin: delete a customer record.
                    const uint64_t cust =
                        1 + rng.below(customer_domain);
                    customers.erase(ctx, cust);
                } else {
                    // Admin: add a fresh row to a random table.
                    const uint32_t tab = uint32_t(rng.below(kNumTables));
                    const uint64_t id = cfg.relations + 1 +
                                        uint64_t(t) * cfg.numTasks + task;
                    if (tables[tab]->insert(
                            ctx, id,
                            pack(kInitialFreePerItem,
                                 50 + uint32_t(rng.below(450))))) {
                        added_ids[t].push_back(
                            (uint64_t(tab) << 56) | id);
                    }
                }
                ctx.compute(32);
            }
        });
    }

    m.run();

    VacationResult result;
    result.stats = m.stats();
    for (uint32_t t = 0; t < threads; t++) {
        result.reservationsMade += reservations[t];
        result.unitsSold += sold[t];
    }
    // Conservation check: total free units at the end plus units sold
    // must equal all units ever added.
    int64_t added_free = 0;
    for (const auto &ids : added_ids)
        added_free += int64_t(ids.size()) * kInitialFreePerItem;
    result.initialFree =
        int64_t(kNumTables) * cfg.relations * kInitialFreePerItem +
        added_free;
    int64_t final_free = 0;
    for (uint32_t tab = 0; tab < kNumTables; tab++) {
        for (uint64_t id = 1; id <= cfg.relations; id++) {
            uint64_t value = 0;
            if (tables[tab]->peekLookup(m, id, &value))
                final_free += freeOf(value);
        }
    }
    for (uint32_t t = 0; t < threads; t++) {
        for (uint64_t tagged : added_ids[t]) {
            const uint32_t tab = uint32_t(tagged >> 56);
            const uint64_t id = tagged & 0x00ffffffffffffffull;
            uint64_t value = 0;
            if (tables[tab]->peekLookup(m, id, &value))
                final_free += freeOf(value);
        }
    }
    result.finalFree = final_free;
    result.customerCount = customers.peekSize(m);
    return result;
}

} // namespace commtm
