/**
 * @file
 * kmeans: clustering with commutative FP-ADD centroid accumulations
 * (STAMP-derived, Table II) — the paper's strongest result.
 */

#include "apps/kmeans.h"

#include <cmath>
#include <vector>

#include "rt/machine.h"
#include "sim/rng.h"

namespace commtm {

KmeansResult
runKmeans(const MachineConfig &machine_cfg, uint32_t threads,
          const KmeansConfig &cfg)
{
    const uint32_t n = cfg.numPoints, d = cfg.dims, k = cfg.clusters;
    const Addr row_bytes =
        ((4 * Addr(d) + kLineSize - 1) / kLineSize) *
        kLineSize; // line-padded accumulator row

    Machine m(machine_cfg);
    const Label fp_add =
        m.labels().define(labels::makeAdd<float>("FP_ADD"));
    const Label i_add =
        m.labels().define(labels::makeAdd<int32_t>("ADD32"));
    const Label c_add =
        m.labels().define(labels::makeAdd<int64_t>("ADD64"));

    // Layout: points (read-only), centroids (rewritten per iteration),
    // new-center accumulators + populations (commutative), membership.
    const Addr points = m.allocator().alloc(4 * Addr(n) * d, kLineSize);
    const Addr centroids =
        m.allocator().alloc(4 * Addr(k) * d, kLineSize);
    const Addr accum = m.allocator().alloc(row_bytes * k, kLineSize);
    const Addr pops = m.allocator().alloc(4 * Addr(k), kLineSize);
    const Addr membership = m.allocator().alloc(4 * Addr(n), kLineSize);
    const Addr changes = m.allocator().alloc(8 * cfg.maxIters, kLineSize);
    const Addr cont_flag = m.allocator().allocLines(1);

    // Host-side input generation and initialization.
    Rng rng(cfg.seed);
    std::vector<float> host_points(size_t(n) * d);
    for (auto &x : host_points)
        x = float(rng.uniform() * 100.0);
    for (uint32_t p = 0; p < n; p++) {
        for (uint32_t j = 0; j < d; j++) {
            m.memory().write<float>(points + 4 * (Addr(p) * d + j),
                                    host_points[size_t(p) * d + j]);
        }
    }
    for (uint32_t c = 0; c < k; c++) {
        for (uint32_t j = 0; j < d; j++) {
            // Initial centroids: the first k points (STAMP convention).
            m.memory().write<float>(centroids + 4 * (Addr(c) * d + j),
                                    host_points[size_t(c) * d + j]);
        }
    }
    for (uint32_t p = 0; p < n; p++)
        m.memory().write<int32_t>(membership + 4 * Addr(p), -1);
    m.memory().write<int64_t>(cont_flag, 1);

    uint32_t iters_done = 0;

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            const uint32_t lo = uint32_t(uint64_t(n) * t / threads);
            const uint32_t hi = uint32_t(uint64_t(n) * (t + 1) / threads);
            std::vector<float> cent(size_t(k) * d);
            std::vector<float> point(d);

            for (uint32_t iter = 0; iter < cfg.maxIters; iter++) {
                // Read the centroids once per iteration (shared,
                // read-only during the assignment phase).
                ctx.readBytes(centroids, cent.data(),
                              4 * size_t(k) * d);
                int64_t my_changes = 0;

                for (uint32_t p = lo; p < hi; p++) {
                    ctx.readBytes(points + 4 * (Addr(p) * d),
                                  point.data(), 4 * size_t(d));
                    // Nearest centroid (charged as computation).
                    uint32_t best = 0;
                    float best_dist =
                        std::numeric_limits<float>::max();
                    for (uint32_t c = 0; c < k; c++) {
                        float dist = 0;
                        for (uint32_t j = 0; j < d; j++) {
                            const float diff =
                                point[j] - cent[size_t(c) * d + j];
                            dist += diff * diff;
                        }
                        if (dist < best_dist) {
                            best_dist = dist;
                            best = c;
                        }
                    }
                    ctx.compute(3ull * k * d);

                    const int32_t prev =
                        ctx.read<int32_t>(membership + 4 * Addr(p));
                    if (prev != int32_t(best)) {
                        my_changes++;
                        ctx.write<int32_t>(membership + 4 * Addr(p),
                                           int32_t(best));
                    }

                    // The commutative transaction: accumulate the point
                    // into its cluster's new center (32b FP ADD) and
                    // population (32b ADD).
                    ctx.txRun([&] {
                        const Addr row = accum + row_bytes * best;
                        for (uint32_t j = 0; j < d; j++) {
                            if (ctx.txAborted())
                                return; // txRun retries the body
                            // lint: allow-tx-aborted (labeled RMW)
                            const float cur = ctx.readLabeled<float>(
                                row + 4 * j, fp_add);
                            ctx.writeLabeled<float>(row + 4 * j, fp_add,
                                                    cur + point[j]);
                        }
                        // lint: allow-tx-aborted (labeled RMW)
                        const int32_t pop = ctx.readLabeled<int32_t>(
                            pops + 4 * Addr(best), i_add);
                        ctx.writeLabeled<int32_t>(pops + 4 * Addr(best),
                                                  i_add, pop + 1);
                    });
                }
                // Publish this thread's membership-change count.
                ctx.txRun([&] {
                    const Addr cell = changes + 8 * Addr(iter);
                    // lint: allow-tx-aborted (labeled RMW)
                    const int64_t cur =
                        ctx.readLabeled<int64_t>(cell, c_add);
                    ctx.writeLabeled<int64_t>(cell, c_add,
                                              cur + my_changes);
                });
                ctx.barrier();

                if (t == 0) {
                    // Recompute centroids from the accumulators; the
                    // conventional reads trigger the reductions.
                    int64_t total_changes = 0;
                    ctx.txRun([&] {
                        total_changes =
                            ctx.read<int64_t>(changes + 8 * Addr(iter));
                    });
                    iters_done = iter + 1;
                    const bool go =
                        double(total_changes) / double(n) > cfg.threshold &&
                        iter + 1 < cfg.maxIters;
                    for (uint32_t c = 0; c < k; c++) {
                        int32_t pop = 0;
                        ctx.txRun([&] {
                            pop = ctx.read<int32_t>(pops + 4 * Addr(c));
                        });
                        const Addr row = accum + row_bytes * c;
                        for (uint32_t j = 0; j < d; j++) {
                            float sum = 0;
                            ctx.txRun([&] {
                                sum = ctx.read<float>(row + 4 * j);
                            });
                            if (pop > 0) {
                                ctx.write<float>(
                                    centroids + 4 * (Addr(c) * d + j),
                                    sum / float(pop));
                            }
                            ctx.write<float>(row + 4 * j, 0.0f);
                        }
                        // Keep the final iteration's populations for
                        // validation; reset them only when iterating.
                        if (go)
                            ctx.write<int32_t>(pops + 4 * Addr(c), 0);
                    }
                    ctx.write<int64_t>(cont_flag, go ? 1 : 0);
                }
                ctx.barrier();
                int64_t cont = 0;
                ctx.txRun(
                    [&] { cont = ctx.read<int64_t>(cont_flag); });
                if (cont == 0)
                    break;
            }
        });
    }

    m.run();

    KmeansResult result;
    result.stats = m.stats();
    result.iterations = iters_done;
    // Populations of the last completed iteration: if the loop ended
    // early the pops cells still hold the final iteration's counts;
    // read the committed values host-side.
    result.populations.resize(k);
    for (uint32_t c = 0; c < k; c++) {
        const Addr cell = pops + 4 * Addr(c);
        const LineData line =
            m.memSys().debugReducedValue(lineAddr(cell));
        std::memcpy(&result.populations[c],
                    line.data() + lineOffset(cell), sizeof(int32_t));
    }
    return result;
}

} // namespace commtm
