/**
 * @file
 * yada: Delaunay mesh refinement (STAMP-style port). A worklist of bad
 * elements drives the computation: refining an element reads its
 * cavity (neighboring elements), retriangulates, and pushes newly bad
 * elements back onto the worklist. The worklist is the commutative
 * structure — processing order is irrelevant — and it is both producer
 * and consumer hot: every thread enqueues into its own CommQueue
 * partial list and steals whole chunks from others via gathers only
 * when it runs dry.
 */

#ifndef COMMTM_APPS_YADA_H
#define COMMTM_APPS_YADA_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct YadaConfig {
    uint32_t initialBad = 48; //!< root elements seeded into the worklist
    uint32_t maxDepth = 5;    //!< refinement recursion bound
    uint32_t refinePct = 60;  //!< chance a refinable element splits
    uint32_t cavityCost = 64; //!< retriangulation work per element
    uint64_t seed = 5;
};

struct YadaResult {
    StatsSnapshot stats;
    uint64_t elementsProcessed = 0; //!< host tally
    uint64_t expectedElements = 0;  //!< reference refinement-tree size
    int64_t processedCounter = 0;   //!< simulated commutative counter
    int64_t minQuality = 0;         //!< simulated MIN label
    int64_t expectedMinQuality = 0;
    uint64_t duplicates = 0;        //!< elements seen already refined
    uint64_t queueLeftover = 0;
    /** Serialized commit log (empty unless recording was enabled);
     *  determinism tests diff it across same-seed runs. */
    std::vector<uint8_t> commitLog;

    bool
    valid() const
    {
        return elementsProcessed == expectedElements &&
               processedCounter == int64_t(expectedElements) &&
               minQuality == expectedMinQuality && duplicates == 0 &&
               queueLeftover == 0;
    }
};

YadaResult runYada(const MachineConfig &machine_cfg, uint32_t threads,
                   const YadaConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_YADA_H
