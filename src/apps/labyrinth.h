/**
 * @file
 * labyrinth: grid router (STAMP-style port). Each task routes a wire
 * between two endpoints on a shared grid and then claims every cell of
 * the route atomically. On a conventional HTM the claim transaction
 * conflicts with every concurrent claim that touches the same cache
 * lines (64 cells per line); GridClaim's per-cell tokens make claims
 * of different cells commute even within a line, so only true cell
 * overlaps serialize.
 */

#ifndef COMMTM_APPS_LABYRINTH_H
#define COMMTM_APPS_LABYRINTH_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct LabyrinthConfig {
    uint32_t width = 32;
    uint32_t height = 32;
    uint32_t numPaths = 128;      //!< routing tasks
    uint32_t routeCostPerCell = 8; //!< models maze-expansion work
    /** Maximum per-axis endpoint displacement. Keeps routes short so
     *  a sized input undersubscribes the grid (as STAMP's mazes do);
     *  0 means unconstrained endpoints. */
    uint32_t maxDisp = 0;
    uint64_t seed = 33;
};

struct LabyrinthResult {
    StatsSnapshot stats;
    uint64_t pathsRouted = 0;
    uint64_t pathsFailed = 0;
    uint64_t cellsClaimed = 0;   //!< host tally over successful routes
    uint64_t tokensConsumed = 0; //!< initial - final grid tokens
    bool overlapFree = true;     //!< no cell claimed by two routes
    uint64_t numPathsTotal = 0;
    /** Serialized commit log (empty unless recording was enabled);
     *  determinism tests diff it across same-seed runs. */
    std::vector<uint8_t> commitLog;

    bool
    valid() const
    {
        return pathsRouted + pathsFailed == numPathsTotal &&
               tokensConsumed == cellsClaimed && overlapFree;
    }
};

LabyrinthResult runLabyrinth(const MachineConfig &machine_cfg,
                             uint32_t threads,
                             const LabyrinthConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_LABYRINTH_H
