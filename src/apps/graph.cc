/**
 * @file
 * Host-side graph utilities shared by the graph applications:
 * generators (uniform random, RMAT-style) and reference algorithms
 * for validation.
 */

#include "apps/graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace commtm {

namespace {

/** Host-side union-find for reference computations. */
class UnionFind
{
  public:
    explicit UnionFind(uint32_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    uint32_t
    find(uint32_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    bool
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return false;
        parent_[std::max(a, b)] = std::min(a, b);
        return true;
    }

  private:
    std::vector<uint32_t> parent_;
};

} // namespace

HostGraph
roadNetwork(uint32_t num_vertices, uint64_t seed)
{
    HostGraph g;
    g.numVertices = num_vertices;
    Rng rng(seed);

    const uint32_t side =
        std::max<uint32_t>(2, uint32_t(std::sqrt(double(num_vertices))));
    // Jittered grid positions (fixed-point, 16 subunits per cell).
    std::vector<std::pair<int64_t, int64_t>> pos(num_vertices);
    for (uint32_t v = 0; v < num_vertices; v++) {
        const int64_t gx = v % side, gy = v / side;
        pos[v] = {gx * 16 + int64_t(rng.below(8)),
                  gy * 16 + int64_t(rng.below(8))};
    }
    const auto dist = [&](uint32_t a, uint32_t b) {
        const int64_t dx = pos[a].first - pos[b].first;
        const int64_t dy = pos[a].second - pos[b].second;
        return uint64_t(dx * dx + dy * dy);
    };
    const auto addEdge = [&](uint32_t u, uint32_t v) {
        if (u == v || u >= num_vertices || v >= num_vertices)
            return;
        // Weight = distance with the edge id appended for uniqueness.
        g.edges.push_back(
            Edge{u, v, (dist(u, v) << 20) | (g.edges.size() & 0xfffff)});
    };

    // Random spanning tree over a shuffled order: guarantees
    // connectivity with road-like local structure (attach to a random
    // earlier vertex that is grid-adjacent when possible).
    std::vector<uint32_t> order(num_vertices);
    std::iota(order.begin(), order.end(), 0u);
    for (uint32_t i = num_vertices - 1; i > 0; i--)
        std::swap(order[i], order[rng.below(i + 1)]);
    for (uint32_t i = 1; i < num_vertices; i++)
        addEdge(order[i], order[rng.below(i)]);

    // Grid-neighbor edges (right and down), probabilistically dropped to
    // mimic road sparsity; average degree lands around 2.5.
    for (uint32_t v = 0; v < num_vertices; v++) {
        const uint32_t gx = v % side;
        if (gx + 1 < side && v + 1 < num_vertices && rng.chance(0.45))
            addEdge(v, v + 1);
        if (v + side < num_vertices && rng.chance(0.45))
            addEdge(v, v + side);
    }
    return g;
}

HostGraph
rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed)
{
    HostGraph g;
    g.numVertices = 1u << scale;
    const uint64_t num_edges = uint64_t(g.numVertices) * edge_factor;
    Rng rng(seed);
    g.edges.reserve(num_edges);
    for (uint64_t e = 0; e < num_edges; e++) {
        uint32_t u = 0, v = 0;
        for (uint32_t bit = 0; bit < scale; bit++) {
            const double r = rng.uniform();
            // a=0.57, b=0.19, c=0.19, d=0.05
            if (r < 0.57) {
                // (0,0)
            } else if (r < 0.76) {
                v |= 1u << bit;
            } else if (r < 0.95) {
                u |= 1u << bit;
            } else {
                u |= 1u << bit;
                v |= 1u << bit;
            }
        }
        g.edges.push_back(Edge{u, v, rng.next() >> 16});
    }
    return g;
}

uint64_t
kruskalMstWeight(const HostGraph &graph)
{
    std::vector<const Edge *> sorted;
    sorted.reserve(graph.edges.size());
    for (const Edge &e : graph.edges)
        sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const Edge *a, const Edge *b) {
                  return a->weight < b->weight;
              });
    UnionFind uf(graph.numVertices);
    uint64_t weight = 0;
    for (const Edge *e : sorted) {
        if (uf.unite(e->u, e->v))
            weight += e->weight;
    }
    return weight;
}

bool
isConnected(const HostGraph &graph)
{
    UnionFind uf(graph.numVertices);
    for (const Edge &e : graph.edges)
        uf.unite(e.u, e.v);
    for (uint32_t v = 1; v < graph.numVertices; v++) {
        if (uf.find(v) != uf.find(0))
            return false;
    }
    return true;
}

} // namespace commtm
