/**
 * @file
 * kmeans: transactional k-means clustering (STAMP-style port). Each
 * point-assignment transaction commutatively adds the point's features
 * into the new-center accumulators (32b FP ADD) and bumps the cluster
 * population (32b ADD) — the paper's prime example of update-heavy
 * commutative transactions (Table II; 3.4x at 128 threads).
 */

#ifndef COMMTM_APPS_KMEANS_H
#define COMMTM_APPS_KMEANS_H

#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {

struct KmeansConfig {
    uint32_t numPoints = 4096;
    uint32_t dims = 24;     //!< paper input: random-n16384-d24-c16
    uint32_t clusters = 15; //!< -m15 -n15
    double threshold = 0.05;
    uint32_t maxIters = 8;
    uint64_t seed = 7;
};

struct KmeansResult {
    StatsSnapshot stats;
    uint32_t iterations = 0;
    /** Final per-cluster populations (must sum to numPoints). */
    std::vector<int32_t> populations;

    bool
    valid(uint32_t num_points) const
    {
        int64_t total = 0;
        for (int32_t p : populations)
            total += p;
        return total == int64_t(num_points);
    }
};

KmeansResult runKmeans(const MachineConfig &machine_cfg, uint32_t threads,
                       const KmeansConfig &cfg);

} // namespace commtm

#endif // COMMTM_APPS_KMEANS_H
