/**
 * @file
 * Microbenchmark drivers for Figs. 9-14: counter increments, reference
 * counting, list enqueue/dequeue mixes, ordered puts, and top-K
 * insertion, each with internal functional validation.
 */

#include "apps/micro.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "lib/bounded_counter.h"
#include "lib/counter.h"
#include "lib/linked_list.h"
#include "lib/ordered_put.h"
#include "lib/topk.h"
#include "rt/frontend.h"
#include "rt/machine.h"

// Every runner builds its workload as a ClosedLoopFrontend
// (rt/frontend.h) and attaches it to the machine: the same interface
// the trace ReplayFrontend implements, so captured versions of these
// workloads are drop-in substitutes (docs/ARCHITECTURE.md Sec. 11).
// Attach order equals the old direct addThread order, so behavior and
// the exact-counter baselines are unchanged.

namespace commtm {

MicroResult
runCounterMicro(const MachineConfig &cfg, uint32_t threads,
                uint64_t total_ops)
{
    Machine m(cfg);
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    ClosedLoopFrontend fe;
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = total_ops / threads +
                             (t < total_ops % threads ? 1 : 0);
        fe.add([&counter, ops](ThreadContext &ctx) {
            for (uint64_t i = 0; i < ops; i++)
                counter.add(ctx, 1);
        });
    }
    fe.attach(m);
    m.run();
    MicroResult r;
    r.stats = m.stats();
    r.observed = counter.peek(m);
    r.expected = int64_t(total_ops);
    r.valid = r.observed == r.expected;
    return r;
}

MicroResult
runRefcountMicro(const MachineConfig &cfg, uint32_t threads,
                 uint64_t total_ops, uint32_t objects)
{
    constexpr int kInitialRefs = 3;
    constexpr int kMaxRefs = 10;

    Machine m(cfg);
    const Label bounded = BoundedCounter::defineLabel(m);
    std::vector<std::unique_ptr<BoundedCounter>> counters;
    for (uint32_t o = 0; o < objects; o++) {
        counters.push_back(std::make_unique<BoundedCounter>(
            m, bounded, int64_t(kInitialRefs) * threads));
    }
    // Final held counts per thread, tallied host-side for validation.
    std::vector<int64_t> held_total(threads, 0);

    ClosedLoopFrontend fe;
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = total_ops / threads +
                             (t < total_ops % threads ? 1 : 0);
        fe.add([&, t, ops](ThreadContext &ctx) {
            std::vector<int> held(objects, kInitialRefs);
            Rng &rng = ctx.rng();
            for (uint64_t i = 0; i < ops; i++) {
                const uint32_t o = uint32_t(rng.below(objects));
                // P(acquire) falls linearly from 1.0 at 0 refs held to
                // 0.0 at kMaxRefs (Sec. VI).
                const double p_acquire =
                    1.0 - double(held[o]) / double(kMaxRefs);
                if (rng.chance(p_acquire)) {
                    counters[o]->increment(ctx);
                    held[o]++;
                } else {
                    // held[o] > 0 here, so the global count is positive
                    // and the decrement must succeed.
                    const bool ok = counters[o]->decrement(ctx);
                    assert(ok);
                    (void)ok;
                    held[o]--;
                }
                ctx.compute(8);
            }
            for (uint32_t o = 0; o < objects; o++)
                held_total[t] += held[o];
        });
    }
    fe.attach(m);
    m.run();

    MicroResult r;
    r.stats = m.stats();
    for (uint32_t o = 0; o < objects; o++)
        r.observed += counters[o]->peek(m);
    for (uint32_t t = 0; t < threads; t++)
        r.expected += held_total[t];
    r.valid = r.observed == r.expected;
    return r;
}

MicroResult
runListMicro(const MachineConfig &cfg, uint32_t threads,
             uint64_t total_ops, uint32_t enqueue_pct,
             uint32_t prefill_per_thread)
{
    Machine m(cfg);
    const Label list_label = CommList::defineLabel(m);
    CommList list(m, list_label,
                  cfg.mode == SystemMode::BaselineHtm);
    std::vector<int64_t> net(threads, 0); // enqueues minus dequeues

    ClosedLoopFrontend fe;
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = total_ops / threads +
                             (t < total_ops % threads ? 1 : 0);
        fe.add([&, t, ops](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (uint32_t i = 0; i < prefill_per_thread; i++) {
                list.enqueue(ctx, (uint64_t(t) << 32) | (1u << 30) | i);
                net[t]++;
            }
            for (uint64_t i = 0; i < ops; i++) {
                if (rng.below(100) < enqueue_pct) {
                    list.enqueue(ctx, (uint64_t(t) << 32) | i);
                    net[t]++;
                } else {
                    uint64_t value;
                    if (list.dequeue(ctx, &value))
                        net[t]--;
                }
                ctx.compute(8);
            }
        });
    }
    fe.attach(m);
    m.run();

    MicroResult r;
    r.stats = m.stats();
    r.observed = int64_t(list.peekSize(m));
    for (uint32_t t = 0; t < threads; t++)
        r.expected += net[t];
    r.valid = r.observed == r.expected;
    return r;
}

MicroResult
runOputMicro(const MachineConfig &cfg, uint32_t threads,
             uint64_t total_ops)
{
    Machine m(cfg);
    const Label oput_label = OrderedPut::defineLabel(m);
    OrderedPut cell(m, oput_label);
    std::vector<int64_t> local_min(threads, OrderedPut::kEmptyKey);

    ClosedLoopFrontend fe;
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = total_ops / threads +
                             (t < total_ops % threads ? 1 : 0);
        fe.add([&, t, ops](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (uint64_t i = 0; i < ops; i++) {
                // Random 64-bit keys (kept positive for int64 compare).
                const int64_t key = int64_t(rng.next() >> 1);
                cell.put(ctx, key, uint64_t(key) * 3);
                local_min[t] = std::min(local_min[t], key);
                ctx.compute(8);
            }
        });
    }
    fe.attach(m);
    m.run();

    MicroResult r;
    r.stats = m.stats();
    const OrderedPut::Pair final = cell.peek(m);
    r.observed = final.key;
    r.expected = OrderedPut::kEmptyKey;
    for (uint32_t t = 0; t < threads; t++)
        r.expected = std::min(r.expected, local_min[t]);
    r.valid = r.observed == r.expected &&
              (final.key == OrderedPut::kEmptyKey ||
               final.value == uint64_t(final.key) * 3);
    return r;
}

MicroResult
runTopkMicro(const MachineConfig &cfg, uint32_t threads,
             uint64_t total_ops, uint32_t k)
{
    Machine m(cfg);
    const Label topk_label = TopK::defineLabel(m, k);
    TopK set(m, topk_label, k);
    std::vector<std::vector<int64_t>> inserted(threads);

    ClosedLoopFrontend fe;
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = total_ops / threads +
                             (t < total_ops % threads ? 1 : 0);
        fe.add([&, t, ops](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (uint64_t i = 0; i < ops; i++) {
                const int64_t key = int64_t(rng.next() >> 1);
                set.insert(ctx, key);
                inserted[t].push_back(key);
                ctx.compute(8);
            }
        });
    }
    fe.attach(m);
    m.run();

    MicroResult r;
    r.stats = m.stats();
    // Host reference: the K largest of everything inserted.
    std::vector<int64_t> all;
    for (auto &v : inserted)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end(), std::greater<int64_t>());
    if (all.size() > k)
        all.resize(k);
    std::vector<int64_t> got = set.peekAll(m);
    std::sort(got.begin(), got.end(), std::greater<int64_t>());
    r.observed = int64_t(got.size());
    r.expected = int64_t(all.size());
    r.valid = got == all;
    return r;
}

} // namespace commtm
