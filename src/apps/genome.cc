/**
 * @file
 * genome: gene sequencing (STAMP-derived, Table II). Deduplicates
 * segments into a resizable hash set, then matches overlaps; the
 * set's remaining-space counter uses gathers.
 */

#include "apps/genome.h"

#include <unordered_set>
#include <vector>

#include "lib/hash_table.h"
#include "rt/machine.h"

namespace commtm {

GenomeResult
runGenome(const MachineConfig &machine_cfg, uint32_t threads,
          const GenomeConfig &cfg)
{
    // Host-side input: segment start positions sampled with duplicates
    // (a random genome has no accidental repeats, so segment content
    // identity == start position identity).
    Rng rng(cfg.seed);
    std::vector<uint64_t> segments(cfg.numSegments);
    for (auto &s : segments)
        s = rng.below(cfg.genomeLength) + 1; // keys are nonzero

    // Host-side references.
    std::unordered_set<uint64_t> unique(segments.begin(), segments.end());
    const uint32_t overlap = cfg.segmentLength / 2;
    uint64_t expected_linked = 0;
    for (uint64_t pos : unique) {
        if (unique.count(pos + overlap))
            expected_linked++;
    }

    Machine m(machine_cfg);
    const Label bounded = BoundedCounter::defineLabel(m);
    const Label l_add = m.labels().define(labels::makeAdd<int64_t>("ADD"));
    // Start small so the table resizes a few times as unique segments
    // accumulate (the Blundell-style behavior the paper compiles in).
    ResizableHashMap table(m, bounded, 256, 1.0);

    const Addr seg_arr =
        m.allocator().alloc(8 * Addr(cfg.numSegments), kLineSize);
    for (uint32_t i = 0; i < cfg.numSegments; i++)
        m.memory().write<uint64_t>(seg_arr + 8 * Addr(i), segments[i]);
    const Addr links = m.allocator().alloc(
        8 * Addr(cfg.genomeLength + cfg.segmentLength + 2), kLineSize);
    const Addr link_count = m.allocator().allocLines(1);

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            const uint32_t lo =
                uint32_t(uint64_t(cfg.numSegments) * t / threads);
            const uint32_t hi =
                uint32_t(uint64_t(cfg.numSegments) * (t + 1) / threads);

            // Phase 1: deduplicate segments. Every successful insert
            // consumes a unit of the table's remaining space (bounded
            // commutative decrement, with gathers when supported).
            std::vector<uint64_t> mine; // segments this thread dedup'd
            for (uint32_t i = lo; i < hi; i++) {
                uint64_t pos = 0;
                ctx.txRun([&] {
                    pos = ctx.read<uint64_t>(seg_arr + 8 * Addr(i));
                });
                if (table.insert(ctx, pos, pos))
                    mine.push_back(pos);
                ctx.compute(cfg.segmentLength / 8); // hashing the bases
            }
            ctx.barrier();

            // Phase 2: link segments that overlap by half a segment.
            int64_t my_links = 0;
            for (uint64_t pos : mine) {
                uint64_t succ = 0;
                if (table.lookup(ctx, pos + overlap, &succ)) {
                    ctx.txRun([&] {
                        ctx.write<uint64_t>(links + 8 * pos, succ);
                    });
                    my_links++;
                }
                ctx.compute(cfg.segmentLength / 8);
            }
            ctx.txRun([&] {
                // lint: allow-tx-aborted (labeled RMW)
                const int64_t cur =
                    ctx.readLabeled<int64_t>(link_count, l_add);
                ctx.writeLabeled<int64_t>(link_count, l_add,
                                          cur + my_links);
            });
            ctx.barrier();

            // Phase 3: walk one assembled chain (sequential tail).
            if (t == 0 && !mine.empty()) {
                uint64_t pos = mine.front();
                uint32_t steps = 0;
                while (steps < cfg.genomeLength) {
                    uint64_t next = 0;
                    ctx.txRun([&] {
                        next = ctx.read<uint64_t>(links + 8 * pos);
                    });
                    if (next == 0)
                        break;
                    pos = next;
                    steps++;
                }
            }
        });
    }

    m.run();

    GenomeResult result;
    result.stats = m.stats();
    result.uniqueSegments = table.peekSize(m);
    result.expectedUnique = unique.size();
    const LineData lcline =
        m.memSys().debugReducedValue(lineAddr(link_count));
    int64_t linked;
    std::memcpy(&linked, lcline.data() + lineOffset(link_count),
                sizeof(linked));
    result.linkedSegments = uint64_t(linked);
    result.expectedLinked = expected_linked;
    result.tableResizes = table.resizes();
    return result;
}

} // namespace commtm
