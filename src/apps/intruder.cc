/**
 * @file
 * intruder implementation: capture (enqueue fragments), reassembly
 * (shared hash map of per-flow fragment counts), detection (compute +
 * commutative attack counter). Fragment order is irrelevant — exactly
 * the semantic commutativity CommQueue exploits.
 */

#include "apps/intruder.h"

#include <algorithm>
#include <vector>

#include "lib/comm_queue.h"
#include "lib/counter.h"
#include "lib/hash_table.h"
#include "rt/machine.h"

namespace commtm {

namespace {

uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Fragment encoding: flow id, total fragments, fragment index. */
constexpr uint64_t
packFrag(uint32_t flow, uint32_t nfrags, uint32_t idx)
{
    return (uint64_t(flow) << 16) | (uint64_t(nfrags) << 8) | idx;
}

constexpr uint32_t
flowOf(uint64_t frag)
{
    return uint32_t(frag >> 16);
}

constexpr uint32_t
nfragsOf(uint64_t frag)
{
    return uint32_t((frag >> 8) & 0xff);
}

} // namespace

IntruderResult
runIntruder(const MachineConfig &machine_cfg, uint32_t threads,
            const IntruderConfig &cfg)
{
    // Host-side capture: fragment every flow, then shuffle the stream
    // (fragments of different flows interleave, as on a real link).
    assert(cfg.maxFrags >= 1 && cfg.maxFrags <= 255 &&
           "nfrags/idx must fit packFrag's 8-bit fields");
    Rng host_rng(cfg.seed);
    const auto is_attack = [&](uint32_t flow) {
        return mix(flow ^ cfg.seed) % 100 < cfg.attackPct;
    };
    std::vector<uint64_t> stream;
    int64_t expected_attacks = 0;
    for (uint32_t f = 0; f < cfg.numFlows; f++) {
        const uint32_t nfrags =
            1 + uint32_t(host_rng.below(cfg.maxFrags));
        for (uint32_t i = 0; i < nfrags; i++)
            stream.push_back(packFrag(f, nfrags, i));
        if (is_attack(f))
            expected_attacks++;
    }
    for (size_t i = stream.size(); i > 1; i--)
        std::swap(stream[i - 1], stream[host_rng.below(i)]);

    Machine m(machine_cfg);
    const Label queue_label = CommQueue::defineLabel(m);
    const Label bounded = BoundedCounter::defineLabel(m);
    const Label add = CommCounter::defineLabel(m);
    CommQueue queue(m, queue_label,
                    machine_cfg.mode == SystemMode::BaselineHtm);
    ResizableHashMap flows(m, bounded, 256, 1.5);
    CommCounter attacks(m, add);

    std::vector<uint64_t> processed(threads, 0), completed(threads, 0);
    std::vector<int64_t> flagged(threads, 0);

    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            // Capture phase: threads partition the fragment stream.
            const size_t lo = stream.size() * t / threads;
            const size_t hi = stream.size() * (t + 1) / threads;
            for (size_t i = lo; i < hi; i++)
                queue.enqueue(ctx, stream[i]);
            ctx.barrier();

            // Reassembly + detection phase: drain the queue. A failed
            // dequeue fell back to a full reduction, so it proves the
            // queue was globally empty — and this phase only consumes.
            uint64_t frag;
            while (queue.dequeue(ctx, &frag)) {
                processed[t]++;
                const uint32_t flow = flowOf(frag);
                const uint32_t nfrags = nfragsOf(frag);
                bool flow_complete = false;
                if (flows.insert(ctx, flow + 1, 1)) {
                    flow_complete = (nfrags == 1);
                } else {
                    flows.updateWith(ctx, flow + 1, [&](uint64_t &c) {
                        c++;
                        flow_complete = (c == nfrags);
                        return true;
                    });
                }
                ctx.compute(8); // header decode
                if (!flow_complete)
                    continue;
                completed[t]++;
                ctx.compute(cfg.detectCost); // signature scan
                if (is_attack(flow)) {
                    attacks.add(ctx, 1);
                    flagged[t]++;
                }
            }
        });
    }

    m.run();

    IntruderResult result;
    result.stats = m.stats();
    result.fragmentsSent = stream.size();
    result.expectedFlows = cfg.numFlows;
    result.expectedAttacks = expected_attacks;
    for (uint32_t t = 0; t < threads; t++) {
        result.fragmentsProcessed += processed[t];
        result.flowsCompleted += completed[t];
        result.attacksFlagged += flagged[t];
    }
    result.attacksDetected = attacks.peek(m);
    result.queueLeftover = queue.peekSize(m);
    if (m.commitLog())
        result.commitLog = m.commitLog()->serialize();
    return result;
}

} // namespace commtm
