/**
 * @file
 * Host-side graph generators and references for the graph applications.
 *
 * The paper's boruvka runs on `usroads` (UFL sparse matrix collection),
 * which is not redistributable here; roadNetwork() generates a synthetic
 * graph with the same character: near-planar (random geometric
 * neighbors on a 2-D grid), low average degree, guaranteed connected,
 * unique edge weights. ssca2 uses an R-MAT-style scale-free generator,
 * matching the SSCA2 specification's input.
 */

#ifndef COMMTM_APPS_GRAPH_H
#define COMMTM_APPS_GRAPH_H

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace commtm {

struct Edge {
    uint32_t u;
    uint32_t v;
    uint64_t weight; //!< unique across edges (ties broken by edge id)
};

struct HostGraph {
    uint32_t numVertices = 0;
    std::vector<Edge> edges;
};

/**
 * Road-network-like graph: vertices on a jittered sqrt(n) x sqrt(n)
 * grid, edges to a few nearest grid neighbors plus a random spanning
 * tree for connectivity. Weights are Euclidean-ish distances made
 * unique by appending the edge id.
 */
HostGraph roadNetwork(uint32_t num_vertices, uint64_t seed);

/**
 * R-MAT scale-free edge list (a=0.57 b=c=0.19 d=0.05, SSCA2-style).
 * May contain self-loops and duplicates, as the SSCA2 spec allows.
 */
HostGraph rmat(uint32_t scale, uint32_t edge_factor, uint64_t seed);

/** Reference MST weight via Kruskal (host-side validation). */
uint64_t kruskalMstWeight(const HostGraph &graph);

/** True iff the graph is connected (host-side validation). */
bool isConnected(const HostGraph &graph);

} // namespace commtm

#endif // COMMTM_APPS_GRAPH_H
