/**
 * @file
 * Bounded non-negative counter (Sec. IV): increment always commutes;
 * decrement commutes only while the counter is positive — a
 * *conditionally commutative* operation. With gather requests, a thread
 * whose local delta is zero rebalances value from other caches without
 * leaving the reducible state; without them, it falls back to a plain
 * load that triggers a full reduction.
 *
 * Use cases: reference counting (Fig. 10) and the remaining-space
 * counters of resizable hash tables (genome, vacation; Table II).
 */

#ifndef COMMTM_LIB_BOUNDED_COUNTER_H
#define COMMTM_LIB_BOUNDED_COUNTER_H

#include "rt/machine.h"

namespace commtm {

class BoundedCounter
{
  public:
    /** Define the bounded-ADD label (an ADD label with a splitter). */
    static Label defineLabel(Machine &machine);

    /**
     * @param initial starting value, written directly to simulated
     *        memory (call before the parallel region).
     */
    BoundedCounter(Machine &machine, Label label, int64_t initial = 0);

    /** Commutative increment (always succeeds). */
    void increment(ThreadContext &ctx, int64_t delta = 1);

    /**
     * Decrement by 1 if the counter is positive (paper's decrement()
     * pseudocode, Sec. IV). Runs as a (possibly nested) transaction.
     * @return true if decremented, false if the counter was zero.
     */
    bool decrement(ThreadContext &ctx);

    /** Full-value read (reduction). */
    int64_t read(ThreadContext &ctx);

    /** Untimed committed value, for host-side verification. */
    int64_t peek(Machine &machine) const;

    Addr addr() const { return addr_; }

  private:
    Machine &machine_;
    Addr addr_;
    Label label_;
};

} // namespace commtm

#endif // COMMTM_LIB_BOUNDED_COUNTER_H
