/**
 * @file
 * Singly-linked list with a reducible descriptor (Fig. 11). When element
 * order is semantically irrelevant (sets, hash-table buckets,
 * work-sharing queues), enqueues and dequeues are semantically — but not
 * strictly — commutative: each core builds a private partial list under
 * its U-state descriptor copy; a reduction concatenates partial lists; a
 * splitter donates the head element to a gathering dequeuer.
 */

#ifndef COMMTM_LIB_LINKED_LIST_H
#define COMMTM_LIB_LINKED_LIST_H

#include "rt/machine.h"

namespace commtm {

class CommList
{
  public:
    /** Define the LIST label: reduce = concatenate partial lists
     *  (Fig. 11a); split = donate the head element (Fig. 11b). */
    static Label defineLabel(Machine &machine);

    /**
     * @param baseline_layout when true, place the head and tail
     *        pointers on different cache lines (the paper's baseline
     *        allocates them apart to avoid false sharing, Sec. VI).
     *        CommTM needs both in one reducible descriptor line.
     */
    CommList(Machine &machine, Label label, bool baseline_layout = false);

    /** Append @p value (semantically commutative). */
    void enqueue(ThreadContext &ctx, uint64_t value);

    /**
     * Remove an element (local first, then gather, then reduction).
     * @return true and the value, or false if the list is empty.
     */
    bool dequeue(ThreadContext &ctx, uint64_t *out);

    /** Number of elements reachable from the committed state; untimed
     *  host-side verification helper (walks all partial lists). */
    uint64_t peekSize(Machine &machine) const;

    /** Collect all committed values (untimed verification helper). */
    std::vector<uint64_t> peekAll(Machine &machine) const;

    Addr headAddr() const { return head_; }
    Addr tailAddr() const { return tail_; }

    /** Node layout in simulated memory. */
    static constexpr uint32_t kValueOff = 0;
    static constexpr uint32_t kNextOff = 8;
    static constexpr uint32_t kNodeSize = 16;

  private:
    Addr allocNode(uint64_t hint_align = kLineSize);

    Machine &machine_;
    Addr head_; //!< address of the head pointer
    Addr tail_; //!< address of the tail pointer
    Label label_;
};

} // namespace commtm

#endif // COMMTM_LIB_LINKED_LIST_H
