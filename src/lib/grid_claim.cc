/**
 * @file
 * GridClaim implementation: token-per-cell claim table on a per-byte
 * bounded-ADD label. Claims follow the paper's conditionally-
 * commutative decrement (local check, then gather, then full-read
 * fallback, Sec. IV); multi-cell claims compensate within their own
 * transaction, so a failed path claim never commits a partial claim.
 */

#include "lib/grid_claim.h"

namespace commtm {

Label
GridClaim::defineLabel(Machine &machine)
{
    // Per-byte ADD reduction (element-wise merge of the line's 64
    // cells), but with a SPATIAL splitter: a fair per-cell fraction of
    // a 0/1 token is always zero (floor rounding, label.h), so the
    // generic ADD splitter never moves claim tokens. Instead the
    // donor hands over every second nonzero cell outright — token
    // redistribution at cell granularity. Repeated gathers partition
    // a line's cells dynamically across claimants, which is what lets
    // claims of different cells in one line proceed without any
    // coherence traffic.
    LabelInfo info;
    info.name = "GRID";
    info.identity.fill(0);
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        for (size_t i = 0; i < kLineSize; i++)
            local[i] = uint8_t(local[i] + incoming[i]);
        ctx.compute(kLineSize / 8);
    };
    info.split = [](HandlerContext &ctx, LineData &local, LineData &out,
                    uint32_t /* num_sharers */) {
        bool donate = false; // keep the first nonzero cell
        for (size_t i = 0; i < kLineSize; i++) {
            if (local[i] == 0)
                continue;
            if (donate) {
                out[i] = local[i];
                local[i] = 0;
            }
            donate = !donate;
        }
        ctx.compute(kLineSize / 8);
    };
    // Donate only from surplus: a sharer holding a single occupied
    // cell keeps it.
    info.splitProbe = [](const LineData &local, uint32_t) {
        uint32_t nonzero = 0;
        for (size_t i = 0; i < kLineSize; i++) {
            if (local[i] != 0 && ++nonzero >= 2)
                return true;
        }
        return false;
    };
    return machine.labels().define(std::move(info));
}

GridClaim::GridClaim(Machine &machine, Label label, uint32_t width,
                     uint32_t height, uint8_t capacity)
    : machine_(machine),
      base_(machine.allocator().alloc(size_t(width) * height, kLineSize)),
      label_(label), width_(width), height_(height), capacity_(capacity)
{
    for (uint32_t c = 0; c < width * height; c++)
        machine.memory().write<uint8_t>(base_ + c, capacity);
}

bool
GridClaim::claimOne(ThreadContext &ctx, uint32_t cell)
{
    assert(cell < numCells());
    const Addr a = cellAddr(cell);
    // Local tokens first: if this core's partial value is positive the
    // claim is fully commutative and conflict-free. Otherwise try to
    // gather tokens from other caches, then fall back to a plain load
    // (full reduction) to learn the true count.
    uint8_t tokens = ctx.readLabeled<uint8_t>(a, label_);
    if (tokens == 0) {
        tokens = ctx.readGather<uint8_t>(a, label_);
        if (tokens == 0) {
            tokens = ctx.read<uint8_t>(a);
            if (tokens == 0)
                return false;
        }
    }
    if (ctx.txAborted())
        return false; // tokens is garbage; the enclosing txRun retries
    ctx.writeLabeled<uint8_t>(a, label_, uint8_t(tokens - 1));
    return true;
}

void
GridClaim::releaseOne(ThreadContext &ctx, uint32_t cell)
{
    assert(cell < numCells());
    const Addr a = cellAddr(cell);
    // lint: allow-tx-aborted (labeled RMW; write dies on abort)
    const uint8_t tokens = ctx.readLabeled<uint8_t>(a, label_);
    ctx.writeLabeled<uint8_t>(a, label_, uint8_t(tokens + 1));
}

bool
GridClaim::claim(ThreadContext &ctx, uint32_t cell)
{
    bool ok = false;
    ctx.txRun([&] { ok = claimOne(ctx, cell); });
    return ok;
}

void
GridClaim::release(ThreadContext &ctx, uint32_t cell)
{
    ctx.txRun([&] { releaseOne(ctx, cell); });
}

bool
GridClaim::claimLineGroup(ThreadContext &ctx,
                          const std::vector<uint32_t> &cells, size_t lo,
                          size_t hi)
{
    // Probe the group's cells in the local copy; one gather (which
    // pulls whole donated cells, see defineLabel) if anything is
    // missing, then re-probe.
    bool all_local = true;
    for (size_t k = lo; k < hi; k++) {
        if (ctx.readLabeled<uint8_t>(cellAddr(cells[k]), label_) == 0) {
            all_local = false;
            break;
        }
    }
    if (!all_local) {
        (void)ctx.readGather<uint8_t>(cellAddr(cells[lo]), label_);
        all_local = true;
        for (size_t k = lo; k < hi; k++) {
            if (ctx.readLabeled<uint8_t>(cellAddr(cells[k]), label_) ==
                0) {
                all_local = false;
                break;
            }
        }
    }
    if (ctx.txAborted())
        return false;
    uint8_t vals[kLineSize];
    assert(hi - lo <= kLineSize);
    if (all_local) {
        // Pure commutative mode: every token is in our partial copy;
        // the decrements are labeled RMWs with no coherence traffic.
        for (size_t k = lo; k < hi; k++) {
            vals[k - lo] =
                ctx.readLabeled<uint8_t>(cellAddr(cells[k]), label_);
        }
    } else {
        // Reduced mode: learn the true values with conventional reads
        // (the first triggers a full reduction) BEFORE any write to
        // this line. Read-then-write order matters twice over: writes
        // after the reduction execute on whole-value semantics
        // (markSpec classifies them conventionally on the M line),
        // and a conventional read AFTER a labeled write to the same
        // line would self-demote the transaction (Sec. III-B4). The
        // earlier labeled probe values are stale after the reduction
        // folded our copy in, so every cell is re-read.
        for (size_t k = lo; k < hi; k++)
            vals[k - lo] = ctx.read<uint8_t>(cellAddr(cells[k]));
    }
    if (ctx.txAborted())
        return false;
    for (size_t k = lo; k < hi; k++) {
        if (vals[k - lo] == 0)
            return false; // group fails whole; nothing written yet
    }
    for (size_t k = lo; k < hi; k++) {
        ctx.writeLabeled<uint8_t>(cellAddr(cells[k]), label_,
                                  uint8_t(vals[k - lo] - 1));
    }
    return true;
}

bool
GridClaim::claimPath(ThreadContext &ctx,
                     const std::vector<uint32_t> &cells)
{
#ifndef NDEBUG
    // Precondition: same-line cells contiguous, no duplicates (see
    // header — non-contiguous line revisits would self-demote).
    for (size_t i = 0; i < cells.size(); i++) {
        for (size_t j = i + 1; j < cells.size(); j++) {
            assert(cells[i] != cells[j] && "duplicate cell in path");
            assert((lineAddr(cellAddr(cells[i])) !=
                        lineAddr(cellAddr(cells[j])) ||
                    lineAddr(cellAddr(cells[j - 1])) ==
                        lineAddr(cellAddr(cells[j]))) &&
                   "same-line cells must be contiguous");
        }
    }
#endif
    bool ok = false;
    ctx.txRun([&] {
        ok = true;
        size_t taken = 0;
        // Claim contiguous same-line runs as one group: the tokens of
        // a run arrive with at most one gather, and the whole run
        // either claims locally or reads the line's true state once.
        while (taken < cells.size()) {
            const Addr line = lineAddr(cellAddr(cells[taken]));
            size_t hi = taken;
            while (hi < cells.size() &&
                   lineAddr(cellAddr(cells[hi])) == line) {
                hi++;
            }
            if (!claimLineGroup(ctx, cells, taken, hi)) {
                ok = false;
                break;
            }
            taken = hi;
        }
        if (ctx.txAborted()) {
            ok = false;
            return; // no compensation needed; nothing will commit
        }
        if (!ok) {
            // All-or-nothing: hand back the tokens taken so far. The
            // compensating increments are in the same transaction, so
            // no partial claim is ever observable.
            for (size_t i = 0; i < taken; i++)
                releaseOne(ctx, cells[i]);
        }
    });
    return ok;
}

uint8_t
GridClaim::peekCell(Machine &machine, uint32_t cell) const
{
    const Addr a = cellAddr(cell);
    const LineData line = machine.memSys().debugReducedValue(lineAddr(a));
    return line[lineOffset(a)];
}

uint64_t
GridClaim::peekTokens(Machine &machine) const
{
    uint64_t total = 0;
    const uint32_t cells = numCells();
    for (uint32_t c = 0; c < cells;) {
        const LineData line =
            machine.memSys().debugReducedValue(lineAddr(base_ + c));
        const uint32_t in_line =
            std::min<uint32_t>(cells - c, kLineSize - lineOffset(base_ + c));
        for (uint32_t i = 0; i < in_line; i++)
            total += line[lineOffset(base_ + c) + i];
        c += in_line;
    }
    return total;
}

} // namespace commtm
