/**
 * @file
 * Bounded non-negative counter implementation: a bounded-ADD label
 * whose splitter donates a fair share of the local value, and the
 * paper's conditionally-commutative decrement (local check, then
 * gather, then full-read fallback; Sec. IV).
 */

#include "lib/bounded_counter.h"

namespace commtm {

Label
BoundedCounter::defineLabel(Machine &machine)
{
    // The splitter donates ceil(value / numSharers) of each element,
    // keeping the distribution balanced over time (Sec. IV).
    return machine.labels().define(
        labels::makeAdd<int64_t>("BOUNDED_ADD"));
}

BoundedCounter::BoundedCounter(Machine &machine, Label label,
                               int64_t initial)
    : machine_(machine),
      addr_(machine.allocator().alloc(sizeof(int64_t), sizeof(int64_t))),
      label_(label)
{
    machine.memory().write<int64_t>(addr_, initial);
}

void
BoundedCounter::increment(ThreadContext &ctx, int64_t delta)
{
    ctx.txRun([&] {
        // lint: allow-tx-aborted (labeled RMW; write dies on abort)
        const int64_t local = ctx.readLabeled<int64_t>(addr_, label_);
        ctx.writeLabeled<int64_t>(addr_, label_, local + delta);
    });
}

bool
BoundedCounter::decrement(ThreadContext &ctx)
{
    bool ok = false;
    ctx.txRun([&] {
        // If the local delta is positive, the global value must be:
        // decrement locally and commutatively.
        int64_t value = ctx.readLabeled<int64_t>(addr_, label_);
        if (value == 0) {
            // Rebalance partial values from other caches (gather); in
            // the no-gather configuration this executes as a plain load
            // and triggers a full reduction.
            value = ctx.readGather<int64_t>(addr_, label_);
            if (value == 0) {
                // Check the true global value with a conventional load.
                value = ctx.read<int64_t>(addr_);
                if (value == 0) {
                    ok = false;
                    return;
                }
            }
        }
        if (ctx.txAborted())
            return; // value is garbage; txRun retries the body
        ctx.writeLabeled<int64_t>(addr_, label_, value - 1);
        ok = true;
    });
    return ok;
}

int64_t
BoundedCounter::read(ThreadContext &ctx)
{
    int64_t value = 0;
    ctx.txRun([&] { value = ctx.read<int64_t>(addr_); });
    return value;
}

int64_t
BoundedCounter::peek(Machine &machine) const
{
    const LineData line =
        machine.memSys().debugReducedValue(lineAddr(addr_));
    int64_t value;
    std::memcpy(&value, line.data() + lineOffset(addr_), sizeof(value));
    return value;
}

} // namespace commtm
