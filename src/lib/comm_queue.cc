/**
 * @file
 * CommQueue implementation: per-core partial chunk lists under the
 * reducible descriptor, a reduction that concatenates partial lists,
 * and a splitter that donates the head chunk (up to kChunkCap elements
 * per gather) to a gathering dequeuer.
 */

#include "lib/comm_queue.h"

namespace commtm {

namespace {

struct QueueDesc {
    Addr head;
    Addr tail;
};

QueueDesc
descOf(const LineData &line)
{
    QueueDesc d;
    std::memcpy(&d, line.data(), sizeof(d));
    return d;
}

void
setDesc(LineData &line, const QueueDesc &d)
{
    std::memcpy(line.data(), &d, sizeof(d));
}

} // namespace

Label
CommQueue::defineLabel(Machine &machine)
{
    LabelInfo info;
    info.name = "QUEUE";
    info.identity.fill(0); // empty queue: head = tail = null

    // Reduction: concatenate the incoming partial chunk list onto the
    // local one. Link via a non-speculative write to the local tail
    // chunk's next pointer (same shape as CommList's Fig. 11a).
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        QueueDesc mine = descOf(local);
        const QueueDesc theirs = descOf(incoming);
        if (theirs.head == 0)
            return;
        if (mine.head == 0) {
            mine = theirs;
        } else {
            ctx.write<Addr>(mine.tail + CommQueue::kNextOff,
                            theirs.head);
            mine.tail = theirs.tail;
        }
        setDesc(local, mine);
        ctx.compute(4);
    };

    // Splitter: donate the whole head chunk. A single gather can move
    // up to kChunkCap elements, so consumer-heavy phases gather once
    // per chunk rather than once per element.
    info.split = [](HandlerContext &ctx, LineData &local, LineData &out,
                    uint32_t /* num_sharers */) {
        QueueDesc mine = descOf(local);
        if (mine.head == 0)
            return; // nothing to donate; out stays the identity
        QueueDesc donation;
        donation.head = donation.tail = mine.head;
        const Addr next =
            ctx.read<Addr>(mine.head + CommQueue::kNextOff);
        ctx.write<Addr>(mine.head + CommQueue::kNextOff, 0);
        mine.head = next;
        if (next == 0)
            mine.tail = 0;
        setDesc(local, mine);
        setDesc(out, donation);
        ctx.compute(4);
    };
    // Donate only from surplus: a sharer whose partial queue holds a
    // single chunk keeps it (its own dequeues consume it locally; the
    // tail chunk is also the one its enqueues are still filling).
    info.splitProbe = [](const LineData &local, uint32_t) {
        const QueueDesc d = descOf(local);
        return d.head != 0 && d.head != d.tail;
    };
    return machine.labels().define(std::move(info));
}

CommQueue::CommQueue(Machine &machine, Label label, bool baseline_layout)
    : machine_(machine), label_(label)
{
    if (baseline_layout) {
        // The baseline allocates head and tail on different lines to
        // avoid false sharing (as in CommList / the paper's Sec. VI).
        head_ = machine.allocator().allocLines(1);
        tail_ = machine.allocator().allocLines(1);
    } else {
        // CommTM: one reducible descriptor line holding {head, tail}.
        head_ = machine.allocator().allocLines(1);
        tail_ = head_ + 8;
    }
}

void
CommQueue::enqueue(ThreadContext &ctx, uint64_t value)
{
    ctx.txRun([&] {
        const Addr tail = ctx.readLabeled<Addr>(tail_, label_);
        uint32_t wr = 0;
        if (tail != 0)
            wr = ctx.read<uint32_t>(tail + kWrOff);
        // Cooperative unwind, and load-bearing (the TopK-style
        // address-drift hazard): an aborted attempt zeroes the reads
        // above, so tail == 0 here may be the abort sentinel, not an
        // empty queue — acting on it would host-allocate a chunk on
        // EVERY doomed attempt, even mid-chunk. (A doom that latches
        // after this check, during the initialization writes below,
        // can still orphan the one chunk a boundary attempt
        // legitimately allocated; that is rare, bounded to boundary
        // attempts, and deterministic per seed.)
        if (ctx.txAborted())
            return;
        if (tail == 0 || wr == kChunkCap) {
            // Chunk boundary: start a fresh chunk holding this value.
            const Addr chunk = machine_.allocator().allocLines(1);
            ctx.write<Addr>(chunk + kNextOff, 0);
            ctx.write<uint32_t>(chunk + kRdOff, 0);
            ctx.write<uint32_t>(chunk + kWrOff, 1);
            ctx.write<uint64_t>(chunk + kValsOff, value);
            if (tail == 0) {
                ctx.writeLabeled<Addr>(head_, label_, chunk);
            } else {
                // The old tail belongs to this core's partial list (or
                // to the global list in the baseline); link behind it.
                ctx.write<Addr>(tail + kNextOff, chunk);
            }
            ctx.writeLabeled<Addr>(tail_, label_, chunk);
        } else {
            ctx.write<uint64_t>(tail + kValsOff + 8 * Addr(wr), value);
            ctx.write<uint32_t>(tail + kWrOff, wr + 1);
        }
    });
}

bool
CommQueue::dequeueImpl(ThreadContext &ctx, uint64_t *out,
                       bool allow_reduction)
{
    bool ok = false;
    ctx.txRun([&] {
        ok = false;
        Addr head = ctx.readLabeled<Addr>(head_, label_);
        if (head == 0) {
            // Local partial list empty: gather a donated chunk.
            head = ctx.readGather<Addr>(head_, label_);
            if (head == 0) {
                if (!allow_reduction)
                    return;
                // Still empty: check the true state (full reduction).
                head = ctx.read<Addr>(head_);
                if (head == 0)
                    return;
            }
        }
        if (ctx.txAborted())
            return; // head is garbage on an aborted attempt
        const uint32_t rd = ctx.read<uint32_t>(head + kRdOff);
        const uint32_t wr = ctx.read<uint32_t>(head + kWrOff);
        if (ctx.txAborted())
            return; // rd/wr are garbage; indexing with them is UB-ish
        *out = ctx.read<uint64_t>(head + kValsOff + 8 * Addr(rd));
        if (rd + 1 == wr) {
            // Chunk drained: unlink it. Capacity the chunk never used
            // is abandoned with it (the tail pointer moves on).
            const Addr next = ctx.read<Addr>(head + kNextOff);
            ctx.writeLabeled<Addr>(head_, label_, next);
            if (next == 0)
                ctx.writeLabeled<Addr>(tail_, label_, 0);
        } else {
            ctx.write<uint32_t>(head + kRdOff, rd + 1);
        }
        ok = true;
    });
    return ok;
}

bool
CommQueue::dequeue(ThreadContext &ctx, uint64_t *out)
{
    return dequeueImpl(ctx, out, /* allow_reduction */ true);
}

bool
CommQueue::tryDequeue(ThreadContext &ctx, uint64_t *out)
{
    return dequeueImpl(ctx, out, /* allow_reduction */ false);
}

std::vector<uint64_t>
CommQueue::peekAll(Machine &machine) const
{
    std::vector<uint64_t> values;
    const auto walk = [&](Addr h) {
        while (h != 0) {
            const auto rd = machine.memory().read<uint32_t>(h + kRdOff);
            const auto wr = machine.memory().read<uint32_t>(h + kWrOff);
            for (uint32_t i = rd; i < wr; i++) {
                values.push_back(machine.memory().read<uint64_t>(
                    h + kValsOff + 8 * Addr(i)));
            }
            h = machine.memory().read<Addr>(h + kNextOff);
        }
    };
    const auto copies = machine.memSys().debugUCopies(lineAddr(head_));
    if (copies.empty()) {
        walk(machine.memory().read<Addr>(head_));
    } else {
        for (const LineData &copy : copies) {
            Addr h;
            std::memcpy(&h, copy.data() + lineOffset(head_), sizeof(h));
            walk(h);
        }
    }
    return values;
}

uint64_t
CommQueue::peekSize(Machine &machine) const
{
    return peekAll(machine).size();
}

} // namespace commtm
