/**
 * @file
 * Top-K set (Sec. VI, Fig. 15): retains the K largest elements inserted.
 * Each core builds a private top-K heap under its reducible descriptor
 * copy; a read triggers a reduction that merges all local heaps into the
 * true top-K. Insertions are semantically commutative (and, unlike
 * counters, are hard to undo — open nesting does not apply; Sec. VIII).
 */

#ifndef COMMTM_LIB_TOPK_H
#define COMMTM_LIB_TOPK_H

#include <vector>

#include "rt/machine.h"

namespace commtm {

/**
 * Top-K set of int64 keys. The descriptor line holds {heapPtr, size};
 * the heap itself is a binary min-heap array in simulated memory whose
 * root is the smallest retained element, accessed with conventional
 * loads/stores (the indirection pattern for objects larger than a
 * cache line, Sec. III-A).
 */
class TopK
{
  public:
    /** Define the TOPK label for sets of capacity @p k. The reduction
     *  merges the incoming heap's elements into the local heap. */
    static Label defineLabel(Machine &machine, uint32_t k);

    TopK(Machine &machine, Label label, uint32_t k);

    /** Insert @p key, keeping the K largest. */
    void insert(ThreadContext &ctx, int64_t key);

    /**
     * Read the retained elements (triggers a reduction), unsorted.
     * Destructive of nothing; the merged heap stays in place.
     */
    std::vector<int64_t> readAll(ThreadContext &ctx);

    /** Untimed committed contents, for host-side verification. */
    std::vector<int64_t> peekAll(Machine &machine) const;

    Addr descAddr() const { return desc_; }
    uint32_t k() const { return k_; }

    // Descriptor layout.
    static constexpr uint32_t kHeapPtrOff = 0;
    static constexpr uint32_t kSizeOff = 8;

  private:
    Machine &machine_;
    Addr desc_;
    Label label_;
    uint32_t k_;
};

} // namespace commtm

#endif // COMMTM_LIB_TOPK_H
