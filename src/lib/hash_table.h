/**
 * @file
 * Resizable chained hash table with a bounded remaining-space counter,
 * after Blundell et al.'s RETCON benchmarks (the paper compiles genome
 * and vacation with these, Sec. VII / Table II).
 *
 * Every insertion decrements the remaining-space counter — a
 * conditionally-commutative bounded decrement. On a conventional HTM the
 * counter serializes all inserts; CommTM keeps the decrements local, and
 * gather requests rebalance the remaining space between caches.
 * When the counter reaches zero, the inserting thread resizes the table
 * non-speculatively (its plain writes to the bucket array abort all
 * in-flight inserters, which retry against the new table).
 */

#ifndef COMMTM_LIB_HASH_TABLE_H
#define COMMTM_LIB_HASH_TABLE_H

#include "lib/bounded_counter.h"
#include "rt/machine.h"

namespace commtm {

/**
 * Hash map from uint64 keys to uint64 values (use value 0 / ignore the
 * value for set semantics). Duplicate keys are rejected by insert().
 */
class ResizableHashMap
{
  public:
    /**
     * @param label a bounded-ADD label (BoundedCounter::defineLabel)
     * @param initial_buckets starting bucket count (power of two)
     * @param fill_factor inserts allowed per bucket before resizing
     */
    ResizableHashMap(Machine &machine, Label label,
                     uint32_t initial_buckets = 1024,
                     double fill_factor = 2.0);

    /**
     * Insert (key, value). Returns false if the key already exists.
     * Runs as a (possibly nested) transaction; may trigger a resize.
     */
    bool insert(ThreadContext &ctx, uint64_t key, uint64_t value);

    /** Look up @p key. Returns true and the value if present. */
    bool lookup(ThreadContext &ctx, uint64_t key, uint64_t *value);

    /** Update the value of an existing key. Returns false if absent. */
    bool update(ThreadContext &ctx, uint64_t key, uint64_t value);

    /**
     * Atomic read-modify-write of @p key's value in one transaction:
     * @p fn receives the current value and returns true to store its
     * modification. Must be pure (it may re-run on aborts).
     * @return true iff the key was found and @p fn applied a change.
     */
    bool updateWith(ThreadContext &ctx, uint64_t key,
                    const std::function<bool(uint64_t &)> &fn);

    /** Remove @p key (frees its remaining-space unit). */
    bool erase(ThreadContext &ctx, uint64_t key);

    /** Number of elements (untimed host-side verification). */
    uint64_t peekSize(Machine &machine) const;

    /** Untimed host-side lookup for verification. */
    bool peekLookup(Machine &machine, uint64_t key, uint64_t *value)
        const;

    uint64_t peekBuckets(Machine &machine) const;
    uint64_t resizes() const { return resizes_; }

    // Node layout: {key, value, next}.
    static constexpr uint32_t kKeyOff = 0;
    static constexpr uint32_t kValOff = 8;
    static constexpr uint32_t kNextOff = 16;
    static constexpr uint32_t kNodeSize = 24;

  private:
    static uint64_t mix(uint64_t key);
    /** Header layout: {bucketsPtr, nBuckets}. */
    Addr bucketsPtrAddr() const { return header_; }
    Addr nBucketsAddr() const { return header_ + 8; }

    void resize(ThreadContext &ctx);

    Machine &machine_;
    Addr header_;   //!< {bucketsPtr, nBuckets} (read inside every tx)
    Addr lock_;     //!< resize lock (transactional test-and-set)
    BoundedCounter remaining_;
    double fillFactor_;
    uint64_t resizes_ = 0;
};

} // namespace commtm

#endif // COMMTM_LIB_HASH_TABLE_H
