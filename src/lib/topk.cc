/**
 * @file
 * Top-K set implementation (Fig. 15): per-core min-heaps of retained
 * elements under the reducible descriptor; the reduction merges the
 * incoming heap's elements; reads drain and rebuild the merged heap.
 */

#include "lib/topk.h"

#include <algorithm>
#include <functional>

namespace commtm {

namespace {

/**
 * Binary min-heap of int64 keys stored as a plain array in simulated
 * memory. Works through any context providing read<T>/write<T>
 * (ThreadContext inside transactions, HandlerContext in reductions).
 */
template <typename Ctx>
void
heapSiftUp(Ctx &ctx, Addr heap, uint64_t idx)
{
    while (idx > 0) {
        const uint64_t parent = (idx - 1) / 2;
        const int64_t v = ctx.template read<int64_t>(heap + 8 * idx);
        const int64_t p = ctx.template read<int64_t>(heap + 8 * parent);
        if (p <= v)
            break;
        ctx.template write<int64_t>(heap + 8 * idx, p);
        ctx.template write<int64_t>(heap + 8 * parent, v);
        idx = parent;
    }
}

template <typename Ctx>
void
heapSiftDown(Ctx &ctx, Addr heap, uint64_t size, uint64_t idx)
{
    for (;;) {
        const uint64_t left = 2 * idx + 1;
        if (left >= size)
            break;
        uint64_t child = left;
        const uint64_t right = left + 1;
        if (right < size &&
            ctx.template read<int64_t>(heap + 8 * right) <
                ctx.template read<int64_t>(heap + 8 * left)) {
            child = right;
        }
        const int64_t v = ctx.template read<int64_t>(heap + 8 * idx);
        const int64_t c = ctx.template read<int64_t>(heap + 8 * child);
        if (v <= c)
            break;
        ctx.template write<int64_t>(heap + 8 * idx, c);
        ctx.template write<int64_t>(heap + 8 * child, v);
        idx = child;
    }
}

/** Insert @p key into a heap bounded at @p k; returns the new size. */
template <typename Ctx>
uint64_t
heapBoundedInsert(Ctx &ctx, Addr heap, uint64_t size, uint64_t k,
                  int64_t key)
{
    if (size < k) {
        ctx.template write<int64_t>(heap + 8 * size, key);
        heapSiftUp(ctx, heap, size);
        return size + 1;
    }
    const int64_t min = ctx.template read<int64_t>(heap);
    if (key > min) {
        ctx.template write<int64_t>(heap, key);
        heapSiftDown(ctx, heap, size, 0);
    }
    return size;
}

struct TopKDesc {
    Addr heap;
    uint64_t size;
};

TopKDesc
descOf(const LineData &line)
{
    TopKDesc d;
    std::memcpy(&d, line.data(), sizeof(d));
    return d;
}

void
setDesc(LineData &line, const TopKDesc &d)
{
    std::memcpy(line.data(), &d, sizeof(d));
}

} // namespace

Label
TopK::defineLabel(Machine &machine, uint32_t k)
{
    LabelInfo info;
    info.name = "TOPK";
    info.identity.fill(0); // no heap, size 0

    // Reduction (Fig. 15): merge the incoming local heap into ours.
    info.reduce = [k](HandlerContext &ctx, LineData &local,
                      const LineData &incoming) {
        TopKDesc mine = descOf(local);
        const TopKDesc theirs = descOf(incoming);
        if (theirs.heap == 0 || theirs.size == 0)
            return;
        if (mine.heap == 0) {
            // Steal the incoming heap wholesale.
            setDesc(local, theirs);
            return;
        }
        for (uint64_t i = 0; i < theirs.size; i++) {
            const int64_t key =
                ctx.read<int64_t>(theirs.heap + 8 * i);
            mine.size =
                heapBoundedInsert(ctx, mine.heap, mine.size, k, key);
        }
        setDesc(local, mine);
        ctx.compute(theirs.size);
    };
    return machine.labels().define(std::move(info));
}

TopK::TopK(Machine &machine, Label label, uint32_t k)
    : machine_(machine), desc_(machine.allocator().allocLines(1)),
      label_(label), k_(k)
{
}

void
TopK::insert(ThreadContext &ctx, int64_t key)
{
    ctx.txRun([&] {
        Addr heap = ctx.readLabeled<Addr>(desc_ + kHeapPtrOff, label_);
        uint64_t size =
            ctx.readLabeled<uint64_t>(desc_ + kSizeOff, label_);
        // Cooperative unwind: an aborted attempt zeroes the reads
        // above; acting on them would host-allocate a bogus heap.
        if (ctx.txAborted())
            return;
        if (heap == 0) {
            // First insertion through this copy: allocate a local heap.
            heap = machine_.allocator().alloc(8 * k_, kLineSize);
            ctx.writeLabeled<Addr>(desc_ + kHeapPtrOff, label_, heap);
        }
        const uint64_t new_size =
            heapBoundedInsert(ctx, heap, size, k_, key);
        if (new_size != size)
            ctx.writeLabeled<uint64_t>(desc_ + kSizeOff, label_,
                                       new_size);
    });
}

std::vector<int64_t>
TopK::readAll(ThreadContext &ctx)
{
    std::vector<int64_t> keys;
    ctx.txRun([&] {
        keys.clear();
        const Addr heap = ctx.read<Addr>(desc_ + kHeapPtrOff);
        const uint64_t size = ctx.read<uint64_t>(desc_ + kSizeOff);
        if (ctx.txAborted())
            return; // retry re-reads; size/heap are garbage
        for (uint64_t i = 0; i < size; i++)
            keys.push_back(ctx.read<int64_t>(heap + 8 * i));
    });
    return keys;
}

std::vector<int64_t>
TopK::peekAll(Machine &machine) const
{
    std::vector<int64_t> keys;
    const auto drain = [&](const TopKDesc &d) {
        for (uint64_t i = 0; i < d.size; i++)
            keys.push_back(
                machine.memory().read<int64_t>(d.heap + 8 * i));
    };
    const auto copies = machine.memSys().debugUCopies(lineAddr(desc_));
    if (copies.empty()) {
        TopKDesc d;
        d.heap = machine.memory().read<Addr>(desc_ + kHeapPtrOff);
        d.size = machine.memory().read<uint64_t>(desc_ + kSizeOff);
        drain(d);
    } else {
        for (const LineData &copy : copies)
            drain(descOf(copy));
    }
    // Merging partial heaps host-side: keep only the K largest.
    std::sort(keys.begin(), keys.end(), std::greater<int64_t>());
    if (keys.size() > k_)
        keys.resize(k_);
    return keys;
}

} // namespace commtm
