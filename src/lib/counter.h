/**
 * @file
 * Shared commutative counter (Sec. III-A's running example). Increments
 * from concurrent transactions proceed locally in the U state; reads
 * trigger a reduction.
 */

#ifndef COMMTM_LIB_COUNTER_H
#define COMMTM_LIB_COUNTER_H

#include "rt/machine.h"

namespace commtm {

/**
 * A 64-bit shared counter supporting commutative add() and a
 * (non-commutative) read(). One cache line holds up to 8 counters; this
 * class allocates a line-aligned slot, so independent counters may share
 * lines safely (reductions merge identity zeros for unused slots).
 */
class CommCounter
{
  public:
    /** Define the ADD label this counter family uses. Call once per
     *  Machine, before constructing counters. */
    static Label
    defineLabel(Machine &machine)
    {
        return machine.labels().define(labels::makeAdd<int64_t>("ADD"));
    }

    CommCounter(Machine &machine, Label add_label)
        : addr_(machine.allocator().alloc(sizeof(int64_t), sizeof(int64_t))),
          label_(add_label)
    {
    }

    /** Commutatively add @p delta within a transaction. */
    void
    add(ThreadContext &ctx, int64_t delta)
    {
        ctx.annotate(kAnnotCounterAdd, uint64_t(delta));
        ctx.txRun([&] {
            const int64_t local = ctx.readLabeled<int64_t>(addr_, label_);
            ctx.writeLabeled<int64_t>(addr_, label_, local + delta);
        });
    }

    /** Read the full value (triggers a reduction if the line is in U). */
    int64_t
    read(ThreadContext &ctx)
    {
        int64_t value = 0;
        ctx.txRun([&] { value = ctx.read<int64_t>(addr_); });
        return value;
    }

    /** Untimed committed value, for host-side verification. */
    int64_t
    peek(Machine &machine) const
    {
        const LineData line = machine.memSys().debugReducedValue(
            lineAddr(addr_));
        int64_t value;
        std::memcpy(&value, line.data() + lineOffset(addr_), sizeof(value));
        return value;
    }

    Addr addr() const { return addr_; }
    Label label() const { return label_; }

  private:
    Addr addr_;
    Label label_;
};

} // namespace commtm

#endif // COMMTM_LIB_COUNTER_H
