/**
 * @file
 * Resizable chained hash table implementation: transactional
 * bucket-chain inserts/lookups, the bounded remaining-space counter,
 * and non-speculative resizing that aborts racing inserters.
 */

#include "lib/hash_table.h"

namespace commtm {

uint64_t
ResizableHashMap::mix(uint64_t key)
{
    // splitmix64 finalizer: good avalanche for sequential keys.
    uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

ResizableHashMap::ResizableHashMap(Machine &machine, Label label,
                                   uint32_t initial_buckets,
                                   double fill_factor)
    : machine_(machine),
      header_(machine.allocator().allocLines(1)),
      lock_(machine.allocator().allocLines(1)),
      remaining_(machine, label,
                 int64_t(fill_factor * initial_buckets)),
      fillFactor_(fill_factor)
{
    assert((initial_buckets & (initial_buckets - 1)) == 0 &&
           "bucket count must be a power of two");
    const Addr buckets =
        machine.allocator().alloc(8 * uint64_t(initial_buckets),
                                  kLineSize);
    machine.memory().write<Addr>(bucketsPtrAddr(), buckets);
    machine.memory().write<uint64_t>(nBucketsAddr(), initial_buckets);
}

bool
ResizableHashMap::insert(ThreadContext &ctx, uint64_t key, uint64_t value)
{
    for (;;) {
        bool inserted = false, dup = false, full = false, locked = false;
        const Addr node = machine_.allocator().allocLines(1);
        ctx.txRun([&] {
            inserted = dup = full = locked = false;
            // Reading the resize lock puts it in the read set: a
            // resizer's non-speculative write to it aborts us, so no
            // insert can race the rehash.
            if (ctx.read<uint64_t>(lock_) != 0) {
                locked = true;
                return;
            }
            const Addr buckets = ctx.read<Addr>(bucketsPtrAddr());
            const uint64_t n = ctx.read<uint64_t>(nBucketsAddr());
            const Addr slot = buckets + 8 * (mix(key) & (n - 1));
            const Addr head = ctx.read<Addr>(slot);
            for (Addr cur = head; cur != 0;
                 cur = ctx.read<Addr>(cur + kNextOff)) {
                if (ctx.read<uint64_t>(cur + kKeyOff) == key) {
                    dup = true;
                    return;
                }
            }
            // Cooperative unwind: bail before acting on zeroed reads
            // (the chain walk above terminates on them regardless).
            if (ctx.txAborted())
                return;
            // The conditionally-commutative part: consume one unit of
            // remaining space (bounded decrement, Sec. IV).
            if (!remaining_.decrement(ctx)) {
                full = true;
                return;
            }
            ctx.write<uint64_t>(node + kKeyOff, key);
            ctx.write<uint64_t>(node + kValOff, value);
            ctx.write<Addr>(node + kNextOff, head);
            ctx.write<Addr>(slot, node);
            inserted = true;
        });
        if (locked) {
            ctx.compute(128); // wait out the resize, then retry
            continue;
        }
        if (full) {
            resize(ctx);
            continue;
        }
        return inserted;
    }
}

bool
ResizableHashMap::lookup(ThreadContext &ctx, uint64_t key, uint64_t *value)
{
    for (;;) {
        bool found = false, locked = false;
        ctx.txRun([&] {
            found = locked = false;
            if (ctx.read<uint64_t>(lock_) != 0) {
                locked = true;
                return;
            }
            const Addr buckets = ctx.read<Addr>(bucketsPtrAddr());
            const uint64_t n = ctx.read<uint64_t>(nBucketsAddr());
            const Addr slot = buckets + 8 * (mix(key) & (n - 1));
            for (Addr cur = ctx.read<Addr>(slot); cur != 0;
                 cur = ctx.read<Addr>(cur + kNextOff)) {
                if (ctx.read<uint64_t>(cur + kKeyOff) == key) {
                    if (value)
                        *value = ctx.read<uint64_t>(cur + kValOff);
                    found = true;
                    return;
                }
            }
        });
        if (!locked)
            return found;
        ctx.compute(128);
    }
}

bool
ResizableHashMap::update(ThreadContext &ctx, uint64_t key, uint64_t value)
{
    for (;;) {
        bool found = false, locked = false;
        ctx.txRun([&] {
            found = locked = false;
            if (ctx.read<uint64_t>(lock_) != 0) {
                locked = true;
                return;
            }
            const Addr buckets = ctx.read<Addr>(bucketsPtrAddr());
            const uint64_t n = ctx.read<uint64_t>(nBucketsAddr());
            const Addr slot = buckets + 8 * (mix(key) & (n - 1));
            for (Addr cur = ctx.read<Addr>(slot); cur != 0;
                 cur = ctx.read<Addr>(cur + kNextOff)) {
                if (ctx.read<uint64_t>(cur + kKeyOff) == key) {
                    ctx.write<uint64_t>(cur + kValOff, value);
                    found = true;
                    return;
                }
            }
        });
        if (!locked)
            return found;
        ctx.compute(128);
    }
}

bool
ResizableHashMap::updateWith(ThreadContext &ctx, uint64_t key,
                             const std::function<bool(uint64_t &)> &fn)
{
    for (;;) {
        bool applied = false, locked = false;
        ctx.txRun([&] {
            applied = locked = false;
            if (ctx.read<uint64_t>(lock_) != 0) {
                locked = true;
                return;
            }
            const Addr buckets = ctx.read<Addr>(bucketsPtrAddr());
            const uint64_t n = ctx.read<uint64_t>(nBucketsAddr());
            const Addr slot = buckets + 8 * (mix(key) & (n - 1));
            for (Addr cur = ctx.read<Addr>(slot); cur != 0;
                 cur = ctx.read<Addr>(cur + kNextOff)) {
                if (ctx.read<uint64_t>(cur + kKeyOff) == key) {
                    uint64_t value = ctx.read<uint64_t>(cur + kValOff);
                    if (fn(value)) {
                        ctx.write<uint64_t>(cur + kValOff, value);
                        applied = true;
                    }
                    return;
                }
            }
        });
        if (!locked)
            return applied;
        ctx.compute(128);
    }
}

bool
ResizableHashMap::erase(ThreadContext &ctx, uint64_t key)
{
    for (;;) {
        bool found = false, locked = false;
        ctx.txRun([&] {
            found = locked = false;
            if (ctx.read<uint64_t>(lock_) != 0) {
                locked = true;
                return;
            }
            const Addr buckets = ctx.read<Addr>(bucketsPtrAddr());
            const uint64_t n = ctx.read<uint64_t>(nBucketsAddr());
            const Addr slot = buckets + 8 * (mix(key) & (n - 1));
            Addr prev = 0;
            for (Addr cur = ctx.read<Addr>(slot); cur != 0;
                 cur = ctx.read<Addr>(cur + kNextOff)) {
                if (ctx.read<uint64_t>(cur + kKeyOff) == key) {
                    const Addr next = ctx.read<Addr>(cur + kNextOff);
                    if (prev == 0)
                        ctx.write<Addr>(slot, next);
                    else
                        ctx.write<Addr>(prev + kNextOff, next);
                    // Return the space unit (always-commutative add).
                    remaining_.increment(ctx, 1);
                    found = true;
                    return;
                }
                prev = cur;
            }
        });
        if (!locked)
            return found;
        ctx.compute(128);
    }
}

void
ResizableHashMap::resize(ThreadContext &ctx)
{
    // Acquire the resize lock with a tiny transaction (test-and-set).
    for (;;) {
        bool got = false;
        ctx.txRun([&] {
            got = false;
            if (ctx.read<uint64_t>(lock_) == 0) {
                ctx.write<uint64_t>(lock_, 1);
                got = true;
            }
        });
        if (got)
            break;
        ctx.compute(256); // another thread is resizing; wait it out
    }
    // Someone else may have resized while we waited for the lock.
    if (remaining_.read(ctx) > 0) {
        ctx.write<uint64_t>(lock_, 0);
        return;
    }
    // Rehash non-speculatively. Plain writes to the bucket lines and
    // the header abort any straggling transactional readers (they
    // cannot NACK a non-speculative request), so the swap is safe.
    const Addr old_buckets = ctx.read<Addr>(bucketsPtrAddr());
    const uint64_t old_n = ctx.read<uint64_t>(nBucketsAddr());
    const uint64_t new_n = old_n * 2;
    const Addr new_buckets =
        machine_.allocator().alloc(8 * new_n, kLineSize);
    for (uint64_t b = 0; b < old_n; b++) {
        Addr cur = ctx.read<Addr>(old_buckets + 8 * b);
        while (cur != 0) {
            const Addr next = ctx.read<Addr>(cur + kNextOff);
            const uint64_t k = ctx.read<uint64_t>(cur + kKeyOff);
            const Addr slot = new_buckets + 8 * (mix(k) & (new_n - 1));
            ctx.write<Addr>(cur + kNextOff, ctx.read<Addr>(slot));
            ctx.write<Addr>(slot, cur);
            cur = next;
        }
    }
    ctx.write<Addr>(bucketsPtrAddr(), new_buckets);
    ctx.write<uint64_t>(nBucketsAddr(), new_n);
    // The doubled table gains fillFactor * old_n units of space.
    remaining_.increment(ctx, int64_t(fillFactor_ * double(old_n)));
    resizes_++;
    ctx.write<uint64_t>(lock_, 0);
}

uint64_t
ResizableHashMap::peekBuckets(Machine &machine) const
{
    return machine.memory().read<uint64_t>(nBucketsAddr());
}

uint64_t
ResizableHashMap::peekSize(Machine &machine) const
{
    const Addr buckets = machine.memory().read<Addr>(bucketsPtrAddr());
    const uint64_t n = machine.memory().read<uint64_t>(nBucketsAddr());
    uint64_t size = 0;
    for (uint64_t b = 0; b < n; b++) {
        for (Addr cur = machine.memory().read<Addr>(buckets + 8 * b);
             cur != 0;
             cur = machine.memory().read<Addr>(cur + kNextOff)) {
            size++;
        }
    }
    return size;
}

bool
ResizableHashMap::peekLookup(Machine &machine, uint64_t key,
                             uint64_t *value) const
{
    const Addr buckets = machine.memory().read<Addr>(bucketsPtrAddr());
    const uint64_t n = machine.memory().read<uint64_t>(nBucketsAddr());
    const Addr slot = buckets + 8 * (mix(key) & (n - 1));
    for (Addr cur = machine.memory().read<Addr>(slot); cur != 0;
         cur = machine.memory().read<Addr>(cur + kNextOff)) {
        if (machine.memory().read<uint64_t>(cur + kKeyOff) == key) {
            if (value)
                *value = machine.memory().read<uint64_t>(cur + kValOff);
            return true;
        }
    }
    return false;
}

} // namespace commtm
