/**
 * @file
 * CommList implementation (Fig. 11): per-core partial lists under the
 * reducible descriptor, a reduction that concatenates partial lists,
 * and a splitter that donates the head element to a gathering dequeuer.
 */

#include "lib/linked_list.h"

namespace commtm {

namespace {

struct ListDesc {
    Addr head;
    Addr tail;
};

ListDesc
descOf(const LineData &line)
{
    ListDesc d;
    std::memcpy(&d, line.data(), sizeof(d));
    return d;
}

void
setDesc(LineData &line, const ListDesc &d)
{
    std::memcpy(line.data(), &d, sizeof(d));
}

} // namespace

Label
CommList::defineLabel(Machine &machine)
{
    LabelInfo info;
    info.name = "LIST";
    info.identity.fill(0); // empty list: head = tail = null

    // Reduction: concatenate the incoming partial list onto the local
    // one (Fig. 11a). Link via a non-speculative write to the local
    // tail node's next pointer.
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        ListDesc mine = descOf(local);
        const ListDesc theirs = descOf(incoming);
        if (theirs.head == 0)
            return;
        if (mine.head == 0) {
            mine = theirs;
        } else {
            ctx.write<Addr>(mine.tail + CommList::kNextOff, theirs.head);
            mine.tail = theirs.tail;
        }
        setDesc(local, mine);
        ctx.compute(4);
    };

    // Splitter: donate the head element (Fig. 11b).
    info.split = [](HandlerContext &ctx, LineData &local, LineData &out,
                    uint32_t /* num_sharers */) {
        ListDesc mine = descOf(local);
        if (mine.head == 0)
            return; // nothing to donate; out stays the identity
        ListDesc donation;
        donation.head = donation.tail = mine.head;
        const Addr next = ctx.read<Addr>(mine.head + CommList::kNextOff);
        ctx.write<Addr>(mine.head + CommList::kNextOff, 0);
        mine.head = next;
        if (next == 0)
            mine.tail = 0;
        setDesc(local, mine);
        setDesc(out, donation);
        ctx.compute(4);
    };
    // Donate only from surplus: a sharer holding a single element keeps
    // it (its own next dequeue consumes it locally; donating it would
    // just force that sharer to gather right back). head != tail means
    // at least two elements.
    info.splitProbe = [](const LineData &local, uint32_t) {
        const ListDesc d = descOf(local);
        return d.head != 0 && d.head != d.tail;
    };
    return machine.labels().define(std::move(info));
}

CommList::CommList(Machine &machine, Label label, bool baseline_layout)
    : machine_(machine), label_(label)
{
    if (baseline_layout) {
        // The paper's baseline allocates head and tail on different
        // lines to avoid false sharing (Sec. VI).
        head_ = machine.allocator().allocLines(1);
        tail_ = machine.allocator().allocLines(1);
    } else {
        // CommTM: one reducible descriptor line holding {head, tail}.
        head_ = machine.allocator().allocLines(1);
        tail_ = head_ + 8;
    }
}

Addr
CommList::allocNode(uint64_t /* hint_align */)
{
    // One node per line: keeps nodes created by different cores from
    // sharing lines, which would add false write-write conflicts that
    // neither system under study contains.
    return machine_.allocator().allocLines(1);
}

void
CommList::enqueue(ThreadContext &ctx, uint64_t value)
{
    const Addr node = allocNode();
    ctx.annotate(kAnnotListEnqueue, value);
    ctx.txRun([&] {
        ctx.write<uint64_t>(node + kValueOff, value);
        ctx.write<Addr>(node + kNextOff, 0);
        const Addr tail = ctx.readLabeled<Addr>(tail_, label_);
        if (ctx.txAborted())
            return; // cooperative unwind; txRun retries the body
        if (tail == 0) {
            ctx.writeLabeled<Addr>(head_, label_, node);
        } else {
            // The old tail belongs to this core's partial list (or to
            // the global list in the baseline); append behind it.
            ctx.write<Addr>(tail + kNextOff, node);
        }
        ctx.writeLabeled<Addr>(tail_, label_, node);
    });
}

bool
CommList::dequeue(ThreadContext &ctx, uint64_t *out)
{
    bool ok = false;
    ctx.annotate(kAnnotListDequeue, 0);
    ctx.txRun([&] {
        ok = false;
        Addr head = ctx.readLabeled<Addr>(head_, label_);
        if (head == 0) {
            // Local partial list empty: gather a donated element.
            head = ctx.readGather<Addr>(head_, label_);
            if (head == 0) {
                // Still empty: check the true state (full reduction).
                head = ctx.read<Addr>(head_);
                if (head == 0)
                    return;
            }
        }
        if (ctx.txAborted())
            return; // head is garbage on an aborted attempt
        const Addr next = ctx.read<Addr>(head + kNextOff);
        *out = ctx.read<uint64_t>(head + kValueOff);
        ctx.writeLabeled<Addr>(head_, label_, next);
        if (next == 0)
            ctx.writeLabeled<Addr>(tail_, label_, 0);
        ok = true;
    });
    return ok;
}

std::vector<uint64_t>
CommList::peekAll(Machine &machine) const
{
    std::vector<uint64_t> values;
    const auto walk = [&](Addr h) {
        while (h != 0) {
            values.push_back(
                machine.memory().read<uint64_t>(h + kValueOff));
            h = machine.memory().read<Addr>(h + kNextOff);
        }
    };
    const auto copies = machine.memSys().debugUCopies(lineAddr(head_));
    if (copies.empty()) {
        walk(machine.memory().read<Addr>(head_));
    } else {
        for (const LineData &copy : copies) {
            Addr h;
            std::memcpy(&h, copy.data() + lineOffset(head_), sizeof(h));
            walk(h);
        }
    }
    return values;
}

uint64_t
CommList::peekSize(Machine &machine) const
{
    return peekAll(machine).size();
}

} // namespace commtm
