/**
 * @file
 * Chunked FIFO work queue with a reducible descriptor — the queue
 * pattern intruder-style stream processing is built around. Like
 * CommList (Fig. 11), enqueues and dequeues are semantically
 * commutative when element order is irrelevant; unlike CommList, the
 * elements live in fixed-capacity chunks, so enqueues amortize
 * allocation over kChunkCap elements and the splitter donates a whole
 * chunk per gather, which cuts the gather rate of consumer-heavy
 * phases by the chunk capacity.
 */

#ifndef COMMTM_LIB_COMM_QUEUE_H
#define COMMTM_LIB_COMM_QUEUE_H

#include "rt/machine.h"

namespace commtm {

class CommQueue
{
  public:
    /** Define the QUEUE label: reduce = concatenate partial chunk
     *  lists; split = donate the head chunk. */
    static Label defineLabel(Machine &machine);

    /**
     * @param baseline_layout when true, place the head and tail
     *        pointers on different cache lines (the baseline allocates
     *        them apart to avoid false sharing, as in CommList).
     *        CommTM needs both in one reducible descriptor line.
     */
    CommQueue(Machine &machine, Label label, bool baseline_layout = false);

    /** Append @p value (semantically commutative). */
    void enqueue(ThreadContext &ctx, uint64_t value);

    /**
     * Remove an element (local first, then gather, then reduction).
     * @return true and the value, or false if the queue is empty.
     */
    bool dequeue(ThreadContext &ctx, uint64_t *out);

    /**
     * Remove an element without the full-reduction fallback: check
     * the local partial list, then gather a donated chunk; a miss
     * returns false WITHOUT proving the queue globally empty (other
     * cores may hold elements that no splitter would donate). This is
     * the right dequeue for worklist consumers with an external
     * termination condition: the full read in dequeue() collapses
     * every partial list into the reader and, at high thread counts,
     * its reduction battles every idle sharer — a NACK storm that
     * serializes the workers that still have work.
     */
    bool tryDequeue(ThreadContext &ctx, uint64_t *out);

    /** Number of elements reachable from the committed state; untimed
     *  host-side verification helper (walks all partial lists). */
    uint64_t peekSize(Machine &machine) const;

    /** Collect all committed values (untimed verification helper). */
    std::vector<uint64_t> peekAll(Machine &machine) const;

    Addr headAddr() const { return head_; }
    Addr tailAddr() const { return tail_; }

    /** Chunk layout in simulated memory: one cache line holding
     *  {next, rd, wr} and kChunkCap packed values. A linked chunk is
     *  never empty (rd < wr); enqueue unlinks nothing, dequeue unlinks
     *  a chunk when it drains. */
    static constexpr uint32_t kNextOff = 0;
    static constexpr uint32_t kRdOff = 8;
    static constexpr uint32_t kWrOff = 12;
    static constexpr uint32_t kValsOff = 16;
    static constexpr uint32_t kChunkCap =
        (kLineSize - kValsOff) / sizeof(uint64_t);

  private:
    bool dequeueImpl(ThreadContext &ctx, uint64_t *out,
                     bool allow_reduction);

    Machine &machine_;
    Addr head_; //!< address of the head-chunk pointer
    Addr tail_; //!< address of the tail-chunk pointer
    Label label_;
};

} // namespace commtm

#endif // COMMTM_LIB_COMM_QUEUE_H
