/**
 * @file
 * Ordered puts / priority updates (Sec. VI): replace a key-value pair
 * with a new pair iff the new key is lower. Semantically commutative:
 * the final pair is the minimum-key pair regardless of order. Frequent
 * in databases and challenging parallel algorithms (e.g., boruvka's
 * minimum-weight-edge records).
 */

#ifndef COMMTM_LIB_ORDERED_PUT_H
#define COMMTM_LIB_ORDERED_PUT_H

#include "rt/machine.h"

namespace commtm {

/**
 * A 16-byte {key, value} cell. Four cells fit per line; independent
 * cells may share a reducible line (reductions work element-wise).
 */
class OrderedPut
{
  public:
    struct Pair {
        int64_t key;
        uint64_t value;
    };
    static constexpr int64_t kEmptyKey =
        std::numeric_limits<int64_t>::max();

    /** Define the OPUT label: identity = {kEmptyKey, 0} cells; reduce
     *  keeps the lower-key pair of each cell. */
    static Label defineLabel(Machine &machine);

    OrderedPut(Machine &machine, Label label);

    /** Construct over an existing 16-byte-aligned cell (e.g., one slot
     *  of an array of cells). The cell must be initialized to the
     *  identity before the parallel region; see initCell(). */
    OrderedPut(Addr cell, Label label) : addr_(cell), label_(label) {}

    /** Write the identity into a cell (host-side, before running). */
    static void initCell(Machine &machine, Addr cell);

    /** Put (key, value) if key is lower than the current key. */
    void put(ThreadContext &ctx, int64_t key, uint64_t value);

    /** Read the full (reduced) pair. */
    Pair get(ThreadContext &ctx);

    /** Untimed committed pair, for host-side verification. */
    Pair peek(Machine &machine) const;

    Addr addr() const { return addr_; }

  private:
    Addr addr_;
    Label label_;
};

} // namespace commtm

#endif // COMMTM_LIB_ORDERED_PUT_H
