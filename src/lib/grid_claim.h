/**
 * @file
 * Region-claim table over a spatial grid — the path-locking pattern of
 * labyrinth-style routers. Every cell holds a small token count
 * (capacity 1 models exclusive cell ownership); claiming a cell is a
 * conditionally-commutative bounded decrement of its token, releasing
 * is a commutative increment, and a multi-cell claim is all-or-nothing
 * inside one transaction. Claims of *different* cells — even cells
 * packed into the same cache line — commute and stay local, which is
 * exactly what a conventional HTM cannot express: there, the line
 * granularity makes every nearby claim a conflict.
 */

#ifndef COMMTM_LIB_GRID_CLAIM_H
#define COMMTM_LIB_GRID_CLAIM_H

#include <vector>

#include "rt/machine.h"

namespace commtm {

class GridClaim
{
  public:
    /** Define the GRID label: per-byte bounded ADD (element-wise
     *  reduction and fair-share splitter over the line's 64 cells). */
    static Label defineLabel(Machine &machine);

    /**
     * @param capacity tokens per cell (1 = exclusive claims; larger
     *        values model shared capacity, e.g. multi-wire channels,
     *        and give the per-byte splitter something to donate).
     * Tokens are written directly to simulated memory; construct
     * before the parallel region.
     */
    GridClaim(Machine &machine, Label label, uint32_t width,
              uint32_t height, uint8_t capacity = 1);

    /**
     * Claim one token of @p cell (paper-style conditional commutative
     * decrement: local copy first, then gather, then full-read
     * fallback). Runs as a (possibly nested) transaction.
     * @return true if a token was taken, false if the cell is full.
     */
    bool claim(ThreadContext &ctx, uint32_t cell);

    /** Return one token to @p cell (always commutative). */
    void release(ThreadContext &ctx, uint32_t cell);

    /**
     * Claim every cell in @p cells, all or nothing, in a single
     * transaction: if any cell is exhausted, tokens already taken are
     * returned before the transaction commits and the claim fails as
     * a whole.
     *
     * Preconditions (asserted): @p cells is duplicate-free, and cells
     * on the same cache line are CONTIGUOUS in the vector. Contiguity
     * is what lets each line be claimed as one group — revisiting a
     * line after claiming cells on a later line would issue its
     * conventional fallback read after labeled writes to it, the
     * self-demotion case of Sec. III-B4. Geometric paths (e.g. the
     * L-bends of labyrinth) satisfy this naturally.
     * @return true iff every cell was claimed.
     */
    bool claimPath(ThreadContext &ctx,
                   const std::vector<uint32_t> &cells);

    /** Untimed committed token count of @p cell (reduces the line). */
    uint8_t peekCell(Machine &machine, uint32_t cell) const;

    /** Untimed committed token total over the whole grid. */
    uint64_t peekTokens(Machine &machine) const;

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }
    uint32_t numCells() const { return width_ * height_; }
    uint8_t capacity() const { return capacity_; }
    Addr cellAddr(uint32_t cell) const { return base_ + cell; }

  private:
    /** Claim body usable inside an enclosing transaction. */
    bool claimOne(ThreadContext &ctx, uint32_t cell);
    void releaseOne(ThreadContext &ctx, uint32_t cell);
    /** All-or-nothing claim of cells[lo, hi) on one cache line; on
     *  failure nothing in the group has been written. */
    bool claimLineGroup(ThreadContext &ctx,
                        const std::vector<uint32_t> &cells, size_t lo,
                        size_t hi);

    Machine &machine_;
    Addr base_; //!< width*height one-byte cells, line-aligned
    Label label_;
    uint32_t width_;
    uint32_t height_;
    uint8_t capacity_;
};

} // namespace commtm

#endif // COMMTM_LIB_GRID_CLAIM_H
