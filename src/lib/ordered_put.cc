/**
 * @file
 * Ordered-put implementation: a MIN-over-keys label where the reduction
 * keeps the lower-key pair, making priority updates commutative.
 */

#include "lib/ordered_put.h"

namespace commtm {

Label
OrderedPut::defineLabel(Machine &machine)
{
    LabelInfo info;
    info.name = "OPUT";
    constexpr size_t cells = kLineSize / sizeof(Pair);
    auto *id = reinterpret_cast<Pair *>(info.identity.data());
    for (size_t i = 0; i < cells; i++)
        id[i] = Pair{kEmptyKey, 0};
    info.reduce = [](HandlerContext &ctx, LineData &local,
                     const LineData &incoming) {
        auto *dst = reinterpret_cast<Pair *>(local.data());
        auto *src = reinterpret_cast<const Pair *>(incoming.data());
        for (size_t i = 0; i < cells; i++) {
            if (src[i].key < dst[i].key)
                dst[i] = src[i];
        }
        ctx.compute(cells);
    };
    return machine.labels().define(std::move(info));
}

OrderedPut::OrderedPut(Machine &machine, Label label)
    : addr_(machine.allocator().alloc(sizeof(Pair), sizeof(Pair))),
      label_(label)
{
    initCell(machine, addr_);
}

void
OrderedPut::initCell(Machine &machine, Addr cell)
{
    machine.memory().write<Pair>(cell, Pair{kEmptyKey, 0});
}

void
OrderedPut::put(ThreadContext &ctx, int64_t key, uint64_t value)
{
    ctx.txRun([&] {
        // lint: allow-tx-aborted (labeled min-RMW; write dies on abort)
        const int64_t current = ctx.readLabeled<int64_t>(addr_, label_);
        if (key < current) {
            ctx.writeLabeled<int64_t>(addr_, label_, key);
            ctx.writeLabeled<uint64_t>(addr_ + 8, label_, value);
        }
    });
}

OrderedPut::Pair
OrderedPut::get(ThreadContext &ctx)
{
    Pair pair{kEmptyKey, 0};
    ctx.txRun([&] {
        pair.key = ctx.read<int64_t>(addr_);
        pair.value = ctx.read<uint64_t>(addr_ + 8);
    });
    return pair;
}

OrderedPut::Pair
OrderedPut::peek(Machine &machine) const
{
    const LineData line =
        machine.memSys().debugReducedValue(lineAddr(addr_));
    Pair pair;
    std::memcpy(&pair, line.data() + lineOffset(addr_), sizeof(pair));
    return pair;
}

} // namespace commtm
