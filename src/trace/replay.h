/**
 * @file
 * Deterministic trace replay (docs/ARCHITECTURE.md Sec. 11):
 * ReplayFrontend re-executes a parsed capture against any
 * MachineConfig. Each captured thread stream becomes one simulated
 * thread that re-issues the recorded ops through the ThreadContext
 * untyped paths; transaction outcomes are re-resolved through the
 * live HTM — a replayed transaction that aborts backs off and
 * re-issues its recorded ops from the TxBegin boundary, exactly like
 * a closed-loop body retry. Replaying a capture on its capture config
 * reproduces every counter bit-identically (tests/trace_test.cc).
 */

#ifndef COMMTM_TRACE_REPLAY_H
#define COMMTM_TRACE_REPLAY_H

#include "rt/frontend.h"
#include "trace/trace_reader.h"

namespace commtm {

class ReplayFrontend final : public Frontend
{
  public:
    /** @p trace must outlive the frontend and the machine run. */
    explicit ReplayFrontend(const Trace &trace) : trace_(trace) {}

    uint32_t threads() const override { return trace_.numThreads(); }

    /** @p machine must have at least numThreads() cores and the same
     *  label definitions as the capture-time machine (label ids are
     *  recorded raw; reduction/split handlers come from the live
     *  registry). */
    void attach(Machine &machine) override;

  private:
    static void replayThread(ThreadContext &ctx,
                             const std::vector<TraceRecord> &records);
    static void replayOne(ThreadContext &ctx, const TraceRecord &rec);

    const Trace &trace_;
};

} // namespace commtm

#endif // COMMTM_TRACE_REPLAY_H
