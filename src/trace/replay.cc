/**
 * @file
 * ReplayFrontend implementation: one simulated thread per captured
 * stream, re-issuing records through the ThreadContext untyped paths
 * with transactions re-run under the live HTM's outcomes.
 */

#include "trace/replay.h"

#include <cassert>

#include "rt/machine.h"

namespace commtm {

void
ReplayFrontend::attach(Machine &machine)
{
    assert(machine.config().numCores >= trace_.numThreads() &&
           "replay machine has fewer cores than the capture has "
           "thread streams");
    for (const std::vector<TraceRecord> &records : trace_.threads) {
        machine.addThread([&records](ThreadContext &ctx) {
            replayThread(ctx, records);
        });
    }
}

void
ReplayFrontend::replayOne(ThreadContext &ctx, const TraceRecord &rec)
{
    // Loads discard their data (replay is about the op stream, not
    // the values read); stores re-write the captured operand bytes,
    // which keeps the functional pointer graphs that reduction and
    // split handlers walk well-formed. TraceReader guarantees every
    // access fits one line, so the line-sized scratch suffices.
    uint8_t scratch[kLineSize];
    switch (rec.kind) {
      case TraceOpKind::Compute:
        ctx.compute(rec.a);
        break;
      case TraceOpKind::Load:
        ctx.readUntyped(rec.addr, scratch, rec.size);
        break;
      case TraceOpKind::Store:
        ctx.writeUntyped(rec.addr, rec.data.data(), rec.size);
        break;
      case TraceOpKind::LabeledLoad:
        ctx.readLabeledUntyped(rec.addr, rec.label, scratch, rec.size);
        break;
      case TraceOpKind::LabeledStore:
        ctx.writeLabeledUntyped(rec.addr, rec.label, rec.data.data(),
                                rec.size);
        break;
      case TraceOpKind::Gather:
        ctx.readGatherUntyped(rec.addr, rec.label, scratch, rec.size);
        break;
      case TraceOpKind::Annotation:
        ctx.annotate(uint32_t(rec.a), rec.b);
        break;
      case TraceOpKind::Barrier:
        ctx.barrier();
        break;
      case TraceOpKind::TxBegin:
      case TraceOpKind::TxEnd:
        assert(false && "transaction markers are handled by "
                        "replayThread");
        break;
    }
}

void
ReplayFrontend::replayThread(ThreadContext &ctx,
                             const std::vector<TraceRecord> &records)
{
    size_t i = 0;
    const size_t n = records.size();
    while (i < n) {
        if (records[i].kind != TraceOpKind::TxBegin) {
            replayOne(ctx, records[i]);
            i++;
            continue;
        }
        // One committed capture-time transaction: [begin+1, end) are
        // its ops (TraceReader guarantees balance and no nesting).
        size_t end = i + 1;
        while (records[end].kind != TraceOpKind::TxEnd)
            end++;
        ctx.txRun([&ctx, &records, i, end] {
            for (size_t j = i + 1; j < end; j++) {
                replayOne(ctx, records[j]);
                // Cooperative unwind: on abort, return and let txRun
                // back off and re-issue from the TxBegin boundary.
                if (ctx.txAborted())
                    return;
            }
        });
        i = end + 1;
    }
}

} // namespace commtm
