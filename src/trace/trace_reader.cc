/**
 * @file
 * TraceReader implementation: bounds-checked varint decoding of the
 * sealed header, per-thread streams, and commit order, with
 * field-precise rejection diagnostics.
 */

#include "trace/trace_reader.h"

#include <cstring>

namespace commtm {

using namespace trace;

namespace {

/** Bounds-checked little-endian/varint cursor over one byte range. */
class Cursor
{
  public:
    Cursor(const uint8_t *data, size_t size) : data_(data), size_(size)
    {
    }

    size_t pos() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }

    bool
    u8(uint8_t *v)
    {
        if (pos_ >= size_)
            return false;
        *v = data_[pos_++];
        return true;
    }

    bool
    u32(uint32_t *v)
    {
        if (remaining() < 4)
            return false;
        *v = 0;
        for (int i = 0; i < 4; i++)
            *v |= uint32_t(data_[pos_++]) << (8 * i);
        return true;
    }

    bool
    u64(uint64_t *v)
    {
        if (remaining() < 8)
            return false;
        *v = 0;
        for (int i = 0; i < 8; i++)
            *v |= uint64_t(data_[pos_++]) << (8 * i);
        return true;
    }

    /** LEB128; fails on truncation or a value wider than 64 bits. */
    bool
    varint(uint64_t *v)
    {
        *v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            if (pos_ >= size_)
                return false;
            const uint8_t byte = data_[pos_++];
            *v |= uint64_t(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0) {
                // The 10th byte may only carry the top bit of a u64.
                return shift < 63 || byte <= 1;
            }
        }
        return false;
    }

    bool
    bytes(std::vector<uint8_t> *out, size_t n)
    {
        if (remaining() < n)
            return false;
        out->assign(data_ + pos_, data_ + pos_ + n);
        pos_ += n;
        return true;
    }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

std::string
recordWhere(uint32_t thread, uint64_t record)
{
    return "thread " + std::to_string(thread) + " record " +
           std::to_string(record);
}

bool
fail(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/** Decode one thread stream; returns false with @p error set. */
bool
parseStream(uint32_t thread, const uint8_t *data, size_t size,
            uint64_t expect_records, std::vector<TraceRecord> *out,
            std::string *error)
{
    Cursor cur(data, size);
    Addr last_addr = 0;
    bool in_tx = false;
    out->reserve(expect_records <= size ? size_t(expect_records) : 0);
    while (cur.remaining() > 0) {
        const uint64_t index = out->size();
        if (index >= expect_records) {
            return fail(error,
                        "thread " + std::to_string(thread) + ": " +
                            std::to_string(cur.remaining()) +
                            " stream bytes after record " +
                            std::to_string(expect_records - 1));
        }
        TraceRecord rec;
        uint8_t kind = 0;
        cur.u8(&kind); // remaining() > 0, cannot fail
        if (kind > uint8_t(TraceOpKind::Annotation)) {
            return fail(error, recordWhere(thread, index) +
                                   ": bad opcode " +
                                   std::to_string(kind));
        }
        rec.kind = TraceOpKind(kind);
        uint64_t v = 0;
        switch (rec.kind) {
          case TraceOpKind::Compute:
            if (!cur.varint(&rec.a)) {
                return fail(error, recordWhere(thread, index) +
                                       ": truncated instr count");
            }
            break;
          case TraceOpKind::Load:
          case TraceOpKind::Store:
          case TraceOpKind::LabeledLoad:
          case TraceOpKind::LabeledStore:
          case TraceOpKind::Gather:
            if (!cur.varint(&v)) {
                return fail(error, recordWhere(thread, index) +
                                       ": truncated address delta");
            }
            rec.addr = Addr(int64_t(last_addr) + unzigzag(v));
            last_addr = rec.addr;
            if (!cur.varint(&v)) {
                return fail(error, recordWhere(thread, index) +
                                       ": truncated size");
            }
            if (v == 0 || v > kLineSize) {
                return fail(error, recordWhere(thread, index) +
                                       ": implausible access size " +
                                       std::to_string(v));
            }
            rec.size = uint32_t(v);
            if (lineOffset(rec.addr) + rec.size > kLineSize) {
                return fail(error, recordWhere(thread, index) +
                                       ": access straddles a cache "
                                       "line");
            }
            if (rec.kind != TraceOpKind::Load &&
                rec.kind != TraceOpKind::Store) {
                if (!cur.u8(&rec.label)) {
                    return fail(error, recordWhere(thread, index) +
                                           ": truncated label");
                }
                if (rec.label >= kMaxHwLabels &&
                    rec.label != kNoLabel) {
                    return fail(error,
                                recordWhere(thread, index) +
                                    ": bad label " +
                                    std::to_string(rec.label));
                }
            }
            if (rec.kind == TraceOpKind::Store ||
                rec.kind == TraceOpKind::LabeledStore) {
                if (!cur.bytes(&rec.data, rec.size)) {
                    return fail(error, recordWhere(thread, index) +
                                           ": truncated operand (" +
                                           std::to_string(rec.size) +
                                           " bytes)");
                }
            }
            break;
          case TraceOpKind::TxBegin:
            if (in_tx) {
                return fail(error, recordWhere(thread, index) +
                                       ": TxBegin inside a "
                                       "transaction");
            }
            in_tx = true;
            break;
          case TraceOpKind::TxEnd:
            if (!in_tx) {
                return fail(error, recordWhere(thread, index) +
                                       ": TxEnd without TxBegin");
            }
            in_tx = false;
            break;
          case TraceOpKind::Barrier:
            if (in_tx) {
                return fail(error, recordWhere(thread, index) +
                                       ": Barrier inside a "
                                       "transaction");
            }
            break;
          case TraceOpKind::Annotation:
            if (!cur.varint(&rec.a) || !cur.varint(&rec.b)) {
                return fail(error, recordWhere(thread, index) +
                                       ": truncated annotation");
            }
            break;
        }
        out->push_back(std::move(rec));
    }
    if (out->size() != expect_records) {
        return fail(error,
                    "thread " + std::to_string(thread) +
                        ": stream ends after record " +
                        std::to_string(out->size()) + " of " +
                        std::to_string(expect_records));
    }
    if (in_tx) {
        return fail(error, "thread " + std::to_string(thread) +
                               ": unterminated transaction at end of "
                               "stream");
    }
    return true;
}

} // namespace

bool
TraceReader::parse(const std::vector<uint8_t> &buf, Trace *out,
                   std::string *error)
{
    *out = Trace{};
    if (buf.size() < kHeaderBytes)
        return fail(error, "truncated header");
    if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0)
        return fail(error, "bad magic");
    Cursor cur(buf.data() + sizeof(kMagic),
               buf.size() - sizeof(kMagic));
    uint32_t version = 0;
    uint32_t num_threads = 0;
    uint64_t commit_count = 0;
    cur.u32(&version);
    cur.u32(&num_threads);
    cur.u64(&out->configFingerprint);
    cur.u64(&commit_count); // header size checked above
    if (version != kVersion) {
        return fail(error,
                    "unsupported version " + std::to_string(version));
    }
    out->version = version;
    if (cur.remaining() / kThreadEntryBytes < num_threads)
        return fail(error, "truncated thread table");
    std::vector<uint64_t> records(num_threads);
    std::vector<uint64_t> bytes(num_threads);
    for (uint32_t t = 0; t < num_threads; t++) {
        cur.u64(&records[t]);
        cur.u64(&bytes[t]);
    }
    uint64_t stream_bytes = 0;
    for (uint32_t t = 0; t < num_threads; t++) {
        if (bytes[t] > cur.remaining() ||
            stream_bytes + bytes[t] > cur.remaining()) {
            return fail(error,
                        "thread " + std::to_string(t) +
                            ": stream length " +
                            std::to_string(bytes[t]) +
                            " runs past the end of the buffer");
        }
        stream_bytes += bytes[t];
    }
    const uint8_t *streams = buf.data() + (buf.size() - cur.remaining());
    out->threads.resize(num_threads);
    for (uint32_t t = 0; t < num_threads; t++) {
        if (!parseStream(t, streams, size_t(bytes[t]), records[t],
                         &out->threads[t], error)) {
            return false;
        }
        streams += bytes[t];
    }
    Cursor tail(streams,
                size_t(buf.data() + buf.size() - streams));
    out->commitOrder.reserve(
        commit_count <= tail.remaining() ? size_t(commit_count) : 0);
    for (uint64_t i = 0; i < commit_count; i++) {
        uint64_t core = 0;
        if (!tail.varint(&core)) {
            return fail(error, "truncated commit order at entry " +
                                   std::to_string(i));
        }
        if (core >= num_threads) {
            return fail(error, "commit order entry " +
                                   std::to_string(i) + ": core " +
                                   std::to_string(core) +
                                   " out of range");
        }
        out->commitOrder.push_back(CoreId(core));
    }
    if (tail.remaining() != 0) {
        return fail(error, std::to_string(tail.remaining()) +
                               " trailing bytes after the commit "
                               "order");
    }
    return true;
}

} // namespace commtm
