/**
 * @file
 * TraceWriter implementation: per-thread varint/delta record encoding,
 * per-attempt buffering (flush on commit, discard on abort), and the
 * sealed-header serializer.
 */

#include "trace/trace_writer.h"

#include <cassert>
#include <cstring>

namespace commtm {

using namespace trace;

TraceWriter::TraceWriter(const MachineConfig &cfg)
    : fingerprint_(configFingerprint(cfg)), streams_(cfg.numCores)
{
}

uint64_t
TraceWriter::recordsOf(CoreId core) const
{
    return streams_[core].records;
}

void
TraceWriter::encode(Stream &s, TraceOpKind kind, Addr addr,
                    uint32_t size, Label label, const uint8_t *data,
                    uint64_t a, uint64_t b)
{
    s.bytes.push_back(uint8_t(kind));
    switch (kind) {
      case TraceOpKind::Compute:
        putVarint(s.bytes, a);
        break;
      case TraceOpKind::Load:
      case TraceOpKind::Store:
      case TraceOpKind::LabeledLoad:
      case TraceOpKind::LabeledStore:
      case TraceOpKind::Gather:
        putVarint(s.bytes, zigzag(int64_t(addr - s.lastAddr)));
        putVarint(s.bytes, size);
        s.lastAddr = addr;
        if (kind != TraceOpKind::Load && kind != TraceOpKind::Store)
            s.bytes.push_back(label);
        if (kind == TraceOpKind::Store ||
            kind == TraceOpKind::LabeledStore) {
            s.bytes.insert(s.bytes.end(), data, data + size);
        }
        break;
      case TraceOpKind::TxBegin:
      case TraceOpKind::TxEnd:
      case TraceOpKind::Barrier:
        break;
      case TraceOpKind::Annotation:
        putVarint(s.bytes, a);
        putVarint(s.bytes, b);
        break;
    }
    s.records++;
}

void
TraceWriter::note(CoreId core, TraceOpKind kind, Addr addr,
                  uint32_t size, Label label, const void *data,
                  uint64_t a, uint64_t b)
{
    Stream &s = streams_[core];
    if (!s.inAttempt) {
        encode(s, kind, addr, size, label,
               static_cast<const uint8_t *>(data), a, b);
        return;
    }
    PendingOp op;
    op.kind = kind;
    op.addr = addr;
    op.size = size;
    op.label = label;
    op.a = a;
    op.b = b;
    if (data != nullptr) {
        op.dataOff = uint32_t(s.attemptData.size());
        op.dataLen = size;
        const auto *bytes = static_cast<const uint8_t *>(data);
        s.attemptData.insert(s.attemptData.end(), bytes, bytes + size);
    }
    s.attempt.push_back(op);
}

void
TraceWriter::noteCompute(CoreId core, uint64_t instrs)
{
    note(core, TraceOpKind::Compute, 0, 0, kNoLabel, nullptr, instrs,
         0);
}

void
TraceWriter::noteLoad(CoreId core, Addr addr, uint32_t size)
{
    note(core, TraceOpKind::Load, addr, size, kNoLabel, nullptr, 0, 0);
}

void
TraceWriter::noteStore(CoreId core, Addr addr, uint32_t size,
                       const void *data)
{
    note(core, TraceOpKind::Store, addr, size, kNoLabel, data, 0, 0);
}

void
TraceWriter::noteLabeledLoad(CoreId core, Addr addr, uint32_t size,
                             Label label)
{
    note(core, TraceOpKind::LabeledLoad, addr, size, label, nullptr, 0,
         0);
}

void
TraceWriter::noteLabeledStore(CoreId core, Addr addr, uint32_t size,
                              Label label, const void *data)
{
    note(core, TraceOpKind::LabeledStore, addr, size, label, data, 0,
         0);
}

void
TraceWriter::noteGather(CoreId core, Addr addr, uint32_t size,
                        Label label)
{
    note(core, TraceOpKind::Gather, addr, size, label, nullptr, 0, 0);
}

void
TraceWriter::noteBarrier(CoreId core)
{
    assert(!streams_[core].inAttempt &&
           "barriers cannot appear inside transactions");
    note(core, TraceOpKind::Barrier, 0, 0, kNoLabel, nullptr, 0, 0);
}

void
TraceWriter::noteAnnotation(CoreId core, uint32_t code, uint64_t value)
{
    note(core, TraceOpKind::Annotation, 0, 0, kNoLabel, nullptr, code,
         value);
}

void
TraceWriter::beginAttempt(CoreId core)
{
    Stream &s = streams_[core];
    s.attempt.clear();
    s.attemptData.clear();
    s.inAttempt = true;
}

void
TraceWriter::commitAttempt(CoreId core)
{
    Stream &s = streams_[core];
    assert(s.inAttempt);
    encode(s, TraceOpKind::TxBegin, 0, 0, kNoLabel, nullptr, 0, 0);
    for (const PendingOp &op : s.attempt) {
        const uint8_t *data =
            op.dataLen ? s.attemptData.data() + op.dataOff : nullptr;
        encode(s, op.kind, op.addr, op.size, op.label, data, op.a,
               op.b);
    }
    encode(s, TraceOpKind::TxEnd, 0, 0, kNoLabel, nullptr, 0, 0);
    s.attempt.clear();
    s.attemptData.clear();
    s.inAttempt = false;
    commitOrder_.push_back(core);
}

void
TraceWriter::abortAttempt(CoreId core)
{
    Stream &s = streams_[core];
    assert(s.inAttempt);
    s.attempt.clear();
    s.attemptData.clear();
    s.inAttempt = false;
}

std::vector<uint8_t>
TraceWriter::serialize() const
{
    std::vector<uint8_t> out;
    size_t total = kHeaderBytes + streams_.size() * kThreadEntryBytes +
                   commitOrder_.size();
    for (const Stream &s : streams_)
        total += s.bytes.size();
    out.reserve(total);

    const auto put32 = [&out](uint32_t v) {
        for (int i = 0; i < 4; i++)
            out.push_back(uint8_t(v >> (8 * i)));
    };
    const auto put64 = [&out](uint64_t v) {
        for (int i = 0; i < 8; i++)
            out.push_back(uint8_t(v >> (8 * i)));
    };

    for (const char c : kMagic)
        out.push_back(uint8_t(c));
    put32(kVersion);
    put32(uint32_t(streams_.size()));
    put64(fingerprint_);
    put64(commitOrder_.size());
    for (const Stream &s : streams_) {
        put64(s.records);
        put64(s.bytes.size());
    }
    for (const Stream &s : streams_)
        out.insert(out.end(), s.bytes.begin(), s.bytes.end());
    for (const CoreId core : commitOrder_)
        putVarint(out, core);
    return out;
}

} // namespace commtm
