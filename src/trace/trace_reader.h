/**
 * @file
 * Trace parsing and validation (docs/ARCHITECTURE.md Sec. 11):
 * TraceReader::parse decodes a serialized capture into per-thread
 * record vectors plus the commit order, rejecting malformed input
 * with a field-precise diagnostic (which thread, record, and field),
 * mirroring CommitLog::deserialize.
 */

#ifndef COMMTM_TRACE_TRACE_READER_H
#define COMMTM_TRACE_TRACE_READER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"
#include "trace/trace_format.h"

namespace commtm {

/** One decoded record (see trace_format.h for field meanings). */
struct TraceRecord {
    TraceOpKind kind = TraceOpKind::Compute;
    Addr addr = 0;
    uint32_t size = 0;
    Label label = kNoLabel;
    uint64_t a = 0; //!< Compute instrs / Annotation code
    uint64_t b = 0; //!< Annotation value
    std::vector<uint8_t> data; //!< store operand bytes
};

/** A fully decoded capture. */
struct Trace {
    uint32_t version = 0;
    uint64_t configFingerprint = 0;
    std::vector<std::vector<TraceRecord>> threads;
    std::vector<CoreId> commitOrder;

    uint32_t numThreads() const { return uint32_t(threads.size()); }
};

class TraceReader
{
  public:
    /**
     * Decode @p buf into @p out. Returns false on malformed input and
     * sets @p error to a precise diagnostic. Validates structure
     * (header, stream bounds, record/byte counts, varint bounds,
     * opcode and label ranges, TxBegin/TxEnd balance, commit-order
     * core range, trailing bytes) — not the capture config: a trace
     * replays against any MachineConfig by design.
     */
    static bool parse(const std::vector<uint8_t> &buf, Trace *out,
                      std::string *error);
};

} // namespace commtm

#endif // COMMTM_TRACE_TRACE_READER_H
