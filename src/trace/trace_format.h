/**
 * @file
 * On-disk trace format shared by TraceWriter, TraceReader, and
 * tools/trace_info.py (docs/ARCHITECTURE.md Sec. 11). A trace is the
 * logical per-thread operation stream of one Machine run — the ops a
 * workload body issued through ThreadContext, recorded at the API
 * level (pre label demotion, pre lazy-store conversion) so a replay
 * re-resolves those decisions through the live machine it runs on.
 *
 * Layout (all integers little-endian; varints are LEB128):
 *
 *   header   8 B magic "CTMTRACE", u32 version, u32 numThreads,
 *            u64 configFingerprint, u64 commitCount        (32 B)
 *   table    numThreads x { u64 recordCount, u64 byteCount } (16 B each)
 *   streams  numThreads varint-encoded record streams, concatenated in
 *            thread order, byteCount bytes each
 *   commits  commitCount varint core ids — the functional commit order
 *            (the PR 6 commit log's order, captured at the same
 *            atomic-in-simulated-time commit point)
 *
 * Record encoding (one per ThreadContext API call, first byte = kind):
 *
 *   Compute       varint instrs
 *   Load          svarint addrDelta, varint size
 *   Store         svarint addrDelta, varint size, size operand bytes
 *   LabeledLoad   svarint addrDelta, varint size, u8 label
 *   LabeledStore  svarint addrDelta, varint size, u8 label, size bytes
 *   Gather        svarint addrDelta, varint size, u8 label
 *   TxBegin       (no payload) — start of a committed transaction
 *   TxEnd         (no payload)
 *   Barrier       (no payload)
 *   Annotation    varint code, varint value
 *
 * addrDelta is zigzag-encoded relative to the previous addressed
 * record of the same thread stream (initially 0): workload access
 * streams are strongly local, so deltas keep most records at 3-5
 * bytes. No access record straddles a cache line (bulk
 * readBytes/writeBytes calls capture one record per line chunk), so
 * every record replays through the single-issue untyped paths. Only
 * committed transaction attempts appear (aborted attempts are
 * discarded at capture, exactly like the commit log's pending
 * digests); a replayed transaction that aborts re-issues the recorded
 * ops from the TxBegin boundary, like any closed-loop body retry.
 */

#ifndef COMMTM_TRACE_TRACE_FORMAT_H
#define COMMTM_TRACE_TRACE_FORMAT_H

#include <cstdint>
#include <vector>

#include "sim/commit_log.h"
#include "sim/config.h"
#include "sim/types.h"

namespace commtm {

/** Record kinds of the per-thread streams (first byte of a record). */
enum class TraceOpKind : uint8_t {
    Compute = 0,
    Load = 1,
    Store = 2,
    LabeledLoad = 3,
    LabeledStore = 4,
    Gather = 5,
    TxBegin = 6,
    TxEnd = 7,
    Barrier = 8,
    Annotation = 9,
};

/** Annotation codes emitted by the commutative data-type library
 *  (structure-level ops; observation-only, like the records guide a
 *  reader but never affect replay timing). */
enum : uint32_t {
    kAnnotCounterAdd = 1,
    kAnnotListEnqueue = 2,
    kAnnotListDequeue = 3,
};

namespace trace {

constexpr char kMagic[8] = {'C', 'T', 'M', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 32;
constexpr size_t kThreadEntryBytes = 16;

/** Append @p v LEB128-encoded (7 bits per byte, high bit = more). */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
}

/** Zigzag-map a signed delta into the varint-friendly unsigneds. */
inline uint64_t
zigzag(int64_t v)
{
    return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

inline int64_t
unzigzag(uint64_t v)
{
    return int64_t(v >> 1) ^ -int64_t(v & 1);
}

/**
 * Fingerprint of the simulated-machine configuration a trace was
 * captured under, folded over every field that affects simulated
 * behavior (geometry, latencies, HTM policy, mode, seed) and none of
 * the observation-only knobs (recordCommits, checkInvariants,
 * captureTrace, scheduler cross-check cadence), which are bit-identity
 * -neutral by contract. Informational: replay accepts any config —
 * the fingerprint tells tools whether counters are comparable to the
 * capture run.
 */
inline uint64_t
configFingerprint(const MachineConfig &cfg)
{
    FnvDigest d;
    d.u32(cfg.numCores);
    d.u32(cfg.numTiles);
    d.u32(cfg.meshDim);
    d.u32(cfg.l1SizeKB);
    d.u32(cfg.l1Ways);
    d.u64(cfg.l1Latency);
    d.u32(cfg.l2SizeKB);
    d.u32(cfg.l2Ways);
    d.u64(cfg.l2Latency);
    d.u32(cfg.l3SizeKB);
    d.u32(cfg.l3Ways);
    d.u32(cfg.l3Banks);
    d.u64(cfg.l3BankLatency);
    d.u64(cfg.routerLatency);
    d.u64(cfg.linkLatency);
    d.u64(cfg.memLatency);
    d.u32(cfg.memControllers);
    d.u8(uint8_t(cfg.conflictDetection));
    d.u8(uint8_t(cfg.conflictPolicy));
    d.u64(cfg.backoffBase);
    d.u32(cfg.backoffMaxExp);
    d.u64(cfg.txBeginCost);
    d.u64(cfg.txCommitCost);
    d.u64(cfg.abortCost);
    d.u8(uint8_t(cfg.mode));
    d.u32(cfg.hwLabels);
    d.u64(cfg.reductionFixedCost);
    d.u32(cfg.gatherFanoutLimit);
    d.u64(cfg.schedQuantum);
    d.u64(cfg.seed);
    return d.value();
}

} // namespace trace
} // namespace commtm

#endif // COMMTM_TRACE_TRACE_FORMAT_H
