/**
 * @file
 * Trace capture (docs/ARCHITECTURE.md Sec. 11): TraceWriter records
 * each thread's logical op stream as the ThreadContext issue paths
 * call its note hooks. Strictly observation-only, same discipline as
 * the commit log: hooks buffer host-side state and never touch
 * simulated behavior, so the exact-counter baseline wall runs
 * bit-identical with capture enabled (COMMTM_CAPTURE_TRACE in CI).
 *
 * Transactional ops buffer per attempt and flush only at commit —
 * the captured stream holds committed attempts only, bracketed by
 * TxBegin/TxEnd records. commitAttempt() runs at the HtmManager
 * commit point, which is atomic in simulated time, so the trace's
 * commit order equals the functional commit order.
 */

#ifndef COMMTM_TRACE_TRACE_WRITER_H
#define COMMTM_TRACE_TRACE_WRITER_H

#include <cstdint>
#include <vector>

#include "sim/types.h"
#include "trace/trace_format.h"

namespace commtm {

class TraceWriter
{
  public:
    explicit TraceWriter(const MachineConfig &cfg);

    // --- capture hooks (ThreadContext issue paths) ---

    void noteCompute(CoreId core, uint64_t instrs);
    void noteLoad(CoreId core, Addr addr, uint32_t size);
    void noteStore(CoreId core, Addr addr, uint32_t size,
                   const void *data);
    void noteLabeledLoad(CoreId core, Addr addr, uint32_t size,
                         Label label);
    void noteLabeledStore(CoreId core, Addr addr, uint32_t size,
                          Label label, const void *data);
    void noteGather(CoreId core, Addr addr, uint32_t size, Label label);
    void noteBarrier(CoreId core);
    void noteAnnotation(CoreId core, uint32_t code, uint64_t value);

    /** A transaction attempt opened on @p core: start buffering. */
    void beginAttempt(CoreId core);
    /** The attempt committed: flush it (TxBegin, ops, TxEnd) to the
     *  thread stream and append @p core to the commit order. Must be
     *  called at the functional commit point, before the committing
     *  thread can yield. */
    void commitAttempt(CoreId core);
    /** The attempt aborted: discard its buffered ops. */
    void abortAttempt(CoreId core);

    // --- inspection / persistence ---

    uint32_t numThreads() const { return uint32_t(streams_.size()); }
    uint64_t recordsOf(CoreId core) const;
    uint64_t commits() const { return commitOrder_.size(); }
    uint64_t fingerprint() const { return fingerprint_; }

    /** Encode the trace (docs/ARCHITECTURE.md Sec. 11 format). Call
     *  after Machine::run(): a still-open attempt is not flushed. */
    std::vector<uint8_t> serialize() const;

  private:
    /** One buffered in-attempt op, encoded only if the attempt
     *  commits (operand bytes live in Stream::attemptData). */
    struct PendingOp {
        TraceOpKind kind;
        Addr addr = 0;
        uint32_t size = 0;
        Label label = kNoLabel;
        uint64_t a = 0; //!< Compute instrs / Annotation code
        uint64_t b = 0; //!< Annotation value
        uint32_t dataOff = 0;
        uint32_t dataLen = 0;
    };

    struct Stream {
        std::vector<uint8_t> bytes;
        uint64_t records = 0;
        Addr lastAddr = 0; //!< delta base: previous addressed record
        bool inAttempt = false;
        std::vector<PendingOp> attempt;
        std::vector<uint8_t> attemptData;
    };

    void note(CoreId core, TraceOpKind kind, Addr addr, uint32_t size,
              Label label, const void *data, uint64_t a, uint64_t b);
    void encode(Stream &s, TraceOpKind kind, Addr addr, uint32_t size,
                Label label, const uint8_t *data, uint64_t a,
                uint64_t b);

    uint64_t fingerprint_;
    std::vector<Stream> streams_;
    std::vector<CoreId> commitOrder_;
};

} // namespace commtm

#endif // COMMTM_TRACE_TRACE_WRITER_H
