/**
 * @file
 * Lazy version management: speculative writes are buffered per
 * transaction and only become visible at commit (LTM/TSX-style,
 * Sec. III-B1). The buffer is a byte-masked overlay keyed by cache line.
 *
 * Lines live in a FlatLineMap and commit application walks them in
 * ascending address order, so the order committed bytes reach memory
 * (and any counter derived from it) is platform-independent.
 */

#ifndef COMMTM_HTM_WRITE_BUFFER_H
#define COMMTM_HTM_WRITE_BUFFER_H

#include <array>
#include <cstring>

#include "sim/flat_map.h"
#include "sim/memory.h"
#include "sim/types.h"

namespace commtm {

/** Byte-granular speculative write overlay for one transaction. */
class WriteBuffer
{
  public:
    /** One buffered line: data plus a validity bit per byte. */
    struct Entry {
        std::array<uint8_t, kLineSize> data{};
        /** Bit i set iff data[i] holds a buffered byte. */
        uint64_t mask = 0;
    };
    static_assert(kLineSize == 64, "Entry::mask is one bit per byte");

    /**
     * Buffer @p size bytes of @p src at @p addr. Writes that straddle a
     * line boundary are split per line; an earlier version memcpy'd
     * past the 64-byte entry instead.
     */
    void
    write(Addr addr, const void *src, size_t size)
    {
        const auto *from = static_cast<const uint8_t *>(src);
        while (size > 0) {
            const uint32_t off = lineOffset(addr);
            const size_t chunk = std::min(size, size_t(kLineSize - off));
            Entry &e = lines_[lineAddr(addr)];
            std::memcpy(e.data.data() + off, from, chunk);
            e.mask |= maskFor(off, chunk);
            from += chunk;
            addr += chunk;
            size -= chunk;
        }
    }

    /**
     * Overlay buffered bytes onto @p out (the committed value of
     * [addr, addr+size)), giving the transaction's view. Handles
     * line-straddling ranges.
     */
    void
    overlay(Addr addr, void *out, size_t size) const
    {
        auto *dst = static_cast<uint8_t *>(out);
        while (size > 0) {
            const uint32_t off = lineOffset(addr);
            const size_t chunk = std::min(size, size_t(kLineSize - off));
            if (const auto e = lines_.find(lineAddr(addr))) {
                for (size_t i = 0; i < chunk; i++) {
                    if (e->mask & (uint64_t(1) << (off + i)))
                        dst[i] = e->data[off + i];
                }
            }
            dst += chunk;
            addr += chunk;
            size -= chunk;
        }
    }

    /** True iff the transaction buffered any write to @p line. */
    bool
    touches(Addr line) const
    {
        return lines_.contains(line);
    }

    bool empty() const { return lines_.empty(); }
    size_t numLines() const { return lines_.size(); }

    /**
     * Commit: hand every buffered line to @p apply — fn(Addr line,
     * const Entry &) — in ascending line-address order, so the merge
     * into committed state is deterministic across platforms.
     */
    template <typename Fn>
    void
    forEach(Fn &&apply) const
    {
        lines_.forEachSorted(
            [&](Addr line, const Entry &e) { apply(line, e); });
    }

    /** Abort: discard everything. */
    void clear() { lines_.clear(); }

  private:
    /** Mask with bits [off, off+len) set. */
    static uint64_t
    maskFor(uint32_t off, size_t len)
    {
        const uint64_t span =
            len >= 64 ? ~uint64_t(0) : (uint64_t(1) << len) - 1;
        return span << off;
    }

    FlatLineMap<Entry> lines_;
};

} // namespace commtm

#endif // COMMTM_HTM_WRITE_BUFFER_H
