/**
 * @file
 * Lazy version management: speculative writes are buffered per
 * transaction and only become visible at commit (LTM/TSX-style,
 * Sec. III-B1). The buffer is a byte-masked overlay keyed by cache line.
 */

#ifndef COMMTM_HTM_WRITE_BUFFER_H
#define COMMTM_HTM_WRITE_BUFFER_H

#include <array>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "sim/memory.h"
#include "sim/types.h"

namespace commtm {

/** Byte-granular speculative write overlay for one transaction. */
class WriteBuffer
{
  public:
    /** Buffer @p size bytes of @p src at @p addr (within one line). */
    void
    write(Addr addr, const void *src, size_t size)
    {
        Entry &e = lines_[lineAddr(addr)];
        const uint32_t off = lineOffset(addr);
        std::memcpy(e.data.data() + off, src, size);
        for (size_t i = 0; i < size; i++)
            e.mask[off + i] = true;
    }

    /**
     * Overlay buffered bytes onto @p out (the committed value of
     * [addr, addr+size)), giving the transaction's view.
     */
    void
    overlay(Addr addr, void *out, size_t size) const
    {
        auto it = lines_.find(lineAddr(addr));
        if (it == lines_.end())
            return;
        const Entry &e = it->second;
        const uint32_t off = lineOffset(addr);
        auto *dst = static_cast<uint8_t *>(out);
        for (size_t i = 0; i < size; i++) {
            if (e.mask[off + i])
                dst[i] = e.data[off + i];
        }
    }

    /** True iff the transaction buffered any write to @p line. */
    bool
    touches(Addr line) const
    {
        return lines_.count(line) != 0;
    }

    bool empty() const { return lines_.empty(); }
    size_t numLines() const { return lines_.size(); }

    /**
     * Commit: hand every buffered line to @p apply, which merges the
     * masked bytes into the committed location (SimMemory or a U copy).
     */
    void
    forEach(const std::function<void(Addr line,
                                     const std::array<uint8_t, kLineSize> &,
                                     const std::array<bool, kLineSize> &)>
                &apply) const
    {
        for (const auto &[line, e] : lines_)
            apply(line, e.data, e.mask);
    }

    /** Abort: discard everything. */
    void clear() { lines_.clear(); }

  private:
    struct Entry {
        std::array<uint8_t, kLineSize> data{};
        std::array<bool, kLineSize> mask{};
    };

    std::unordered_map<Addr, Entry> lines_;
};

} // namespace commtm

#endif // COMMTM_HTM_WRITE_BUFFER_H
