/**
 * @file
 * Transaction-abort signalling.
 *
 * Aborts unwind cooperatively, without C++ exceptions on the common
 * path: when a transaction must abort, the runtime latches a pending-
 * abort flag on the ThreadContext and every subsequent machine
 * operation (issue, compute, reads/writes) becomes a no-op returning
 * zero data. Workload code observes ThreadContext::txAborted() and
 * returns out of the transaction body; txRun() then backs off and
 * retries (see docs/ARCHITECTURE.md, "Abort control flow").
 *
 * AbortException remains as a thin fallback at the fiber boundary for
 * non-cooperative paths only: a body may still throw it to abort
 * explicitly, and the runtime force-throws it if a body keeps issuing
 * operations long after its transaction aborted (a bounded no-op
 * budget), guaranteeing termination for bodies that never check the
 * flag. txRun() catches it at the transaction boundary.
 */

#ifndef COMMTM_HTM_ABORT_H
#define COMMTM_HTM_ABORT_H

#include "sim/stats.h"

namespace commtm {

/** Thrown inside a simulated thread when its transaction must abort
 *  and the body did not cooperatively unwind (fallback path only). */
struct AbortException {
    AbortCause cause;
    /** Retry with labeled operations demoted to conventional ones
     *  (Sec. III-B4's unlabeled-access-to-labeled-data rule). */
    bool demoteLabeled = false;
};

} // namespace commtm

#endif // COMMTM_HTM_ABORT_H
