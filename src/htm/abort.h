/**
 * @file
 * Transaction-abort signalling. Aborts unwind the transaction body via a
 * C++ exception thrown inside the simulated thread's fiber; the runtime
 * catches it at the transaction boundary, backs off, and retries.
 */

#ifndef COMMTM_HTM_ABORT_H
#define COMMTM_HTM_ABORT_H

#include "sim/stats.h"

namespace commtm {

/** Thrown inside a simulated thread when its transaction must abort. */
struct AbortException {
    AbortCause cause;
    /** Retry with labeled operations demoted to conventional ones
     *  (Sec. III-B4's unlabeled-access-to-labeled-data rule). */
    bool demoteLabeled = false;
};

} // namespace commtm

#endif // COMMTM_HTM_ABORT_H
