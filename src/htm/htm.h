/**
 * @file
 * The eager-lazy HTM: eager conflict detection through the coherence
 * protocol, lazy (buffer-based) version management, timestamp-based
 * conflict resolution with NACKs, and randomized backoff (Sec. III-B).
 */

#ifndef COMMTM_HTM_HTM_H
#define COMMTM_HTM_HTM_H

#include <cassert>
#include <vector>

#include "htm/abort.h"
#include "htm/write_buffer.h"
#include "mem/coherence.h"
#include "sim/config.h"
#include "sim/flat_map.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace commtm {

class CommitLog;

/**
 * Per-machine transaction manager. One transaction context per core
 * (the paper's HTM is single-transaction-per-hardware-thread).
 *
 * HtmManager is the only production implementation of HtmHooks and is
 * final: MemorySystem dispatches to it directly on the access fast
 * path (see MemorySystem::setHtmManager), devirtualizing the hook
 * calls. The HtmHooks interface remains for tests that install
 * instrumented hooks.
 */
class HtmManager final : public HtmHooks
{
  public:
    HtmManager(const MachineConfig &cfg, MemorySystem &mem,
               SimMemory &memory);

    // --- transaction lifecycle (called by the runtime) ---

    /**
     * Start an attempt of a transaction. The timestamp is assigned on
     * the first attempt and kept across retries so older transactions
     * eventually win (livelock freedom, Sec. III-B1).
     */
    void beginAttempt(CoreId core);

    /**
     * Commit: applies the write buffer (U-held lines commit into the
     * core's U copy, everything else into SimMemory) and clears the
     * speculative sets. The caller must have observed the doomed flag
     * (and taken the abort path) first; commit never throws.
     *
     * Under lazy conflict detection this is also the arbitration point
     * (Sec. III-D): the committer aborts every concurrent transaction
     * whose read/write/labeled set intersects its write set, and its
     * buffered writes are made public with non-speculative stores.
     * Both walks visit lines in ascending address order, so victim
     * order and publication order are platform-independent.
     *
     * Commit is atomic in simulated time (no yields), so when a
     * CommitLog is attached the record sealed here lands in exact
     * functional commit order. @p now (the committer's cycle) is
     * recorded as the commit cycle; it never affects behavior.
     * @return extra commit latency (lazy write publication); 0 in
     *         eager mode, where the writes already own their lines.
     */
    Cycle commit(CoreId core, Cycle now = 0);

    /**
     * Locally abort the current attempt: discard the write buffer,
     * release the speculative sets. Returns the backoff delay (cycles)
     * the core must stall before retrying.
     */
    Cycle abortAttempt(CoreId core, AbortCause cause, Rng &rng);

    /** Finish a txRun (after commit): resets per-transaction state. */
    void finish(CoreId core);

    /** The core is inside an active transaction attempt. */
    bool active(CoreId core) const { return txs_[core].active; }

    /** The transaction was doomed by a remote abort; must unwind. */
    bool doomed(CoreId core) const { return txs_[core].doomed; }
    AbortCause doomCause(CoreId core) const { return txs_[core].doomCause; }

    /** Labeled ops demoted to plain ops for this (re-)execution. */
    bool demoted(CoreId core) const { return txs_[core].demoteLabeled; }
    void setDemoted(CoreId core) { txs_[core].demoteLabeled = true; }

    uint32_t attempts(CoreId core) const { return txs_[core].attempts; }

    WriteBuffer &writeBuffer(CoreId core) { return txs_[core].wb; }

    /** Attach the machine's commit log (nullptr = recording off).
     *  Observation-only: commit() additionally folds the committed
     *  conventional write-buffer lines into the log and seals the
     *  record. */
    void setCommitLog(CommitLog *log) { log_ = log; }

    // --- HtmHooks (called by the coherence protocol) ---
    // Inline and final: MemorySystem's direct-dispatch path relies on
    // these bodies being visible and non-virtual at the call site.
    bool
    inTx(CoreId c) const final
    {
        return txs_[c].active && !txs_[c].doomed;
    }

    Timestamp
    txTs(CoreId c) const final
    {
        assert(txs_[c].active);
        return txs_[c].ts;
    }

    bool
    specModified(CoreId c, Addr line) const final
    {
        return txs_[c].active && txs_[c].wb.touches(line);
    }

    void remoteAbort(CoreId victim, AbortCause cause) final;

    void
    noteSpecLine(CoreId c, Addr line, SpecKind kind) final
    {
        Tx &tx = txs_[c];
        assert(tx.active);
        tx.specLines.push_back(line);
        switch (kind) {
          case SpecKind::Read:
            tx.readSet.insert(line);
            break;
          case SpecKind::Write:
            tx.writeSet.insert(line);
            break;
          case SpecKind::Labeled:
            tx.labeledSet.insert(line);
            break;
        }
    }

  private:
    friend class InvariantChecker;

    struct Tx {
        bool active = false;
        bool doomed = false;
        AbortCause doomCause = AbortCause::Explicit;
        bool tsAssigned = false;
        Timestamp ts = 0;
        uint32_t attempts = 0;
        bool demoteLabeled = false;
        /** Lines with speculative L1 bits, for O(set) release. */
        std::vector<Addr> specLines;
        /** Signature-style sets, used for lazy commit-time arbitration
         *  (cache residency is not required for tracking). Flat and
         *  address-ordered so arbitration order is deterministic. */
        FlatLineSet readSet;
        FlatLineSet writeSet;
        FlatLineSet labeledSet;
        WriteBuffer wb;
    };

    /** Lazy mode: abort every concurrent transaction conflicting with
     *  the committer's write set. */
    void lazyArbitrate(CoreId committer);

    /** Clear all L1 speculative bits of @p core's transaction. */
    void releaseSpecSets(Tx &tx, CoreId core);

    const MachineConfig &cfg_;
    MemorySystem &mem_;
    SimMemory &memory_;
    CommitLog *log_ = nullptr;
    std::vector<Tx> txs_;
    Timestamp nextTs_ = 1;
};

} // namespace commtm

#endif // COMMTM_HTM_HTM_H
