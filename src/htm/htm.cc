/**
 * @file
 * HtmManager implementation: transaction lifecycle, speculative-set
 * tracking, write-buffer commit into SimMemory / U copies, remote
 * aborts, lazy commit-time arbitration, and randomized backoff.
 */

#include "htm/htm.h"

#include <algorithm>
#include <cassert>

#include "sim/check.h"
#include "sim/commit_log.h"

namespace commtm {

HtmManager::HtmManager(const MachineConfig &cfg, MemorySystem &mem,
                       SimMemory &memory)
    : cfg_(cfg), mem_(mem), memory_(memory), txs_(cfg.numCores)
{
    mem_.setHtmManager(this);
}

void
HtmManager::beginAttempt(CoreId core)
{
    Tx &tx = txs_[core];
    assert(!tx.active && "nested tx_begin must use the runtime's flat "
                         "nesting support");
    tx.active = true;
    tx.doomed = false;
    if (!tx.tsAssigned) {
        // Timestamps order whole transactions, not attempts: an aborted
        // transaction keeps its timestamp so it ages and eventually wins.
        tx.ts = nextTs_++;
        tx.tsAssigned = true;
    }
}

void
HtmManager::releaseSpecSets(Tx &tx, CoreId core)
{
    for (Addr line : tx.specLines)
        mem_.clearSpec(core, line);
    tx.specLines.clear();
    tx.readSet.clear();
    tx.writeSet.clear();
    tx.labeledSet.clear();
}

void
HtmManager::lazyArbitrate(CoreId committer)
{
    // Commit-time conflict detection (TCC/Bulk-style, Sec. III-D): the
    // committer wins against every concurrent transaction that read or
    // wrote a line it is about to publish. Labeled (commutative) users
    // of the same data do not conflict with each other; they only lose
    // to conventional writes. Victims are scanned in core order and
    // each victim's conflict is attributed to the lowest-addressed
    // conflicting line, so the abort-cause counters are deterministic.
    Tx &me = txs_[committer];
    const std::vector<Addr> write_lines = me.writeSet.sortedKeys();
    const std::vector<Addr> labeled_lines = me.labeledSet.sortedKeys();
    for (CoreId other = 0; other < CoreId(txs_.size()); other++) {
        if (other == committer)
            continue;
        Tx &o = txs_[other];
        if (!o.active || o.doomed)
            continue;
        AbortCause cause = AbortCause::WriteAfterRead;
        bool conflict = false;
        for (Addr line : write_lines) {
            if (o.writeSet.contains(line)) {
                conflict = true;
                cause = AbortCause::WriteAfterWrite;
                break;
            }
            if (o.readSet.contains(line)) {
                conflict = true;
                cause = AbortCause::WriteAfterRead;
                break;
            }
            if (o.labeledSet.contains(line)) {
                conflict = true;
                cause = AbortCause::LabeledConflict;
                break;
            }
        }
        // Published labeled (commutative) updates commute with each
        // other, but NOT with conventional readers or writers of the
        // same line: a transaction that read the full value saw a
        // state this commit just changed. Eager mode rejects exactly
        // this pair at access time (handleGETU battles conventional
        // sharers with ForLabeled); deferring those battles is only
        // sound if they are re-checked here. Without this, a claim
        // over a bounded cell could commit against a stale full read
        // whose token a concurrent labeled commit had already moved
        // (caught by the GridClaim fuzz wall).
        for (size_t i = 0; !conflict && i < labeled_lines.size(); i++) {
            const Addr line = labeled_lines[i];
            if (o.readSet.contains(line) || o.writeSet.contains(line)) {
                conflict = true;
                cause = AbortCause::LabeledConflict;
            }
        }
        if (conflict)
            remoteAbort(other, cause);
    }
}

Cycle
HtmManager::commit(CoreId core, Cycle now)
{
    Tx &tx = txs_[core];
    COMMTM_CHECK(tx.active, "commit on core %u with no transaction",
                 core);
    // txRun's commit point polls the doomed flag right before calling
    // commit, with no yield in between, and nothing in the commit
    // sequence below can doom the committer itself. Committing a
    // doomed transaction would publish conflicting speculative state.
    COMMTM_CHECK(!tx.doomed,
                 "core %u committing a doomed transaction (cause %d); "
                 "the caller must observe the doomed flag first",
                 core, int(tx.doomCause));
    Cycle publish_latency = 0;
    if (cfg_.conflictDetection == ConflictDetection::Lazy) {
        lazyArbitrate(core);
        // Publish buffered conventional writes: acquire each written
        // line exclusively with a non-speculative store, which also
        // invalidates remaining sharers. Labeled lines stay in U.
        // Address order keeps publication latency deterministic.
        for (Addr line : tx.writeSet.sortedKeys()) {
            Access a;
            a.core = core;
            a.addr = lineBase(line);
            a.size = kLineSize;
            a.op = MemOp::Store;
            const AccessResult r = mem_.access(a);
            COMMTM_CHECK(!r.mustAbort(),
                         "lazy commit publication of line 0x%llx "
                         "aborted; arbitration already ran",
                         (unsigned long long)line);
            publish_latency += r.latency;
        }
    }
    // Lazy versioning: make buffered speculative writes visible. Writes
    // to lines this core holds in U commit into the core's reducible
    // copy; everything else commits into simulated memory (Fig. 5).
    tx.wb.forEach([&](Addr line, const WriteBuffer::Entry &e) {
        // Observation-only recording: labeled lines commit into U
        // partials whose bytes are order-dependent; the write digest
        // covers only the conventional write set.
        if (log_ && !tx.labeledSet.contains(line))
            log_->noteWriteLine(core, line, e.mask, e.data.data());
        if (mem_.coreHasU(core, line)) {
            LineData &copy = mem_.uCopy(core, line);
            for (size_t i = 0; i < kLineSize; i++) {
                if (e.mask & (uint64_t(1) << i))
                    copy[i] = e.data[i];
            }
        } else {
            LineData committed = memory_.readLine(line);
            for (size_t i = 0; i < kLineSize; i++) {
                if (e.mask & (uint64_t(1) << i))
                    committed[i] = e.data[i];
            }
            memory_.writeLine(line, committed);
        }
    });
    tx.wb.clear();
    releaseSpecSets(tx, core);
    tx.active = false;
    // Seal inside commit: this function runs atomically in simulated
    // time, so the sealed order is the functional commit order.
    if (log_)
        log_->sealCommit(core, now);
    return publish_latency;
}

Cycle
HtmManager::abortAttempt(CoreId core, AbortCause cause, Rng &rng)
{
    (void)cause;
    Tx &tx = txs_[core];
    assert(tx.active);
    if (log_)
        log_->abortAttempt(core); // discard the attempt's digests
    tx.wb.clear();
    releaseSpecSets(tx, core);
    tx.active = false;
    tx.doomed = false;
    tx.attempts++;
    // Randomized exponential backoff avoids livelock pathologies. The
    // returned stall is advanced in one step by txRun, whose yield
    // registers a single far-future wakeup on the scheduler's ready
    // heap: a core parked here costs the scheduler nothing until its
    // backoff expires (rt/machine.cc, the wakeup-list loop).
    const uint32_t exp =
        std::min(tx.attempts, cfg_.backoffMaxExp);
    const Cycle window = cfg_.backoffBase << exp;
    return cfg_.abortCost + rng.below(window ? window : 1);
}

void
HtmManager::finish(CoreId core)
{
    Tx &tx = txs_[core];
    assert(!tx.active);
    tx.tsAssigned = false;
    tx.attempts = 0;
    tx.demoteLabeled = false;
}

void
HtmManager::remoteAbort(CoreId victim, AbortCause cause)
{
    Tx &tx = txs_[victim];
    if (!tx.active || tx.doomed)
        return;
    tx.doomed = true;
    tx.doomCause = cause;
    // Release the speculative sets immediately so the winning request
    // (and subsequent ones) proceed without re-conflicting; the victim
    // discards its buffered writes and unwinds when next scheduled.
    tx.wb.clear();
    releaseSpecSets(tx, victim);
}

} // namespace commtm
