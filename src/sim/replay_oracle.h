/**
 * @file
 * Replay oracle (docs/ARCHITECTURE.md Sec. 9): two standing checks
 * built on the commit log.
 *
 * (a) Differential mode replay — runDifferential() executes the same
 *     seeded workload under eager and under lazy conflict detection,
 *     requires semantically equivalent end states (the workload
 *     returns a canonical byte encoding: exact where the structure
 *     guarantees it, sorted-multiset where only the reduction is
 *     deterministic), and diffs the per-transaction labeled-op
 *     digests per core (DiffMode::Shape — operand bytes of partial
 *     values legitimately differ across modes).
 *
 * (b) Serial re-execution — ReplayOracle records one structure-level
 *     ModelOp per transactional structure call, attached to the
 *     transaction that committed it, and replaySerial() re-executes
 *     the recorded commit order one transaction at a time against
 *     pure software models (tests/models/), then diffs the final
 *     model states against the machine byte-for-byte. Because a
 *     committed transaction's reads are valid as of its commit in
 *     both eager and lazy modes, serial replay in commit order is
 *     exact under either scheme.
 *
 * Any structure gets the oracle for free by providing a
 * StructureModel and recording its ops; see the model headers under
 * tests/models/ for the registration pattern.
 */

#ifndef COMMTM_SIM_REPLAY_ORACLE_H
#define COMMTM_SIM_REPLAY_ORACLE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/commit_log.h"
#include "sim/config.h"
#include "sim/types.h"

namespace commtm {

class Machine;
class ThreadContext;

/**
 * One structure-level operation as seen by a software model: which
 * registered structure, which of its op kinds, the success flag the
 * simulated call returned, and its kind-defined operand/result words.
 */
struct ModelOp {
    uint32_t structId = 0;
    uint32_t kind = 0;
    bool ok = true;
    std::vector<uint64_t> args;
};

/**
 * Pure software model of one commutative structure. apply() replays
 * one recorded op and returns false (with a diagnostic) if the
 * recorded outcome is impossible given the model state — e.g. a
 * dequeue returned a value the model multiset does not hold, or a
 * release would mint a token past capacity. checkFinal() compares
 * end states; the default is a byte-for-byte diff of
 * snapshotMachine() against snapshotModel(), and models whose final
 * state is only determined up to commutative equivalence (e.g.
 * OrderedPut key ties) override it.
 */
class StructureModel
{
  public:
    virtual ~StructureModel() = default;

    virtual const char *name() const = 0;
    virtual bool apply(const ModelOp &op, std::string *diag) = 0;

    /** Canonical bytes of the committed simulated state. */
    virtual std::vector<uint8_t> snapshotMachine(Machine &machine) = 0;
    /** Canonical bytes of the model state (same encoding). */
    virtual std::vector<uint8_t> snapshotModel() = 0;

    virtual bool checkFinal(Machine &machine, std::string *diag);
};

/**
 * Records structure-level ops against the machine's commit log and
 * serially re-executes them. Construction requires recording to be
 * enabled (MachineConfig::recordCommits); recordOp() must be called
 * outside the transaction, right after the structure call returns —
 * the op is attached to the caller core's most recent committed
 * transaction, which is exactly the one the call ran (every library
 * structure op is one txRun, and the simulator is sequential).
 */
class ReplayOracle : public CommitLog::Listener
{
  public:
    explicit ReplayOracle(Machine &machine);
    ~ReplayOracle() override;

    ReplayOracle(const ReplayOracle &) = delete;
    ReplayOracle &operator=(const ReplayOracle &) = delete;

    /** Register a model; the returned id is ModelOp::structId. */
    uint32_t addModel(std::unique_ptr<StructureModel> model);

    StructureModel &model(uint32_t id) { return *models_[id]; }

    /** Attach @p op to @p ctx's most recent committed transaction. */
    void recordOp(ThreadContext &ctx, ModelOp op);

    /**
     * Replay the recorded commit order one transaction at a time
     * through the registered models, then run every model's
     * checkFinal against the machine. Returns false with a
     * diagnostic (txId, core, commit index, model, reason) on the
     * first divergence.
     */
    bool replaySerial(std::string *diag);

    /** Test-only fault injection: XOR 1 into byte @p byte_index of
     *  arg word @p arg_index of recorded op @p op_index of commit
     *  @p commit_index of @p core before replaying it, proving
     *  serial re-execution can detect a real divergence. */
    void setTestArgFlip(CoreId core, uint32_t commit_index,
                        uint32_t op_index, uint32_t arg_index,
                        uint32_t byte_index);

    // CommitLog::Listener
    void onCommit(const CommitRecord &rec) override;
    void onAbort(CoreId core) override { (void)core; }

  private:
    Machine &machine_;
    CommitLog &log_;
    std::vector<std::unique_ptr<StructureModel>> models_;
    /** Per core: 1 + txId of its most recent commit (0 = none). */
    std::vector<uint64_t> lastSealed_;
    /** Ops attached to each global commit, indexed by txId. */
    std::vector<std::vector<ModelOp>> opsByCommit_;

    bool flipArmed_ = false;
    CoreId flipCore_ = 0;
    uint32_t flipCommit_ = 0;
    uint32_t flipOp_ = 0;
    uint32_t flipArg_ = 0;
    uint32_t flipByte_ = 0;
};

/** What one differential run produces: its serialized commit log and
 *  a canonical byte encoding of the committed end state. */
struct DifferentialRun {
    std::vector<uint8_t> log;
    std::vector<uint8_t> endState;
};

struct DifferentialResult {
    bool ok = true;
    std::string diag;
};

/**
 * Differential mode replay: run @p workload under eager and lazy
 * conflict detection (recording enabled on both), require identical
 * canonical end states, and diff the two commit logs under
 * @p digest_mode (DiffMode::Shape for cross-mode comparison). The
 * workload must derive all randomness from the config seed and must
 * not share host state between invocations.
 */
DifferentialResult
runDifferential(MachineConfig base,
                const std::function<DifferentialRun(
                    const MachineConfig &)> &workload,
                DiffMode digest_mode);

} // namespace commtm

#endif // COMMTM_SIM_REPLAY_ORACLE_H
