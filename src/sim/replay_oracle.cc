/**
 * @file
 * ReplayOracle implementation: op attachment to the commit stream,
 * serial re-execution through the registered models, and the
 * eager/lazy differential harness.
 */

#include "sim/replay_oracle.h"

#include <algorithm>
#include <cassert>

#include "rt/machine.h"

namespace commtm {

bool
StructureModel::checkFinal(Machine &machine, std::string *diag)
{
    const std::vector<uint8_t> got = snapshotMachine(machine);
    const std::vector<uint8_t> want = snapshotModel();
    if (got == want)
        return true;
    if (diag) {
        *diag = std::string("model '") + name() +
                "': final state differs from the machine (" +
                std::to_string(want.size()) + " vs " +
                std::to_string(got.size()) + " snapshot bytes";
        const size_t n = std::min(got.size(), want.size());
        for (size_t i = 0; i < n; i++) {
            if (got[i] != want[i]) {
                *diag += ", first at byte " + std::to_string(i);
                break;
            }
        }
        *diag += ")";
    }
    return false;
}

namespace {

CommitLog &
requireLog(Machine &machine)
{
    CommitLog *log = machine.commitLog();
    assert(log &&
           "ReplayOracle requires MachineConfig::recordCommits");
    return *log;
}

} // namespace

ReplayOracle::ReplayOracle(Machine &machine)
    : machine_(machine), log_(requireLog(machine)),
      lastSealed_(log_.numCores(), 0)
{
    log_.addListener(this);
}

ReplayOracle::~ReplayOracle()
{
    log_.removeListener(this);
}

void
ReplayOracle::onCommit(const CommitRecord &rec)
{
    lastSealed_[rec.core] = rec.txId + 1;
}

uint32_t
ReplayOracle::addModel(std::unique_ptr<StructureModel> model)
{
    models_.push_back(std::move(model));
    return uint32_t(models_.size() - 1);
}

void
ReplayOracle::recordOp(ThreadContext &ctx, ModelOp op)
{
    assert(!ctx.inTx() &&
           "recordOp attaches to a committed transaction; call it "
           "after the structure call returns");
    assert(op.structId < models_.size());
    const uint64_t sealed = lastSealed_[ctx.id()];
    assert(sealed > 0 && "core has not committed yet");
    const uint64_t txId = sealed - 1;
    if (opsByCommit_.size() <= txId)
        opsByCommit_.resize(txId + 1);
    opsByCommit_[txId].push_back(std::move(op));
}

bool
ReplayOracle::replaySerial(std::string *diag)
{
    const std::vector<CommitRecord> &records = log_.records();
    for (const CommitRecord &rec : records) {
        if (rec.txId >= opsByCommit_.size())
            continue;
        uint32_t op_index = 0;
        for (const ModelOp &recorded : opsByCommit_[rec.txId]) {
            ModelOp op = recorded;
            if (flipArmed_ && rec.core == flipCore_ &&
                rec.commitIndex == flipCommit_ &&
                op_index == flipOp_ && flipArg_ < op.args.size()) {
                op.args[flipArg_] ^= uint64_t(1) << (8 * flipByte_);
            }
            std::string why;
            if (!models_[op.structId]->apply(op, &why)) {
                if (diag) {
                    *diag = "txId " + std::to_string(rec.txId) +
                            " (core " + std::to_string(rec.core) +
                            " commit #" +
                            std::to_string(rec.commitIndex) +
                            ", op " + std::to_string(op_index) +
                            ") model '" +
                            models_[op.structId]->name() +
                            "': " + why;
                }
                return false;
            }
            op_index++;
        }
    }
    for (const auto &model : models_) {
        std::string why;
        if (!model->checkFinal(machine_, &why)) {
            if (diag)
                *diag = why;
            return false;
        }
    }
    return true;
}

void
ReplayOracle::setTestArgFlip(CoreId core, uint32_t commit_index,
                             uint32_t op_index, uint32_t arg_index,
                             uint32_t byte_index)
{
    flipArmed_ = true;
    flipCore_ = core;
    flipCommit_ = commit_index;
    flipOp_ = op_index;
    flipArg_ = arg_index;
    flipByte_ = byte_index;
}

DifferentialResult
runDifferential(MachineConfig base,
                const std::function<DifferentialRun(
                    const MachineConfig &)> &workload,
                DiffMode digest_mode)
{
    base.recordCommits = true;
    MachineConfig eager = base;
    eager.conflictDetection = ConflictDetection::Eager;
    MachineConfig lazy = base;
    lazy.conflictDetection = ConflictDetection::Lazy;

    const DifferentialRun a = workload(eager);
    const DifferentialRun b = workload(lazy);

    DifferentialResult res;
    CommitLog log_a(0), log_b(0);
    std::string err;
    if (!CommitLog::deserialize(a.log, &log_a, &err)) {
        res.ok = false;
        res.diag = "eager log: " + err;
        return res;
    }
    if (!CommitLog::deserialize(b.log, &log_b, &err)) {
        res.ok = false;
        res.diag = "lazy log: " + err;
        return res;
    }
    const CommitLogDiff d =
        CommitLog::diff(log_a, log_b, digest_mode);
    if (!d.equal) {
        res.ok = false;
        res.diag = "eager vs lazy commit logs: " + d.message;
        return res;
    }
    if (a.endState != b.endState) {
        res.ok = false;
        res.diag = "eager vs lazy end states differ (" +
                   std::to_string(a.endState.size()) + " vs " +
                   std::to_string(b.endState.size()) + " bytes";
        const size_t n =
            std::min(a.endState.size(), b.endState.size());
        for (size_t i = 0; i < n; i++) {
            if (a.endState[i] != b.endState[i]) {
                res.diag += ", first at byte " + std::to_string(i);
                break;
            }
        }
        res.diag += ")";
        return res;
    }
    return res;
}

} // namespace commtm
