/**
 * @file
 * Functional backing store for the simulated address space, plus a simple
 * allocator. All committed (non-speculative, non-U) data lives here;
 * per-core U-state copies and transactional write buffers overlay it.
 */

#ifndef COMMTM_SIM_MEMORY_H
#define COMMTM_SIM_MEMORY_H

#include <array>
#include <cassert>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/types.h"

namespace commtm {

/** Raw contents of one 64-byte cache line. */
using LineData = std::array<uint8_t, kLineSize>;

/**
 * Sparse, paged simulated memory. Pages are allocated lazily and
 * zero-filled, so freshly allocated simulated data reads as zero.
 */
class SimMemory
{
  public:
    static constexpr uint32_t kPageBits = 12;
    static constexpr size_t kPageSize = 1ull << kPageBits;

    /** Copy @p size bytes at simulated address @p addr into @p out. */
    void
    read(Addr addr, void *out, size_t size) const
    {
        auto *dst = static_cast<uint8_t *>(out);
        while (size > 0) {
            const size_t off = addr & (kPageSize - 1);
            const size_t chunk = std::min(size, kPageSize - off);
            const uint8_t *page = findPage(addr >> kPageBits);
            if (page) {
                std::memcpy(dst, page + off, chunk);
            } else {
                std::memset(dst, 0, chunk);
            }
            dst += chunk;
            addr += chunk;
            size -= chunk;
        }
    }

    /** Copy @p size bytes from @p src into simulated memory at @p addr. */
    void
    write(Addr addr, const void *src, size_t size)
    {
        const auto *from = static_cast<const uint8_t *>(src);
        while (size > 0) {
            const size_t off = addr & (kPageSize - 1);
            const size_t chunk = std::min(size, kPageSize - off);
            uint8_t *page = getPage(addr >> kPageBits);
            std::memcpy(page + off, from, chunk);
            from += chunk;
            addr += chunk;
            size -= chunk;
        }
    }

    /** Typed helpers for small scalars. */
    template <typename T>
    T
    read(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    write(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /** Read/write a whole aligned cache line. */
    LineData
    readLine(Addr line) const
    {
        LineData data;
        read(lineBase(line), data.data(), kLineSize);
        return data;
    }

    void
    writeLine(Addr line, const LineData &data)
    {
        write(lineBase(line), data.data(), kLineSize);
    }

    /** Drop all contents (used between experiment repetitions). */
    void clear() { pages_.clear(); }

  private:
    using Page = std::array<uint8_t, kPageSize>;

    const uint8_t *
    findPage(Addr page_num) const
    {
        auto it = pages_.find(page_num);
        return it == pages_.end() ? nullptr : it->second->data();
    }

    uint8_t *
    getPage(Addr page_num)
    {
        auto &slot = pages_[page_num];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return slot->data();
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

/**
 * Bump allocator over the simulated address space. Simulated programs
 * never free; experiments reset the whole Machine instead. The base
 * address keeps line 0 unused so that Addr 0 can act as a null pointer.
 */
class SimAllocator
{
  public:
    explicit SimAllocator(Addr base = 0x10000) : next_(base) {}

    /** Allocate @p size bytes aligned to @p align (power of two). */
    Addr
    alloc(size_t size, size_t align = 8)
    {
        assert(align && !(align & (align - 1)));
        next_ = (next_ + align - 1) & ~(Addr(align) - 1);
        const Addr result = next_;
        next_ += size;
        return result;
    }

    /** Allocate a whole, line-aligned region of @p lines cache lines. */
    Addr
    allocLines(size_t lines)
    {
        return alloc(lines * kLineSize, kLineSize);
    }

    Addr watermark() const { return next_; }

  private:
    Addr next_;
};

} // namespace commtm

#endif // COMMTM_SIM_MEMORY_H
