/**
 * @file
 * Simulated machine configuration (paper Table I) and run-mode knobs.
 */

#ifndef COMMTM_SIM_CONFIG_H
#define COMMTM_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace commtm {

/** Which HTM system a Machine models. */
enum class SystemMode {
    /** Conventional eager-lazy HTM: labeled ops execute as normal ops. */
    BaselineHtm,
    /** CommTM: U state, labeled ops, reductions; gathers act as reads. */
    CommTmNoGather,
    /** Full CommTM including gather requests (Sec. IV). */
    CommTm,
};

/**
 * When conflicts are detected (Sec. III-D generalization). Eager is the
 * paper's baseline (LTM/TSX-style, conflicts flagged by coherence at
 * access time). Lazy is TCC/Bulk-style: transactional stores buffer
 * silently, and the committing transaction aborts every concurrent
 * transaction whose read/write set intersects its write set.
 * U-state interactions (reductions, gathers) are handled immediately in
 * both (see docs/ARCHITECTURE.md Sec. 6).
 */
enum class ConflictDetection {
    Eager,
    Lazy,
};

/** How conflicts between two transactions are resolved. */
enum class ConflictPolicy {
    /** Paper default: earlier timestamp wins, younger aborts
     *  (Sec. III-B1). */
    TimestampOlderWins,
    /** Ablation: the requester always wins; the holder aborts. */
    RequesterWins,
};

/**
 * Configuration of the simulated chip. Defaults reproduce Table I:
 * 128 cores in 16 tiles, 32KB L1D, 128KB L2, 64MB 16-bank L3, 4x4 mesh.
 * Geometry is fully parameterized — use forCores() for proportionally
 * scaled 256-, 512-, or N-core machines — and checked by validate()
 * when a Machine is built.
 */
struct MachineConfig {
    uint32_t numCores = 128;
    uint32_t numTiles = 16;          //!< cores are distributed over tiles
    uint32_t meshDim = 4;            //!< tiles fit a meshDim x meshDim grid

    // L1 data cache: 32KB, 8-way, private per-core.
    uint32_t l1SizeKB = 32;
    uint32_t l1Ways = 8;
    Cycle l1Latency = 1;

    // L2: 128KB, 8-way, private per-core, inclusive of L1.
    uint32_t l2SizeKB = 128;
    uint32_t l2Ways = 8;
    Cycle l2Latency = 6;

    // L3: 64MB, 16 banks, 16-way, shared, inclusive, in-cache directory.
    uint32_t l3SizeKB = 64 * 1024;
    uint32_t l3Ways = 16;
    uint32_t l3Banks = 16;           //!< directory banks, striped over tiles
    Cycle l3BankLatency = 15;

    // NoC: 4x4 mesh, 2-cycle routers, 1-cycle links (per hop).
    Cycle routerLatency = 2;
    Cycle linkLatency = 1;

    // Main memory.
    Cycle memLatency = 136;
    uint32_t memControllers = 4;

    // HTM.
    ConflictDetection conflictDetection = ConflictDetection::Eager;
    ConflictPolicy conflictPolicy = ConflictPolicy::TimestampOlderWins;
    /** Randomized-exponential backoff. Windows are kept close to the
     *  transaction service time: timestamp conflict resolution already
     *  guarantees the oldest transaction progresses, so backoff only
     *  needs to thin retry traffic, and oversized windows leave the
     *  serialized baseline idle between commits. */
    Cycle backoffBase = 16;
    uint32_t backoffMaxExp = 5;
    Cycle txBeginCost = 4;           //!< tx_begin/tx_end instruction cost
    Cycle txCommitCost = 4;
    Cycle abortCost = 12;            //!< pipeline flush + register restore
    /** Record every commit into Machine's CommitLog (sim/commit_log.h,
     *  docs/ARCHITECTURE.md Sec. 9). Strictly observation-only: the
     *  baseline wall runs bit-identical with it on. Also forced on by
     *  the COMMTM_RECORD_COMMITS environment variable (CI oracle
     *  legs). */
    bool recordCommits = false;
    /** Capture every thread's logical op stream into a TraceWriter
     *  (trace/trace_writer.h, docs/ARCHITECTURE.md Sec. 11). Strictly
     *  observation-only: the baseline wall runs bit-identical with it
     *  on. Also forced on by the COMMTM_CAPTURE_TRACE environment
     *  variable (CI baseline legs); a value containing '/' or '.' is
     *  taken as a file path the capture is serialized to after every
     *  Machine::run(). */
    bool captureTrace = false;
    /** Sweep the machine-wide invariant checker (sim/invariants.h,
     *  docs/ARCHITECTURE.md Sec. 10) at periodic scheduler sync points
     *  (and at the sync points the knobs below add). Strictly
     *  observation-only: the baseline wall runs bit-identical with it
     *  on. Also forced on by the COMMTM_CHECK_INVARIANTS environment
     *  variable: any value enables periodic sweeps; the value "commit"
     *  additionally forces invariantOnTxEnd and "drain" forces both
     *  invariantOnTxEnd and invariantOnDrain. */
    bool checkInvariants = false;
    /** Cycles between periodic invariant sweeps (0 = no periodic
     *  sweeps). Only meaningful with checkInvariants. */
    Cycle invariantPeriod = 100000;
    /** Additionally sweep after every transaction commit and abort.
     *  Meant for test-scale machines: a Table I bench commits millions
     *  of transactions, and a full sweep per commit swamps the run. */
    bool invariantOnTxEnd = false;
    /** Additionally sweep at the end of every directory drain loop —
     *  the densest sync point, meant for fuzz-scale machines whose
     *  caches are tiny; sweeping a Table I machine per miss is slow. */
    bool invariantOnDrain = false;

    // CommTM.
    SystemMode mode = SystemMode::CommTm;
    uint32_t hwLabels = kMaxHwLabels;
    /** Extra per-line cycles charged to a reduction/split handler run,
     *  on top of the handler's own simulated memory accesses. */
    Cycle reductionFixedCost = 8;

    /**
     * Maximum number of sharers a gather queries (0 = all, the paper's
     * design). The paper's future-work section suggests querying a
     * subset of sharers; with a limit, the directory forwards split
     * requests to the N donors nearest the requester on the mesh,
     * trading gather yield for latency and fewer split conflicts.
     */
    uint32_t gatherFanoutLimit = 0;

    /** Interleaving granularity: a running thread yields once it gets
     *  this many cycles ahead of the next-ready thread (zsim-style
     *  bound phase; see docs/ARCHITECTURE.md Sec. 2.1). */
    Cycle schedQuantum = 100;

    /** Cross-check the event-driven wakeup-list scheduler against the
     *  reference linear scan every N resumes (a Release-alive
     *  COMMTM_CHECK; docs/ARCHITECTURE.md Sec. 2.2). 0 selects the
     *  default cadence: every 1024 resumes in Debug builds, never in
     *  Release. The scheduler stress tests set 1 to verify every
     *  single pick; the COMMTM_SCHED_CROSSCHECK environment variable
     *  overrides either setting for any run. */
    uint32_t schedCrossCheckEvery = 0;

    uint64_t seed = 0x5eed;

    /** Tile that hosts core @p c (cores striped across tiles). */
    uint32_t coreTile(CoreId c) const { return c % numTiles; }
    /** Core that hosts simulated thread @p t. The identity mapping is
     *  deliberate: threads are created in a deterministic order, and
     *  with cores striped across tiles (coreTile) consecutive threads
     *  already spread over the whole mesh. */
    CoreId threadCore(uint32_t t) const { return CoreId(t); }
    /** L3 bank holding line @p line (address-interleaved). */
    uint32_t lineBank(Addr line) const { return line % l3Banks; }

    /**
     * Tile hosting L3 bank @p bank. With more banks than tiles the
     * banks stripe round-robin (each tile hosts l3Banks/numTiles
     * banks); with fewer, banks spread evenly so they do not crowd
     * the low-numbered tiles. validate() rejects ragged geometries, so
     * the divisions here are exact. bank == tile when l3Banks ==
     * numTiles (Table I and every forCores() machine).
     */
    uint32_t
    bankTile(uint32_t bank) const
    {
        return l3Banks >= numTiles ? bank % numTiles
                                   : bank * (numTiles / l3Banks);
    }

    /**
     * Table-I-proportioned geometry for a @p cores -core chip: the
     * default 8 cores per tile and one directory bank per tile, on the
     * smallest square mesh that seats all tiles. Any @p cores <= 128
     * returns the Table I machine unchanged, so results (and the
     * checked-in perf baselines) at paper scale are unaffected.
     */
    static MachineConfig forCores(uint32_t cores);

    /** Geometry sanity check; nullptr if consistent, else an error
     *  message. Machine aborts on a bad config at construction. */
    const char *validate() const;

    /** Number of lines in a per-core L1. */
    uint32_t l1Lines() const { return l1SizeKB * 1024 / kLineSize; }
    uint32_t l2Lines() const { return l2SizeKB * 1024 / kLineSize; }
    uint32_t l3Lines() const { return l3SizeKB * 1024 / kLineSize; }

    /** Human-readable one-line summary of the mode. */
    std::string modeName() const;
};

inline MachineConfig
MachineConfig::forCores(uint32_t cores)
{
    MachineConfig cfg;
    if (cores <= cfg.numCores)
        return cfg;
    cfg.numCores = cores;
    cfg.numTiles = (cores + 7) / 8;
    cfg.meshDim = 1;
    while (cfg.meshDim * cfg.meshDim < cfg.numTiles)
        cfg.meshDim++;
    cfg.l3Banks = cfg.numTiles;
    return cfg;
}

inline const char *
MachineConfig::validate() const
{
    if (numCores == 0)
        return "numCores must be positive";
    if (numTiles == 0 || numTiles > meshDim * meshDim)
        return "numTiles must be positive and fit the meshDim^2 grid";
    if (l3Banks == 0)
        return "l3Banks must be positive";
    if (l3Banks >= numTiles ? l3Banks % numTiles != 0
                            : numTiles % l3Banks != 0)
        return "l3Banks must evenly stripe over (or spread across) "
               "numTiles";
    if (l1Ways == 0 || l1Lines() % l1Ways != 0)
        return "L1 lines must divide evenly into ways";
    if (l2Ways == 0 || l2Lines() % l2Ways != 0)
        return "L2 lines must divide evenly into ways";
    if (l3Ways == 0 || l3Lines() % l3Ways != 0)
        return "L3 lines must divide evenly into ways";
    return nullptr;
}

inline std::string
MachineConfig::modeName() const
{
    switch (mode) {
      case SystemMode::BaselineHtm:   return "Baseline";
      case SystemMode::CommTmNoGather: return "CommTM w/o gather";
      case SystemMode::CommTm:        return "CommTM";
    }
    return "?";
}

} // namespace commtm

#endif // COMMTM_SIM_CONFIG_H
