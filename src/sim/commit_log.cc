/**
 * @file
 * CommitLog implementation: digest folding, sealing, the fixed-width
 * serialized format, and the three diff policies.
 */

#include "sim/commit_log.h"

#include <cassert>
#include <cstdio>
#include <cstring>

namespace commtm {

namespace {

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(uint8_t(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(uint8_t(v >> (8 * i)));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= uint32_t(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= uint64_t(p[i]) << (8 * i);
    return v;
}

std::string
hex(uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  (unsigned long long)v);
    return buf;
}

} // namespace

CommitLog::CommitLog(uint32_t num_cores)
    : pending_(num_cores), commits_(num_cores, 0)
{
}

void
CommitLog::noteLabeledOp(CoreId core, CommitOpKind kind, Addr addr,
                         Label label, const void *operand,
                         uint32_t size)
{
    Pending &p = pending_[core];
    const auto foldShape = [&](FnvDigest &d) {
        d.u8(uint8_t(kind));
        d.u64(addr);
        d.u8(label);
        d.u32(size);
    };
    foldShape(p.shape);
    foldShape(p.values);
    if (operand) {
        if (flipArmed_ && core == flipCore_ &&
            commits_[core] == flipCommit_ &&
            p.labeledOps == flipOp_ && flipByte_ < size) {
            // Test-only divergence injection (setTestOperandFlip).
            const auto *src = static_cast<const uint8_t *>(operand);
            for (uint32_t i = 0; i < size; i++)
                p.values.u8(i == flipByte_ ? uint8_t(src[i] ^ 1)
                                           : src[i]);
        } else {
            p.values.bytes(operand, size);
        }
    }
    p.labeledOps++;
}

void
CommitLog::noteWriteLine(CoreId core, Addr line, uint64_t mask,
                         const uint8_t *data)
{
    Pending &p = pending_[core];
    p.writes.u64(line);
    p.writes.u64(mask);
    for (size_t i = 0; i < kLineSize; i++) {
        if (mask & (uint64_t(1) << i))
            p.writes.u8(data[i]);
    }
    p.writeLines++;
}

void
CommitLog::sealCommit(CoreId core, Cycle commit_cycle)
{
    Pending &p = pending_[core];
    CommitRecord rec;
    rec.txId = records_.size();
    rec.core = core;
    rec.commitIndex = commits_[core]++;
    rec.commitCycle = commit_cycle;
    rec.labeledShape = p.shape.value();
    rec.labeledValues = p.values.value();
    rec.writeSet = p.writes.value();
    rec.labeledOps = p.labeledOps;
    rec.writeLines = p.writeLines;
    records_.push_back(rec);
    p = Pending{};
    for (Listener *l : listeners_)
        l->onCommit(records_.back());
}

void
CommitLog::abortAttempt(CoreId core)
{
    pending_[core] = Pending{};
    for (Listener *l : listeners_)
        l->onAbort(core);
}

void
CommitLog::addListener(Listener *listener)
{
    listeners_.push_back(listener);
}

void
CommitLog::removeListener(Listener *listener)
{
    for (size_t i = 0; i < listeners_.size(); i++) {
        if (listeners_[i] == listener) {
            listeners_.erase(listeners_.begin() + long(i));
            return;
        }
    }
}

void
CommitLog::setTestOperandFlip(CoreId core, uint32_t commit_index,
                              uint32_t op_index, uint32_t byte_index)
{
    flipArmed_ = true;
    flipCore_ = core;
    flipCommit_ = commit_index;
    flipOp_ = op_index;
    flipByte_ = byte_index;
}

std::vector<uint8_t>
CommitLog::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(kHeaderBytes + kRecordBytes * records_.size());
    // push_back loop, not a range insert: gcc 12's -O2 overflow
    // analysis misjudges insert-from-char-array into a byte vector
    // and fails -Werror (stringop-overflow false positive).
    for (const char c : kMagic)
        out.push_back(uint8_t(c));
    putU32(out, kVersion);
    putU32(out, numCores());
    putU64(out, records_.size());
    for (const CommitRecord &r : records_) {
        putU64(out, r.txId);
        putU32(out, r.core);
        putU32(out, r.commitIndex);
        putU64(out, r.commitCycle);
        putU64(out, r.labeledShape);
        putU64(out, r.labeledValues);
        putU64(out, r.writeSet);
        putU32(out, r.labeledOps);
        putU32(out, r.writeLines);
    }
    return out;
}

bool
CommitLog::deserialize(const std::vector<uint8_t> &buf, CommitLog *out,
                       std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (buf.size() < kHeaderBytes) {
        return fail("truncated header: " + std::to_string(buf.size()) +
                    " bytes, need " + std::to_string(kHeaderBytes));
    }
    if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0)
        return fail("bad magic: not a commit log");
    const uint32_t version = getU32(&buf[8]);
    if (version != kVersion) {
        return fail("unsupported version " + std::to_string(version));
    }
    const uint32_t num_cores = getU32(&buf[12]);
    const uint64_t count = getU64(&buf[16]);
    if (buf.size() != kHeaderBytes + kRecordBytes * count) {
        return fail("truncated records: header claims " +
                    std::to_string(count) + " records (" +
                    std::to_string(kHeaderBytes +
                                   kRecordBytes * count) +
                    " bytes), got " + std::to_string(buf.size()));
    }
    CommitLog log(num_cores);
    log.records_.reserve(count);
    for (uint64_t i = 0; i < count; i++) {
        const uint8_t *p = &buf[kHeaderBytes + kRecordBytes * i];
        CommitRecord r;
        r.txId = getU64(p + 0);
        r.core = getU32(p + 8);
        r.commitIndex = getU32(p + 12);
        r.commitCycle = getU64(p + 16);
        r.labeledShape = getU64(p + 24);
        r.labeledValues = getU64(p + 32);
        r.writeSet = getU64(p + 40);
        r.labeledOps = getU32(p + 48);
        r.writeLines = getU32(p + 52);
        if (r.txId != i) {
            return fail("record " + std::to_string(i) +
                        ": txId field is " + std::to_string(r.txId) +
                        ", expected " + std::to_string(i));
        }
        if (r.core >= num_cores) {
            return fail("record " + std::to_string(i) + " (txId " +
                        std::to_string(r.txId) +
                        "): core field is " + std::to_string(r.core) +
                        ", log has " + std::to_string(num_cores) +
                        " cores");
        }
        if (r.commitIndex != log.commits_[r.core]) {
            return fail(
                "record " + std::to_string(i) + " (txId " +
                std::to_string(r.txId) + "): commitIndex field is " +
                std::to_string(r.commitIndex) + ", expected " +
                std::to_string(log.commits_[r.core]) + " for core " +
                std::to_string(r.core));
        }
        log.commits_[r.core]++;
        log.records_.push_back(r);
    }
    *out = std::move(log);
    return true;
}

CommitLogDiff
CommitLog::diff(const CommitLog &a, const CommitLog &b, DiffMode mode)
{
    CommitLogDiff d;
    const auto fail = [&](const std::string &msg) {
        d.equal = false;
        d.message = msg;
        return d;
    };
    if (a.numCores() != b.numCores()) {
        return fail("core counts differ: " +
                    std::to_string(a.numCores()) + " vs " +
                    std::to_string(b.numCores()));
    }
    if (mode == DiffMode::Exact) {
        if (a.records_.size() != b.records_.size()) {
            return fail("record counts differ: " +
                        std::to_string(a.records_.size()) + " vs " +
                        std::to_string(b.records_.size()));
        }
        for (size_t i = 0; i < a.records_.size(); i++) {
            const CommitRecord &ra = a.records_[i];
            const CommitRecord &rb = b.records_[i];
            const auto at = [&](const char *field,
                                const std::string &va,
                                const std::string &vb) {
                return fail("record " + std::to_string(i) +
                            " (txId " + std::to_string(ra.txId) +
                            "): " + field + " " + va + " vs " + vb);
            };
            if (ra.core != rb.core)
                return at("core", std::to_string(ra.core),
                          std::to_string(rb.core));
            if (ra.commitIndex != rb.commitIndex)
                return at("commitIndex",
                          std::to_string(ra.commitIndex),
                          std::to_string(rb.commitIndex));
            if (ra.commitCycle != rb.commitCycle)
                return at("commitCycle",
                          std::to_string(ra.commitCycle),
                          std::to_string(rb.commitCycle));
            if (ra.labeledShape != rb.labeledShape)
                return at("labeledShape", hex(ra.labeledShape),
                          hex(rb.labeledShape));
            if (ra.labeledValues != rb.labeledValues)
                return at("labeledValues", hex(ra.labeledValues),
                          hex(rb.labeledValues));
            if (ra.writeSet != rb.writeSet)
                return at("writeSet", hex(ra.writeSet),
                          hex(rb.writeSet));
            if (ra.labeledOps != rb.labeledOps)
                return at("labeledOps", std::to_string(ra.labeledOps),
                          std::to_string(rb.labeledOps));
            if (ra.writeLines != rb.writeLines)
                return at("writeLines", std::to_string(ra.writeLines),
                          std::to_string(rb.writeLines));
        }
        return d;
    }
    // PerCore / Shape: compare each core's commit stream in order,
    // ignoring the global interleaving and cycle counts.
    std::vector<std::vector<const CommitRecord *>> byCoreA(a.numCores());
    std::vector<std::vector<const CommitRecord *>> byCoreB(b.numCores());
    for (const CommitRecord &r : a.records_)
        byCoreA[r.core].push_back(&r);
    for (const CommitRecord &r : b.records_)
        byCoreB[r.core].push_back(&r);
    for (uint32_t c = 0; c < a.numCores(); c++) {
        if (byCoreA[c].size() != byCoreB[c].size()) {
            return fail("core " + std::to_string(c) + " committed " +
                        std::to_string(byCoreA[c].size()) + " vs " +
                        std::to_string(byCoreB[c].size()) +
                        " transactions");
        }
        for (size_t i = 0; i < byCoreA[c].size(); i++) {
            const CommitRecord &ra = *byCoreA[c][i];
            const CommitRecord &rb = *byCoreB[c][i];
            const auto at = [&](const char *field,
                                const std::string &va,
                                const std::string &vb) {
                return fail("core " + std::to_string(c) +
                            " commit #" + std::to_string(i) +
                            " (txId " + std::to_string(ra.txId) +
                            " vs " + std::to_string(rb.txId) +
                            "): " + field + " " + va + " vs " + vb);
            };
            if (ra.labeledShape != rb.labeledShape)
                return at("labeledShape", hex(ra.labeledShape),
                          hex(rb.labeledShape));
            if (ra.labeledOps != rb.labeledOps)
                return at("labeledOps", std::to_string(ra.labeledOps),
                          std::to_string(rb.labeledOps));
            if (mode == DiffMode::Shape)
                continue;
            if (ra.labeledValues != rb.labeledValues)
                return at("labeledValues", hex(ra.labeledValues),
                          hex(rb.labeledValues));
            if (ra.writeSet != rb.writeSet)
                return at("writeSet", hex(ra.writeSet),
                          hex(rb.writeSet));
            if (ra.writeLines != rb.writeLines)
                return at("writeLines", std::to_string(ra.writeLines),
                          std::to_string(rb.writeLines));
        }
    }
    return d;
}

} // namespace commtm
