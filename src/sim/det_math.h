/**
 * @file
 * Bit-deterministic transcendental helpers for the arrival generators
 * (rt/arrival.h, docs/ARCHITECTURE.md Sec. 12). The exact-counter
 * baseline wall requires every simulated run to be bit-identical
 * across compilers and C libraries, but libm makes no cross-platform
 * accuracy promise for log/exp/pow — two glibc versions may round the
 * same input differently. These implementations use only IEEE-754
 * basic operations (+, -, *, /) plus the exact frexp/ldexp/floor, so
 * every platform computes the same bits. Accuracy is ~1e-12 relative,
 * far tighter than the generators need; determinism is the contract.
 */

#ifndef COMMTM_SIM_DET_MATH_H
#define COMMTM_SIM_DET_MATH_H

#include <cassert>
#include <cmath>

namespace commtm {
namespace detmath {

inline constexpr double kLn2 = 0.6931471805599453;
inline constexpr double kInvLn2 = 1.4426950408889634;

/**
 * Base-2 logarithm of @p x (> 0). Decomposes x = m * 2^e with frexp
 * (exact), then sums the atanh series for ln(m) with m in [0.5, 1):
 * r = (m-1)/(m+1) has |r| <= 1/3, so 11 odd-power terms leave a
 * remainder below 1e-11.
 */
inline double
detLog2(double x)
{
    assert(x > 0.0);
    int e = 0;
    const double m = std::frexp(x, &e); // m in [0.5, 1)
    const double r = (m - 1.0) / (m + 1.0);
    const double r2 = r * r;
    double term = r;
    double sum = r;
    for (int k = 3; k <= 23; k += 2) {
        term *= r2;
        sum += term / double(k);
    }
    return double(e) + 2.0 * sum * kInvLn2;
}

/** Natural logarithm of @p x (> 0). */
inline double
detLog(double x)
{
    return detLog2(x) * kLn2;
}

/**
 * 2 to the power @p y. Splits y = n + f with f in [0, 1) (floor is
 * exact), evaluates e^(f ln 2) by Taylor series (18 terms: the
 * remainder is below 1e-17 at f ln 2 <= 0.694), and scales by 2^n
 * with ldexp (exact). |y| is clamped to the double exponent range.
 */
inline double
detExp2(double y)
{
    if (y < -1022.0)
        return 0.0;
    if (y > 1023.0)
        y = 1023.0;
    const double n = std::floor(y);
    const double z = (y - n) * kLn2;
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k <= 18; k++) {
        term *= z / double(k);
        sum += term;
    }
    return std::ldexp(sum, int(n));
}

/** @p x (> 0) to the power @p y. */
inline double
detPow(double x, double y)
{
    return detExp2(y * detLog2(x));
}

} // namespace detmath
} // namespace commtm

#endif // COMMTM_SIM_DET_MATH_H
