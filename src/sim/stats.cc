/**
 * @file
 * Statistics aggregation and the human-readable report, plus the
 * abort-cause and waste-bucket name tables (Fig. 18 categories).
 */

#include "sim/stats.h"

#include <algorithm>
#include <sstream>

namespace commtm {

const char *
abortCauseName(AbortCause cause)
{
    switch (cause) {
      case AbortCause::ReadAfterWrite:     return "ReadAfterWrite";
      case AbortCause::WriteAfterRead:     return "WriteAfterRead";
      case AbortCause::GatherAfterLabeled: return "GatherAfterLabeled";
      case AbortCause::WriteAfterWrite:    return "WriteAfterWrite";
      case AbortCause::LabeledConflict:    return "LabeledConflict";
      case AbortCause::Capacity:           return "Capacity";
      case AbortCause::UEviction:          return "UEviction";
      case AbortCause::SelfDemotion:       return "SelfDemotion";
      case AbortCause::Explicit:           return "Explicit";
      default:                             return "?";
    }
}

WasteBucket
wasteBucket(AbortCause cause)
{
    switch (cause) {
      case AbortCause::ReadAfterWrite:     return WasteBucket::ReadAfterWrite;
      case AbortCause::WriteAfterRead:     return WasteBucket::WriteAfterRead;
      case AbortCause::GatherAfterLabeled:
        return WasteBucket::GatherAfterLabeled;
      default:                             return WasteBucket::Others;
    }
}

const char *
wasteBucketName(WasteBucket bucket)
{
    switch (bucket) {
      case WasteBucket::ReadAfterWrite:     return "Read after Write";
      case WasteBucket::WriteAfterRead:     return "Write after Read";
      case WasteBucket::GatherAfterLabeled:
        return "Gather after Labeled access";
      case WasteBucket::Others:             return "Others";
      default:                              return "?";
    }
}

ThreadStats
StatsSnapshot::aggregateThreads() const
{
    ThreadStats sum;
    for (const auto &t : threads) {
        sum.nonTxCycles += t.nonTxCycles;
        sum.txCommittedCycles += t.txCommittedCycles;
        sum.txAbortedCycles += t.txAbortedCycles;
        for (size_t i = 0; i < sum.wastedByCause.size(); i++)
            sum.wastedByCause[i] += t.wastedByCause[i];
        sum.txStarted += t.txStarted;
        sum.txCommitted += t.txCommitted;
        sum.txAborted += t.txAborted;
        for (size_t i = 0; i < sum.abortsByCause.size(); i++)
            sum.abortsByCause[i] += t.abortsByCause[i];
        sum.instrs += t.instrs;
        sum.labeledInstrs += t.labeledInstrs;
    }
    return sum;
}

Cycle
StatsSnapshot::runtimeCycles() const
{
    Cycle max = 0;
    for (const auto &t : threads)
        max = std::max(max, t.totalCycles());
    return max;
}

std::string
StatsSnapshot::report() const
{
    const ThreadStats sum = aggregateThreads();
    std::ostringstream os;
    os << "runtime cycles: " << runtimeCycles() << "\n"
       << "core cycles: nonTx=" << sum.nonTxCycles
       << " txCommitted=" << sum.txCommittedCycles
       << " txAborted=" << sum.txAbortedCycles << "\n"
       << "transactions: started=" << sum.txStarted
       << " committed=" << sum.txCommitted
       << " aborted=" << sum.txAborted << "\n";
    os << "aborts by cause:";
    for (size_t i = 0; i < sum.abortsByCause.size(); i++) {
        if (sum.abortsByCause[i]) {
            os << " " << abortCauseName(AbortCause(i)) << "="
               << sum.abortsByCause[i];
        }
    }
    os << "\nwasted cycles:";
    for (size_t i = 0; i < sum.wastedByCause.size(); i++) {
        os << " [" << wasteBucketName(WasteBucket(i)) << "]="
           << sum.wastedByCause[i];
    }
    os << "\nlabeled instr fraction: "
       << (sum.instrs ? double(sum.labeledInstrs) / double(sum.instrs) : 0.0)
       << "\n";
    os << "L3 GETs: GETS=" << machine.l3Gets[size_t(GetType::GETS)]
       << " GETX=" << machine.l3Gets[size_t(GetType::GETX)]
       << " GETU=" << machine.l3Gets[size_t(GetType::GETU)] << "\n"
       << "L1 miss=" << machine.l1Misses << " L2 miss=" << machine.l2Misses
       << " L3 miss=" << machine.l3Misses << "\n"
       << "reductions=" << machine.reductions
       << " gathers=" << machine.gathers << " splits=" << machine.splits
       << " nacks=" << machine.nacks << "\n";
    return os.str();
}

} // namespace commtm
