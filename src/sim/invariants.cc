/**
 * @file
 * InvariantChecker implementation: the full-machine sweep over the
 * directory, private tag arrays, per-core U copies, and HTM signature
 * state, plus the structured-diagnostic formatting and the
 * abort-on-violation production entry point. See
 * docs/ARCHITECTURE.md Sec. 10 for the invariant catalog.
 */

#include "sim/invariants.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "htm/htm.h"
#include "mem/coherence.h"
#include "sim/check.h"

namespace commtm {

void
commtmCheckFail(const char *file, int line, const char *expr,
                const char *fmt, ...)
{
    fprintf(stderr, "%s:%d: CHECK failed: %s", file, line, expr);
    if (fmt && fmt[0]) {
        fprintf(stderr, " (");
        va_list args;
        va_start(args, fmt);
        vfprintf(stderr, fmt, args);
        va_end(args);
        fprintf(stderr, ")");
    }
    fprintf(stderr, "\n");
    abort();
}

const char *
invariantKindName(InvariantKind kind)
{
    switch (kind) {
      case InvariantKind::DirSharerNotPresent:  return "DirSharerNotPresent";
      case InvariantKind::PrivLineNotInDir:     return "PrivLineNotInDir";
      case InvariantKind::ExclusivityViolation: return "ExclusivityViolation";
      case InvariantKind::DirStateMismatch:     return "DirStateMismatch";
      case InvariantKind::SharerCountMismatch:  return "SharerCountMismatch";
      case InvariantKind::ReservedWayViolation: return "ReservedWayViolation";
      case InvariantKind::ULabelMismatch:       return "ULabelMismatch";
      case InvariantKind::UCopyMissing:         return "UCopyMissing";
      case InvariantKind::UCopyOrphan:          return "UCopyOrphan";
      case InvariantKind::InclusionViolation:   return "InclusionViolation";
      case InvariantKind::SpecBitsOutsideTx:    return "SpecBitsOutsideTx";
      case InvariantKind::SignatureSetMismatch: return "SignatureSetMismatch";
      case InvariantKind::WriteBufferNotInSet:  return "WriteBufferNotInSet";
      case InvariantKind::SpecStateLeak:        return "SpecStateLeak";
      case InvariantKind::HandlerDepthExceeded: return "HandlerDepthExceeded";
    }
    return "?";
}

const char *
InvariantChecker::syncPointName(SyncPoint where)
{
    switch (where) {
      case SyncPoint::DrainEnd: return "drain-end";
      case SyncPoint::Commit:   return "commit";
      case SyncPoint::Abort:    return "abort";
      case SyncPoint::Periodic: return "periodic";
      case SyncPoint::Manual:   return "manual";
    }
    return "?";
}

namespace {

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

/** "{0,3,17}" rendering of a sharer set (capped for huge sets). */
std::string
formatSharers(const Sharers &sharers)
{
    std::string out = "{";
    uint32_t printed = 0;
    sharers.forEach([&](CoreId s) {
        if (printed >= 16) {
            if (printed == 16)
                out += ",...";
            printed++;
            return;
        }
        appendf(out, printed ? ",%u" : "%u", s);
        printed++;
    });
    out += "}";
    return out;
}

bool
isULine(const PrivLine &entry)
{
    return entry.state == PrivState::U;
}

} // namespace

InvariantChecker::InvariantChecker(const MachineConfig &cfg,
                                   const MemorySystem &mem,
                                   const HtmManager &htm)
    : cfg_(cfg), mem_(mem), htm_(htm)
{
}

void
InvariantChecker::sweepDirectory(std::vector<InvariantViolation> &out) const
{
    // Cores whose private (L2) hierarchy actually holds a line, as
    // "{...}" — the sharer-diff half of the diagnostics. Only runs on
    // violations, so the O(cores) scan never costs a clean sweep.
    const auto format_holders = [&](Addr line) {
        std::string holders = "{";
        uint32_t printed = 0;
        for (CoreId c = 0; c < cfg_.numCores && printed <= 16; c++) {
            if (!mem_.cores_[c]->l2.lookup(line))
                continue;
            if (printed < 16)
                appendf(holders, printed ? ",%u" : "%u", c);
            else
                holders += ",...";
            printed++;
        }
        holders += "}";
        return holders;
    };

    mem_.l3_.forEach([&](const L3Line &e) {
        const Addr line = e.line;
        const uint32_t num_sharers = e.sharers.count();
        const auto add = [&](InvariantKind kind, CoreId core,
                             const char *what) {
            InvariantViolation v;
            v.kind = kind;
            v.line = line;
            v.core = core;
            appendf(v.message,
                    "line=0x%llx dir=%s label=%u sharers=%s priv=%s: %s",
                    (unsigned long long)line, dirStateName(e.dir),
                    unsigned(e.label), formatSharers(e.sharers).c_str(),
                    format_holders(line).c_str(), what);
            out.push_back(std::move(v));
        };

        // Sharer-count rules per directory state.
        if (e.dir == DirState::NonCached && num_sharers != 0)
            add(InvariantKind::SharerCountMismatch, kNoCore,
                "NonCached line has sharers");
        if ((e.dir == DirState::S || e.dir == DirState::U) &&
            num_sharers == 0) {
            add(InvariantKind::SharerCountMismatch, kNoCore,
                "S/U line has no sharers");
        }
        if (e.dir == DirState::M && num_sharers != 1)
            add(InvariantKind::ExclusivityViolation, kNoCore,
                "M line must have exactly one owner");

        // Label rules: U lines carry a registered label, others none.
        if (e.dir == DirState::U &&
            (e.label == kNoLabel || e.label >= mem_.labels_.size())) {
            add(InvariantKind::ULabelMismatch, kNoCore,
                "U line with an unregistered label");
        }
        if (e.dir != DirState::U && e.label != kNoLabel)
            add(InvariantKind::ULabelMismatch, kNoCore,
                "non-U line carries a label");

        // Per-sharer: the private hierarchy must agree with the mask.
        e.sharers.forEach([&](CoreId s) {
            if (s >= cfg_.numCores) {
                add(InvariantKind::DirSharerNotPresent, s,
                    "sharer id beyond the machine");
                return;
            }
            const PrivLine *e2 = mem_.cores_[s]->l2.lookup(line);
            if (!e2) {
                add(InvariantKind::DirSharerNotPresent, s,
                    "sharer holds no private copy");
                return;
            }
            switch (e.dir) {
              case DirState::NonCached:
                break; // already reported above
              case DirState::S:
                if (e2->state != PrivState::S) {
                    add(InvariantKind::DirStateMismatch, s,
                        privStateName(e2->state));
                }
                break;
              case DirState::M:
                if (e2->state != PrivState::E &&
                    e2->state != PrivState::M) {
                    add(InvariantKind::ExclusivityViolation, s,
                        privStateName(e2->state));
                }
                break;
              case DirState::U:
                if (e2->state != PrivState::U) {
                    add(InvariantKind::DirStateMismatch, s,
                        privStateName(e2->state));
                } else if (e2->label != e.label) {
                    add(InvariantKind::ULabelMismatch, s,
                        "private U label differs from directory");
                }
                if (!mem_.cores_[s]->uCopies.contains(line)) {
                    add(InvariantKind::UCopyMissing, s,
                        "dir-U sharer holds no U copy");
                }
                break;
            }
        });
    });
}

void
InvariantChecker::sweepPrivate(std::vector<InvariantViolation> &out) const
{
    for (CoreId c = 0; c < cfg_.numCores; c++) {
        const auto &pc = *mem_.cores_[c];
        const auto add = [&](InvariantKind kind, Addr line,
                             const char *what) {
            const PrivLine *l1 = pc.l1.lookup(line);
            const PrivLine *l2 = pc.l2.lookup(line);
            InvariantViolation v;
            v.kind = kind;
            v.line = line;
            v.core = c;
            appendf(v.message, "core=%u line=0x%llx l1=%s l2=%s dir=%s: %s",
                    c, (unsigned long long)line,
                    privStateName(l1 ? l1->state : PrivState::I),
                    privStateName(l2 ? l2->state : PrivState::I),
                    dirStateName(mem_.dirState(line)), what);
            out.push_back(std::move(v));
        };

        // L2 entries: L3 inclusion + directory agreement.
        pc.l2.forEach([&](const PrivLine &v) {
            const L3Line *e = mem_.l3_.lookup(v.line);
            if (!e || e->dir == DirState::NonCached ||
                !e->sharers.test(c)) {
                add(InvariantKind::PrivLineNotInDir, v.line,
                    "private copy untracked by the directory");
                return;
            }
            switch (v.state) {
              case PrivState::I:
                add(InvariantKind::DirStateMismatch, v.line,
                    "valid private entry in state I");
                break;
              case PrivState::S:
                if (e->dir != DirState::S) {
                    add(InvariantKind::DirStateMismatch, v.line,
                        "S copy of a non-dir-S line");
                }
                break;
              case PrivState::E:
              case PrivState::M:
                if (e->dir != DirState::M) {
                    add(InvariantKind::ExclusivityViolation, v.line,
                        "exclusive copy of a non-dir-M line");
                }
                break;
              case PrivState::U:
                if (e->dir != DirState::U) {
                    add(InvariantKind::DirStateMismatch, v.line,
                        "U copy of a non-dir-U line");
                }
                break;
            }
        });

        // L1 entries: inclusion in (and agreement with) the L2.
        pc.l1.forEach([&](const PrivLine &v) {
            const PrivLine *e2 = pc.l2.lookup(v.line);
            if (!e2) {
                add(InvariantKind::InclusionViolation, v.line,
                    "L1 line missing from the inclusive L2");
            } else if (e2->state != v.state || e2->label != v.label) {
                add(InvariantKind::InclusionViolation, v.line,
                    "L1 and L2 disagree on state/label");
            }
        });

        // Reserved-way rule (Sec. III-B4): every set keeps >= 1 non-U
        // way. Report each offending set once (keyed by its lowest U
        // line so a full-U set yields one diagnostic, not ways_ of
        // them).
        const auto check_reserved = [&](const CacheArray<PrivLine> &arr,
                                        const char *level) {
            arr.forEach([&](const PrivLine &v) {
                if (v.state != PrivState::U)
                    return;
                if (arr.countInSet(v.line, isULine) < arr.ways())
                    return;
                bool lowest = true;
                arr.forEach([&](const PrivLine &o) {
                    if (o.state == PrivState::U && o.line < v.line &&
                        o.line % arr.numSets() == v.line % arr.numSets())
                        lowest = false;
                });
                if (!lowest)
                    return;
                InvariantViolation viol;
                viol.kind = InvariantKind::ReservedWayViolation;
                viol.line = v.line;
                viol.core = c;
                appendf(viol.message,
                        "core=%u %s set %llu: all %u ways hold U lines "
                        "(reserved-way rule)",
                        c, level,
                        (unsigned long long)(v.line % arr.numSets()),
                        arr.ways());
                out.push_back(std::move(viol));
            });
        };
        check_reserved(pc.l1, "L1");
        check_reserved(pc.l2, "L2");

        // U copies: every one must be a directory-U sharer's.
        for (Addr line : pc.uCopies.sortedKeys()) {
            const L3Line *e = mem_.l3_.lookup(line);
            if (!e || e->dir != DirState::U || !e->sharers.test(c)) {
                add(InvariantKind::UCopyOrphan, line,
                    "U copy without a dir-U sharer bit");
            }
        }
    }
}

void
InvariantChecker::sweepHtm(std::vector<InvariantViolation> &out) const
{
    if (mem_.handlerDepth_ > 1) {
        InvariantViolation v;
        v.kind = InvariantKind::HandlerDepthExceeded;
        appendf(v.message, "handlerDepth=%u (must be <= 1)",
                mem_.handlerDepth_);
        out.push_back(std::move(v));
    }

    for (CoreId c = 0; c < cfg_.numCores; c++) {
        const HtmManager::Tx &tx = htm_.txs_[c];
        // Doomed-but-active counts as live: under cooperative unwind
        // the doomed transaction keeps executing until it polls its
        // fate, and its accesses legally re-note spec state after
        // remoteAbort's eager release. Only a tx that has finished
        // (active=false) must hold nothing speculative.
        const bool live = tx.active;
        const auto add = [&](InvariantKind kind, Addr line,
                             const char *what) {
            InvariantViolation v;
            v.kind = kind;
            v.line = line;
            v.core = c;
            appendf(v.message,
                    "core=%u line=0x%llx active=%d doomed=%d "
                    "sets[r/w/l]=%zu/%zu/%zu wb=%zu: %s",
                    c, (unsigned long long)line, int(tx.active),
                    int(tx.doomed), tx.readSet.size(), tx.writeSet.size(),
                    tx.labeledSet.size(), tx.wb.numLines(), what);
            out.push_back(std::move(v));
        };

        if (!live) {
            // Aborted (or absent) transactions release everything
            // immediately (HtmManager::remoteAbort / abortAttempt).
            if (!tx.readSet.empty() || !tx.writeSet.empty() ||
                !tx.labeledSet.empty() || !tx.wb.empty() ||
                !tx.specLines.empty()) {
                add(InvariantKind::SpecStateLeak, 0,
                    "speculative state outlives its transaction");
            }
        } else {
            // Every buffered write line must have been arbitrated:
            // commit applies wb lines, lazyArbitrate walks the write
            // and labeled sets. A wb line in neither would publish
            // bytes no conflict check ever saw.
            tx.wb.forEach([&](Addr line, const WriteBuffer::Entry &) {
                if (!tx.writeSet.contains(line) &&
                    !tx.labeledSet.contains(line)) {
                    add(InvariantKind::WriteBufferNotInSet, line,
                        "write-buffer line outside write/labeled sets");
                }
            });
        }

        // L1 noted/spec bits vs. the signature sets (ARCHITECTURE
        // Sec. 6: one line can be in several sets; each noted kind
        // must be tracked, and bits must not outlive the tx).
        std::vector<Addr> release = tx.specLines;
        std::sort(release.begin(), release.end());
        mem_.cores_[c]->l1.forEach([&](const PrivLine &v) {
            const bool any_noted =
                v.notedRead || v.notedWrite || v.notedLabeled;
            if (!v.spec() && !any_noted)
                return;
            if (!live) {
                add(InvariantKind::SpecBitsOutsideTx, v.line,
                    "spec/noted bits with no live transaction");
                return;
            }
            if (v.notedRead && !tx.readSet.contains(v.line))
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "notedRead line missing from the read set");
            if (v.notedWrite && !tx.writeSet.contains(v.line))
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "notedWrite line missing from the write set");
            if (v.notedLabeled && !tx.labeledSet.contains(v.line))
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "notedLabeled line missing from the labeled set");
            if (v.notedRead && !v.specRead)
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "notedRead without specRead");
            if (v.notedWrite && !v.specWrite)
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "notedWrite without specWrite");
            if (v.spec() && !any_noted)
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "spec bits never reported to the HTM");
            if (v.spec() &&
                !std::binary_search(release.begin(), release.end(),
                                    v.line)) {
                add(InvariantKind::SignatureSetMismatch, v.line,
                    "spec-bit line missing from the release list");
            }
        });
    }
}

uint32_t
InvariantChecker::sweep(std::vector<InvariantViolation> &out) const
{
    const size_t before = out.size();
    sweepDirectory(out);
    sweepPrivate(out);
    sweepHtm(out);
    sweeps_++;
    return uint32_t(out.size() - before);
}

void
InvariantChecker::check(SyncPoint where)
{
    std::vector<InvariantViolation> violations;
    if (sweep(violations) == 0)
        return;
    fprintf(stderr,
            "CommTM invariant check FAILED at %s sync point "
            "(sweep %llu, %zu violation%s):\n",
            syncPointName(where), (unsigned long long)sweeps_,
            violations.size(), violations.size() == 1 ? "" : "s");
    for (const InvariantViolation &v : violations) {
        fprintf(stderr, "  [%s] %s\n", invariantKindName(v.kind),
                v.message.c_str());
    }
    abort();
}

} // namespace commtm
