/**
 * @file
 * Commit-order recording (docs/ARCHITECTURE.md Sec. 9): when enabled
 * on MachineConfig, every transaction commit appends a CommitRecord
 * {txId, core, commitCycle, digests of the labeled ops and of the
 * conventional write set} to an in-memory log. Recording is strictly
 * observation-only — it reads speculative state the commit path
 * already walks and never touches simulated behavior — so the exact
 * same log can be captured from a baseline run without perturbing a
 * single counter. Logs serialize to a compact fixed-width format so
 * they can be written to disk and diffed across runs; the replay
 * oracle (sim/replay_oracle.h) builds both of its checks on top.
 */

#ifndef COMMTM_SIM_COMMIT_LOG_H
#define COMMTM_SIM_COMMIT_LOG_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace commtm {

/** What kind of labeled operation a digest entry covers. */
enum class CommitOpKind : uint8_t {
    LabeledLoad = 0,
    LabeledStore = 1,
    Gather = 2,
};

/**
 * FNV-1a over explicitly little-endian-encoded fields: the digest of
 * a commit is a pure function of the operation stream, independent of
 * host endianness or struct layout.
 */
class FnvDigest
{
  public:
    static constexpr uint64_t kBasis = 14695981039346656037ull;
    static constexpr uint64_t kPrime = 1099511628211ull;

    uint64_t value() const { return h_; }

    void
    u8(uint8_t v)
    {
        h_ = (h_ ^ v) * kPrime;
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; i++)
            u8(uint8_t(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            u8(uint8_t(v >> (8 * i)));
    }

    void
    bytes(const void *data, size_t size)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < size; i++)
            u8(p[i]);
    }

  private:
    uint64_t h_ = kBasis;
};

/**
 * One committed transaction. txId is the global commit sequence
 * number (log position); commitIndex is the per-core commit count.
 * The three digests separate concerns: labeledShape covers only the
 * structural fields of labeled ops (kind, address, label, size) and
 * is comparable across eager and lazy runs of the same workload;
 * labeledValues additionally folds in store operand bytes (partial
 * values legitimately differ across modes, so it is only comparable
 * same-mode); writeSet covers the committed conventional write-buffer
 * entries (line, byte mask, masked bytes).
 */
struct CommitRecord {
    uint64_t txId = 0;
    uint32_t core = 0;
    uint32_t commitIndex = 0;
    Cycle commitCycle = 0;
    uint64_t labeledShape = FnvDigest::kBasis;
    uint64_t labeledValues = FnvDigest::kBasis;
    uint64_t writeSet = FnvDigest::kBasis;
    uint32_t labeledOps = 0;
    uint32_t writeLines = 0;
};

/** Result of CommitLog::diff: equal, or a precise first difference. */
struct CommitLogDiff {
    bool equal = true;
    std::string message;
};

/**
 * How two logs are compared.
 *  - Exact: same global record sequence, all fields (including
 *    commitCycle). Right for same-config same-seed determinism.
 *  - PerCore: per-core commit streams must match in all digests and
 *    counts; the global interleaving (and cycles) may differ. Right
 *    for runs that differ only in timing.
 *  - Shape: per-core streams must match in labeledShape and op
 *    counts only. Right for eager-vs-lazy differential comparison,
 *    where operand bytes and write digests legitimately diverge.
 */
enum class DiffMode {
    Exact,
    PerCore,
    Shape,
};

/**
 * The per-machine commit log. The HTM commit path drives recording:
 * ThreadContext notes each labeled op that stayed labeled, HtmManager
 * notes the conventional write-buffer lines and seals the record at
 * the end of commit (commit order in the log therefore equals the
 * functional commit order — HtmManager::commit runs atomically in
 * simulated time). Aborted attempts discard their pending digests.
 */
class CommitLog
{
  public:
    /** Observer hook: the replay oracle attaches structure-level ops
     *  to the commit stream through this. */
    class Listener
    {
      public:
        virtual ~Listener() = default;
        virtual void onCommit(const CommitRecord &rec) = 0;
        virtual void onAbort(CoreId core) { (void)core; }
    };

    explicit CommitLog(uint32_t num_cores);

    // --- recording (called from the commit path) ---

    /** Fold one labeled op into the pending digests of @p core.
     *  @p operand is the store value (nullptr for loads/gathers). */
    void noteLabeledOp(CoreId core, CommitOpKind kind, Addr addr,
                       Label label, const void *operand, uint32_t size);

    /** Fold one committed conventional write-buffer line. */
    void noteWriteLine(CoreId core, Addr line, uint64_t mask,
                       const uint8_t *data);

    /** Seal the pending digests of @p core into a CommitRecord. */
    void sealCommit(CoreId core, Cycle commit_cycle);

    /** Discard the pending digests of an aborted attempt. */
    void abortAttempt(CoreId core);

    void addListener(Listener *listener);
    void removeListener(Listener *listener);

    // --- inspection ---

    uint32_t numCores() const { return uint32_t(pending_.size()); }
    const std::vector<CommitRecord> &records() const { return records_; }
    /** Commits sealed so far by @p core. */
    uint32_t commitsOf(CoreId core) const { return commits_[core]; }

    // --- persistence and comparison ---

    /** Compact fixed-width encoding: a 24-byte header (magic,
     *  version, core count, record count) followed by one 56-byte
     *  little-endian record per commit. */
    std::vector<uint8_t> serialize() const;

    /** Parse @p buf into @p out. On failure returns false and sets
     *  @p error to a precise diagnostic naming the record (txId) and
     *  field that is inconsistent. */
    static bool deserialize(const std::vector<uint8_t> &buf,
                            CommitLog *out, std::string *error);

    /** First difference between two logs under @p mode (see
     *  DiffMode); the message names core, commit index, txId, and
     *  field. */
    static CommitLogDiff diff(const CommitLog &a, const CommitLog &b,
                              DiffMode mode);

    /**
     * Test-only fault injection: flip bit 0 of byte @p byte_index of
     * the operand of labeled op @p op_index inside commit
     * @p commit_index of @p core, before it is folded into the
     * labeledValues digest. Models a recording divergence so tests
     * can prove the differential oracle actually fails; never used
     * outside tests.
     */
    void setTestOperandFlip(CoreId core, uint32_t commit_index,
                            uint32_t op_index, uint32_t byte_index);

    static constexpr char kMagic[8] = {'C', 'T', 'M', 'C',
                                       'L', 'O', 'G', '1'};
    static constexpr uint32_t kVersion = 1;
    static constexpr size_t kHeaderBytes = 24;
    static constexpr size_t kRecordBytes = 56;

  private:
    struct Pending {
        FnvDigest shape;
        FnvDigest values;
        FnvDigest writes;
        uint32_t labeledOps = 0;
        uint32_t writeLines = 0;
    };

    std::vector<Pending> pending_;   //!< one open record per core
    std::vector<uint32_t> commits_;  //!< per-core sealed-commit count
    std::vector<CommitRecord> records_;
    std::vector<Listener *> listeners_;

    bool flipArmed_ = false;
    CoreId flipCore_ = 0;
    uint32_t flipCommit_ = 0;
    uint32_t flipOp_ = 0;
    uint32_t flipByte_ = 0;
};

} // namespace commtm

#endif // COMMTM_SIM_COMMIT_LOG_H
