/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * The paper introduces small amounts of non-determinism and averages over
 * runs; we instead make every run a deterministic function of the seed,
 * which aids testing, and sweep seeds in benches when variance matters.
 */

#ifndef COMMTM_SIM_RNG_H
#define COMMTM_SIM_RNG_H

#include <cassert>
#include <cstdint>

namespace commtm {

/**
 * xoshiro256** generator. Small, fast, and high quality; one instance per
 * simulated thread keeps workloads independent of scheduling order.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from @p seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound != 0 && "below(0) is an empty range");
        return next() % bound;
    }

    /**
     * Uniform integer in [lo, hi] (inclusive). Requires lo <= hi; the
     * full span [0, UINT64_MAX] is handled explicitly — the naive
     * `hi - lo + 1` wraps to 0 there and would divide by zero.
     */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        assert(lo <= hi && "range(lo, hi) requires lo <= hi");
        if (hi < lo)
            return lo; // inverted bounds: asserted above, safe in release
        const uint64_t span = hi - lo + 1;
        if (span == 0)
            return next(); // [0, UINT64_MAX]: every value is in range
        return lo + next() % span;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace commtm

#endif // COMMTM_SIM_RNG_H
