/**
 * @file
 * Cooperative fibers used to run simulated threads.
 *
 * Each simulated hardware thread executes its workload on a private
 * stack; it yields back to the scheduler whenever it touches the
 * simulated machine (memory access, compute, tx boundary), and the
 * scheduler resumes whichever thread has the smallest next-ready cycle.
 */

#ifndef COMMTM_SIM_FIBER_H
#define COMMTM_SIM_FIBER_H

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace commtm {

/**
 * A single cooperative fiber. Not thread-safe: all fibers of a Machine
 * run on one host thread (the simulator is sequential by design).
 */
class Fiber
{
  public:
    using EntryFn = std::function<void()>;

    /** Create a fiber that will run @p fn when first resumed. */
    explicit Fiber(EntryFn fn, size_t stack_size = kDefaultStackSize);
    ~Fiber() = default;

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch from the host (scheduler) context into the fiber. Returns
     * when the fiber yields or its entry function returns.
     */
    void resume();

    /** Switch from inside the fiber back to the host. */
    void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /** The fiber currently executing on this host thread, or nullptr. */
    static Fiber *current();

    static constexpr size_t kDefaultStackSize = 256 * 1024;

  private:
    static void trampoline(unsigned hi, unsigned lo);
    void run();

    EntryFn fn_;
    std::unique_ptr<char[]> stack_;
    ucontext_t ctx_{};
    ucontext_t hostCtx_{};
    bool started_ = false;
    bool finished_ = false;
};

} // namespace commtm

#endif // COMMTM_SIM_FIBER_H
