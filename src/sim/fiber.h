/**
 * @file
 * Cooperative fibers used to run simulated threads.
 *
 * Each simulated hardware thread executes its workload on a private
 * stack; it yields back to the scheduler whenever it touches the
 * simulated machine (memory access, compute, tx boundary), and the
 * scheduler resumes whichever thread has the smallest next-ready cycle.
 *
 * Two switching backends:
 *  - x86-64 Linux (default): a ~20-instruction callee-saved-register
 *    stack switch. glibc's swapcontext saves/restores the signal mask
 *    with two sigprocmask syscalls per switch; at 128 simulated
 *    threads the simulator switches fibers hundreds of thousands of
 *    times per run and those syscalls dominated host wall-clock time.
 *  - ucontext (other platforms, sanitizer builds, or with
 *    -DCOMMTM_FIBER_UCONTEXT): portable and understood by ASan's
 *    swapcontext interceptor.
 */

#ifndef COMMTM_SIM_FIBER_H
#define COMMTM_SIM_FIBER_H

#include <cstddef>
#include <functional>
#include <memory>

// Select the switching backend. The raw switch does not annotate stack
// changes for sanitizers, so sanitized builds fall back to ucontext.
#if !defined(COMMTM_FIBER_UCONTEXT)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMMTM_FIBER_UCONTEXT 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define COMMTM_FIBER_UCONTEXT 1
#endif
#endif
#endif
#if !defined(COMMTM_FIBER_UCONTEXT) && defined(__x86_64__) && \
    defined(__linux__)
#define COMMTM_FIBER_FAST_SWITCH 1
#else
#undef COMMTM_FIBER_FAST_SWITCH
#endif

#if !defined(COMMTM_FIBER_FAST_SWITCH)
#include <ucontext.h>
#endif

namespace commtm {

/**
 * A single cooperative fiber. Not thread-safe: all fibers of a Machine
 * run on one host thread (the simulator is sequential by design).
 */
class Fiber
{
  public:
    using EntryFn = std::function<void()>;

    /** Create a fiber that will run @p fn when first resumed. */
    explicit Fiber(EntryFn fn, size_t stack_size = kDefaultStackSize);
    ~Fiber() = default;

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Switch from the host (scheduler) context into the fiber. Returns
     * when the fiber yields or its entry function returns.
     */
    void resume();

    /** Switch from inside the fiber back to the host. */
    void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /** The fiber currently executing on this host thread, or nullptr. */
    static Fiber *current();

    static constexpr size_t kDefaultStackSize = 256 * 1024;

  private:
    void run();

    EntryFn fn_;
    std::unique_ptr<char[]> stack_;
#if defined(COMMTM_FIBER_FAST_SWITCH)
    /** Entry point laid onto a fresh fiber stack; reads the fiber from
     *  Fiber::current() (set by resume() before the switch). */
    static void entryThunk();
    void *fiberSp_ = nullptr; //!< fiber's saved stack pointer
    void *hostSp_ = nullptr;  //!< host's saved stack pointer
#else
    static void trampoline(unsigned hi, unsigned lo);
    ucontext_t ctx_{};
    ucontext_t hostCtx_{};
    size_t stackSize_ = 0;
    /** ASan fiber annotations (__sanitizer_*_switch_fiber): fake-stack
     *  handles of the suspended sides plus the host stack bounds, so
     *  ASan tracks the active stack across swapcontext — required for
     *  exception unwinding on fiber stacks under ASan. Unused (zero
     *  overhead) in non-sanitized builds. */
    void *hostFakeStack_ = nullptr;
    void *fiberFakeStack_ = nullptr;
    const void *hostStackBottom_ = nullptr;
    size_t hostStackSize_ = 0;
#endif
    bool started_ = false;
    bool finished_ = false;
};

} // namespace commtm

#endif // COMMTM_SIM_FIBER_H
