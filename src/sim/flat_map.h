/**
 * @file
 * Flat, open-addressed hash containers keyed by line address, used for
 * all speculative state on the simulator's hot path (per-core U copies,
 * transactional write-buffer lines, and the HTM's read/write/labeled
 * signature sets).
 *
 * Two properties matter here and distinguish these containers from
 * std::unordered_map/set:
 *
 *  1. Host speed: a line-address key needs one multiplicative hash and a
 *     linear probe over a contiguous array — no per-node allocation, no
 *     bucket chain chasing. These maps sit under every simulated memory
 *     access, so constant factors dominate simulator host time.
 *  2. Determinism: iteration is offered *only* in ascending address
 *     order (forEachSorted), so any simulated behavior that walks a
 *     speculative set (commit application, lazy commit-time arbitration)
 *     is identical on every platform and standard library. stdlib hash
 *     containers iterate in layout order, which differs between
 *     libstdc++ and libc++ and would make checked-in counter baselines
 *     (bench/baselines.json) unreproducible.
 */

#ifndef COMMTM_SIM_FLAT_MAP_H
#define COMMTM_SIM_FLAT_MAP_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace commtm {

/**
 * Open-addressed hash map from line address to V with linear probing
 * and backward-shift deletion (no tombstones). Capacity is a power of
 * two; the map grows at 3/4 load. The empty-slot sentinel is
 * Addr(-1), which can never be a line address (it would correspond to
 * a virtual address above 2^70).
 */
template <typename V>
class FlatLineMap
{
  public:
    FlatLineMap() = default;

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool contains(Addr key) const { return findSlot(key) != kNoSlot; }

    /** Pointer to the value for @p key, or nullptr. */
    V *
    find(Addr key)
    {
        const size_t slot = findSlot(key);
        return slot == kNoSlot ? nullptr : &values_[slot];
    }

    const V *
    find(Addr key) const
    {
        const size_t slot = findSlot(key);
        return slot == kNoSlot ? nullptr : &values_[slot];
    }

    /** Value for @p key, default-constructed and inserted if absent. */
    V &
    operator[](Addr key)
    {
        assert(key != kEmptyKey);
        if (keys_.empty() || size_ + 1 > (capacity() * 3) / 4)
            grow();
        size_t slot = ideal(key);
        while (keys_[slot] != kEmptyKey) {
            if (keys_[slot] == key)
                return values_[slot];
            slot = (slot + 1) & mask_;
        }
        keys_[slot] = key;
        values_[slot] = V{};
        size_++;
        return values_[slot];
    }

    /** Remove @p key. Returns true iff it was present. */
    bool
    erase(Addr key)
    {
        size_t hole = findSlot(key);
        if (hole == kNoSlot)
            return false;
        // Backward-shift deletion: slide the rest of the probe chain
        // left so lookups never need tombstones.
        size_t next = (hole + 1) & mask_;
        while (keys_[next] != kEmptyKey) {
            const size_t home = ideal(keys_[next]);
            // Move keys_[next] into the hole unless its home position
            // lies (cyclically) after the hole.
            const bool in_chain = hole <= next
                                      ? (home <= hole || home > next)
                                      : (home <= hole && home > next);
            if (in_chain) {
                keys_[hole] = keys_[next];
                values_[hole] = std::move(values_[next]);
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        keys_[hole] = kEmptyKey;
        values_[hole] = V{};
        size_--;
        return true;
    }

    /** Drop every entry, keeping the allocated capacity. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        size_ = 0;
    }

    /** Visit entries in unspecified order: fn(Addr, V&). Must not be
     *  used for anything that affects simulated behavior; prefer
     *  forEachSorted. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                fn(keys_[i], values_[i]);
        }
    }

    /**
     * Visit entries in ascending address order: fn(Addr, const V&).
     * This is the only iteration order simulated behavior may depend
     * on — it is identical on every platform.
     */
    template <typename Fn>
    void
    forEachSorted(Fn &&fn) const
    {
        Addr stack_keys[kSortInline];
        std::vector<Addr> heap_keys;
        Addr *sorted = stack_keys;
        if (size_ > kSortInline) {
            heap_keys.resize(size_);
            sorted = heap_keys.data();
        }
        size_t n = 0;
        for (size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                sorted[n++] = keys_[i];
        }
        assert(n == size_);
        std::sort(sorted, sorted + n);
        for (size_t i = 0; i < n; i++)
            fn(sorted[i], values_[findSlot(sorted[i])]);
    }

    /** Entries' keys in ascending order (convenience for callers that
     *  mutate the map while walking the snapshot). */
    std::vector<Addr>
    sortedKeys() const
    {
        std::vector<Addr> keys;
        keys.reserve(size_);
        for (size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                keys.push_back(keys_[i]);
        }
        std::sort(keys.begin(), keys.end());
        return keys;
    }

  private:
    static constexpr Addr kEmptyKey = ~Addr(0);
    static constexpr size_t kNoSlot = ~size_t(0);
    static constexpr size_t kInitialCapacity = 16;
    static constexpr size_t kSortInline = 64;

    size_t capacity() const { return keys_.size(); }

    size_t
    ideal(Addr key) const
    {
        // Fibonacci multiplicative hash; line addresses are dense and
        // low-entropy in the high bits, so mix before masking.
        return size_t((key * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
    }

    size_t
    findSlot(Addr key) const
    {
        if (keys_.empty())
            return kNoSlot;
        size_t slot = ideal(key);
        while (keys_[slot] != kEmptyKey) {
            if (keys_[slot] == key)
                return slot;
            slot = (slot + 1) & mask_;
        }
        return kNoSlot;
    }

    void
    grow()
    {
        const size_t new_cap =
            keys_.empty() ? kInitialCapacity : capacity() * 2;
        std::vector<Addr> old_keys = std::move(keys_);
        std::vector<V> old_values = std::move(values_);
        keys_.assign(new_cap, kEmptyKey);
        values_.assign(new_cap, V{});
        mask_ = new_cap - 1;
        for (size_t i = 0; i < old_keys.size(); i++) {
            if (old_keys[i] == kEmptyKey)
                continue;
            size_t slot = ideal(old_keys[i]);
            while (keys_[slot] != kEmptyKey)
                slot = (slot + 1) & mask_;
            keys_[slot] = old_keys[i];
            values_[slot] = std::move(old_values[i]);
        }
    }

    std::vector<Addr> keys_;
    std::vector<V> values_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

/** Set of line addresses with deterministic (ascending) iteration. */
class FlatLineSet
{
  public:
    void insert(Addr key) { map_[key] = Empty{}; }
    bool contains(Addr key) const { return map_.contains(key); }
    bool erase(Addr key) { return map_.erase(key); }
    void clear() { map_.clear(); }
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    /** Visit members in ascending address order: fn(Addr). */
    template <typename Fn>
    void
    forEachSorted(Fn &&fn) const
    {
        map_.forEachSorted([&](Addr key, const Empty &) { fn(key); });
    }

    std::vector<Addr> sortedKeys() const { return map_.sortedKeys(); }

  private:
    struct Empty {};
    FlatLineMap<Empty> map_;
};

} // namespace commtm

#endif // COMMTM_SIM_FLAT_MAP_H
