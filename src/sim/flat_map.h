/**
 * @file
 * Flat, open-addressed hash containers keyed by line address, used for
 * all speculative state on the simulator's hot path (per-core U copies,
 * transactional write-buffer lines, and the HTM's read/write/labeled
 * signature sets).
 *
 * Two properties matter here and distinguish these containers from
 * std::unordered_map/set:
 *
 *  1. Host speed: a line-address key needs one multiplicative hash and a
 *     linear probe over a contiguous array — no per-node allocation, no
 *     bucket chain chasing. These maps sit under every simulated memory
 *     access, so constant factors dominate simulator host time.
 *  2. Determinism: iteration is offered *only* in ascending address
 *     order (forEachSorted), so any simulated behavior that walks a
 *     speculative set (commit application, lazy commit-time arbitration)
 *     is identical on every platform and standard library. stdlib hash
 *     containers iterate in layout order, which differs between
 *     libstdc++ and libc++ and would make checked-in counter baselines
 *     (bench/baselines.json) unreproducible.
 *
 * Reference sanitizer (docs/ARCHITECTURE.md Sec. 10): growth and
 * backward-shift deletion relocate values, so a pointer returned by
 * find() — or a reference held inside forEach — is invalidated by ANY
 * mutation of the container. Holding one across a mutation has caused
 * real protocol bugs (reduction handlers re-enter the memory system
 * and reshuffle per-core U copies under the caller's feet). In debug
 * builds (COMMTM_FLATMAP_SANITIZE, default 1 when NDEBUG is unset)
 * find() therefore returns a generation-checked handle instead of a
 * raw pointer: every dereference verifies the container has not been
 * mutated since the lookup and traps at the *use site* otherwise, and
 * forEach/forEachSorted trap when the callback mutates the container
 * mid-walk. Release builds compile the checking out entirely — find()
 * returns the raw pointer and no generation counter exists — so the
 * hot path is untouched.
 */

#ifndef COMMTM_SIM_FLAT_MAP_H
#define COMMTM_SIM_FLAT_MAP_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.h"

#ifndef COMMTM_FLATMAP_SANITIZE
#ifndef NDEBUG
#define COMMTM_FLATMAP_SANITIZE 1
#else
#define COMMTM_FLATMAP_SANITIZE 0
#endif
#endif

#if COMMTM_FLATMAP_SANITIZE
#include <cstdio>
#include <cstdlib>
#endif

namespace commtm {

#if COMMTM_FLATMAP_SANITIZE
/** Sanitizer failure: stale handle dereference or mutation during
 *  iteration. Aborts so gtest death tests can assert on the message. */
[[noreturn]] inline void
flatMapSanitizerTrap(const char *what)
{
    std::fprintf(stderr, "FlatLineMap sanitizer: %s\n", what);
    std::abort();
}
#endif

/**
 * Open-addressed hash map from line address to V with linear probing
 * and backward-shift deletion (no tombstones). Capacity is a power of
 * two; the map grows at 3/4 load. The empty-slot sentinel is
 * Addr(-1), which can never be a line address (it would correspond to
 * a virtual address above 2^70).
 */
template <typename V>
class FlatLineMap
{
  public:
    FlatLineMap() = default;

#if COMMTM_FLATMAP_SANITIZE
    /**
     * Generation-checked stand-in for the V* find() returns in Release
     * builds. Call sites bind it with `auto` and use it exactly like
     * the pointer (boolean test, *, ->); each dereference traps if the
     * container has been mutated since the lookup, naming the hazard
     * at the use site instead of silently reading relocated memory.
     */
    template <typename Ptr>
    class BasicHandle
    {
      public:
        BasicHandle() = default;
        BasicHandle(Ptr value, const FlatLineMap *map, uint64_t gen)
            : value_(value), map_(map), gen_(gen)
        {
        }

        explicit operator bool() const { return value_ != nullptr; }

        // Release call sites compare find() results to nullptr; the
        // handle must accept the same comparisons (no validation: a
        // presence test never dereferences).
        bool
        operator==(std::nullptr_t) const
        {
            return value_ == nullptr;
        }
        bool
        operator!=(std::nullptr_t) const
        {
            return value_ != nullptr;
        }

        decltype(*Ptr{}) operator*() const
        {
            validate();
            return *value_;
        }

        Ptr operator->() const
        {
            validate();
            return value_;
        }

      private:
        void
        validate() const
        {
            if (!value_) {
                flatMapSanitizerTrap(
                    "dereference of an empty find() handle");
            }
            if (map_->gen_ != gen_) {
                flatMapSanitizerTrap(
                    "stale find() handle: the container was mutated "
                    "after the lookup (values may have relocated)");
            }
        }

        Ptr value_ = nullptr;
        const FlatLineMap *map_ = nullptr;
        uint64_t gen_ = 0;
    };
    using FindResult = BasicHandle<V *>;
    using ConstFindResult = BasicHandle<const V *>;
#else
    using FindResult = V *;
    using ConstFindResult = const V *;
#endif

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    bool contains(Addr key) const { return findSlot(key) != kNoSlot; }

    /** Pointer to the value for @p key, or nullptr (in sanitize builds,
     *  a generation-checked handle with the same interface — bind with
     *  `auto`). */
    FindResult
    find(Addr key)
    {
        const size_t slot = findSlot(key);
#if COMMTM_FLATMAP_SANITIZE
        return FindResult(slot == kNoSlot ? nullptr : &values_[slot],
                          this, gen_);
#else
        return slot == kNoSlot ? nullptr : &values_[slot];
#endif
    }

    ConstFindResult
    find(Addr key) const
    {
        const size_t slot = findSlot(key);
#if COMMTM_FLATMAP_SANITIZE
        return ConstFindResult(
            slot == kNoSlot ? nullptr : &values_[slot], this, gen_);
#else
        return slot == kNoSlot ? nullptr : &values_[slot];
#endif
    }

    /** Value for @p key, default-constructed and inserted if absent. */
    V &
    operator[](Addr key)
    {
        assert(key != kEmptyKey);
        if (keys_.empty() || size_ + 1 > (capacity() * 3) / 4)
            grow();
        size_t slot = ideal(key);
        while (keys_[slot] != kEmptyKey) {
            if (keys_[slot] == key)
                return values_[slot];
            slot = (slot + 1) & mask_;
        }
        keys_[slot] = key;
        values_[slot] = V{};
        size_++;
        bumpGen();
        return values_[slot];
    }

    /** Remove @p key. Returns true iff it was present. */
    bool
    erase(Addr key)
    {
        size_t hole = findSlot(key);
        if (hole == kNoSlot)
            return false;
        // Backward-shift deletion: slide the rest of the probe chain
        // left so lookups never need tombstones.
        size_t next = (hole + 1) & mask_;
        while (keys_[next] != kEmptyKey) {
            const size_t home = ideal(keys_[next]);
            // Move keys_[next] into the hole unless its home position
            // lies (cyclically) after the hole.
            const bool in_chain = hole <= next
                                      ? (home <= hole || home > next)
                                      : (home <= hole && home > next);
            if (in_chain) {
                keys_[hole] = keys_[next];
                values_[hole] = std::move(values_[next]);
                hole = next;
            }
            next = (next + 1) & mask_;
        }
        keys_[hole] = kEmptyKey;
        values_[hole] = V{};
        size_--;
        bumpGen();
        return true;
    }

    /** Drop every entry, keeping the allocated capacity. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        std::fill(keys_.begin(), keys_.end(), kEmptyKey);
        size_ = 0;
        bumpGen();
    }

    /** Visit entries in unspecified order: fn(Addr, V&). Must not be
     *  used for anything that affects simulated behavior; prefer
     *  forEachSorted. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const uint64_t it_gen = iterGen();
        for (size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey) {
                fn(keys_[i], values_[i]);
                checkIterGen(it_gen);
            }
        }
    }

    /**
     * Visit entries in ascending address order: fn(Addr, const V&).
     * This is the only iteration order simulated behavior may depend
     * on — it is identical on every platform.
     */
    template <typename Fn>
    void
    forEachSorted(Fn &&fn) const
    {
        Addr stack_keys[kSortInline];
        std::vector<Addr> heap_keys;
        Addr *sorted = stack_keys;
        if (size_ > kSortInline) {
            heap_keys.resize(size_);
            sorted = heap_keys.data();
        }
        size_t n = 0;
        for (size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                sorted[n++] = keys_[i];
        }
        assert(n == size_);
        std::sort(sorted, sorted + n);
        const uint64_t it_gen = iterGen();
        for (size_t i = 0; i < n; i++) {
            fn(sorted[i], values_[findSlot(sorted[i])]);
            checkIterGen(it_gen);
        }
    }

    /** Entries' keys in ascending order (convenience for callers that
     *  mutate the map while walking the snapshot). */
    std::vector<Addr>
    sortedKeys() const
    {
        std::vector<Addr> keys;
        keys.reserve(size_);
        for (size_t i = 0; i < keys_.size(); i++) {
            if (keys_[i] != kEmptyKey)
                keys.push_back(keys_[i]);
        }
        std::sort(keys.begin(), keys.end());
        return keys;
    }

  private:
    static constexpr Addr kEmptyKey = ~Addr(0);
    static constexpr size_t kNoSlot = ~size_t(0);
    static constexpr size_t kInitialCapacity = 16;
    static constexpr size_t kSortInline = 64;

    // Sanitizer plumbing; all of it compiles to nothing in Release
    // builds (no counter, empty inline helpers).
#if COMMTM_FLATMAP_SANITIZE
    void bumpGen() { gen_++; }
    uint64_t iterGen() const { return gen_; }
    void
    checkIterGen(uint64_t gen) const
    {
        if (gen_ != gen) {
            flatMapSanitizerTrap(
                "container mutated during forEach/forEachSorted "
                "(use sortedKeys() to mutate while walking)");
        }
    }
#else
    void bumpGen() {}
    uint64_t iterGen() const { return 0; }
    void checkIterGen(uint64_t) const {}
#endif

    size_t capacity() const { return keys_.size(); }

    size_t
    ideal(Addr key) const
    {
        // Fibonacci multiplicative hash; line addresses are dense and
        // low-entropy in the high bits, so mix before masking.
        return size_t((key * 0x9e3779b97f4a7c15ull) >> 32) & mask_;
    }

    size_t
    findSlot(Addr key) const
    {
        if (keys_.empty())
            return kNoSlot;
        size_t slot = ideal(key);
        while (keys_[slot] != kEmptyKey) {
            if (keys_[slot] == key)
                return slot;
            slot = (slot + 1) & mask_;
        }
        return kNoSlot;
    }

    void
    grow()
    {
        // operator[] grows before probing, so even a lookup of an
        // existing key can relocate every value.
        bumpGen();
        const size_t new_cap =
            keys_.empty() ? kInitialCapacity : capacity() * 2;
        std::vector<Addr> old_keys = std::move(keys_);
        std::vector<V> old_values = std::move(values_);
        keys_.assign(new_cap, kEmptyKey);
        values_.assign(new_cap, V{});
        mask_ = new_cap - 1;
        for (size_t i = 0; i < old_keys.size(); i++) {
            if (old_keys[i] == kEmptyKey)
                continue;
            size_t slot = ideal(old_keys[i]);
            while (keys_[slot] != kEmptyKey)
                slot = (slot + 1) & mask_;
            keys_[slot] = old_keys[i];
            values_[slot] = std::move(old_values[i]);
        }
    }

    std::vector<Addr> keys_;
    std::vector<V> values_;
    size_t mask_ = 0;
    size_t size_ = 0;
#if COMMTM_FLATMAP_SANITIZE
    /** Mutation generation; find() handles snapshot it and compare on
     *  every dereference. */
    uint64_t gen_ = 0;
#endif
};

/** Set of line addresses with deterministic (ascending) iteration. */
class FlatLineSet
{
  public:
    void insert(Addr key) { map_[key] = Empty{}; }
    bool contains(Addr key) const { return map_.contains(key); }
    bool erase(Addr key) { return map_.erase(key); }
    void clear() { map_.clear(); }
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    /** Visit members in ascending address order: fn(Addr). */
    template <typename Fn>
    void
    forEachSorted(Fn &&fn) const
    {
        map_.forEachSorted([&](Addr key, const Empty &) { fn(key); });
    }

    std::vector<Addr> sortedKeys() const { return map_.sortedKeys(); }

  private:
    struct Empty {};
    FlatLineMap<Empty> map_;
};

} // namespace commtm

#endif // COMMTM_SIM_FLAT_MAP_H
