/**
 * @file
 * Fiber implementation. The fast backend hand-switches the System V
 * x86-64 callee-saved state (rbx, rbp, r12-r15, rsp, mxcsr, x87 cw) on
 * private stacks; the portable backend uses ucontext, with the 64-bit
 * entry pointer split across two unsigned makecontext arguments.
 */

#include "sim/fiber.h"

#include <cassert>
#include <cstdint>
#include <cstring>

// ASan needs to be told about manual stack switches; without the
// annotations, throwing an exception on a fiber stack trips its
// no-return stack unpoisoning (google/sanitizers#189).
#if defined(__SANITIZE_ADDRESS__)
#define COMMTM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define COMMTM_ASAN_FIBERS 1
#endif
#endif
#if defined(COMMTM_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

namespace commtm {

namespace {
/** Fiber running on this host thread (the simulator is single-host-threaded,
 *  but thread_local keeps tests that spin up Machines on helper threads
 *  safe). */
thread_local Fiber *tlsCurrent = nullptr;
} // namespace

void
Fiber::run()
{
    // Exceptions must not cross the context switch back to the host.
    try {
        fn_();
    } catch (...) {
        assert(false && "uncaught exception escaped a simulated thread");
    }
    finished_ = true;
}

Fiber *
Fiber::current()
{
    return tlsCurrent;
}

#if defined(COMMTM_FIBER_FAST_SWITCH)

// ---------------------------------------------------------------------
// Fast backend: raw stack switch.
// ---------------------------------------------------------------------

/**
 * commtmFiberSwitch(void **save_sp, void *load_sp): push the
 * callee-saved register state onto the current stack, store rsp through
 * save_sp, switch to load_sp, and pop the state saved there. The
 * matching "push" for a fresh fiber stack is laid out by the Fiber
 * constructor. No signal-mask work — that is the whole point.
 */
extern "C" void commtmFiberSwitch(void **save_sp, void *load_sp);

asm(R"(
        .text
        .align 16
        .globl commtmFiberSwitch
        .type commtmFiberSwitch, @function
commtmFiberSwitch:
        pushq %rbp
        pushq %rbx
        pushq %r12
        pushq %r13
        pushq %r14
        pushq %r15
        subq  $8, %rsp
        stmxcsr 0(%rsp)
        fnstcw  4(%rsp)
        movq  %rsp, (%rdi)
        movq  %rsi, %rsp
        ldmxcsr 0(%rsp)
        fldcw   4(%rsp)
        addq  $8, %rsp
        popq  %r15
        popq  %r14
        popq  %r13
        popq  %r12
        popq  %rbx
        popq  %rbp
        retq
        .size commtmFiberSwitch, .-commtmFiberSwitch
)");

Fiber::Fiber(EntryFn fn, size_t stack_size)
    : fn_(std::move(fn)), stack_(new char[stack_size])
{
    // Lay out a fake commtmFiberSwitch frame at the top of the fresh
    // stack so the first resume() "returns" into entryThunk. Layout
    // (low to high, matching the pops in commtmFiberSwitch):
    //   sp +  0: mxcsr (4) + x87 control word (4)
    //   sp +  8: r15 r14 r13 r12 rbx rbp (6 x 8, zeroed)
    //   sp + 56: return address = entryThunk
    //   sp + 64: zero return address (terminates backtraces)
    // entryThunk starts with rsp = sp + 64, i.e. rsp % 16 == 8, the
    // System V stance at a function's first instruction.
    char *top = stack_.get() + stack_size;
    top -= reinterpret_cast<uintptr_t>(top) & 15;
    char *sp = top - 72;
    uint32_t mxcsr = 0;
    uint16_t fcw = 0;
    asm volatile("stmxcsr %0" : "=m"(mxcsr));
    asm volatile("fnstcw %0" : "=m"(fcw));
    std::memset(sp, 0, 72);
    std::memcpy(sp + 0, &mxcsr, sizeof(mxcsr));
    std::memcpy(sp + 4, &fcw, sizeof(fcw));
    void (*entry)() = &Fiber::entryThunk;
    std::memcpy(sp + 56, &entry, sizeof(entry));
    fiberSp_ = sp;
}

void
Fiber::entryThunk()
{
    Fiber *self = tlsCurrent;
    assert(self);
    self->run();
    // The entry function returned; hand control back to the host for
    // good (resume() asserts against re-entering a finished fiber).
    for (;;)
        commtmFiberSwitch(&self->fiberSp_, self->hostSp_);
}

void
Fiber::resume()
{
    assert(!finished_ && "resuming a finished fiber");
    Fiber *prev = tlsCurrent;
    tlsCurrent = this;
    started_ = true;
    commtmFiberSwitch(&hostSp_, fiberSp_);
    tlsCurrent = prev;
}

void
Fiber::yield()
{
    assert(tlsCurrent == this && "yield from a fiber that is not running");
    commtmFiberSwitch(&fiberSp_, hostSp_);
}

#else // !COMMTM_FIBER_FAST_SWITCH

// ---------------------------------------------------------------------
// Portable backend: ucontext.
// ---------------------------------------------------------------------

Fiber::Fiber(EntryFn fn, size_t stack_size)
    : fn_(std::move(fn)), stack_(new char[stack_size]),
      stackSize_(stack_size)
{
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_size;
    ctx_.uc_link = &hostCtx_;
    const auto self = reinterpret_cast<uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    const uintptr_t self =
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
    Fiber *fiber = reinterpret_cast<Fiber *>(self);
#if defined(COMMTM_ASAN_FIBERS)
    // First arrival on this stack: record where we came from (the
    // host stack), completing the switch resume() started.
    __sanitizer_finish_switch_fiber(nullptr, &fiber->hostStackBottom_,
                                    &fiber->hostStackSize_);
#endif
    fiber->run();
#if defined(COMMTM_ASAN_FIBERS)
    // Final departure: a null fake-stack handle tells ASan this
    // fiber's stack is done for good (uc_link switches to the host).
    __sanitizer_start_switch_fiber(nullptr, fiber->hostStackBottom_,
                                   fiber->hostStackSize_);
#endif
    // Returning lets uc_link switch back to hostCtx_.
}

void
Fiber::resume()
{
    assert(!finished_ && "resuming a finished fiber");
    Fiber *prev = tlsCurrent;
    tlsCurrent = this;
    started_ = true;
#if defined(COMMTM_ASAN_FIBERS)
    __sanitizer_start_switch_fiber(&hostFakeStack_, stack_.get(),
                                   stackSize_);
#endif
    swapcontext(&hostCtx_, &ctx_);
#if defined(COMMTM_ASAN_FIBERS)
    __sanitizer_finish_switch_fiber(hostFakeStack_, nullptr, nullptr);
#endif
    tlsCurrent = prev;
}

void
Fiber::yield()
{
    assert(tlsCurrent == this && "yield from a fiber that is not running");
#if defined(COMMTM_ASAN_FIBERS)
    __sanitizer_start_switch_fiber(&fiberFakeStack_, hostStackBottom_,
                                   hostStackSize_);
#endif
    swapcontext(&ctx_, &hostCtx_);
#if defined(COMMTM_ASAN_FIBERS)
    __sanitizer_finish_switch_fiber(fiberFakeStack_, &hostStackBottom_,
                                    &hostStackSize_);
#endif
}

#endif // COMMTM_FIBER_FAST_SWITCH

} // namespace commtm
