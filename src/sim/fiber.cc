/**
 * @file
 * ucontext-based fiber implementation. The 64-bit entry pointer is
 * split across two unsigned makecontext arguments for portability.
 */

#include "sim/fiber.h"

#include <cassert>
#include <cstdint>

namespace commtm {

namespace {
/** Fiber running on this host thread (the simulator is single-host-threaded,
 *  but thread_local keeps tests that spin up Machines on helper threads
 *  safe). */
thread_local Fiber *tlsCurrent = nullptr;
} // namespace

Fiber::Fiber(EntryFn fn, size_t stack_size)
    : fn_(std::move(fn)), stack_(new char[stack_size])
{
    getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = stack_.get();
    ctx_.uc_stack.ss_size = stack_size;
    ctx_.uc_link = &hostCtx_;
    const auto self = reinterpret_cast<uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
}

void
Fiber::trampoline(unsigned hi, unsigned lo)
{
    const uintptr_t self =
        (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
    reinterpret_cast<Fiber *>(self)->run();
}

void
Fiber::run()
{
    // Exceptions must not cross the context switch back to the host.
    try {
        fn_();
    } catch (...) {
        assert(false && "uncaught exception escaped a simulated thread");
    }
    finished_ = true;
    // Returning lets uc_link switch back to hostCtx_.
}

void
Fiber::resume()
{
    assert(!finished_ && "resuming a finished fiber");
    Fiber *prev = tlsCurrent;
    tlsCurrent = this;
    started_ = true;
    swapcontext(&hostCtx_, &ctx_);
    tlsCurrent = prev;
}

void
Fiber::yield()
{
    assert(tlsCurrent == this && "yield from a fiber that is not running");
    swapcontext(&ctx_, &hostCtx_);
}

Fiber *
Fiber::current()
{
    return tlsCurrent;
}

} // namespace commtm
