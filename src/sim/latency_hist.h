/**
 * @file
 * Fixed-bucket log-spaced latency histogram (docs/ARCHITECTURE.md
 * Sec. 12). Per-transaction enqueue-to-commit latencies are measured
 * in simulated cycles, so the histogram is part of the machine's
 * deterministic output: integer bucketing, integer rank selection,
 * and a plain vector-add merge make p50/p99/p999 exactly reproducible
 * across platforms and pinnable in bench/baselines.json.
 *
 * Layout (HdrHistogram-style): values below 2^kSubBits get exact
 * unit-width buckets; above that, each power-of-two octave is split
 * into 2^kSubBits sub-buckets, bounding the relative quantization
 * error by 2^-kSubBits (6.25%). The full uint64 range is covered, so
 * there is no separate overflow bucket — the last octave's top
 * sub-bucket absorbs everything up to UINT64_MAX.
 */

#ifndef COMMTM_SIM_LATENCY_HIST_H
#define COMMTM_SIM_LATENCY_HIST_H

#include <cstdint>
#include <vector>

namespace commtm {

class LatencyHistogram
{
  public:
    static constexpr uint32_t kSubBits = 4;
    static constexpr uint32_t kSub = 1u << kSubBits;
    /** Octaves above the exact range: msb 4..63 => 60 octaves. */
    static constexpr uint32_t kOctaves = 64 - kSubBits;
    static constexpr uint32_t kBuckets = kSub + kOctaves * kSub;

    LatencyHistogram() : counts_(kBuckets, 0) {}

    /** Bucket holding @p value. */
    static uint32_t
    bucketOf(uint64_t value)
    {
        if (value < kSub)
            return uint32_t(value);
        const uint32_t msb = 63 - uint32_t(__builtin_clzll(value));
        const uint32_t octave = msb - kSubBits;
        const uint32_t sub = uint32_t(value >> octave) - kSub;
        return kSub + octave * kSub + sub;
    }

    /**
     * Largest value bucket @p index holds; quantiles report this
     * bound, so they never understate a latency. Saturates to
     * UINT64_MAX in the top octave, whose bound is not representable.
     */
    static uint64_t
    bucketBound(uint32_t index)
    {
        if (index < kSub)
            return index;
        const uint32_t octave = (index - kSub) / kSub;
        const uint64_t top = (index - kSub) % kSub + kSub + 1;
        if (top > (UINT64_MAX >> octave))
            return UINT64_MAX;
        return (top << octave) - 1;
    }

    void
    record(uint64_t value, uint64_t times = 1)
    {
        counts_[bucketOf(value)] += times;
        total_ += times;
    }

    /** Deterministic cross-thread merge: plain per-bucket addition. */
    void
    merge(const LatencyHistogram &other)
    {
        for (uint32_t b = 0; b < kBuckets; b++)
            counts_[b] += other.counts_[b];
        total_ += other.total_;
    }

    uint64_t totalCount() const { return total_; }
    uint64_t bucketCount(uint32_t index) const { return counts_[index]; }

    /**
     * Upper bound of the bucket holding the @p permille -th
     * per-mille-ranked sample (the smallest bucket whose cumulative
     * count covers permille/1000 of the total), or 0 when empty.
     * Pure integer arithmetic; the 128-bit products cannot overflow.
     */
    uint64_t
    quantile(uint32_t permille) const
    {
        if (total_ == 0)
            return 0;
        const unsigned __int128 target =
            (unsigned __int128)total_ * permille;
        unsigned __int128 cum = 0;
        for (uint32_t b = 0; b < kBuckets; b++) {
            cum += counts_[b];
            if (cum * 1000 >= target)
                return bucketBound(b);
        }
        return bucketBound(kBuckets - 1);
    }

    uint64_t p50() const { return quantile(500); }
    uint64_t p99() const { return quantile(990); }
    uint64_t p999() const { return quantile(999); }

    bool
    operator==(const LatencyHistogram &other) const
    {
        return total_ == other.total_ && counts_ == other.counts_;
    }

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace commtm

#endif // COMMTM_SIM_LATENCY_HIST_H
