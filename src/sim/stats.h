/**
 * @file
 * Simulation statistics: everything needed to regenerate the paper's
 * evaluation figures (cycle breakdowns, wasted-cycle causes, GET-request
 * breakdowns, labeled-instruction fractions).
 */

#ifndef COMMTM_SIM_STATS_H
#define COMMTM_SIM_STATS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace commtm {

/**
 * Why a transaction aborted. Categories follow Fig. 18: read-after-write
 * and write-after-read dependence violations, gathers/splits hitting a
 * labeled set, and everything else (write-write, labeled-set
 * invalidations by normal requests, capacity/eviction aborts, and
 * self-demotion per Sec. III-B4).
 */
enum class AbortCause : uint8_t {
    ReadAfterWrite,     //!< GETS hit a transaction's write set
    WriteAfterRead,     //!< GETX hit a transaction's read set
    GatherAfterLabeled, //!< gather/split hit a transaction's labeled set
    WriteAfterWrite,    //!< GETX hit a transaction's write set
    LabeledConflict,    //!< GETU/reduction hit a read/write/labeled set
    Capacity,           //!< eviction of a speculatively-accessed L1 line
    UEviction,          //!< U-line eviction forwarded into a transaction
    SelfDemotion,       //!< unlabeled access to own spec-modified U line
    Explicit,           //!< program-requested abort
    NumCauses,
};

const char *abortCauseName(AbortCause cause);

/** Fig. 18 buckets. */
enum class WasteBucket : uint8_t {
    ReadAfterWrite,
    WriteAfterRead,
    GatherAfterLabeled,
    Others,
    NumBuckets,
};

WasteBucket wasteBucket(AbortCause cause);
const char *wasteBucketName(WasteBucket bucket);

/** Coherence GET request types issued from an L2 to the L3 (Fig. 19). */
enum class GetType : uint8_t { GETS, GETX, GETU, NumTypes };

/** Per-thread statistics. */
struct ThreadStats {
    // Cycle breakdown (Fig. 17).
    Cycle nonTxCycles = 0;
    Cycle txCommittedCycles = 0;
    Cycle txAbortedCycles = 0;
    // Wasted cycles by cause (Fig. 18).
    std::array<Cycle, size_t(WasteBucket::NumBuckets)> wastedByCause{};

    // Transaction outcomes.
    uint64_t txStarted = 0;
    uint64_t txCommitted = 0;
    uint64_t txAborted = 0;
    std::array<uint64_t, size_t(AbortCause::NumCauses)> abortsByCause{};

    // Instruction mix (Sec. VII labeled-instruction fraction).
    uint64_t instrs = 0;
    uint64_t labeledInstrs = 0; //!< labeled loads/stores + gathers

    Cycle totalCycles() const
    {
        return nonTxCycles + txCommittedCycles + txAbortedCycles;
    }
};

/** Machine-wide statistics (coherence and memory-system events). */
struct MachineStats {
    // GET requests between the private L2s and the L3 (Fig. 19).
    std::array<uint64_t, size_t(GetType::NumTypes)> l3Gets{};

    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t l3Hits = 0;
    uint64_t l3Misses = 0;

    uint64_t invalidations = 0;   //!< invalidation messages to private caches
    uint64_t downgrades = 0;      //!< M->S / M->U downgrades
    uint64_t nacks = 0;           //!< NACKed invalidations (Fig. 6b)
    uint64_t reductions = 0;      //!< full reductions (Sec. III-B4)
    uint64_t reductionLinesMerged = 0;
    uint64_t gathers = 0;         //!< gather requests (Sec. IV)
    uint64_t splits = 0;          //!< splitter executions
    uint64_t uWritebacks = 0;     //!< sole-sharer U evictions
    uint64_t uForwards = 0;       //!< multi-sharer U eviction forwards
    uint64_t writebacks = 0;

    uint64_t
    totalL3Gets() const
    {
        uint64_t total = 0;
        for (auto count : l3Gets) total += count;
        return total;
    }
};

/**
 * Aggregated view over all threads plus machine counters; what benches
 * print. Snapshots are cheap to copy.
 */
struct StatsSnapshot {
    std::vector<ThreadStats> threads;
    MachineStats machine;

    ThreadStats aggregateThreads() const;
    /** Max over threads of total cycles: the parallel-region runtime. */
    Cycle runtimeCycles() const;

    /** Multi-line human-readable report. */
    std::string report() const;
};

} // namespace commtm

#endif // COMMTM_SIM_STATS_H
