/**
 * @file
 * Machine-wide protocol invariant checker (docs/ARCHITECTURE.md
 * Sec. 10). When MachineConfig::checkInvariants is set (or the
 * COMMTM_CHECK_INVARIANTS environment variable forces it on), the
 * Machine sweeps the whole simulated chip — every directory entry,
 * every private tag array, every per-core U copy, and every
 * transaction's speculative sets — at configurable sync points and
 * verifies the protocol's correctness rules hold: directory sharer
 * masks match the private tags, M/E lines have exactly one owner, the
 * reserved-way rule (Sec. III-B4) holds in every set, U-line labels
 * and identity copies are consistent, the HTM signature sets contain
 * what the L1 noted bits claim (docs/ARCHITECTURE.md Sec. 6), and the
 * handler re-entry depth never exceeds one.
 *
 * Sweeps are strictly observation-only: they take const references,
 * never touch LRU state, and never charge simulated time, so the
 * exact-counter baseline wall (bench/baselines.json) runs
 * bit-identical with checking enabled. Violations print a structured
 * diagnostic (line address, both states, a sharer diff) and abort —
 * in Release builds too, unlike the assert()s this layer subsumes.
 */

#ifndef COMMTM_SIM_INVARIANTS_H
#define COMMTM_SIM_INVARIANTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"

namespace commtm {

class MemorySystem;
class HtmManager;

/** Violation classes the sweep distinguishes (one per protocol rule). */
enum class InvariantKind : uint8_t {
    /** Directory sharer bit set, but the core's private hierarchy does
     *  not hold the line. */
    DirSharerNotPresent,
    /** A private copy exists but the directory does not track the core
     *  as a sharer (or has no entry at all — L3 inclusion). */
    PrivLineNotInDir,
    /** Dir-M line with zero or multiple sharers, an owner whose local
     *  state is not E/M, or an E/M copy coexisting with other copies. */
    ExclusivityViolation,
    /** Private state incompatible with the directory state (e.g. an S
     *  sharer holding the line in M). */
    DirStateMismatch,
    /** Dir state with an impossible sharer count (S/M/U with none,
     *  NonCached with some). */
    SharerCountMismatch,
    /** A cache set whose ways are all U lines (Sec. III-B4 reserved-
     *  way rule: one non-U way must survive for handler fills). */
    ReservedWayViolation,
    /** U-line label disagreement (dir vs. private copy), or a label on
     *  a non-U line. */
    ULabelMismatch,
    /** A directory-U sharer without a per-core U copy. */
    UCopyMissing,
    /** A per-core U copy whose line is not directory-U for that core. */
    UCopyOrphan,
    /** L1 entry missing from the (inclusive) L2, or disagreeing with
     *  it on state/label. */
    InclusionViolation,
    /** Speculative or noted bits on a core with no live transaction. */
    SpecBitsOutsideTx,
    /** An L1 noted bit whose line is missing from the corresponding
     *  signature set (docs/ARCHITECTURE.md Sec. 6), or noted/spec bits
     *  that disagree with each other, or a spec-bit line missing from
     *  the release list (specLines). */
    SignatureSetMismatch,
    /** A write-buffer line outside the write and labeled sets: its
     *  bytes would commit without ever being arbitrated. */
    WriteBufferNotInSet,
    /** Speculative sets or write buffer still populated on a core with
     *  no active transaction (release leak). */
    SpecStateLeak,
    /** The handler -> access() re-entry exceeded depth one. */
    HandlerDepthExceeded,
};

const char *invariantKindName(InvariantKind kind);

/** One violation: the machine-readable fields tests match on, plus the
 *  full human-readable diagnostic. */
struct InvariantViolation {
    InvariantKind kind;
    Addr line = 0;        //!< line address (0 when not line-specific)
    CoreId core = kNoCore; //!< offending core (kNoCore when global)
    std::string message;  //!< structured diagnostic (states, sharer diff)
};

/**
 * The checker. Construction is cheap; each sweep() walks the machine
 * and reports every violation it finds. The production entry point
 * check() prints all diagnostics to stderr and aborts the process on
 * the first unclean sweep — it works in Release builds, which is the
 * point: the protocol rules it verifies were previously guarded only
 * by assert()s that vanish under NDEBUG.
 */
class InvariantChecker
{
  public:
    /** Where in the simulation a sweep was triggered from. */
    enum class SyncPoint : uint8_t {
        DrainEnd, //!< end of a directory drain loop (access())
        Commit,   //!< after an HTM commit completed
        Abort,    //!< after an HTM abort attempt completed
        Periodic, //!< every MachineConfig::invariantPeriod cycles
        Manual,   //!< explicit call (tests)
    };

    InvariantChecker(const MachineConfig &cfg, const MemorySystem &mem,
                     const HtmManager &htm);

    /** Full-machine sweep; appends violations to @p out and returns
     *  how many were found. Never mutates simulated state. */
    uint32_t sweep(std::vector<InvariantViolation> &out) const;

    /** Sweep; on any violation, print every diagnostic (prefixed with
     *  @p where) to stderr and abort. */
    void check(SyncPoint where);

    /** Sweeps run so far (all sync points). */
    uint64_t sweeps() const { return sweeps_; }

    static const char *syncPointName(SyncPoint where);

  private:
    void sweepDirectory(std::vector<InvariantViolation> &out) const;
    void sweepPrivate(std::vector<InvariantViolation> &out) const;
    void sweepHtm(std::vector<InvariantViolation> &out) const;

    const MachineConfig &cfg_;
    const MemorySystem &mem_;
    const HtmManager &htm_;
    mutable uint64_t sweeps_ = 0;
};

} // namespace commtm

#endif // COMMTM_SIM_INVARIANTS_H
