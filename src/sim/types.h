/**
 * @file
 * Fundamental types shared across the CommTM simulator.
 */

#ifndef COMMTM_SIM_TYPES_H
#define COMMTM_SIM_TYPES_H

#include <cstddef>
#include <cstdint>

namespace commtm {

/** Simulated virtual address. The simulated address space is flat. */
using Addr = uint64_t;

/** Simulated time, in core clock cycles. */
using Cycle = uint64_t;

/** Identifier of a simulated core / hardware thread context. */
using CoreId = uint32_t;

/** Transaction timestamp used for conflict resolution (Sec. III-B1). */
using Timestamp = uint64_t;

/** Cache line geometry: 64-byte lines throughout (Table I). */
constexpr uint32_t kLineBits = 6;
constexpr uint32_t kLineSize = 1u << kLineBits;

/** Address of the cache line containing @p addr. */
constexpr Addr
lineAddr(Addr addr)
{
    return addr >> kLineBits;
}

/** Byte offset of @p addr within its cache line. */
constexpr uint32_t
lineOffset(Addr addr)
{
    return static_cast<uint32_t>(addr & (kLineSize - 1));
}

/** First byte address of the line numbered @p line. */
constexpr Addr
lineBase(Addr line)
{
    return line << kLineBits;
}

/**
 * Hardware commutativity label (Sec. III-A). The architecture supports a
 * small number of labels; kNoLabel denotes an unlabeled (conventional)
 * access.
 */
using Label = uint8_t;
constexpr Label kNoLabel = 0xff;
constexpr uint32_t kMaxHwLabels = 8;

/** An invalid core id (e.g., "no owner"). */
constexpr CoreId kNoCore = ~0u;

} // namespace commtm

#endif // COMMTM_SIM_TYPES_H
