/**
 * @file
 * COMMTM_CHECK: a Release-alive protocol assertion. Unlike assert(),
 * the condition is always evaluated and a failure always aborts, with
 * an optional printf-style context message. Use it for load-bearing
 * protocol invariants whose violation means the simulation is already
 * corrupt (docs/ARCHITECTURE.md Sec. 10); keep plain assert() for
 * local sanity checks that only guard debug-build reasoning.
 */

#ifndef COMMTM_SIM_CHECK_H
#define COMMTM_SIM_CHECK_H

namespace commtm {

/** Cold failure path: prints "file:line: CHECK failed: expr (msg)" to
 *  stderr and aborts. Defined in sim/invariants.cc. */
[[noreturn]] void commtmCheckFail(const char *file, int line,
                                  const char *expr, const char *fmt,
                                  ...) __attribute__((format(printf, 4, 5)));

/** Always-on check; the trailing arguments are an optional printf
 *  message ("" when omitted — the literal pasting below needs the
 *  first vararg, if any, to be a string literal). */
#define COMMTM_CHECK(cond, ...)                                        \
    do {                                                               \
        if (__builtin_expect(!(cond), 0)) {                            \
            ::commtm::commtmCheckFail(__FILE__, __LINE__, #cond,       \
                                      "" __VA_ARGS__);                 \
        }                                                              \
    } while (0)

} // namespace commtm

#endif // COMMTM_SIM_CHECK_H
