#!/usr/bin/env python3
"""Repo lint for the CommTM simulator (blocking in CI).

Mechanizes the hand-maintained source rules:

  line-length    no source line longer than 78 columns
  tabs           no tab characters; indentation is 4 spaces
  file-header    every C++ file starts with a Doxygen @file comment
  file-ext       C++ sources use the .cc extension; .cpp under src/,
                 tests/, bench/, or examples/ is flagged (the tree
                 once mixed both; build globs assume .cc)
  tx-aborted     in src/lib/ and src/apps/ transaction bodies, a
                 readLabeled/readGather call must be followed by a
                 ctx.txAborted() check inside the same brace scope
                 (the cooperative-unwind contract,
                 docs/ARCHITECTURE.md Sec. 4.1)
  sec-ref        arabic "Sec. N[.M]" comment references must name an
                 existing section of docs/ARCHITECTURE.md; roman
                 references (paper sections, e.g. Sec. III-B4) must be
                 well-formed

Suppress a finding on a specific line by appending a comment:

  // lint: allow-<rule>      e.g. // lint: allow-tx-aborted

(on the flagged line or up to two lines above it). The canonical
tx-aborted suppression case is a pure labeled read-modify-write: the
value read feeds only a writeLabeled to the same label, and the
buffered write dies with the aborted attempt, so acting on the zero
sentinel is harmless.

Usage:
  tools/lint.py [--root DIR]   lint the tree, exit 1 on any finding
  tools/lint.py --self-test    prove every rule fires on a synthetic
                               violation, exit 1 if any rule is dead
"""

import argparse
import re
import sys
from pathlib import Path

MAX_COLS = 78

# File sets, relative to the repo root.
CXX_GLOBS = [
    "src/*/*.h",
    "src/*/*.cc",
    "tests/*.cc",
    "bench/*.h",
    "bench/*.cc",
    "examples/*.cc",
]
# Wrong-extension sources: linted for file-ext, not for content (they
# should not exist; the build globs only pick up .cc).
BAD_EXT_GLOBS = [
    "src/*/*.cpp",
    "tests/*.cpp",
    "bench/*.cpp",
    "examples/*.cpp",
]
TX_BODY_GLOBS = ["src/lib/*.cc", "src/apps/*.cc"]

ALLOW_RE = re.compile(r"//\s*lint:\s*allow-([a-z-]+)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def suppressed(lines, lineno, rule):
    """A finding is suppressed by `// lint: allow-<rule>` on the
    flagged line or up to two lines above it (multi-line statements
    put the comment above the whole statement; 1-based lineno)."""
    for cand in (lineno, lineno - 1, lineno - 2):
        if 1 <= cand <= len(lines):
            m = ALLOW_RE.search(lines[cand - 1])
            if m and m.group(1) == rule:
                return True
    return False


def check_line_length(path, lines, findings):
    for i, line in enumerate(lines, 1):
        if len(line) > MAX_COLS and not suppressed(lines, i, "line-length"):
            findings.append(
                Finding(path, i, "line-length",
                        f"{len(line)} columns (max {MAX_COLS})"))


def check_tabs(path, lines, findings):
    for i, line in enumerate(lines, 1):
        if "\t" in line and not suppressed(lines, i, "tabs"):
            findings.append(
                Finding(path, i, "tabs",
                        "tab character; use 4-space indentation"))


def check_file_ext(rel, findings):
    if str(rel).endswith(".cpp"):
        findings.append(
            Finding(rel, 1, "file-ext",
                    "C++ sources use the .cc extension, not .cpp"))


def check_file_header(path, lines, findings):
    head = "\n".join(lines[:5])
    if "@file" not in head:
        findings.append(
            Finding(path, 1, "file-header",
                    "missing Doxygen @file comment in the first lines"))


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving length
    and line structure, so brace matching is not fooled by braces in
    comments or literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


TX_CALL_RE = re.compile(r"\b(readLabeled|readGather)\s*[<(]")
TX_CHECK_RE = re.compile(r"\btxAborted\s*\(")


def check_tx_aborted(path, lines, findings):
    """After a readLabeled/readGather call, the rest of the enclosing
    function must contain a txAborted() check: labeled reads return
    the zero sentinel once the attempt has aborted, and acting on it
    without checking re-creates the PR-4/PR-5 bug class. The function
    boundary is the next closing brace at column 0 (repo style puts
    function-body braces there)."""
    text = "\n".join(lines)
    stripped = strip_comments_and_strings(text)
    for m in TX_CALL_RE.finditer(stripped):
        lineno = stripped.count("\n", 0, m.start()) + 1
        if suppressed(lines, lineno, "tx-aborted"):
            continue
        # Scan from the call to the end of the enclosing function: a
        # "}" that starts a line.
        end = len(stripped)
        j = stripped.find("\n}", m.end())
        if j >= 0:
            end = j + 1
        if not TX_CHECK_RE.search(stripped, m.end(), end):
            findings.append(
                Finding(path, lineno, "tx-aborted",
                        f"{m.group(1)} result used without a "
                        "ctx.txAborted() check before the end of "
                        "the enclosing function"))


SEC_REF_RE = re.compile(r"\bSec\.\s+([0-9A-Za-z.-]+)")
ROMAN_RE = re.compile(r"^[IVX]+(-[A-Z][0-9]*)?$")
ARCH_HEADING_RE = re.compile(r"^#{2,3}\s+(\d+(?:\.\d+)?)[.\s]")


def load_arch_sections(root):
    sections = set()
    arch = root / "docs" / "ARCHITECTURE.md"
    if arch.exists():
        for line in arch.read_text().splitlines():
            m = ARCH_HEADING_RE.match(line)
            if m:
                sections.add(m.group(1))
    return sections


def check_sec_refs(path, lines, findings, sections):
    for i, line in enumerate(lines, 1):
        for m in SEC_REF_RE.finditer(line):
            ref = m.group(1).rstrip(".")
            if suppressed(lines, i, "sec-ref"):
                continue
            if ref[0].isdigit():
                # Arabic: a docs/ARCHITECTURE.md section.
                if ref not in sections:
                    findings.append(
                        Finding(path, i, "sec-ref",
                                f'"Sec. {ref}" does not match any '
                                "docs/ARCHITECTURE.md heading"))
            elif not ROMAN_RE.match(ref):
                findings.append(
                    Finding(path, i, "sec-ref",
                            f'malformed paper section reference '
                            f'"Sec. {ref}"'))


def lint_file(path, rel, findings, sections, tx_scope):
    lines = path.read_text().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    check_line_length(rel, lines, findings)
    check_tabs(rel, lines, findings)
    check_file_header(rel, lines, findings)
    check_sec_refs(rel, lines, findings, sections)
    if tx_scope:
        check_tx_aborted(rel, lines, findings)


def run_lint(root):
    sections = load_arch_sections(root)
    if not sections:
        print("lint: could not read docs/ARCHITECTURE.md headings",
              file=sys.stderr)
        return 1
    tx_files = set()
    for pattern in TX_BODY_GLOBS:
        tx_files.update(root.glob(pattern))
    files = set()
    for pattern in CXX_GLOBS:
        files.update(root.glob(pattern))
    findings = []
    for path in sorted(files):
        lint_file(path, path.relative_to(root), findings, sections,
                  path in tx_files)
    for pattern in BAD_EXT_GLOBS:
        for path in sorted(root.glob(pattern)):
            check_file_ext(path.relative_to(root), findings)
    for f in findings:
        print(f)
    print(f"lint: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


# ---------------------------------------------------------------------
# Self test: each rule must fire on a synthetic violation and stay
# quiet on compliant input (registered as a ctest, so a regression
# that silences a rule fails CI).
# ---------------------------------------------------------------------

SELF_TESTS = [
    ("line-length", ["// " + "x" * 80], True),
    ("line-length", ["// short"], False),
    ("line-length", ["// lint: allow-line-length", "/* " + "y" * 80], False),
    ("tabs", ["\tint x;"], True),
    ("tabs", ["    int x;"], False),
    ("sec-ref", ["// see docs/ARCHITECTURE.md Sec. 99"], True),
    ("sec-ref", ["// see docs/ARCHITECTURE.md Sec. 6"], False),
    ("sec-ref", ["// reduction (Sec. III-B4)"], False),
    ("sec-ref", ["// reduction (Sec. iii-b4)"], True),
]

TX_BAD = """
void pop(ThreadContext &ctx)
{
    ctx.txRun([&] {
        uint64_t tail = ctx.readLabeled<uint64_t>(a, kLab);
        ctx.write<uint64_t>(b, tail);
    });
}
"""

TX_GOOD = """
void pop(ThreadContext &ctx)
{
    ctx.txRun([&] {
        uint64_t tail = ctx.readLabeled<uint64_t>(a, kLab);
        if (ctx.txAborted())
            return;
        ctx.write<uint64_t>(b, tail);
    });
}
"""

TX_OUTER_CHECK = """
bool claim(ThreadContext &ctx)
{
    uint8_t tokens = ctx.readLabeled<uint8_t>(a, kLab);
    if (tokens == 0) {
        tokens = ctx.readGather<uint8_t>(a, kLab);
    }
    if (ctx.txAborted())
        return false;
    ctx.writeLabeled<uint8_t>(a, kLab, uint8_t(tokens - 1));
    return true;
}

void next(ThreadContext &ctx)
{
    uint64_t v = ctx.readLabeled<uint64_t>(b, kLab);
    ctx.write<uint64_t>(c, v);
}
"""

TX_SUPPRESSED = """
void pop(ThreadContext &ctx)
{
    ctx.txRun([&] {
        // lint: allow-tx-aborted
        uint64_t tail = ctx.readLabeled<uint64_t>(a, kLab);
        ctx.write<uint64_t>(b, tail);
    });
}
"""

TX_COMMENT_ONLY = """
void pop(ThreadContext &ctx)
{
    // a comment mentioning readLabeled(x) must not trigger
    ctx.txRun([&] { ctx.write<uint64_t>(b, 1); });
}
"""


def expect(ok, what, failures):
    if not ok:
        failures.append(what)
        print(f"self-test FAILED: {what}")


def run_self_test(root):
    sections = load_arch_sections(root)
    failures = []
    for rule, lines, should_fire in SELF_TESTS:
        findings = []
        check_line_length("t.cc", lines, findings)
        check_tabs("t.cc", lines, findings)
        check_sec_refs("t.cc", lines, findings, sections)
        fired = any(f.rule == rule for f in findings)
        expect(fired == should_fire,
               f"{rule} on {lines[:1]!r}: fired={fired}, "
               f"expected {should_fire}", failures)
    for name, body, expected in [
        ("tx-bad", TX_BAD, 1),
        ("tx-good", TX_GOOD, 0),
        # Only the check-less second function may fire; the checks in
        # the first function's outer scope cover its nested calls.
        ("tx-outer-check", TX_OUTER_CHECK, 1),
        ("tx-suppressed", TX_SUPPRESSED, 0),
        ("tx-comment-only", TX_COMMENT_ONLY, 0),
    ]:
        findings = []
        check_tx_aborted("t.cc", body.split("\n"), findings)
        fired = sum(1 for f in findings if f.rule == "tx-aborted")
        expect(fired == expected,
               f"tx-aborted/{name}: fired={fired}, "
               f"expected {expected}", failures)
    findings = []
    check_file_header("t.cc", ["int x;"], findings)
    expect(any(f.rule == "file-header" for f in findings),
           "file-header on headerless file", failures)
    findings = []
    check_file_header("t.cc", ["/**", " * @file", " */"], findings)
    expect(not findings, "file-header on compliant file", failures)
    findings = []
    check_file_ext(Path("examples/demo.cpp"), findings)
    expect(any(f.rule == "file-ext" for f in findings),
           "file-ext on a .cpp example", failures)
    findings = []
    check_file_ext(Path("examples/demo.cc"), findings)
    expect(not findings, "file-ext on a .cc example", failures)
    if failures:
        print(f"self-test: {len(failures)} failure(s)")
        return 1
    print("self-test: all rules fire and suppress correctly")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on synthetic "
                             "violations")
    args = parser.parse_args()
    root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent
    if args.self_test:
        return run_self_test(root)
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main())
