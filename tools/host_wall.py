#!/usr/bin/env python3
"""Advisory host-wall timer for the scheduler-bound benchmark sweeps.

Times the 128-/256-thread rows of the sweeps the wakeup-list
scheduler targets (docs/ARCHITECTURE.md Sec. 2.2) and writes a small
JSON report. CI uploads the report as an artifact next to the
baseline check so host-speed trends are visible over time; nothing
gates on it — shared runners are far too noisy for a blocking wall
(docs/BENCHMARKS.md, "Host wall clock").

Usage: tools/host_wall.py [--build-dir build] [--runs 3] [--out -]
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

# (binary, google-benchmark filter): the rows that are scheduler- and
# protocol-bound at high thread counts. Row names end in
# "/iterations:1", so the filter needs the trailing slash.
SWEEPS = [
    ("fig09_counter", "/(128|256)/"),
    ("fig12_list", "/(128|256)/"),
    ("replay_sweep", "/(128|256)/"),
    ("svc_counter", "/(128|256)/"),
]


def time_once(binary, bench_filter):
    """One timed run; returns wall seconds, or None on failure."""
    start = time.monotonic()
    proc = subprocess.run(
        [binary, "--benchmark_filter=" + bench_filter],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    elapsed = time.monotonic() - start
    return elapsed if proc.returncode == 0 else None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--runs", type=int, default=3,
                    help="timed runs per sweep; the minimum is "
                         "reported (least-noise estimator)")
    ap.add_argument("--out", default="-",
                    help="output path, or - for stdout")
    args = ap.parse_args()

    report = {
        "host": platform.platform(),
        "machine": platform.machine(),
        "runs": args.runs,
        "sweeps": {},
    }
    for binary, bench_filter in SWEEPS:
        path = os.path.join(args.build_dir, binary)
        times = []
        for _ in range(args.runs):
            t = time_once(path, bench_filter)
            if t is None:
                break
            times.append(t)
        report["sweeps"][binary] = {
            "filter": bench_filter,
            "seconds": round(min(times), 4) if times else None,
            "all_runs": [round(t, 4) for t in times],
        }

    text = json.dumps(report, indent=2) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as f:
            f.write(text)
        print("wrote %s" % args.out, file=sys.stderr)
    # Advisory by design: missing binaries or failed runs show up as
    # null in the report, never as a red CI job.
    return 0


if __name__ == "__main__":
    sys.exit(main())
