#!/usr/bin/env python3
"""Dump and validate CommTM trace captures (docs/ARCHITECTURE.md Sec. 11).

Parses the sealed CTMTRACE container (src/trace/trace_format.h) with
the same field-precise checks as the in-tree reader
(src/trace/trace_reader.cc) — same rejection messages, so a trace
this tool accepts parses in the simulator and vice versa. On success
prints the header, a per-thread record/byte/transaction table, and a
machine-wide opcode histogram; --dump additionally prints the first N
decoded records of each thread.

Exit status is nonzero if any input fails validation, so CI can gate
on a dumped capture (COMMTM_CAPTURE_TRACE=<path> makes any run write
one):

    COMMTM_CAPTURE_TRACE=/tmp/cap.trace build/trace_test
    tools/trace_info.py /tmp/cap.trace

Usage: tools/trace_info.py TRACE [TRACE ...] [--dump N] [--quiet]
"""

import argparse
import signal
import sys

MAGIC = b"CTMTRACE"
VERSION = 1
HEADER_BYTES = 32
THREAD_ENTRY_BYTES = 16
LINE_SIZE = 64
MAX_HW_LABELS = 8
NO_LABEL = 0xFF
U64_MASK = (1 << 64) - 1

KIND_NAMES = [
    "Compute",
    "Load",
    "Store",
    "LabeledLoad",
    "LabeledStore",
    "Gather",
    "TxBegin",
    "TxEnd",
    "Barrier",
    "Annotation",
]
ADDRESSED = {1, 2, 3, 4, 5}  # Load..Gather
LABELED = {3, 4, 5}  # LabeledLoad, LabeledStore, Gather
STORES = {2, 4}  # Store, LabeledStore


class TraceError(Exception):
    """Validation failure; str() is the trace_reader.cc diagnostic."""


class Cursor:
    """Bounds-checked little-endian/varint cursor over one range."""

    def __init__(self, buf, start=0, end=None):
        self.buf = buf
        self.pos = start
        self.end = len(buf) if end is None else end

    def remaining(self):
        return self.end - self.pos

    def u8(self):
        if self.pos >= self.end:
            return None
        v = self.buf[self.pos]
        self.pos += 1
        return v

    def u32(self):
        v = int.from_bytes(self.buf[self.pos:self.pos + 4], "little")
        self.pos += 4
        return v

    def u64(self):
        v = int.from_bytes(self.buf[self.pos:self.pos + 8], "little")
        self.pos += 8
        return v

    def varint(self):
        """LEB128; None on truncation or a value wider than 64 bits."""
        v = 0
        for shift in range(0, 64, 7):
            if self.pos >= self.end:
                return None
            byte = self.buf[self.pos]
            self.pos += 1
            v |= (byte & 0x7F) << shift
            if (byte & 0x80) == 0:
                # The 10th byte may only carry the top bit of a u64.
                return v if shift < 63 or byte <= 1 else None
        return None

    def raw(self, n):
        if self.remaining() < n:
            return None
        v = self.buf[self.pos:self.pos + n]
        self.pos += n
        return v


def unzigzag(v):
    return (v >> 1) ^ -(v & 1)


def parse_stream(thread, cur, expect_records):
    """Decode one thread stream; mirrors trace_reader.cc parseStream."""
    records = []
    last_addr = 0
    in_tx = False
    while cur.remaining() > 0:
        index = len(records)
        if index >= expect_records:
            raise TraceError(
                "thread %d: %d stream bytes after record %d"
                % (thread, cur.remaining(), expect_records - 1))
        where = "thread %d record %d" % (thread, index)
        kind = cur.u8()
        if kind >= len(KIND_NAMES):
            raise TraceError("%s: bad opcode %d" % (where, kind))
        rec = {"kind": kind}
        if kind == 0:  # Compute
            rec["a"] = cur.varint()
            if rec["a"] is None:
                raise TraceError("%s: truncated instr count" % where)
        elif kind in ADDRESSED:
            delta = cur.varint()
            if delta is None:
                raise TraceError("%s: truncated address delta" % where)
            last_addr = (last_addr + unzigzag(delta)) & U64_MASK
            rec["addr"] = last_addr
            size = cur.varint()
            if size is None:
                raise TraceError("%s: truncated size" % where)
            if size == 0 or size > LINE_SIZE:
                raise TraceError(
                    "%s: implausible access size %d" % (where, size))
            rec["size"] = size
            if rec["addr"] % LINE_SIZE + size > LINE_SIZE:
                raise TraceError(
                    "%s: access straddles a cache line" % where)
            if kind in LABELED:
                label = cur.u8()
                if label is None:
                    raise TraceError("%s: truncated label" % where)
                if label >= MAX_HW_LABELS and label != NO_LABEL:
                    raise TraceError(
                        "%s: bad label %d" % (where, label))
                rec["label"] = label
            if kind in STORES:
                rec["data"] = cur.raw(size)
                if rec["data"] is None:
                    raise TraceError(
                        "%s: truncated operand (%d bytes)"
                        % (where, size))
        elif kind == 6:  # TxBegin
            if in_tx:
                raise TraceError(
                    "%s: TxBegin inside a transaction" % where)
            in_tx = True
        elif kind == 7:  # TxEnd
            if not in_tx:
                raise TraceError("%s: TxEnd without TxBegin" % where)
            in_tx = False
        elif kind == 8:  # Barrier
            if in_tx:
                raise TraceError(
                    "%s: Barrier inside a transaction" % where)
        else:  # Annotation
            rec["a"] = cur.varint()
            rec["b"] = cur.varint() if rec["a"] is not None else None
            if rec["b"] is None:
                raise TraceError("%s: truncated annotation" % where)
        records.append(rec)
    if len(records) != expect_records:
        raise TraceError(
            "thread %d: stream ends after record %d of %d"
            % (thread, len(records), expect_records))
    if in_tx:
        raise TraceError(
            "thread %d: unterminated transaction at end of stream"
            % thread)
    return records


def parse(buf):
    """Full-container parse; mirrors trace_reader.cc TraceReader::parse.

    Returns {"version", "fingerprint", "threads": [records...],
    "commit_order"}; raises TraceError with the reader's diagnostic.
    """
    if len(buf) < HEADER_BYTES:
        raise TraceError("truncated header")
    if buf[:len(MAGIC)] != MAGIC:
        raise TraceError("bad magic")
    cur = Cursor(buf, start=len(MAGIC))
    version = cur.u32()
    num_threads = cur.u32()
    fingerprint = cur.u64()
    commit_count = cur.u64()
    if version != VERSION:
        raise TraceError("unsupported version %d" % version)
    if cur.remaining() // THREAD_ENTRY_BYTES < num_threads:
        raise TraceError("truncated thread table")
    table = [(cur.u64(), cur.u64()) for _ in range(num_threads)]
    stream_bytes = 0
    for t, (_, nbytes) in enumerate(table):
        if stream_bytes + nbytes > cur.remaining():
            raise TraceError(
                "thread %d: stream length %d runs past the end of "
                "the buffer" % (t, nbytes))
        stream_bytes += nbytes
    threads = []
    for t, (nrecords, nbytes) in enumerate(table):
        stream = Cursor(buf, start=cur.pos, end=cur.pos + nbytes)
        threads.append(parse_stream(t, stream, nrecords))
        cur.pos += nbytes
    commit_order = []
    for i in range(commit_count):
        core = cur.varint()
        if core is None:
            raise TraceError(
                "truncated commit order at entry %d" % i)
        if core >= num_threads:
            raise TraceError(
                "commit order entry %d: core %d out of range"
                % (i, core))
        commit_order.append(core)
    if cur.remaining() != 0:
        raise TraceError(
            "%d trailing bytes after the commit order"
            % cur.remaining())
    return {
        "version": version,
        "fingerprint": fingerprint,
        "threads": threads,
        "commit_order": commit_order,
        "table": table,
    }


def format_record(rec):
    parts = [KIND_NAMES[rec["kind"]]]
    if "addr" in rec:
        parts.append("addr=0x%x size=%d" % (rec["addr"], rec["size"]))
    if "label" in rec:
        parts.append("label=%s"
                     % ("-" if rec["label"] == NO_LABEL
                        else rec["label"]))
    if "data" in rec:
        parts.append("data=" + rec["data"].hex())
    if rec["kind"] == 0:
        parts.append("instrs=%d" % rec["a"])
    if rec["kind"] == 9:
        parts.append("code=%d value=%d" % (rec["a"], rec["b"]))
    return " ".join(parts)


def report(path, trace, dump):
    print("%s: CTMTRACE v%d, %d threads, %d commits, "
          "config fingerprint 0x%016x"
          % (path, trace["version"], len(trace["threads"]),
             len(trace["commit_order"]), trace["fingerprint"]))
    print("  %6s %10s %10s %8s" % ("thread", "records", "bytes",
                                   "txs"))
    histogram = [0] * len(KIND_NAMES)
    idle = 0
    for t, records in enumerate(trace["threads"]):
        if not records:
            idle += 1
            continue
        txs = 0
        for rec in records:
            histogram[rec["kind"]] += 1
            txs += rec["kind"] == 6
        print("  %6d %10d %10d %8d"
              % (t, len(records), trace["table"][t][1], txs))
    if idle:
        print("  (%d idle threads with empty streams)" % idle)
    print("  opcode histogram: "
          + " ".join("%s=%d" % (KIND_NAMES[k], n)
                     for k, n in enumerate(histogram) if n))
    for t, records in enumerate(trace["threads"]):
        for i, rec in enumerate(records[:dump]):
            print("  thread %d record %d: %s"
                  % (t, i, format_record(rec)))


def main():
    ap = argparse.ArgumentParser(
        description="Dump and validate CommTM trace captures.")
    ap.add_argument("traces", nargs="+", metavar="TRACE",
                    help="serialized capture (COMMTM_CAPTURE_TRACE)")
    ap.add_argument("--dump", type=int, default=0, metavar="N",
                    help="also print the first N records per thread")
    ap.add_argument("--quiet", action="store_true",
                    help="validate only; one OK/INVALID line per file")
    args = ap.parse_args()
    status = 0
    for path in args.traces:
        try:
            with open(path, "rb") as f:
                buf = f.read()
        except OSError as e:
            print("%s: %s" % (path, e.strerror), file=sys.stderr)
            status = 1
            continue
        try:
            trace = parse(buf)
        except TraceError as e:
            print("%s: INVALID: %s" % (path, e), file=sys.stderr)
            status = 1
            continue
        if args.quiet:
            print("%s: OK (%d threads, %d commits)"
                  % (path, len(trace["threads"]),
                     len(trace["commit_order"])))
        else:
            report(path, trace, args.dump)
    return status


if __name__ == "__main__":
    # Die quietly when piped into head & co.
    signal.signal(signal.SIGPIPE, signal.SIG_DFL)
    sys.exit(main())
