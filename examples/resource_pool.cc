/**
 * @file
 * Resource pool with reference counting: the bounded non-negative
 * counter use case of Sec. IV. A pool of connections is acquired and
 * released by many worker threads; the free-slot counter supports
 * commutative increments, and conditionally-commutative decrements
 * that rebalance free slots across caches with gather requests instead
 * of serializing on reductions.
 *
 * Run it twice — with and without gathers — to see the difference the
 * paper's Fig. 10 quantifies.
 *
 *   $ ./examples/resource_pool
 */

#include <cstdio>
#include <vector>

#include "lib/bounded_counter.h"
#include "rt/machine.h"

using namespace commtm;

namespace {

struct Outcome {
    Cycle cycles;
    uint64_t gathers;
    uint64_t reductions;
    int64_t leaked;
};

Outcome
run(SystemMode mode)
{
    constexpr int kWorkers = 16;
    constexpr int kOpsEach = 600;
    constexpr int64_t kPoolSize = 320;

    MachineConfig cfg;
    cfg.mode = mode;
    Machine m(cfg);
    const Label label = BoundedCounter::defineLabel(m);
    BoundedCounter free_slots(m, label, kPoolSize);

    std::vector<int64_t> held(kWorkers, 0);
    for (int w = 0; w < kWorkers; w++) {
        m.addThread([&, w](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOpsEach; i++) {
                if (held[w] > 0 && rng.chance(0.5)) {
                    free_slots.increment(ctx); // release
                    held[w]--;
                } else if (free_slots.decrement(ctx)) { // acquire
                    held[w]++;
                }
                ctx.compute(30); // use the connection
            }
            // Drain: release everything.
            while (held[w] > 0) {
                free_slots.increment(ctx);
                held[w]--;
            }
        });
    }
    m.run();

    Outcome o;
    o.cycles = m.stats().runtimeCycles();
    o.gathers = m.stats().machine.gathers;
    o.reductions = m.stats().machine.reductions;
    o.leaked = kPoolSize - free_slots.peek(m);
    return o;
}

} // namespace

int
main()
{
    std::printf("resource pool: 16 workers sharing 320 slots\n\n");
    bool ok = true;
    for (SystemMode mode :
         {SystemMode::BaselineHtm, SystemMode::CommTmNoGather,
          SystemMode::CommTm}) {
        const Outcome o = run(mode);
        const char *name = mode == SystemMode::BaselineHtm
                               ? "Baseline"
                               : mode == SystemMode::CommTmNoGather
                                     ? "CommTM w/o gather"
                                     : "CommTM w/ gather";
        std::printf("%-18s cycles=%-9llu gathers=%-5llu "
                    "reductions=%-5llu leaked=%lld\n",
                    name, (unsigned long long)o.cycles,
                    (unsigned long long)o.gathers,
                    (unsigned long long)o.reductions,
                    (long long)o.leaked);
        ok = ok && o.leaked == 0;
    }
    std::printf("\nAll slots returned to the pool in every mode.\n");
    return ok ? 0 : 1;
}
