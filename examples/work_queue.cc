/**
 * @file
 * Work-sharing queue: the paper's motivating set/list scenario
 * (Secs. I and VI). A singly-linked list acts as a work-sharing queue:
 * element order does not matter, so enqueues and dequeues are
 * semantically commutative. Producers push work items; consumers pop
 * and "process" them. On CommTM, each core keeps a private partial
 * list under its reducible descriptor copy; dequeues on an empty local
 * list gather a donated element from another core (Fig. 11).
 *
 *   $ ./examples/work_queue
 */

#include <cstdio>
#include <vector>

#include "lib/linked_list.h"
#include "rt/machine.h"

using namespace commtm;

int
main()
{
    constexpr int kProducers = 8;
    constexpr int kConsumers = 8;
    constexpr int kItemsPerProducer = 300;

    MachineConfig cfg;
    cfg.mode = SystemMode::CommTm;
    Machine m(cfg);
    const Label list_label = CommList::defineLabel(m);
    CommList queue(m, list_label);

    std::vector<uint64_t> processed(kConsumers, 0);

    for (int p = 0; p < kProducers; p++) {
        m.addThread([&, p](ThreadContext &ctx) {
            for (int i = 0; i < kItemsPerProducer; i++) {
                // Work item id encodes its producer for bookkeeping.
                queue.enqueue(ctx, (uint64_t(p) << 32) | uint64_t(i));
                ctx.compute(20); // produce the next item
            }
        });
    }
    for (int c = 0; c < kConsumers; c++) {
        m.addThread([&, c](ThreadContext &ctx) {
            uint64_t item;
            int idle_rounds = 0;
            while (idle_rounds < 50) {
                if (queue.dequeue(ctx, &item)) {
                    idle_rounds = 0;
                    processed[c]++;
                    ctx.compute(60); // process the item
                } else {
                    idle_rounds++;
                    ctx.compute(10); // poll backoff
                }
            }
        });
    }
    m.run();

    uint64_t total = 0;
    for (int c = 0; c < kConsumers; c++) {
        std::printf("consumer %d processed %llu items\n", c,
                    (unsigned long long)processed[c]);
        total += processed[c];
    }
    const uint64_t leftover = queue.peekSize(m);
    std::printf("total processed=%llu leftover=%llu produced=%d\n",
                (unsigned long long)total, (unsigned long long)leftover,
                kProducers * kItemsPerProducer);

    const StatsSnapshot stats = m.stats();
    std::printf("gathers=%llu reductions=%llu aborts=%llu\n",
                (unsigned long long)stats.machine.gathers,
                (unsigned long long)stats.machine.reductions,
                (unsigned long long)stats.aggregateThreads().txAborted);

    return total + leftover ==
                   uint64_t(kProducers) * kItemsPerProducer
               ? 0
               : 1;
}
