/**
 * @file
 * Quickstart: the paper's running example (Sec. III-A) — concurrent
 * commutative increments to a shared counter.
 *
 * Builds a simulated 128-core CommTM machine, defines an ADD label,
 * runs 16 threads incrementing one counter transactionally, and shows
 * that the increments proceeded concurrently (no aborts, no coherence
 * traffic beyond the initial GETUs), unlike a conventional HTM.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "lib/counter.h"
#include "rt/machine.h"

using namespace commtm;

namespace {

StatsSnapshot
run(SystemMode mode, int threads, int increments, int64_t *result)
{
    MachineConfig cfg; // Table I defaults: 128 cores, MESI+U, 4x4 mesh
    cfg.mode = mode;

    Machine m(cfg);
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);

    for (int t = 0; t < threads; t++) {
        m.addThread([&](ThreadContext &ctx) {
            // Each add() is a transaction of labeled loads/stores:
            //   tx_begin();
            //   local = load[ADD](counter);
            //   store[ADD](counter, local + 1);
            //   tx_end();
            for (int i = 0; i < increments; i++)
                counter.add(ctx, 1);
        });
    }
    m.run();
    *result = counter.peek(m);
    return m.stats();
}

} // namespace

int
main()
{
    constexpr int kThreads = 16;
    constexpr int kIncrements = 500;

    std::printf("CommTM quickstart: %d threads x %d increments\n\n",
                kThreads, kIncrements);

    for (SystemMode mode :
         {SystemMode::BaselineHtm, SystemMode::CommTm}) {
        int64_t value = 0;
        const StatsSnapshot stats =
            run(mode, kThreads, kIncrements, &value);
        const ThreadStats agg = stats.aggregateThreads();
        std::printf("%-12s value=%-6lld cycles=%-8llu aborts=%-6llu "
                    "wasted=%.1f%%\n",
                    mode == SystemMode::CommTm ? "CommTM" : "Baseline",
                    (long long)value,
                    (unsigned long long)stats.runtimeCycles(),
                    (unsigned long long)agg.txAborted,
                    agg.totalCycles()
                        ? 100.0 * double(agg.txAbortedCycles) /
                              double(agg.totalCycles())
                        : 0.0);
        if (value != int64_t(kThreads) * kIncrements) {
            std::printf("FAIL: lost updates!\n");
            return 1;
        }
    }
    std::printf("\nBoth systems compute the same value; CommTM does it "
                "without serializing the transactions.\n");
    return 0;
}
