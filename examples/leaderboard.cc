/**
 * @file
 * Database-style leaderboard: a top-K set retains the K highest scores
 * submitted by concurrent clients, and an ordered-put cell tracks the
 * cheapest offer seen — the two database-motivated commutative
 * operations of Sec. VI (Figs. 13-15). Periodic readers trigger
 * reductions that merge the per-core partial heaps.
 *
 *   $ ./examples/leaderboard
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "lib/ordered_put.h"
#include "lib/topk.h"
#include "rt/machine.h"

using namespace commtm;

int
main()
{
    constexpr int kClients = 12;
    constexpr int kSubmissionsEach = 400;
    constexpr uint32_t kTop = 10;

    MachineConfig cfg;
    cfg.mode = SystemMode::CommTm;
    Machine m(cfg);
    const Label topk_label = TopK::defineLabel(m, kTop);
    const Label oput_label = OrderedPut::defineLabel(m);
    TopK board(m, topk_label, kTop);
    OrderedPut best_offer(m, oput_label);

    std::vector<int64_t> host_scores;

    for (int c = 0; c < kClients; c++) {
        m.addThread([&, c](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kSubmissionsEach; i++) {
                const int64_t score = int64_t(rng.below(1000000));
                board.insert(ctx, score);
                // Every submission also quotes an offer price; the
                // lowest one wins (priority update).
                best_offer.put(ctx, score, uint64_t(c));
                ctx.compute(25);
            }
            ctx.barrier();
            if (c == 0) {
                // A read merges all partial heaps (Fig. 15).
                std::vector<int64_t> top = board.readAll(ctx);
                std::sort(top.begin(), top.end(),
                          std::greater<int64_t>());
                std::printf("top-%u scores:", kTop);
                for (int64_t s : top)
                    std::printf(" %lld", (long long)s);
                std::printf("\n");
            }
        });
    }
    // Host-side reference for verification.
    m.run();

    std::vector<int64_t> reference = board.peekAll(m);
    std::sort(reference.begin(), reference.end(),
              std::greater<int64_t>());
    const OrderedPut::Pair offer = best_offer.peek(m);
    std::printf("cheapest offer: %lld (client %llu)\n",
                (long long)offer.key, (unsigned long long)offer.value);

    const StatsSnapshot stats = m.stats();
    std::printf("reductions=%llu aborts=%llu labeled-instr frac=%.4f\n",
                (unsigned long long)stats.machine.reductions,
                (unsigned long long)stats.aggregateThreads().txAborted,
                double(stats.aggregateThreads().labeledInstrs) /
                    double(stats.aggregateThreads().instrs));
    return reference.size() == kTop ? 0 : 1;
}
