/**
 * @file
 * Tests for the commutative data-structure library: counters, bounded
 * counters (with/without gathers), linked lists (Fig. 11 semantics),
 * ordered puts, and top-K sets — functional correctness on every
 * system mode, validated against host-side references.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lib/bounded_counter.h"
#include "lib/comm_queue.h"
#include "lib/counter.h"
#include "lib/grid_claim.h"
#include "lib/linked_list.h"
#include "lib/ordered_put.h"
#include "lib/topk.h"
#include "rt/machine.h"

namespace commtm {
namespace {

class LibModes : public ::testing::TestWithParam<SystemMode>
{
  protected:
    MachineConfig
    cfg(uint32_t cores = 8) const
    {
        MachineConfig c;
        c.numCores = cores;
        c.mode = GetParam();
        return c;
    }
};

TEST_P(LibModes, CounterMixedDeltas)
{
    Machine m(cfg());
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int i = 1; i <= 50; i++)
                counter.add(ctx, (t % 2 == 0) ? i : -i);
        });
    }
    m.run();
    EXPECT_EQ(counter.peek(m), 0); // four +sum(1..50), four -sum(1..50)
}

TEST_P(LibModes, MultipleCountersShareOneLine)
{
    // Eight 8-byte counters fit in one line; reductions must merge
    // element-wise without cross-talk (Sec. III-A object-size rules).
    Machine m(cfg());
    const Label add = CommCounter::defineLabel(m);
    const Addr base = m.allocator().allocLines(1);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            const Addr mine = base + 8 * Addr(t);
            for (int i = 0; i < 25; i++) {
                ctx.txRun([&] {
                    const int64_t v =
                        ctx.readLabeled<int64_t>(mine, add);
                    ctx.writeLabeled<int64_t>(mine, add,
                                              v + (t + 1));
                });
            }
        });
    }
    m.run();
    const LineData line = m.memSys().debugReducedValue(lineAddr(base));
    for (int t = 0; t < 8; t++) {
        int64_t v;
        std::memcpy(&v, line.data() + 8 * t, sizeof(v));
        EXPECT_EQ(v, 25 * (t + 1)) << "counter " << t;
    }
}

TEST_P(LibModes, BoundedCounterNeverGoesNegative)
{
    Machine m(cfg());
    const Label bounded = BoundedCounter::defineLabel(m);
    BoundedCounter counter(m, bounded, 5);
    std::vector<int64_t> successes(8, 0);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int i = 0; i < 40; i++) {
                if (counter.decrement(ctx))
                    successes[t]++;
            }
        });
    }
    m.run();
    int64_t total = 0;
    for (auto s : successes)
        total += s;
    EXPECT_EQ(total, 5); // exactly the initial value
    EXPECT_EQ(counter.peek(m), 0);
}

TEST_P(LibModes, BoundedCounterConservation)
{
    Machine m(cfg());
    const Label bounded = BoundedCounter::defineLabel(m);
    BoundedCounter counter(m, bounded, 0);
    std::vector<int64_t> net(8, 0);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 100; i++) {
                if (rng.chance(0.6)) {
                    counter.increment(ctx);
                    net[t]++;
                } else if (counter.decrement(ctx)) {
                    net[t]--;
                }
            }
        });
    }
    m.run();
    int64_t expected = 0;
    for (auto n : net)
        expected += n;
    EXPECT_GE(expected, 0);
    EXPECT_EQ(counter.peek(m), expected);
}

TEST_P(LibModes, ListPreservesMultiset)
{
    Machine m(cfg());
    const Label label = CommList::defineLabel(m);
    CommList list(m, label, GetParam() == SystemMode::BaselineHtm);
    std::vector<std::vector<uint64_t>> enqueued(8), dequeued(8);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 60; i++) {
                const uint64_t v = (uint64_t(t) << 32) | uint64_t(i);
                if (rng.chance(0.7)) {
                    list.enqueue(ctx, v);
                    enqueued[t].push_back(v);
                } else {
                    uint64_t out;
                    if (list.dequeue(ctx, &out))
                        dequeued[t].push_back(out);
                }
            }
        });
    }
    m.run();
    // Enqueued values minus dequeued values must equal the remainder;
    // every dequeued value must have been enqueued exactly once.
    std::multiset<uint64_t> expected;
    for (const auto &ops : enqueued)
        expected.insert(ops.begin(), ops.end());
    for (const auto &ops : dequeued) {
        for (uint64_t v : ops) {
            auto it = expected.find(v);
            ASSERT_NE(it, expected.end())
                << "dequeued a value never enqueued (or twice)";
            expected.erase(it);
        }
    }
    std::vector<uint64_t> got = list.peekAll(m);
    std::multiset<uint64_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected);
}

TEST_P(LibModes, ListDrainsToEmpty)
{
    Machine m(cfg(4));
    const Label label = CommList::defineLabel(m);
    CommList list(m, label, GetParam() == SystemMode::BaselineHtm);
    for (int t = 0; t < 4; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 30; i++)
                list.enqueue(ctx, i);
            ctx.barrier();
            uint64_t out;
            while (list.dequeue(ctx, &out)) {
            }
        });
    }
    m.run();
    EXPECT_EQ(list.peekSize(m), 0u);
}

TEST_P(LibModes, CommQueuePreservesMultiset)
{
    Machine m(cfg());
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label, GetParam() == SystemMode::BaselineHtm);
    std::vector<std::vector<uint64_t>> enqueued(8), dequeued(8);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 80; i++) {
                const uint64_t v = (uint64_t(t) << 32) | uint64_t(i);
                if (rng.chance(0.7)) {
                    queue.enqueue(ctx, v);
                    enqueued[t].push_back(v);
                } else {
                    uint64_t out;
                    if (queue.dequeue(ctx, &out))
                        dequeued[t].push_back(out);
                }
            }
        });
    }
    m.run();
    std::multiset<uint64_t> expected;
    for (const auto &ops : enqueued)
        expected.insert(ops.begin(), ops.end());
    for (const auto &ops : dequeued) {
        for (uint64_t v : ops) {
            auto it = expected.find(v);
            ASSERT_NE(it, expected.end())
                << "dequeued a value never enqueued (or twice)";
            expected.erase(it);
        }
    }
    std::vector<uint64_t> got = queue.peekAll(m);
    std::multiset<uint64_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected);
}

TEST_P(LibModes, CommQueueDrainsToEmpty)
{
    Machine m(cfg(4));
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label, GetParam() == SystemMode::BaselineHtm);
    std::vector<uint64_t> drained(4, 0);
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            // More than kChunkCap elements per thread, so every
            // partial list spans chunk boundaries.
            for (int i = 0; i < 25; i++)
                queue.enqueue(ctx, uint64_t(t) * 100 + i);
            ctx.barrier();
            uint64_t out;
            while (queue.dequeue(ctx, &out))
                drained[t]++;
        });
    }
    m.run();
    EXPECT_EQ(queue.peekSize(m), 0u);
    uint64_t total = 0;
    for (auto d : drained)
        total += d;
    EXPECT_EQ(total, 100u);
}

TEST_P(LibModes, GridClaimConservesTokens)
{
    Machine m(cfg());
    const Label label = GridClaim::defineLabel(m);
    GridClaim grid(m, label, 16, 16); // capacity 1: exclusive cells
    std::vector<std::vector<uint32_t>> held(8);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 120; i++) {
                if (!held[t].empty() && rng.chance(0.4)) {
                    const size_t pick = rng.below(held[t].size());
                    grid.release(ctx, held[t][pick]);
                    held[t][pick] = held[t].back();
                    held[t].pop_back();
                } else {
                    const auto cell =
                        uint32_t(rng.below(grid.numCells()));
                    if (grid.claim(ctx, cell))
                        held[t].push_back(cell);
                }
            }
        });
    }
    m.run();
    uint64_t held_total = 0;
    for (const auto &h : held)
        held_total += h.size();
    EXPECT_EQ(grid.peekTokens(m), grid.numCells() - held_total);
}

TEST_P(LibModes, GridClaimPathIsAllOrNothing)
{
    Machine m(cfg(4));
    const Label label = GridClaim::defineLabel(m);
    GridClaim grid(m, label, 8, 8);
    // Four threads race for overlapping 8-cell rows; every row pair
    // shares its middle cell, so at most non-overlapping claims win.
    std::vector<std::vector<uint32_t>> paths = {
        {0, 1, 2, 3, 4, 5, 6, 7},
        {4, 12, 20, 28, 36, 44, 52, 60},
        {56, 57, 58, 59, 60, 61, 62, 63},
        {3, 11, 19, 27, 35, 43, 51, 59},
    };
    std::vector<int> won(4, 0);
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (grid.claimPath(ctx, paths[t]))
                won[t] = 1;
        });
    }
    m.run();
    uint64_t claimed = 0;
    std::set<uint32_t> claimed_cells;
    for (int t = 0; t < 4; t++) {
        if (!won[t])
            continue;
        claimed += paths[t].size();
        for (uint32_t c : paths[t])
            EXPECT_TRUE(claimed_cells.insert(c).second)
                << "cell " << c << " claimed by two winners";
    }
    // Token conservation: failed claims must have compensated fully.
    EXPECT_EQ(grid.peekTokens(m), grid.numCells() - claimed);
    for (uint32_t c = 0; c < grid.numCells(); c++) {
        const uint8_t v = grid.peekCell(m, c);
        EXPECT_EQ(v, claimed_cells.count(c) ? 0 : 1) << "cell " << c;
    }
}

TEST_P(LibModes, OrderedPutKeepsMinimum)
{
    Machine m(cfg());
    const Label label = OrderedPut::defineLabel(m);
    OrderedPut cell(m, label);
    std::vector<int64_t> mins(8, OrderedPut::kEmptyKey);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 100; i++) {
                const int64_t key = int64_t(rng.next() >> 1);
                cell.put(ctx, key, uint64_t(key) + 1);
                mins[t] = std::min(mins[t], key);
            }
        });
    }
    m.run();
    int64_t expected = OrderedPut::kEmptyKey;
    for (auto v : mins)
        expected = std::min(expected, v);
    const OrderedPut::Pair final = cell.peek(m);
    EXPECT_EQ(final.key, expected);
    EXPECT_EQ(final.value, uint64_t(expected) + 1);
}

TEST_P(LibModes, TopKMatchesSortedReference)
{
    Machine m(cfg());
    constexpr uint32_t kK = 16;
    const Label label = TopK::defineLabel(m, kK);
    TopK set(m, label, kK);
    std::vector<std::vector<int64_t>> inserted(8);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 50; i++) {
                const int64_t key = int64_t(rng.next() >> 1);
                set.insert(ctx, key);
                inserted[t].push_back(key);
            }
        });
    }
    m.run();
    std::vector<int64_t> all;
    for (auto &v : inserted)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end(), std::greater<int64_t>());
    all.resize(kK);
    std::vector<int64_t> got = set.peekAll(m);
    std::sort(got.begin(), got.end(), std::greater<int64_t>());
    EXPECT_EQ(got, all);
}

TEST_P(LibModes, TopKReaderSeesMergedHeaps)
{
    Machine m(cfg(4));
    constexpr uint32_t kK = 8;
    const Label label = TopK::defineLabel(m, kK);
    TopK set(m, label, kK);
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int i = 0; i < 20; i++)
                set.insert(ctx, t * 100 + i);
            ctx.barrier();
            if (t == 0) {
                // Fig. 15: the read triggers a reduction merging all
                // local heaps.
                std::vector<int64_t> keys = set.readAll(ctx);
                std::sort(keys.begin(), keys.end());
                EXPECT_EQ(keys.size(), kK);
                // Top-8 of {0..19, 100..119, 200..219, 300..319}.
                EXPECT_EQ(keys.front(), 312);
                EXPECT_EQ(keys.back(), 319);
            }
        });
    }
    m.run();
}

INSTANTIATE_TEST_SUITE_P(AllModes, LibModes,
                         ::testing::Values(SystemMode::BaselineHtm,
                                           SystemMode::CommTmNoGather,
                                           SystemMode::CommTm),
                         [](const auto &modes) -> std::string {
                             switch (modes.param) {
                               case SystemMode::BaselineHtm:
                                 return "Baseline";
                               case SystemMode::CommTmNoGather:
                                 return "NoGather";
                               default:
                                 return "CommTM";
                             }
                         });

} // namespace
} // namespace commtm
