/**
 * @file
 * Tests for lazy (commit-time) conflict detection — the Sec. III-D
 * generalization: TCC/Bulk-style transactional stores that buffer
 * silently, commit-time arbitration (committer wins), and CommTM's
 * commutative updates layered on top (same-label users never abort
 * each other).
 */

#include <gtest/gtest.h>

#include "lib/counter.h"
#include "lib/linked_list.h"
#include "rt/machine.h"

namespace commtm {
namespace {

MachineConfig
lazyCfg(SystemMode mode, uint32_t cores = 8)
{
    MachineConfig c;
    c.numCores = cores;
    c.mode = mode;
    c.conflictDetection = ConflictDetection::Lazy;
    return c;
}

TEST(Lazy, SerializableCounterUnderContention)
{
    Machine m(lazyCfg(SystemMode::BaselineHtm));
    const Addr a = m.allocator().allocLines(1);
    for (int t = 0; t < 8; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 100; i++) {
                ctx.txRun([&] {
                    const int64_t v = ctx.read<int64_t>(a);
                    ctx.compute(4);
                    ctx.write<int64_t>(a, v + 1);
                });
            }
        });
    }
    m.run();
    // Commit-time arbitration must still produce a serializable sum.
    EXPECT_EQ(m.memory().read<int64_t>(a), 800);
    EXPECT_GT(m.stats().aggregateThreads().txAborted, 0u);
}

TEST(Lazy, ReadersAbortAtWriterCommitNotAtItsWrite)
{
    Machine m(lazyCfg(SystemMode::BaselineHtm, 2));
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 1);
    std::vector<int64_t> seen;
    // Thread 0: long reader; thread 1: writes and commits mid-way.
    // Lazy detection: the writer's *store* does not disturb the reader
    // (it buffers silently); the writer's *commit* dooms it. The
    // reader's retry then observes the committed value.
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            seen.push_back(ctx.read<int64_t>(a));
            ctx.compute(2000); // long transaction
            ctx.write<int64_t>(a + 8, 1);
        });
    });
    m.addThread([&](ThreadContext &ctx) {
        ctx.compute(200);
        ctx.txRun([&] { ctx.write<int64_t>(a, 2); });
    });
    m.run();
    ASSERT_GE(seen.size(), 1u);
    EXPECT_EQ(seen.back(), 2); // the committed attempt saw the new value
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_EQ(agg.txAborted, 1u);
    EXPECT_GE(agg.abortsByCause[size_t(AbortCause::WriteAfterRead)], 1u);
}

TEST(Lazy, CommTmCommutativeUpdatesDontAbortEachOther)
{
    Machine m(lazyCfg(SystemMode::CommTm));
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (int t = 0; t < 8; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 100; i++)
                counter.add(ctx, 1);
        });
    }
    m.run();
    EXPECT_EQ(counter.peek(m), 800);
    EXPECT_EQ(m.stats().aggregateThreads().txAborted, 0u);
}

TEST(Lazy, CommitPublicationAbortsLabeledUsers)
{
    // A conventional write committing to a line others use labeled must
    // abort them (Sec. III-D: "commits would then abort all executing
    // transactions with non-commutative updates"). The writer (older)
    // runs a long transaction; a labeled user commits one increment
    // during it (fine: commutative commits abort no one) and has a
    // second increment in flight when the writer commits, which must
    // abort and retry against the published value.
    Machine m(lazyCfg(SystemMode::CommTm, 2));
    const Label add = CommCounter::defineLabel(m);
    const Addr a = m.allocator().allocLines(1);
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            ctx.compute(2000);
            ctx.write<int64_t>(a, 100);
            ctx.compute(2000);
        });
    });
    m.addThread([&](ThreadContext &ctx) {
        ctx.compute(500);
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(a, add);
            ctx.writeLabeled<int64_t>(a, add, v + 1);
        });
        ctx.compute(2500);
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(a, add);
            ctx.writeLabeled<int64_t>(a, add, v + 1);
            ctx.compute(3000); // keep it in flight across the commit
        });
    });
    m.run();
    const LineData line = m.memSys().debugReducedValue(lineAddr(a));
    int64_t v;
    std::memcpy(&v, line.data(), sizeof(v));
    // First +1 folded into the writer's publication reduction, then
    // overwritten by 100; the aborted second +1 retried on top.
    EXPECT_EQ(v, 101);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_GE(
        agg.abortsByCause[size_t(AbortCause::LabeledConflict)], 1u);
}

TEST(Lazy, NoCapacityAbortsWithSignatureTracking)
{
    MachineConfig c = lazyCfg(SystemMode::BaselineHtm, 1);
    c.l1SizeKB = 1; // tiny L1: eager mode would capacity-abort
    c.l2SizeKB = 2;
    Machine m(c);
    const uint32_t l1_sets = c.l1Lines() / c.l1Ways;
    const Addr base = m.allocator().alloc(64 * kLineSize * 64, kLineSize);
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            for (uint32_t i = 0; i <= c.l1Ways + 2; i++)
                ctx.read<int64_t>(base + Addr(i) * l1_sets * kLineSize);
        });
    });
    m.run();
    EXPECT_EQ(m.stats().aggregateThreads().txAborted, 0u);
}

TEST(Lazy, ListStaysCorrectUnderLazyDetection)
{
    Machine m(lazyCfg(SystemMode::CommTm, 4));
    const Label label = CommList::defineLabel(m);
    CommList list(m, label);
    std::vector<int64_t> net(4, 0);
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 50; i++) {
                if (rng.chance(0.6)) {
                    list.enqueue(ctx, (uint64_t(t) << 32) | uint64_t(i));
                    net[t]++;
                } else {
                    uint64_t out;
                    if (list.dequeue(ctx, &out))
                        net[t]--;
                }
            }
        });
    }
    m.run();
    int64_t expected = 0;
    for (auto n : net)
        expected += n;
    EXPECT_EQ(int64_t(list.peekSize(m)), expected);
}

} // namespace
} // namespace commtm
