/**
 * @file
 * Unit tests for the simulation kernel: RNG, simulated memory,
 * allocator, fibers, NoC latency model, and stats plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/noc.h"
#include "sim/fiber.h"
#include "sim/memory.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace commtm {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeFullSpanDoesNotDivideByZero)
{
    // Regression: range(0, UINT64_MAX) computed hi - lo + 1 == 0 and
    // passed it to below(), dividing by zero.
    Rng rng(7);
    for (int i = 0; i < 64; i++) {
        (void)rng.range(0, ~uint64_t(0)); // must not crash
    }
    // A sub-range starting above zero with hi == UINT64_MAX.
    for (int i = 0; i < 64; i++) {
        const uint64_t v = rng.range(~uint64_t(0) - 10, ~uint64_t(0));
        EXPECT_GE(v, ~uint64_t(0) - 10);
    }
}

TEST(Rng, RangeDegenerateAndBounds)
{
    Rng rng(11);
    EXPECT_EQ(rng.range(42, 42), 42u);
    for (int i = 0; i < 1000; i++) {
        const uint64_t v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SimMemory, ZeroFilledByDefault)
{
    SimMemory m;
    EXPECT_EQ(m.read<uint64_t>(0x1234), 0u);
}

TEST(SimMemory, ReadBackWritten)
{
    SimMemory m;
    m.write<uint64_t>(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(m.read<uint64_t>(0x1000), 0xdeadbeefcafef00dull);
}

TEST(SimMemory, CrossPageAccess)
{
    SimMemory m;
    const Addr addr = SimMemory::kPageSize - 4;
    m.write<uint64_t>(addr, 0x1122334455667788ull);
    EXPECT_EQ(m.read<uint64_t>(addr), 0x1122334455667788ull);
    // The halves landed on both pages.
    EXPECT_NE(m.read<uint32_t>(addr), 0u);
    EXPECT_NE(m.read<uint32_t>(addr + 4), 0u);
}

TEST(SimMemory, LineReadWrite)
{
    SimMemory m;
    LineData line;
    for (size_t i = 0; i < kLineSize; i++)
        line[i] = uint8_t(i * 3);
    m.writeLine(5, line);
    EXPECT_EQ(m.readLine(5), line);
}

TEST(SimAllocator, RespectsAlignment)
{
    SimAllocator a;
    EXPECT_EQ(a.alloc(3, 8) % 8, 0u);
    EXPECT_EQ(a.alloc(1, 64) % 64, 0u);
    EXPECT_EQ(a.allocLines(2) % kLineSize, 0u);
}

TEST(SimAllocator, NonOverlapping)
{
    SimAllocator a;
    const Addr x = a.alloc(100);
    const Addr y = a.alloc(100);
    EXPECT_GE(y, x + 100);
}

TEST(Fiber, RunsToCompletion)
{
    int steps = 0;
    Fiber f([&] { steps = 3; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(steps, 3);
}

TEST(Fiber, YieldAndResume)
{
    std::vector<int> trace;
    Fiber *self = nullptr;
    Fiber f([&] {
        trace.push_back(1);
        self->yield();
        trace.push_back(2);
        self->yield();
        trace.push_back(3);
    });
    self = &f;
    f.resume();
    trace.push_back(10);
    f.resume();
    trace.push_back(20);
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 10, 2, 20, 3}));
}

TEST(Fiber, InterleavesMultipleFibers)
{
    std::vector<int> trace;
    Fiber *fa = nullptr, *fb = nullptr;
    Fiber a([&] {
        trace.push_back(1);
        fa->yield();
        trace.push_back(3);
    });
    Fiber b([&] {
        trace.push_back(2);
        fb->yield();
        trace.push_back(4);
    });
    fa = &a;
    fb = &b;
    a.resume();
    b.resume();
    a.resume();
    b.resume();
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Noc, ZeroHopsSameTile)
{
    MachineConfig cfg;
    NocModel noc(cfg);
    EXPECT_EQ(noc.hops(5, 5), 0u);
}

TEST(Noc, ManhattanDistance)
{
    MachineConfig cfg; // 4x4 mesh
    NocModel noc(cfg);
    EXPECT_EQ(noc.hops(0, 15), 6u); // (0,0) -> (3,3)
    EXPECT_EQ(noc.hops(0, 3), 3u);
    EXPECT_EQ(noc.hops(1, 2), 1u);
}

TEST(Noc, LatencySymmetric)
{
    MachineConfig cfg;
    NocModel noc(cfg);
    for (uint32_t a = 0; a < 16; a++) {
        for (uint32_t b = 0; b < 16; b++)
            EXPECT_EQ(noc.latency(a, b), noc.latency(b, a));
    }
}

TEST(Stats, WasteBucketMapping)
{
    EXPECT_EQ(wasteBucket(AbortCause::ReadAfterWrite),
              WasteBucket::ReadAfterWrite);
    EXPECT_EQ(wasteBucket(AbortCause::WriteAfterRead),
              WasteBucket::WriteAfterRead);
    EXPECT_EQ(wasteBucket(AbortCause::GatherAfterLabeled),
              WasteBucket::GatherAfterLabeled);
    EXPECT_EQ(wasteBucket(AbortCause::WriteAfterWrite),
              WasteBucket::Others);
    EXPECT_EQ(wasteBucket(AbortCause::Capacity), WasteBucket::Others);
    EXPECT_EQ(wasteBucket(AbortCause::SelfDemotion), WasteBucket::Others);
}

TEST(Stats, AggregationSumsThreads)
{
    StatsSnapshot snap;
    snap.threads.resize(2);
    snap.threads[0].nonTxCycles = 10;
    snap.threads[0].txCommittedCycles = 5;
    snap.threads[1].nonTxCycles = 20;
    snap.threads[1].txAbortedCycles = 7;
    const ThreadStats agg = snap.aggregateThreads();
    EXPECT_EQ(agg.nonTxCycles, 30u);
    EXPECT_EQ(agg.txCommittedCycles, 5u);
    EXPECT_EQ(agg.txAbortedCycles, 7u);
    EXPECT_EQ(snap.runtimeCycles(), 27u); // max over threads
    EXPECT_FALSE(snap.report().empty());
}

} // namespace
} // namespace commtm
