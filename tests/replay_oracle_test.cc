/**
 * @file
 * Replay-oracle tests (docs/ARCHITECTURE.md Sec. 9). The two halves
 * of the oracle are each shown working AND able to fail: a known-good
 * eager/lazy pair passes the differential (under the strict PerCore
 * policy — the workload uses constant-operand blind stores, so even
 * the value digests are mode-independent), and an injected one-byte
 * operand flip or an extra lazy-only op is caught; serial
 * re-execution passes on a known-good counter run and catches a
 * one-byte arg flip injected at replay time, for both an update op
 * and a recorded read. TopK and OrderedPut (including key ties) round
 * out the model coverage the fuzz tests don't reach.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lib/ordered_put.h"
#include "lib/topk.h"
#include "models/counter_model.h"
#include "models/ordered_put_model.h"
#include "models/topk_model.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {
namespace {

MachineConfig
smallConfig(uint32_t cores)
{
    MachineConfig c = MachineConfig::forCores(cores);
    c.numCores = cores;
    c.mode = SystemMode::CommTm;
    c.conflictDetection = ConflictDetection::Eager;
    c.seed = 7;
    c.recordCommits = true;
    return c;
}

/**
 * Differential workload: every core commits one blind labeled store
 * of the constant 5 (replacing its identity partial), so the reduced
 * cell is 5 * numCores under either detection mode and even the
 * labeledValues digests are mode-independent — the one workload shape
 * where DiffMode::PerCore is sound across modes.
 */
DifferentialRun
blindStoreRun(const MachineConfig &cfg, bool flip_eager_operand,
              bool extra_lazy_op)
{
    Machine m(cfg);
    const Label add =
        m.labels().define(labels::makeAdd<int64_t>("ADD"));
    const Addr cell = m.allocator().allocLines(1);
    if (flip_eager_operand &&
        cfg.conflictDetection == ConflictDetection::Eager) {
        // Corrupt the recorded digest (not the store itself) on the
        // eager side only: core 0, first commit, first op, byte 0.
        m.commitLog()->setTestOperandFlip(0, 0, 0, 0);
    }
    const bool extra =
        extra_lazy_op &&
        cfg.conflictDetection == ConflictDetection::Lazy;
    for (uint32_t t = 0; t < cfg.numCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            ctx.txRun(
                [&] { ctx.writeLabeled<int64_t>(cell, add, 5); });
            if (t == 0 && extra) {
                // A lazy-only committed transaction: the per-core
                // commit streams can no longer line up.
                ctx.txRun([&] {
                    (void)ctx.readLabeled<int64_t>(cell, add);
                });
            }
        });
    }
    m.run();
    DifferentialRun out;
    out.log = m.commitLog()->serialize();
    const LineData line = m.memSys().debugReducedValue(lineAddr(cell));
    out.endState.assign(line.data(), line.data() + sizeof(int64_t));
    return out;
}

TEST(ReplayOracle, KnownGoodEagerLazyPairPassesDifferential)
{
    const DifferentialResult res = runDifferential(
        smallConfig(4),
        [](const MachineConfig &cfg) {
            return blindStoreRun(cfg, false, false);
        },
        DiffMode::PerCore);
    EXPECT_TRUE(res.ok) << res.diag;
}

TEST(ReplayOracle, DifferentialCatchesOperandByteFlip)
{
    // The flip only perturbs the eager side's recorded digest; the
    // simulated stores (and hence end states) stay identical, so the
    // failure must come from the labeledValues comparison.
    const DifferentialResult res = runDifferential(
        smallConfig(4),
        [](const MachineConfig &cfg) {
            return blindStoreRun(cfg, true, false);
        },
        DiffMode::PerCore);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.diag.find("eager vs lazy commit logs"),
              std::string::npos)
        << res.diag;
    EXPECT_NE(res.diag.find("labeledValues"), std::string::npos)
        << res.diag;
}

TEST(ReplayOracle, DifferentialCatchesExtraLazyCommit)
{
    const DifferentialResult res = runDifferential(
        smallConfig(4),
        [](const MachineConfig &cfg) {
            return blindStoreRun(cfg, false, true);
        },
        DiffMode::PerCore);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.diag.find("core 0 committed 1 vs 2 transactions"),
              std::string::npos)
        << res.diag;
}

/**
 * Deterministic four-core counter workload with the serial oracle
 * attached: 10 round-robin increments per core, then core 0 commits
 * a conventional read of counter 0 after a barrier (so the read is
 * its commit #10 and observes the full total). Optional arg flips
 * are injected at replay time, never into the run itself.
 */
bool
counterReplay(bool flip_add_delta, bool flip_read_value,
              std::string *diag)
{
    constexpr uint32_t kCores = 4;
    constexpr uint32_t kCounters = 4;
    Machine m(smallConfig(kCores));
    const Label add =
        m.labels().define(labels::makeAdd<int64_t>("ADD"));
    std::vector<Addr> counters;
    for (uint32_t i = 0; i < kCounters; i++)
        counters.push_back(m.allocator().allocLines(1));

    ReplayOracle oracle(m);
    const uint32_t cm =
        oracle.addModel(std::make_unique<CounterModel>(counters));

    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int i = 0; i < 10; i++) {
                const uint32_t c = (t + uint32_t(i)) % kCounters;
                const Addr a = counters[c];
                ctx.txRun([&] {
                    const int64_t v = ctx.readLabeled<int64_t>(a, add);
                    ctx.writeLabeled<int64_t>(a, add, v + 1);
                });
                oracle.recordOp(ctx, CounterModel::add(cm, c, 1));
            }
            ctx.barrier();
            if (t == 0) {
                int64_t v = 0;
                ctx.txRun([&] { v = ctx.read<int64_t>(counters[0]); });
                oracle.recordOp(ctx, CounterModel::read(cm, 0, v));
            }
        });
    }
    m.run();

    if (flip_add_delta)
        oracle.setTestArgFlip(1, 2, 0, 1, 0); // core 1 commit #2
    if (flip_read_value)
        oracle.setTestArgFlip(0, 10, 0, 1, 0); // core 0's read
    return oracle.replaySerial(diag);
}

TEST(ReplayOracle, SerialReplayPassesOnKnownGoodRun)
{
    std::string diag;
    EXPECT_TRUE(counterReplay(false, false, &diag)) << diag;
}

TEST(ReplayOracle, SerialReplayCatchesFlippedUpdateOperand)
{
    // Flipping an increment's delta (1 -> 0) leaves every per-op
    // check satisfiable but must show up in the final-state diff.
    std::string diag;
    EXPECT_FALSE(counterReplay(true, false, &diag));
    EXPECT_NE(diag.find("model 'counter'"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("final state differs"), std::string::npos)
        << diag;
}

TEST(ReplayOracle, SerialReplayCatchesFlippedReadValue)
{
    // Flipping the recorded observation of a committed read must be
    // caught at the exact commit, with the op named.
    std::string diag;
    EXPECT_FALSE(counterReplay(false, true, &diag));
    EXPECT_NE(diag.find("core 0 commit #10"), std::string::npos)
        << diag;
    EXPECT_NE(diag.find("read of counter 0"), std::string::npos)
        << diag;
}

TEST(ReplayOracle, TopKAndOrderedPutModelsReplaySerially)
{
    constexpr uint32_t kCores = 4;
    Machine m(smallConfig(kCores));
    const Label tk_label = TopK::defineLabel(m, 6);
    TopK topk(m, tk_label, 6);
    const Label op_label = OrderedPut::defineLabel(m);
    OrderedPut cell(m, op_label);

    ReplayOracle oracle(m);
    const uint32_t tm =
        oracle.addModel(std::make_unique<TopKModel>(&topk));
    const uint32_t om =
        oracle.addModel(std::make_unique<OrderedPutModel>(&cell));

    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            // Host-side Rng (not ctx.rng()): deterministic per
            // thread, independent of abort backoff draws.
            Rng rng(1000 + t);
            for (int i = 0; i < 12; i++) {
                const int64_t key = int64_t(rng.below(40));
                topk.insert(ctx, key);
                oracle.recordOp(ctx, TopKModel::insert(tm, key));
                // Keys 2..5 force cross-thread minimum-key ties;
                // OrderedPutModel accepts any tied value.
                const int64_t pkey = int64_t(2 + rng.below(4));
                const uint64_t pval =
                    (uint64_t(t) << 32) | uint64_t(i);
                cell.put(ctx, pkey, pval);
                oracle.recordOp(
                    ctx, OrderedPutModel::put(om, pkey, pval));
            }
        });
    }
    m.run();

    std::string diag;
    EXPECT_TRUE(oracle.replaySerial(&diag)) << diag;
}

} // namespace
} // namespace commtm
