/**
 * @file
 * Tests for the log-spaced latency histogram (sim/latency_hist.h;
 * docs/ARCHITECTURE.md Sec. 12): bucket geometry at the exact/lossy
 * boundary and at uint64 saturation, pinned quantiles (these back the
 * svc_* rows pinned in bench/baselines.json), the never-understate
 * guarantee, and merge laws — merging per-thread histograms must be
 * indistinguishable from single-histogram ingest, in any order.
 */

#include <gtest/gtest.h>

#include "sim/latency_hist.h"

namespace commtm {
namespace {

using Hist = LatencyHistogram;

TEST(LatencyHist, ExactBucketsThroughFirstOctave)
{
    // Values below 2^kSubBits get unit buckets by construction, and
    // the first octave's sub-buckets happen to be unit-width too: the
    // histogram is lossless up to 31.
    for (uint64_t v = 0; v < 32; v++) {
        EXPECT_EQ(Hist::bucketOf(v), uint32_t(v)) << v;
        EXPECT_EQ(Hist::bucketBound(Hist::bucketOf(v)), v) << v;
    }
    // First lossy bucket: 32 and 33 coincide, bounded above by 33.
    EXPECT_EQ(Hist::bucketOf(32), Hist::bucketOf(33));
    EXPECT_EQ(Hist::bucketBound(Hist::bucketOf(32)), 33u);
    EXPECT_NE(Hist::bucketOf(33), Hist::bucketOf(34));
}

TEST(LatencyHist, BucketBoundNeverUnderstates)
{
    // Sweep octave boundaries and their neighbors across the whole
    // range: every value's bucket bound is >= the value and within
    // the 6.25% quantization guarantee.
    for (uint32_t shift = 4; shift < 64; shift++) {
        for (int64_t delta = -2; delta <= 2; delta++) {
            const uint64_t v = (uint64_t(1) << shift) + uint64_t(delta);
            const uint64_t bound = Hist::bucketBound(Hist::bucketOf(v));
            EXPECT_GE(bound, v) << v;
            EXPECT_LE(bound - v, v / Hist::kSub + 1) << v;
        }
    }
}

TEST(LatencyHist, SaturationAtUint64Max)
{
    EXPECT_EQ(Hist::bucketOf(UINT64_MAX), Hist::kBuckets - 1);
    EXPECT_EQ(Hist::bucketBound(Hist::kBuckets - 1), UINT64_MAX);
    Hist h;
    h.record(UINT64_MAX);
    EXPECT_EQ(h.p50(), UINT64_MAX);
    EXPECT_EQ(h.quantile(1000), UINT64_MAX);
}

TEST(LatencyHist, EmptyHistogramReportsZero)
{
    const Hist h;
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p99(), 0u);
    EXPECT_EQ(h.p999(), 0u);
}

TEST(LatencyHist, PinnedQuantilesUniform)
{
    Hist h;
    for (uint64_t v = 1; v <= 1000; v++)
        h.record(v);
    EXPECT_EQ(h.totalCount(), 1000u);
    EXPECT_EQ(h.p50(), 511u);
    EXPECT_EQ(h.quantile(900), 927u);
    EXPECT_EQ(h.p99(), 991u);
    EXPECT_EQ(h.p999(), 1023u);
    EXPECT_EQ(h.quantile(1000), 1023u);
}

TEST(LatencyHist, PinnedQuantilesHeavyHead)
{
    // A service-shaped distribution: almost everything fast, a thin
    // slow tail. p999 must find the stragglers.
    Hist h;
    h.record(10, 994);
    h.record(100000, 5);
    h.record(12345678, 1);
    EXPECT_EQ(h.p50(), 10u);
    EXPECT_EQ(h.p99(), 10u);
    EXPECT_EQ(h.p999(), 102399u);
}

TEST(LatencyHist, MergeEqualsSingleIngest)
{
    // Spread one value stream over four shards, merge in two
    // different orders: both must equal single-histogram ingest,
    // bucket for bucket.
    Hist single;
    Hist shard[4];
    uint64_t x = 88172645463325252ull; // xorshift64
    for (int i = 0; i < 4096; i++) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t v = x >> (x % 50);
        single.record(v);
        shard[i % 4].record(v);
    }
    Hist fwd;
    for (int s = 0; s < 4; s++)
        fwd.merge(shard[s]);
    Hist rev;
    for (int s = 3; s >= 0; s--)
        rev.merge(shard[s]);
    EXPECT_TRUE(fwd == single);
    EXPECT_TRUE(rev == single);
    EXPECT_EQ(fwd.p999(), single.p999());
}

TEST(LatencyHist, MultiplicityMatchesRepeatedRecord)
{
    Hist bulk;
    bulk.record(77, 1000);
    Hist loop;
    for (int i = 0; i < 1000; i++)
        loop.record(77);
    EXPECT_TRUE(bulk == loop);
}

} // namespace
} // namespace commtm
