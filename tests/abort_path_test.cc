/**
 * @file
 * Abort-path regression wall. The counters pinned here were recorded
 * on the throw-per-abort simulator (pre-cooperative-unwind) and must
 * stay bit-identical under the exception-free abort path: a forced
 * two-core abort storm (eager and lazy), the stats-bucket attribution
 * of an aborted attempt's cycles, and a 256-thread deep-gather case
 * that stresses the flat (non-recursive) reduction drain.
 */

#include <gtest/gtest.h>

#include "lib/bounded_counter.h"
#include "lib/comm_queue.h"
#include "rt/machine.h"

namespace commtm {
namespace {

struct StormResult {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    int64_t finalValue = 0;
    Cycle cycles = 0;
};

/**
 * Two cores hammer read-modify-write transactions on one line: every
 * concurrent pair conflicts, so the run is an abort storm. Fully
 * deterministic, so commit/abort counts and total cycles pin exactly.
 */
StormResult
runStorm(ConflictDetection detection)
{
    MachineConfig c;
    c.numCores = 2;
    c.mode = SystemMode::BaselineHtm;
    c.conflictDetection = detection;
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    constexpr int kIncrements = 200;
    for (int t = 0; t < 2; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < kIncrements; i++) {
                ctx.txRun([&] {
                    const int64_t v = ctx.read<int64_t>(a);
                    ctx.compute(8);
                    ctx.write<int64_t>(a, v + 1);
                });
            }
        });
    }
    m.run();
    const ThreadStats agg = m.stats().aggregateThreads();
    StormResult r;
    r.commits = agg.txCommitted;
    r.aborts = agg.txAborted;
    r.finalValue = m.memory().read<int64_t>(a);
    r.cycles = m.stats().runtimeCycles();
    return r;
}

TEST(AbortPath, EagerStormCountersArePinned)
{
    const StormResult r = runStorm(ConflictDetection::Eager);
    EXPECT_EQ(r.commits, 400u);
    EXPECT_EQ(r.finalValue, 400);
    EXPECT_EQ(r.aborts, 48u);
    EXPECT_EQ(r.cycles, 7064u);
}

TEST(AbortPath, LazyStormCountersArePinned)
{
    const StormResult r = runStorm(ConflictDetection::Lazy);
    EXPECT_EQ(r.commits, 400u);
    EXPECT_EQ(r.finalValue, 400);
    EXPECT_EQ(r.aborts, 47u);
    EXPECT_EQ(r.cycles, 7211u);
}

/**
 * Single deterministic abort, run twice with different abortCost: the
 * whole aborted attempt (tx_begin, the accesses, the backoff stall)
 * must land in txAbortedCycles — never in nonTxCycles — and the
 * abortCost delta must show up there exactly.
 */
struct AbortAccounting {
    ThreadStats victim;
    uint64_t aborts = 0;
};

AbortAccounting
runOneAbort(Cycle abort_cost)
{
    MachineConfig c;
    c.numCores = 2;
    c.mode = SystemMode::BaselineHtm;
    c.abortCost = abort_cost;
    c.backoffBase = 0; // backoff = abortCost exactly (window collapses)
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    // Thread 0 (the victim) opens a transaction over the line and then
    // computes long enough for thread 1's non-speculative write to
    // arrive and doom it; the retry succeeds unconditionally.
    m.addThread([&](ThreadContext &ctx) {
        int attempt = 0;
        ctx.txRun([&] {
            attempt++;
            const int64_t v = ctx.read<int64_t>(a);
            ctx.write<int64_t>(a, v + 1);
            if (attempt == 1) {
                for (int i = 0; i < 100; i++)
                    ctx.compute(10);
            }
        });
    });
    m.addThread([&](ThreadContext &ctx) {
        ctx.compute(150);
        ctx.write<int64_t>(a, 100); // plain store; cannot be NACKed
    });
    m.run();
    AbortAccounting r;
    r.victim = m.stats().threads[0];
    r.aborts = m.stats().aggregateThreads().txAborted;
    return r;
}

TEST(AbortPath, AbortedAttemptCyclesLandInTxAbortedBucket)
{
    const AbortAccounting base = runOneAbort(0);
    const AbortAccounting plus = runOneAbort(77);
    ASSERT_EQ(base.aborts, 1u);
    ASSERT_EQ(plus.aborts, 1u);
    EXPECT_EQ(base.victim.txCommitted, 1u);

    // The victim does nothing outside its transaction: not one cycle
    // of the aborted attempt (nor of the backoff stall) may leak into
    // nonTxCycles.
    EXPECT_EQ(base.victim.nonTxCycles, 0u);
    EXPECT_EQ(plus.victim.nonTxCycles, 0u);

    // The extra abortCost is attributed to the wasted attempt, exactly.
    EXPECT_EQ(plus.victim.txAbortedCycles,
              base.victim.txAbortedCycles + 77);

    // Wasted-cycle buckets partition txAbortedCycles.
    Cycle bucketed = 0;
    for (auto w : base.victim.wastedByCause)
        bucketed += w;
    EXPECT_EQ(bucketed, base.victim.txAbortedCycles);

    // Exact attribution pinned on the pre-unwind simulator.
    EXPECT_EQ(base.victim.txAbortedCycles, 166u);
    EXPECT_EQ(base.victim.txCommittedCycles, 70u);
}

TEST(AbortPath, CooperativeTxAbortMakesOpsNoOpsAndRetries)
{
    MachineConfig c;
    c.numCores = 1;
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 41);
    int attempts = 0;
    int64_t seen_after_abort = -1;
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            ctx.write<int64_t>(a, 77);
            if (attempts == 1) {
                ctx.txAbort();
                EXPECT_TRUE(ctx.txAborted());
                // Pending abort: reads return the zero sentinel and
                // writes vanish; the body returns and txRun retries.
                seen_after_abort = ctx.read<int64_t>(a);
                ctx.write<int64_t>(a, 1234);
                return;
            }
        });
    });
    m.run();
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(seen_after_abort, 0);
    EXPECT_EQ(m.memory().read<int64_t>(a), 77);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_EQ(agg.txCommitted, 1u);
    EXPECT_EQ(agg.txAborted, 1u);
    EXPECT_EQ(agg.abortsByCause[size_t(AbortCause::Explicit)], 1u);
}

TEST(AbortPath, NonCooperativeBodyHitsTheExceptionFallback)
{
    MachineConfig c;
    c.numCores = 1;
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    int attempts = 0;
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            if (attempts == 1) {
                ctx.txAbort();
                // Never check txAborted(): spin past the no-op budget
                // so the AbortException fallback force-unwinds us out
                // of this (otherwise infinite) loop.
                for (;;)
                    ctx.read<int64_t>(a);
            }
            ctx.write<int64_t>(a, 7);
        });
    });
    m.run();
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(m.memory().read<int64_t>(a), 7);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_EQ(agg.txCommitted, 1u);
    EXPECT_EQ(agg.txAborted, 1u);
}

/**
 * Deep-gather case: 256 threads share one bounded counter; the
 * drainer's gathers and full reductions fan out over 255 U sharers.
 * On the old recursive reduction re-entry this nested the directory
 * walk, the handler, and the handler's access() frames per donor; the
 * drain-loop path runs them iteratively at fixed depth.
 */
TEST(AbortPath, DeepGatherAt256Threads)
{
    MachineConfig c = MachineConfig::forCores(256);
    c.mode = SystemMode::CommTm;
    Machine m(c);
    const Label bounded = BoundedCounter::defineLabel(m);
    BoundedCounter counter(m, bounded, 0);
    constexpr int64_t kDeposit = 300; // > 255 so splitters donate >= 1
    uint64_t drained = 0;
    for (uint32_t t = 0; t < 256; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (t != 0)
                counter.increment(ctx, kDeposit);
            ctx.barrier();
            if (t == 0) {
                // Thread 0 deposited nothing: the first decrement must
                // gather donations from all 255 sharers.
                for (int i = 0; i < 8; i++) {
                    if (counter.decrement(ctx))
                        drained++;
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(drained, 8u);
    EXPECT_EQ(counter.peek(m), 255 * kDeposit - 8);
    EXPECT_GE(m.stats().machine.gathers, 1u);
    EXPECT_GE(m.stats().machine.splits, 200u);
}

// ---------------------------------------------------------------------
// CommQueue additions (the queue layer the intruder/labyrinth/yada
// workloads are built on): a pinned two-core abort storm over one
// queue, the exception-fallback budget under a non-cooperative queue
// body, and the address-drift regression for enqueue's in-transaction
// chunk allocation.
// ---------------------------------------------------------------------

/**
 * Two cores hammer a baseline-HTM queue (conventional ops, shared
 * descriptor and chunk lines): every concurrent enqueue/dequeue pair
 * conflicts. Deterministic, so the counters pin exactly — recorded
 * when CommQueue landed; any drift means the abort path or queue
 * behavior changed.
 */
StormResult
runQueueStorm(ConflictDetection detection)
{
    MachineConfig c;
    c.numCores = 2;
    c.mode = SystemMode::BaselineHtm;
    c.conflictDetection = detection;
    Machine m(c);
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label, /* baseline_layout */ true);
    constexpr int kOpsPerThread = 150;
    std::vector<uint64_t> dequeued(2, 0);
    for (int t = 0; t < 2; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int i = 0; i < kOpsPerThread; i++) {
                if (i % 2 == 0) {
                    queue.enqueue(ctx, uint64_t(t) << 32 | i);
                } else {
                    uint64_t out;
                    if (queue.dequeue(ctx, &out))
                        dequeued[t]++;
                }
            }
        });
    }
    m.run();
    const ThreadStats agg = m.stats().aggregateThreads();
    StormResult r;
    r.commits = agg.txCommitted;
    r.aborts = agg.txAborted;
    r.finalValue =
        int64_t(queue.peekSize(m)) + dequeued[0] + dequeued[1];
    r.cycles = m.stats().runtimeCycles();
    return r;
}

TEST(AbortPath, EagerQueueStormCountersArePinned)
{
    const StormResult r = runQueueStorm(ConflictDetection::Eager);
    EXPECT_EQ(r.commits, 300u);
    EXPECT_EQ(r.finalValue, 150); // enqueues = dequeues + leftover
    EXPECT_EQ(r.aborts, 209u);
    EXPECT_EQ(r.cycles, 41017u);
}

TEST(AbortPath, LazyQueueStormCountersArePinned)
{
    const StormResult r = runQueueStorm(ConflictDetection::Lazy);
    EXPECT_EQ(r.commits, 300u);
    EXPECT_EQ(r.finalValue, 150);
    EXPECT_EQ(r.aborts, 70u);
    EXPECT_EQ(r.cycles, 24628u);
}

TEST(AbortPath, NonCooperativeQueueBodyHitsTheExceptionFallback)
{
    // A workload body that keeps issuing queue operations after its
    // abort (never checking txAborted) must be force-unwound by the
    // no-op budget: every nested dequeue body observes the zeroed
    // sentinel, returns false, and the loop would spin forever.
    MachineConfig c;
    c.numCores = 1;
    c.mode = SystemMode::CommTm;
    Machine m(c);
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label);
    int attempts = 0;
    m.addThread([&](ThreadContext &ctx) {
        queue.enqueue(ctx, 41);
        ctx.txRun([&] {
            attempts++;
            if (attempts == 1) {
                ctx.txAbort();
                uint64_t out;
                for (;;)
                    queue.dequeue(ctx, &out);
            }
            queue.enqueue(ctx, 43);
        });
    });
    m.run();
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(queue.peekSize(m), 2u);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_GE(agg.txAborted, 1u);
}

/**
 * Address-drift regression (the TopK hazard of ARCHITECTURE.md 4.1,
 * here for CommQueue): an aborted enqueue attempt reads the zeroed
 * tail sentinel, which looks like an empty queue; without the
 * txAborted() check it would host-allocate a fresh chunk inside every
 * doomed attempt — even mid-chunk, where no allocation is ever legal
 * — drifting all later allocations. With the check, a doomed
 * mid-chunk attempt allocates nothing, so this run must allocate
 * exactly one chunk. (A doom landing after the check, during a
 * boundary attempt's chunk-initialization writes, can still orphan
 * that one chunk; the doom here is timed to latch before the nested
 * enqueue's reads, the sentinel path this test pins.)
 */
TEST(AbortPath, AbortedCommQueueEnqueueDoesNotHostAllocate)
{
    MachineConfig c;
    c.numCores = 2;
    c.mode = SystemMode::CommTm;
    c.backoffBase = 0;
    Machine m(c);
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label);
    const Addr conflict = m.allocator().allocLines(1);
    const Addr before = m.allocator().watermark();
    static_assert(CommQueue::kChunkCap >= 2, "both values fit one chunk");
    int attempts = 0;
    m.addThread([&](ThreadContext &ctx) {
        // The first enqueue legitimately allocates the only chunk.
        queue.enqueue(ctx, 1);
        // The second runs flat-nested in a transaction that is doomed
        // mid-flight (runOneAbort's shape): the victim joins the
        // conflict line's read set, stalls long enough for thread 1's
        // plain store to arrive, and by the time the nested enqueue
        // issues its labeled tail read the pending abort is latched —
        // the read returns the zeroed sentinel, and tail == 0 must NOT
        // be taken for an empty queue (that is the drift hazard).
        ctx.txRun([&] {
            attempts++;
            (void)ctx.read<int64_t>(conflict);
            if (attempts == 1) {
                for (int i = 0; i < 100; i++)
                    ctx.compute(10);
            }
            queue.enqueue(ctx, 2);
        });
    });
    m.addThread([&](ThreadContext &ctx) {
        // Lands mid-way through the victim's first-attempt compute
        // window (which spans ~1000 cycles after its setup enqueue).
        ctx.compute(500);
        ctx.write<int64_t>(conflict, 99); // plain store; dooms thread 0
    });
    m.run();
    EXPECT_EQ(attempts, 2);
    // Exactly one chunk may ever be allocated: the aborted attempt's
    // nested enqueue saw the sentinel and must not have allocated, and
    // the retry appended to the existing chunk.
    EXPECT_EQ(m.allocator().watermark() - before, Addr(kLineSize))
        << "an aborted enqueue attempt host-allocated a chunk";
    EXPECT_EQ(queue.peekSize(m), 2u);
    EXPECT_EQ(m.stats().aggregateThreads().txAborted, 1u);
}

} // namespace
} // namespace commtm
