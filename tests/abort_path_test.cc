/**
 * @file
 * Abort-path regression wall. The counters pinned here were recorded
 * on the throw-per-abort simulator (pre-cooperative-unwind) and must
 * stay bit-identical under the exception-free abort path: a forced
 * two-core abort storm (eager and lazy), the stats-bucket attribution
 * of an aborted attempt's cycles, and a 256-thread deep-gather case
 * that stresses the flat (non-recursive) reduction drain.
 */

#include <gtest/gtest.h>

#include "lib/bounded_counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

struct StormResult {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    int64_t finalValue = 0;
    Cycle cycles = 0;
};

/**
 * Two cores hammer read-modify-write transactions on one line: every
 * concurrent pair conflicts, so the run is an abort storm. Fully
 * deterministic, so commit/abort counts and total cycles pin exactly.
 */
StormResult
runStorm(ConflictDetection detection)
{
    MachineConfig c;
    c.numCores = 2;
    c.mode = SystemMode::BaselineHtm;
    c.conflictDetection = detection;
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    constexpr int kIncrements = 200;
    for (int t = 0; t < 2; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < kIncrements; i++) {
                ctx.txRun([&] {
                    const int64_t v = ctx.read<int64_t>(a);
                    ctx.compute(8);
                    ctx.write<int64_t>(a, v + 1);
                });
            }
        });
    }
    m.run();
    const ThreadStats agg = m.stats().aggregateThreads();
    StormResult r;
    r.commits = agg.txCommitted;
    r.aborts = agg.txAborted;
    r.finalValue = m.memory().read<int64_t>(a);
    r.cycles = m.stats().runtimeCycles();
    return r;
}

TEST(AbortPath, EagerStormCountersArePinned)
{
    const StormResult r = runStorm(ConflictDetection::Eager);
    EXPECT_EQ(r.commits, 400u);
    EXPECT_EQ(r.finalValue, 400);
    EXPECT_EQ(r.aborts, 48u);
    EXPECT_EQ(r.cycles, 7064u);
}

TEST(AbortPath, LazyStormCountersArePinned)
{
    const StormResult r = runStorm(ConflictDetection::Lazy);
    EXPECT_EQ(r.commits, 400u);
    EXPECT_EQ(r.finalValue, 400);
    EXPECT_EQ(r.aborts, 47u);
    EXPECT_EQ(r.cycles, 7211u);
}

/**
 * Single deterministic abort, run twice with different abortCost: the
 * whole aborted attempt (tx_begin, the accesses, the backoff stall)
 * must land in txAbortedCycles — never in nonTxCycles — and the
 * abortCost delta must show up there exactly.
 */
struct AbortAccounting {
    ThreadStats victim;
    uint64_t aborts = 0;
};

AbortAccounting
runOneAbort(Cycle abort_cost)
{
    MachineConfig c;
    c.numCores = 2;
    c.mode = SystemMode::BaselineHtm;
    c.abortCost = abort_cost;
    c.backoffBase = 0; // backoff = abortCost exactly (window collapses)
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    // Thread 0 (the victim) opens a transaction over the line and then
    // computes long enough for thread 1's non-speculative write to
    // arrive and doom it; the retry succeeds unconditionally.
    m.addThread([&](ThreadContext &ctx) {
        int attempt = 0;
        ctx.txRun([&] {
            attempt++;
            const int64_t v = ctx.read<int64_t>(a);
            ctx.write<int64_t>(a, v + 1);
            if (attempt == 1) {
                for (int i = 0; i < 100; i++)
                    ctx.compute(10);
            }
        });
    });
    m.addThread([&](ThreadContext &ctx) {
        ctx.compute(150);
        ctx.write<int64_t>(a, 100); // plain store; cannot be NACKed
    });
    m.run();
    AbortAccounting r;
    r.victim = m.stats().threads[0];
    r.aborts = m.stats().aggregateThreads().txAborted;
    return r;
}

TEST(AbortPath, AbortedAttemptCyclesLandInTxAbortedBucket)
{
    const AbortAccounting base = runOneAbort(0);
    const AbortAccounting plus = runOneAbort(77);
    ASSERT_EQ(base.aborts, 1u);
    ASSERT_EQ(plus.aborts, 1u);
    EXPECT_EQ(base.victim.txCommitted, 1u);

    // The victim does nothing outside its transaction: not one cycle
    // of the aborted attempt (nor of the backoff stall) may leak into
    // nonTxCycles.
    EXPECT_EQ(base.victim.nonTxCycles, 0u);
    EXPECT_EQ(plus.victim.nonTxCycles, 0u);

    // The extra abortCost is attributed to the wasted attempt, exactly.
    EXPECT_EQ(plus.victim.txAbortedCycles,
              base.victim.txAbortedCycles + 77);

    // Wasted-cycle buckets partition txAbortedCycles.
    Cycle bucketed = 0;
    for (auto w : base.victim.wastedByCause)
        bucketed += w;
    EXPECT_EQ(bucketed, base.victim.txAbortedCycles);

    // Exact attribution pinned on the pre-unwind simulator.
    EXPECT_EQ(base.victim.txAbortedCycles, 166u);
    EXPECT_EQ(base.victim.txCommittedCycles, 70u);
}

TEST(AbortPath, CooperativeTxAbortMakesOpsNoOpsAndRetries)
{
    MachineConfig c;
    c.numCores = 1;
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 41);
    int attempts = 0;
    int64_t seen_after_abort = -1;
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            ctx.write<int64_t>(a, 77);
            if (attempts == 1) {
                ctx.txAbort();
                EXPECT_TRUE(ctx.txAborted());
                // Pending abort: reads return the zero sentinel and
                // writes vanish; the body returns and txRun retries.
                seen_after_abort = ctx.read<int64_t>(a);
                ctx.write<int64_t>(a, 1234);
                return;
            }
        });
    });
    m.run();
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(seen_after_abort, 0);
    EXPECT_EQ(m.memory().read<int64_t>(a), 77);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_EQ(agg.txCommitted, 1u);
    EXPECT_EQ(agg.txAborted, 1u);
    EXPECT_EQ(agg.abortsByCause[size_t(AbortCause::Explicit)], 1u);
}

TEST(AbortPath, NonCooperativeBodyHitsTheExceptionFallback)
{
    MachineConfig c;
    c.numCores = 1;
    Machine m(c);
    const Addr a = m.allocator().allocLines(1);
    int attempts = 0;
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            if (attempts == 1) {
                ctx.txAbort();
                // Never check txAborted(): spin past the no-op budget
                // so the AbortException fallback force-unwinds us out
                // of this (otherwise infinite) loop.
                for (;;)
                    ctx.read<int64_t>(a);
            }
            ctx.write<int64_t>(a, 7);
        });
    });
    m.run();
    EXPECT_EQ(attempts, 2);
    EXPECT_EQ(m.memory().read<int64_t>(a), 7);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_EQ(agg.txCommitted, 1u);
    EXPECT_EQ(agg.txAborted, 1u);
}

/**
 * Deep-gather case: 256 threads share one bounded counter; the
 * drainer's gathers and full reductions fan out over 255 U sharers.
 * On the old recursive reduction re-entry this nested the directory
 * walk, the handler, and the handler's access() frames per donor; the
 * drain-loop path runs them iteratively at fixed depth.
 */
TEST(AbortPath, DeepGatherAt256Threads)
{
    MachineConfig c = MachineConfig::forCores(256);
    c.mode = SystemMode::CommTm;
    Machine m(c);
    const Label bounded = BoundedCounter::defineLabel(m);
    BoundedCounter counter(m, bounded, 0);
    constexpr int64_t kDeposit = 300; // > 255 so splitters donate >= 1
    uint64_t drained = 0;
    for (uint32_t t = 0; t < 256; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (t != 0)
                counter.increment(ctx, kDeposit);
            ctx.barrier();
            if (t == 0) {
                // Thread 0 deposited nothing: the first decrement must
                // gather donations from all 255 sharers.
                for (int i = 0; i < 8; i++) {
                    if (counter.decrement(ctx))
                        drained++;
                }
            }
        });
    }
    m.run();
    EXPECT_EQ(drained, 8u);
    EXPECT_EQ(counter.peek(m), 255 * kDeposit - 8);
    EXPECT_GE(m.stats().machine.gathers, 1u);
    EXPECT_GE(m.stats().machine.splits, 200u);
}

} // namespace
} // namespace commtm
