/**
 * @file
 * Tests for labels: identity values, reduction handlers, splitters and
 * probes (makeAdd/makeMin/makeMax), registry behavior, and the
 * label-virtualization fallback (Sec. III-D).
 */

#include <gtest/gtest.h>

#include "commtm/label.h"
#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

/** Handler context that tracks compute but forbids memory access. */
class NullCtx : public HandlerContext
{
  public:
    void rawRead(Addr, void *, size_t) override { FAIL(); }
    void rawWrite(Addr, const void *, size_t) override { FAIL(); }
    void compute(uint64_t n) override { computed += n; }
    uint64_t computed = 0;
};

template <typename T>
void
putElem(LineData &line, size_t i, T v)
{
    std::memcpy(line.data() + i * sizeof(T), &v, sizeof(T));
}

template <typename T>
T
getElem(const LineData &line, size_t i)
{
    T v;
    std::memcpy(&v, line.data() + i * sizeof(T), sizeof(T));
    return v;
}

TEST(Labels, AddIdentityIsZeroAndReduceSums)
{
    const LabelInfo info = labels::makeAdd<int64_t>("ADD");
    for (size_t i = 0; i < 8; i++)
        EXPECT_EQ(getElem<int64_t>(info.identity, i), 0);
    LineData a{}, b{};
    putElem<int64_t>(a, 0, 10);
    putElem<int64_t>(a, 7, -3);
    putElem<int64_t>(b, 0, 32);
    putElem<int64_t>(b, 7, 3);
    NullCtx ctx;
    info.reduce(ctx, a, b);
    EXPECT_EQ(getElem<int64_t>(a, 0), 42);
    EXPECT_EQ(getElem<int64_t>(a, 7), 0);
    EXPECT_GT(ctx.computed, 0u);
}

TEST(Labels, ReducingWithIdentityIsNoOp)
{
    for (const LabelInfo &info :
         {labels::makeAdd<int64_t>("A"), labels::makeMin<int64_t>("I"),
          labels::makeMax<int64_t>("X")}) {
        LineData v{};
        putElem<int64_t>(v, 0, 1234);
        putElem<int64_t>(v, 3, -77);
        LineData expect = v;
        NullCtx ctx;
        info.reduce(ctx, v, info.identity);
        EXPECT_EQ(v, expect) << info.name;
    }
}

TEST(Labels, MinMaxReduceElementwise)
{
    const LabelInfo mn = labels::makeMin<int32_t>("MIN");
    const LabelInfo mx = labels::makeMax<int32_t>("MAX");
    LineData a{}, b{};
    putElem<int32_t>(a, 0, 5);
    putElem<int32_t>(b, 0, 3);
    putElem<int32_t>(a, 15, -9);
    putElem<int32_t>(b, 15, 9);
    NullCtx ctx;
    LineData amin = a;
    mn.reduce(ctx, amin, b);
    EXPECT_EQ(getElem<int32_t>(amin, 0), 3);
    EXPECT_EQ(getElem<int32_t>(amin, 15), -9);
    LineData amax = a;
    mx.reduce(ctx, amax, b);
    EXPECT_EQ(getElem<int32_t>(amax, 0), 5);
    EXPECT_EQ(getElem<int32_t>(amax, 15), 9);
}

TEST(Labels, AddSplitterDonatesFloorFraction)
{
    const LabelInfo info = labels::makeAdd<int64_t>("ADD");
    LineData local{};
    putElem<int64_t>(local, 0, 100);
    putElem<int64_t>(local, 1, 3); // below numSharers: donates nothing
    LineData out = info.identity;
    NullCtx ctx;
    info.split(ctx, local, out, 4);
    EXPECT_EQ(getElem<int64_t>(out, 0), 25);
    EXPECT_EQ(getElem<int64_t>(local, 0), 75);
    EXPECT_EQ(getElem<int64_t>(out, 1), 0);
    EXPECT_EQ(getElem<int64_t>(local, 1), 3);
}

TEST(Labels, AddSplitProbeMatchesSplitter)
{
    const LabelInfo info = labels::makeAdd<int64_t>("ADD");
    LineData small{};
    putElem<int64_t>(small, 2, 3);
    EXPECT_FALSE(info.splitProbe(small, 4)); // floor(3/4) == 0
    EXPECT_TRUE(info.splitProbe(small, 2));  // floor(3/2) == 1
    LineData zero{};
    EXPECT_FALSE(info.splitProbe(zero, 1));
}

TEST(Labels, RegistryAssignsSequentialIds)
{
    LabelRegistry reg(8);
    const Label a = reg.define(labels::makeAdd<int64_t>("A"));
    const Label b = reg.define(labels::makeMin<int64_t>("B"));
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(reg.get(a).name, "A");
    EXPECT_EQ(reg.get(b).name, "B");
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Labels, VirtualizationDemotesBeyondHardwareBudget)
{
    LabelRegistry reg(2);
    const Label a = reg.define(labels::makeAdd<int64_t>("A"));
    const Label b = reg.define(labels::makeAdd<int64_t>("B"));
    const Label c = reg.define(labels::makeAdd<int64_t>("C"));
    EXPECT_TRUE(reg.inHardware(a));
    EXPECT_TRUE(reg.inHardware(b));
    EXPECT_FALSE(reg.inHardware(c)); // demoted to conventional accesses
}

TEST(Labels, DemotedLabelStillProducesCorrectResults)
{
    MachineConfig c;
    c.numCores = 4;
    c.mode = SystemMode::CommTm;
    c.hwLabels = 0; // everything demoted
    Machine m(c);
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (int t = 0; t < 4; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 50; i++)
                counter.add(ctx, 2);
        });
    }
    m.run();
    EXPECT_EQ(counter.peek(m), 400);
    // Demoted: no U lines, no GETU traffic.
    EXPECT_EQ(m.stats().machine.l3Gets[size_t(GetType::GETU)], 0u);
    EXPECT_EQ(m.stats().aggregateThreads().labeledInstrs, 0u);
}

TEST(Labels, FloatAddReduces)
{
    const LabelInfo info = labels::makeAdd<float>("FP");
    LineData a{}, b{};
    putElem<float>(a, 0, 1.5f);
    putElem<float>(b, 0, 2.25f);
    NullCtx ctx;
    info.reduce(ctx, a, b);
    EXPECT_FLOAT_EQ(getElem<float>(a, 0), 3.75f);
}

} // namespace
} // namespace commtm
