/**
 * @file
 * Randomized protocol fuzzing: thousands of random labeled/unlabeled
 * operations from random cores against machines with tiny caches (so
 * evictions, U-forwards, writebacks, and reductions fire constantly),
 * checking the paper's key invariant after every step: the line's
 * value equals the reduction of all private U copies (Sec. III-B3),
 * and the directory state stays consistent with the private caches.
 *
 * Every case runs with commit recording on and the replay oracle
 * active (docs/ARCHITECTURE.md Sec. 9): the recorded commit order is
 * serially re-executed against a software counter model, and the
 * differential case cross-checks eager vs. lazy per-commit labeled-op
 * digests and end states. COMMTM_FUZZ_SEED_OFFSET shifts every seed
 * (the CI oracle leg sets it per run for seed randomization).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "lib/counter.h"
#include "models/counter_model.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {
namespace {

/** CI seed randomization: shifts every fuzz seed, 0 by default. */
uint64_t
fuzzSeedOffset()
{
    static const uint64_t offset = [] {
        const char *s = std::getenv("COMMTM_FUZZ_SEED_OFFSET");
        return s ? std::strtoull(s, nullptr, 10) : 0ull;
    }();
    return offset;
}

/** Tiny-cache machine: maximal eviction pressure. Geometry comes from
 *  forCores, so >128-core seeds also run the scaled mesh. Commit
 *  recording is on for every fuzz machine (observation-only). */
MachineConfig
fuzzConfig(uint64_t seed, uint32_t cores)
{
    MachineConfig c = MachineConfig::forCores(cores);
    c.numCores = cores;
    c.mode = SystemMode::CommTm;
    c.l1SizeKB = 1;  // 2 sets x 8 ways
    c.l2SizeKB = 2;  // 4 sets x 8 ways
    c.l3SizeKB = 32; // 32 sets x 16 ways
    c.seed = seed;
    c.recordCommits = true;
    // Invariant sweeps (Sec. 10): full density (every commit,
    // abort, and drain-loop exit) up to the 128-sharer inline
    // boundary; the spilled-sharer geometries keep periodic +
    // end-of-run sweeps — a whole-machine sweep per access at
    // 130-256 cores multiplies Debug fuzz time ~10x without adding
    // invariant coverage.
    c.checkInvariants = true;
    if (cores <= 128) {
        c.invariantOnTxEnd = true;
        c.invariantOnDrain = true;
    }

    return c;
}

/** Core count for a fuzz seed: randomized over both sides of the
 *  128-sharer inline/spill boundary (mem/line.h), pinned per seed so
 *  failures reproduce. */
uint32_t
fuzzCores(uint64_t seed)
{
    static constexpr uint32_t kCounts[] = {3,   6,   12,  48,
                                           130, 144, 192, 256};
    return kCounts[seed % 8];
}

/** Fewer ops per thread on big machines keeps total work bounded. */
int
fuzzOps(uint32_t cores, int small_machine_ops)
{
    return cores > 128 ? small_machine_ops / 8 : small_machine_ops;
}

class ProtocolFuzz : public ::testing::TestWithParam<uint64_t>
{
  protected:
    uint64_t seed() const { return GetParam() + fuzzSeedOffset(); }
};

TEST_P(ProtocolFuzz, CounterInvariantSurvivesRandomOps)
{
    const uint32_t kCores = fuzzCores(seed());
    constexpr uint32_t kCounters = 48; // overflows the tiny L2 sets
    const int kOpsPerThread = fuzzOps(kCores, 400);

    Machine m(fuzzConfig(seed(), kCores));
    const Label add = CommCounter::defineLabel(m);
    std::vector<Addr> counters;
    for (uint32_t i = 0; i < kCounters; i++)
        counters.push_back(m.allocator().allocLines(1));

    // Host model: expected value of each counter. Functional commit
    // order equals host execution order (the simulator is sequential
    // and each txRun/model-update pair runs without a fiber switch
    // between them), so the model tracks the committed state exactly.
    // The replay oracle re-derives the same facts independently: each
    // op is attached to the transaction that committed it and the
    // whole commit order is re-executed serially at the end.
    std::vector<int64_t> model(kCounters, 0);
    ReplayOracle oracle(m);
    const uint32_t cm =
        oracle.addModel(std::make_unique<CounterModel>(counters));

    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOpsPerThread; i++) {
                const uint32_t c = uint32_t(rng.below(kCounters));
                const Addr a = counters[c];
                const uint32_t action = uint32_t(rng.below(100));
                if (action < 70) {
                    // Commutative increment.
                    ctx.txRun([&] {
                        const int64_t v =
                            ctx.readLabeled<int64_t>(a, add);
                        ctx.writeLabeled<int64_t>(a, add, v + 1);
                    });
                    model[c]++;
                    oracle.recordOp(ctx, CounterModel::add(cm, c, 1));
                } else if (action < 85) {
                    // Conventional read: triggers a full reduction.
                    // The value it returns is valid as of this
                    // transaction's commit, so the serial replay can
                    // check it against the model exactly.
                    int64_t v = 0;
                    ctx.txRun([&] { v = ctx.read<int64_t>(a); });
                    oracle.recordOp(ctx,
                                    CounterModel::read(cm, c, v));
                } else if (action < 95) {
                    // Gather: rebalances but must not change the total.
                    ctx.txRun([&] {
                        (void)ctx.readGather<int64_t>(a, add);
                    });
                } else {
                    // Conventional overwrite: resets the counter.
                    ctx.txRun([&] { ctx.write<int64_t>(a, 0); });
                    model[c] = 0;
                    oracle.recordOp(ctx, CounterModel::set(cm, c, 0));
                }
            }
        });
    }
    m.run();

    for (uint32_t c = 0; c < kCounters; c++) {
        const LineData line =
            m.memSys().debugReducedValue(lineAddr(counters[c]));
        int64_t v;
        std::memcpy(&v, line.data(), sizeof(v));
        EXPECT_EQ(v, model[c]) << "counter " << c;
    }
    // Serial re-execution oracle: replay the recorded commit order
    // one transaction at a time through the software model, then
    // compare final states byte-for-byte.
    std::string diag;
    EXPECT_TRUE(oracle.replaySerial(&diag)) << diag;
    // The run must actually have exercised the U-state machinery. On
    // small machines the tiny caches force U evictions; on >128-core
    // machines (fewer ops per thread, many sharers per line) frequent
    // full reductions reclaim U lines before eviction pressure builds,
    // so require reductions instead.
    const MachineStats &ms = m.stats().machine;
    if (kCores <= 128) {
        EXPECT_GT(ms.uWritebacks + ms.uForwards, 0u);
    }
    EXPECT_GT(ms.reductions, 0u);
}

TEST_P(ProtocolFuzz, MixedLabelsNeverCrossContaminate)
{
    // Offset pick: a different core-count schedule than the counter
    // fuzz, still covering >128-core (spilled-sharer) machines.
    const uint32_t kCores = fuzzCores(seed() + 1);
    Machine m(fuzzConfig(seed() ^ 0xabcdef, kCores));
    const Label add = m.labels().define(labels::makeAdd<int64_t>("ADD"));
    const Label mn = m.labels().define(labels::makeMin<int64_t>("MIN"));
    const Label mx = m.labels().define(labels::makeMax<int64_t>("MAX"));
    const Addr sum_cell = m.allocator().allocLines(1);
    const Addr min_cell = m.allocator().allocLines(1);
    const Addr max_cell = m.allocator().allocLines(1);
    m.memory().write<int64_t>(min_cell,
                              std::numeric_limits<int64_t>::max());
    m.memory().write<int64_t>(max_cell,
                              std::numeric_limits<int64_t>::lowest());

    std::vector<int64_t> mins(kCores,
                              std::numeric_limits<int64_t>::max());
    std::vector<int64_t> maxs(kCores,
                              std::numeric_limits<int64_t>::lowest());
    const int kOps = fuzzOps(kCores, 300);
    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOps; i++) {
                const int64_t x = int64_t(rng.below(1000000));
                ctx.txRun([&] {
                    // Labeled updates are read-modify-writes of the
                    // local partial value (a blind store would replace
                    // the local minimum, losing earlier local updates).
                    const int64_t s =
                        ctx.readLabeled<int64_t>(sum_cell, add);
                    ctx.writeLabeled<int64_t>(sum_cell, add, s + 1);
                    const int64_t lo =
                        ctx.readLabeled<int64_t>(min_cell, mn);
                    ctx.writeLabeled<int64_t>(min_cell, mn,
                                              std::min(lo, x));
                    const int64_t hi =
                        ctx.readLabeled<int64_t>(max_cell, mx);
                    ctx.writeLabeled<int64_t>(max_cell, mx,
                                              std::max(hi, x));
                });
                mins[t] = std::min(mins[t], x);
                maxs[t] = std::max(maxs[t], x);
            }
        });
    }
    m.run();

    int64_t expect_min = std::numeric_limits<int64_t>::max();
    int64_t expect_max = std::numeric_limits<int64_t>::lowest();
    for (uint32_t t = 0; t < kCores; t++) {
        expect_min = std::min(expect_min, mins[t]);
        expect_max = std::max(expect_max, maxs[t]);
    }
    const auto value = [&](Addr a) {
        const LineData line = m.memSys().debugReducedValue(lineAddr(a));
        int64_t v;
        std::memcpy(&v, line.data(), sizeof(v));
        return v;
    };
    EXPECT_EQ(value(sum_cell), int64_t(kCores) * kOps);
    EXPECT_EQ(value(min_cell), expect_min);
    EXPECT_EQ(value(max_cell), expect_max);
}

TEST_P(ProtocolFuzz, EagerLazyDifferentialCountersAgree)
{
    // Differential mode replay (docs/ARCHITECTURE.md Sec. 9): the
    // same seeded increment workload under eager and lazy detection
    // must produce identical per-core labeled-op shape streams and
    // identical end states. Workload randomness comes from private
    // host Rngs, never ctx.rng() — the context Rng also feeds abort
    // backoff, so its draw sequence legitimately differs across
    // detection modes.
    const uint64_t s = seed();
    const uint32_t kCores = fuzzCores(s + 2);
    constexpr uint32_t kCounters = 16;
    const int kOps = fuzzOps(kCores, 120);

    const auto workload = [&](const MachineConfig &cfg) {
        Machine m(cfg);
        const Label add = CommCounter::defineLabel(m);
        std::vector<Addr> counters;
        for (uint32_t i = 0; i < kCounters; i++)
            counters.push_back(m.allocator().allocLines(1));
        for (uint32_t t = 0; t < kCores; t++) {
            m.addThread([&, t](ThreadContext &ctx) {
                Rng rng(cfg.seed ^ (0xd1fful * (t + 1)));
                for (int i = 0; i < kOps; i++) {
                    const Addr a =
                        counters[rng.below(kCounters)];
                    ctx.txRun([&] {
                        const int64_t v =
                            ctx.readLabeled<int64_t>(a, add);
                        ctx.writeLabeled<int64_t>(a, add, v + 1);
                    });
                }
            });
        }
        m.run();
        DifferentialRun out;
        out.log = m.commitLog()->serialize();
        for (Addr a : counters) {
            const LineData line =
                m.memSys().debugReducedValue(lineAddr(a));
            out.endState.insert(out.endState.end(), line.data(),
                                line.data() + sizeof(int64_t));
        }
        return out;
    };

    const DifferentialResult res = runDifferential(
        fuzzConfig(s, kCores), workload, DiffMode::Shape);
    EXPECT_TRUE(res.ok) << res.diag;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

} // namespace
} // namespace commtm
