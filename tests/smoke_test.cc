/**
 * @file
 * End-to-end smoke tests: the simulated machine runs transactional
 * workloads to completion with correct functional results under both
 * the baseline HTM and CommTM.
 */

#include <gtest/gtest.h>

#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

MachineConfig
smallConfig(SystemMode mode, uint32_t cores = 8)
{
    MachineConfig cfg;
    cfg.numCores = cores;
    cfg.mode = mode;
    return cfg;
}

TEST(Smoke, SingleThreadCounterBaseline)
{
    Machine m(smallConfig(SystemMode::BaselineHtm, 1));
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    m.addThread([&](ThreadContext &ctx) {
        for (int i = 0; i < 100; i++)
            counter.add(ctx, 1);
    });
    m.run();
    EXPECT_EQ(counter.peek(m), 100);
    const auto stats = m.stats();
    EXPECT_EQ(stats.aggregateThreads().txCommitted, 100u);
    EXPECT_EQ(stats.aggregateThreads().txAborted, 0u);
    EXPECT_GT(stats.runtimeCycles(), 0u);
}

TEST(Smoke, SingleThreadCounterCommTm)
{
    Machine m(smallConfig(SystemMode::CommTm, 1));
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    m.addThread([&](ThreadContext &ctx) {
        for (int i = 0; i < 100; i++)
            counter.add(ctx, 1);
        EXPECT_EQ(counter.read(ctx), 100);
    });
    m.run();
    EXPECT_EQ(counter.peek(m), 100);
}

class SmokeModes : public ::testing::TestWithParam<SystemMode>
{
};

TEST_P(SmokeModes, MultiThreadCounterSumsCorrectly)
{
    Machine m(smallConfig(GetParam(), 8));
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    constexpr int kThreads = 8;
    constexpr int kIncrements = 200;
    for (int t = 0; t < kThreads; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < kIncrements; i++)
                counter.add(ctx, 1);
        });
    }
    m.run();
    EXPECT_EQ(counter.peek(m), kThreads * kIncrements);
}

TEST_P(SmokeModes, ReaderObservesFullValue)
{
    Machine m(smallConfig(GetParam(), 4));
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int i = 0; i < 50; i++)
                counter.add(ctx, 1);
            ctx.barrier();
            if (t == 0) {
                EXPECT_EQ(counter.read(ctx), 200);
            }
        });
    }
    m.run();
}

TEST_P(SmokeModes, CommTmScalesCounterBetterThanBaseline)
{
    // Not a performance assertion per se: checks the *shape* result the
    // whole paper rests on (Fig. 9) at tiny scale.
    auto runtime = [](SystemMode mode) {
        Machine m(smallConfig(mode, 8));
        const Label add = CommCounter::defineLabel(m);
        CommCounter counter(m, add);
        for (int t = 0; t < 8; t++) {
            m.addThread([&](ThreadContext &ctx) {
                for (int i = 0; i < 100; i++)
                    counter.add(ctx, 1);
            });
        }
        m.run();
        EXPECT_EQ(counter.peek(m), 800);
        return m.stats().runtimeCycles();
    };
    if (GetParam() == SystemMode::CommTm) {
        EXPECT_LT(runtime(SystemMode::CommTm),
                  runtime(SystemMode::BaselineHtm));
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, SmokeModes,
                         ::testing::Values(SystemMode::BaselineHtm,
                                           SystemMode::CommTmNoGather,
                                           SystemMode::CommTm));

} // namespace
} // namespace commtm
