/**
 * @file
 * Unit tests for trace capture and replay (docs/ARCHITECTURE.md
 * Sec. 11): pinned encoded bytes for a host-built capture (the format
 * is a contract — a refactor that changes it must show up here),
 * serialize/parse round trips, precise rejection diagnostics for
 * corrupted traces, capture-vs-replay bit-identity for closed-loop
 * and seed-randomized fuzz workloads, replay determinism at 128 and
 * 256 threads under eager and lazy conflict detection, and the
 * COMMTM_CAPTURE_TRACE override.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "lib/counter.h"
#include "rt/machine.h"
#include "trace/replay.h"
#include "trace/trace_reader.h"
#include "trace/trace_writer.h"

namespace commtm {
namespace {

using trace::kHeaderBytes;
using trace::kThreadEntryBytes;

/** CI seed randomization: shifts every fuzz seed, 0 by default. */
uint64_t
fuzzSeedOffset()
{
    static const uint64_t offset = [] {
        const char *s = std::getenv("COMMTM_FUZZ_SEED_OFFSET");
        return s ? std::strtoull(s, nullptr, 10) : 0ull;
    }();
    return offset;
}

/** Full-stats equality: every per-thread and machine counter. Replay
 *  on the capture config must reproduce all of them, not just the
 *  headline cycles. */
void
expectStatsEqual(const StatsSnapshot &a, const StatsSnapshot &b)
{
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t t = 0; t < a.threads.size(); t++) {
        const ThreadStats &x = a.threads[t];
        const ThreadStats &y = b.threads[t];
        EXPECT_EQ(x.nonTxCycles, y.nonTxCycles) << "thread " << t;
        EXPECT_EQ(x.txCommittedCycles, y.txCommittedCycles)
            << "thread " << t;
        EXPECT_EQ(x.txAbortedCycles, y.txAbortedCycles)
            << "thread " << t;
        EXPECT_EQ(x.wastedByCause, y.wastedByCause) << "thread " << t;
        EXPECT_EQ(x.txStarted, y.txStarted) << "thread " << t;
        EXPECT_EQ(x.txCommitted, y.txCommitted) << "thread " << t;
        EXPECT_EQ(x.txAborted, y.txAborted) << "thread " << t;
        EXPECT_EQ(x.abortsByCause, y.abortsByCause) << "thread " << t;
        EXPECT_EQ(x.instrs, y.instrs) << "thread " << t;
        EXPECT_EQ(x.labeledInstrs, y.labeledInstrs) << "thread " << t;
    }
    const MachineStats &m = a.machine;
    const MachineStats &n = b.machine;
    EXPECT_EQ(m.l3Gets, n.l3Gets);
    EXPECT_EQ(m.l1Hits, n.l1Hits);
    EXPECT_EQ(m.l1Misses, n.l1Misses);
    EXPECT_EQ(m.l2Hits, n.l2Hits);
    EXPECT_EQ(m.l2Misses, n.l2Misses);
    EXPECT_EQ(m.l3Hits, n.l3Hits);
    EXPECT_EQ(m.l3Misses, n.l3Misses);
    EXPECT_EQ(m.invalidations, n.invalidations);
    EXPECT_EQ(m.downgrades, n.downgrades);
    EXPECT_EQ(m.nacks, n.nacks);
    EXPECT_EQ(m.reductions, n.reductions);
    EXPECT_EQ(m.reductionLinesMerged, n.reductionLinesMerged);
    EXPECT_EQ(m.gathers, n.gathers);
    EXPECT_EQ(m.splits, n.splits);
    EXPECT_EQ(m.uWritebacks, n.uWritebacks);
    EXPECT_EQ(m.uForwards, n.uForwards);
    EXPECT_EQ(m.writebacks, n.writebacks);
}

/** Host-built two-thread capture covering every record kind plus an
 *  aborted (discarded) attempt. */
TraceWriter
sampleWriter()
{
    MachineConfig cfg = MachineConfig::forCores(2);
    cfg.numCores = 2;
    TraceWriter w(cfg);
    const uint64_t operand = 0x1122334455667788ull;

    w.noteCompute(0, 5);
    w.beginAttempt(0);
    w.noteLoad(0, 0x10000, 8);
    w.noteLabeledStore(0, 0x10040, 8, Label(1), &operand);
    w.commitAttempt(0);
    w.noteAnnotation(0, kAnnotCounterAdd, 7);

    w.beginAttempt(1);
    w.noteStore(1, 0x20000, 8, &operand); // discarded by the abort
    w.abortAttempt(1);
    w.beginAttempt(1);
    w.noteGather(1, 0x10000, 8, Label(1));
    w.commitAttempt(1);
    w.noteBarrier(1);
    return w;
}

TEST(Trace, PinnedEncodedBytes)
{
    const TraceWriter w = sampleWriter();
    const std::vector<uint8_t> bytes = w.serialize();

    // Stream payloads, byte for byte. zigzag(0x10000) = 0x20000 =
    // LEB128 [80 80 08]; zigzag(0x40) = 0x80 = [80 01].
    const std::vector<uint8_t> stream0 = {
        0, 5,                   // Compute 5
        6,                      // TxBegin
        1, 0x80, 0x80, 0x08, 8, // Load 0x10000 size 8
        4, 0x80, 0x01, 8, 1,    // LabeledStore 0x10040 size 8 label 1
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // operand LE
        7,                      // TxEnd
        9, 1, 7,                // Annotation code 1 value 7
    };
    const std::vector<uint8_t> stream1 = {
        6,                      // TxBegin (the aborted attempt left
                                // no bytes and did not move lastAddr)
        5, 0x80, 0x80, 0x08, 8, 1, // Gather 0x10000 size 8 label 1
        7,                      // TxEnd
        8,                      // Barrier
    };

    ASSERT_EQ(bytes.size(), kHeaderBytes + 2 * kThreadEntryBytes +
                                stream0.size() + stream1.size() + 2);
    EXPECT_EQ(std::memcmp(bytes.data(), "CTMTRACE", 8), 0);

    const auto u32At = [&](size_t off) {
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= uint32_t(bytes[off + i]) << (8 * i);
        return v;
    };
    const auto u64At = [&](size_t off) {
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= uint64_t(bytes[off + i]) << (8 * i);
        return v;
    };
    EXPECT_EQ(u32At(8), 1u);               // version
    EXPECT_EQ(u32At(12), 2u);              // numThreads
    EXPECT_EQ(u64At(16), w.fingerprint()); // config fingerprint
    EXPECT_EQ(u64At(24), 2u);              // commitCount
    EXPECT_EQ(u64At(32), 6u);              // thread 0 records
    EXPECT_EQ(u64At(40), stream0.size());  // thread 0 bytes
    EXPECT_EQ(u64At(48), 4u);              // thread 1 records
    EXPECT_EQ(u64At(56), stream1.size());  // thread 1 bytes

    const size_t s0 = kHeaderBytes + 2 * kThreadEntryBytes;
    EXPECT_TRUE(std::equal(stream0.begin(), stream0.end(),
                           bytes.begin() + s0));
    EXPECT_TRUE(std::equal(stream1.begin(), stream1.end(),
                           bytes.begin() + s0 + stream0.size()));
    // Commit order: core 0 then core 1, one varint byte each.
    EXPECT_EQ(bytes[bytes.size() - 2], 0u);
    EXPECT_EQ(bytes[bytes.size() - 1], 1u);
}

TEST(Trace, SerializeParseRoundTrip)
{
    const TraceWriter w = sampleWriter();
    const std::vector<uint8_t> bytes = w.serialize();

    Trace t;
    std::string err;
    ASSERT_TRUE(TraceReader::parse(bytes, &t, &err)) << err;
    EXPECT_EQ(t.version, 1u);
    EXPECT_EQ(t.configFingerprint, w.fingerprint());
    ASSERT_EQ(t.numThreads(), 2u);
    ASSERT_EQ(t.threads[0].size(), 6u);
    ASSERT_EQ(t.threads[1].size(), 4u);

    const TraceRecord &load = t.threads[0][2];
    EXPECT_EQ(load.kind, TraceOpKind::Load);
    EXPECT_EQ(load.addr, 0x10000u);
    EXPECT_EQ(load.size, 8u);
    const TraceRecord &store = t.threads[0][3];
    EXPECT_EQ(store.kind, TraceOpKind::LabeledStore);
    EXPECT_EQ(store.addr, 0x10040u);
    EXPECT_EQ(store.label, Label(1));
    const uint64_t operand = 0x1122334455667788ull;
    ASSERT_EQ(store.data.size(), 8u);
    EXPECT_EQ(std::memcmp(store.data.data(), &operand, 8), 0);
    const TraceRecord &annot = t.threads[0][5];
    EXPECT_EQ(annot.kind, TraceOpKind::Annotation);
    EXPECT_EQ(annot.a, uint64_t(kAnnotCounterAdd));
    EXPECT_EQ(annot.b, 7u);
    // The aborted store never appears; the gather delta is relative
    // to thread 1's own stream (initial base 0), not thread 0's.
    EXPECT_EQ(t.threads[1][1].kind, TraceOpKind::Gather);
    EXPECT_EQ(t.threads[1][1].addr, 0x10000u);
    ASSERT_EQ(t.commitOrder.size(), 2u);
    EXPECT_EQ(t.commitOrder[0], CoreId(0));
    EXPECT_EQ(t.commitOrder[1], CoreId(1));
}

TEST(Trace, CorruptedTracesRejectedWithPreciseDiagnostics)
{
    const std::vector<uint8_t> good = sampleWriter().serialize();
    const auto expectReject = [&](std::vector<uint8_t> bytes,
                                  const char *what) {
        Trace out;
        std::string err;
        EXPECT_FALSE(TraceReader::parse(bytes, &out, &err));
        EXPECT_NE(err.find(what), std::string::npos)
            << "diagnostic \"" << err << "\" lacks \"" << what
            << "\"";
    };
    // Offsets into the pinned layout (see PinnedEncodedBytes).
    const size_t s0 = kHeaderBytes + 2 * kThreadEntryBytes;
    const size_t s1 = s0 + 25; // thread 1's stream

    std::vector<uint8_t> bad = good;
    bad[0] ^= 0x20;
    expectReject(bad, "bad magic");

    bad = good;
    bad[8] = 9; // version field
    expectReject(bad, "unsupported version 9");

    bad = good;
    bad.resize(kHeaderBytes - 1);
    expectReject(bad, "truncated header");

    bad = good;
    bad.resize(kHeaderBytes + 8);
    expectReject(bad, "truncated thread table");

    bad = good;
    bad[40] = 0xff; // thread 0's byteCount overruns the buffer
    expectReject(bad, "thread 0: stream length 255 runs past the end");

    bad = good;
    bad[s0] = 42; // thread 0 record 0's opcode
    expectReject(bad, "thread 0 record 0: bad opcode 42");

    bad = good;
    bad[s0 + 7] = 65; // Load size: 65 > kLineSize
    expectReject(bad, "thread 0 record 2: implausible access size 65");

    bad = good;
    bad[s0 + 9] = 0xf8; // LabeledStore delta +0x40 -> +0x3c: the
    bad[s0 + 10] = 0;   // 8-byte access now starts at line offset 60
    expectReject(bad, "thread 0 record 3: access straddles a cache "
                      "line");

    bad = good;
    bad[40] = 20; // thread 0's byteCount: cuts the store mid-operand
    expectReject(bad, "thread 0 record 3: truncated operand (8 "
                      "bytes)");

    bad = good;
    bad[s1 + 6] = 200; // Gather label: >= kMaxHwLabels, != kNoLabel
    expectReject(bad, "thread 1 record 1: bad label 200");

    bad = good;
    bad[s0 + 21] = uint8_t(TraceOpKind::TxBegin); // TxEnd -> TxBegin
    expectReject(bad, "thread 0 record 4: TxBegin inside a "
                      "transaction");

    bad = good;
    bad[s1 + 8] = uint8_t(TraceOpKind::TxEnd); // Barrier -> 2nd TxEnd
    expectReject(bad, "thread 1 record 3: TxEnd without TxBegin");

    bad = good;
    bad[s0 + 21] = uint8_t(TraceOpKind::Barrier); // TxEnd -> Barrier
    expectReject(bad, "thread 0 record 4: Barrier inside a "
                      "transaction");

    bad = good;
    bad[good.size() - 1] = 5; // commit-order core id
    expectReject(bad, "commit order entry 1: core 5 out of range");

    bad = good;
    bad.pop_back();
    expectReject(bad, "truncated commit order at entry 1");

    bad = good;
    bad.push_back(0);
    expectReject(bad, "1 trailing bytes after the commit order");
}

/** Closed-loop counter workload under capture; returns the serialized
 *  trace and fills @p stats / @p value with the capture run's
 *  results. */
std::vector<uint8_t>
captureCounterRun(const MachineConfig &cfg, uint32_t threads,
                  uint64_t ops_per_thread, StatsSnapshot *stats,
                  int64_t *value)
{
    MachineConfig capture_cfg = cfg;
    capture_cfg.captureTrace = true;
    Machine m(capture_cfg);
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&counter, ops_per_thread](ThreadContext &ctx) {
            for (uint64_t i = 0; i < ops_per_thread; i++)
                counter.add(ctx, 1);
        });
    }
    m.run();
    *stats = m.stats();
    *value = counter.peek(m);
    return m.traceWriter()->serialize();
}

/** Replay @p t on @p cfg; returns the machine's stats and fills
 *  @p value with the replayed counter's committed value and, when
 *  @p recapture is non-null, the replay run's own serialized trace. */
StatsSnapshot
replayCounterRun(const MachineConfig &cfg, const Trace &t,
                 int64_t *value, std::vector<uint8_t> *recapture)
{
    MachineConfig replay_cfg = cfg;
    replay_cfg.captureTrace = recapture != nullptr;
    Machine m(replay_cfg);
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add); // same allocation order as capture
    ReplayFrontend fe(t);
    fe.attach(m);
    m.run();
    if (value != nullptr)
        *value = counter.peek(m);
    if (recapture != nullptr)
        *recapture = m.traceWriter()->serialize();
    return m.stats();
}

TEST(Trace, ReplayOnCaptureConfigIsBitIdentical)
{
    for (const auto detection :
         {ConflictDetection::Eager, ConflictDetection::Lazy}) {
        MachineConfig cfg = MachineConfig::forCores(8);
        cfg.numCores = 8;
        cfg.mode = SystemMode::CommTm;
        cfg.conflictDetection = detection;
        cfg.seed = 1234;

        StatsSnapshot captured;
        int64_t captured_value = 0;
        const std::vector<uint8_t> bytes = captureCounterRun(
            cfg, 8, 50, &captured, &captured_value);
        EXPECT_EQ(captured_value, 400);

        Trace t;
        std::string err;
        ASSERT_TRUE(TraceReader::parse(bytes, &t, &err)) << err;
        ASSERT_EQ(t.commitOrder.size(), 400u);

        // Same config: every counter matches the capture run, the
        // functional end state matches, and re-capturing during the
        // replay reproduces the trace byte-for-byte.
        int64_t replayed_value = 0;
        std::vector<uint8_t> recaptured;
        const StatsSnapshot replayed =
            replayCounterRun(cfg, t, &replayed_value, &recaptured);
        expectStatsEqual(captured, replayed);
        EXPECT_EQ(replayed_value, captured_value);
        EXPECT_EQ(recaptured, bytes);
    }
}

TEST(Trace, ReplayIsDeterministicAcrossConfigsAt128And256Threads)
{
    for (const uint32_t threads : {128u, 256u}) {
        MachineConfig cfg = MachineConfig::forCores(threads);
        cfg.numCores = threads;
        cfg.mode = SystemMode::CommTm;
        cfg.conflictDetection = ConflictDetection::Eager;
        cfg.seed = 99;

        StatsSnapshot captured;
        int64_t captured_value = 0;
        const std::vector<uint8_t> bytes = captureCounterRun(
            cfg, threads, 4, &captured, &captured_value);
        Trace t;
        std::string err;
        ASSERT_TRUE(TraceReader::parse(bytes, &t, &err)) << err;

        // Same-seed replays of one capture must agree exactly —
        // stats and the re-captured trace — under both detection
        // policies (the capture was eager; the lazy replay is a
        // cross-config run re-resolved through the live HTM).
        for (const auto detection :
             {ConflictDetection::Eager, ConflictDetection::Lazy}) {
            MachineConfig replay_cfg = cfg;
            replay_cfg.conflictDetection = detection;
            std::vector<uint8_t> first, second;
            const StatsSnapshot a =
                replayCounterRun(replay_cfg, t, nullptr, &first);
            const StatsSnapshot b =
                replayCounterRun(replay_cfg, t, nullptr, &second);
            expectStatsEqual(a, b);
            EXPECT_EQ(first, second);
        }
    }
}

TEST(Trace, FuzzWorkloadReplaysBitIdentically)
{
    const uint64_t seed = 7 + fuzzSeedOffset();
    // Tiny caches: constant evictions, U-forwards, and aborts. The
    // bodies draw randomness from a host-side Rng (never ctx.rng()),
    // so the simulated threads' rng streams feed backoff only and
    // capture/replay consume them identically.
    MachineConfig cfg = MachineConfig::forCores(6);
    cfg.numCores = 6;
    cfg.mode = SystemMode::CommTm;
    cfg.conflictDetection =
        seed % 2 ? ConflictDetection::Lazy : ConflictDetection::Eager;
    cfg.l1SizeKB = 1;
    cfg.l2SizeKB = 2;
    cfg.l3SizeKB = 32;
    cfg.seed = seed;
    MachineConfig capture_cfg = cfg;
    capture_cfg.captureTrace = true;

    constexpr uint32_t kCounters = 24;
    constexpr int kOpsPerThread = 120;
    const auto body = [&](Machine &m, std::vector<Addr> &counters,
                          Label add, uint32_t t) {
        return [&, add, t](ThreadContext &ctx) {
            Rng rng(cfg.seed * 1000003 + t);
            for (int i = 0; i < kOpsPerThread; i++) {
                // Pre-draw everything: attempts of one transaction
                // must be identical (replay re-issues the recorded
                // ops on retry, so capture bodies whose attempts
                // vary would diverge).
                const Addr c = counters[rng.below(kCounters)];
                const int64_t delta = int64_t(rng.below(100)) - 50;
                const bool read_back = rng.below(100) < 20;
                ctx.txRun([&ctx, c, add, delta] {
                    const int64_t v =
                        ctx.readLabeled<int64_t>(c, add);
                    ctx.writeLabeled<int64_t>(c, add, v + delta);
                });
                if (read_back) {
                    ctx.txRun([&ctx, c] {
                        (void)ctx.read<int64_t>(c);
                    });
                }
                ctx.compute(4);
            }
            (void)m;
        };
    };

    StatsSnapshot captured;
    std::vector<uint8_t> bytes;
    {
        Machine m(capture_cfg);
        const Label add = CommCounter::defineLabel(m);
        std::vector<Addr> counters;
        for (uint32_t i = 0; i < kCounters; i++)
            counters.push_back(m.allocator().allocLines(1));
        for (uint32_t t = 0; t < cfg.numCores; t++)
            m.addThread(body(m, counters, add, t));
        m.run();
        captured = m.stats();
        bytes = m.traceWriter()->serialize();
    }

    Trace t;
    std::string err;
    ASSERT_TRUE(TraceReader::parse(bytes, &t, &err)) << err;

    std::vector<uint8_t> recaptured;
    {
        MachineConfig replay_cfg = cfg;
        replay_cfg.captureTrace = true;
        Machine m(replay_cfg);
        (void)CommCounter::defineLabel(m);
        for (uint32_t i = 0; i < kCounters; i++)
            (void)m.allocator().allocLines(1);
        ReplayFrontend fe(t);
        fe.attach(m);
        m.run();
        expectStatsEqual(captured, m.stats());
        recaptured = m.traceWriter()->serialize();
    }
    EXPECT_EQ(recaptured, bytes) << "seed " << seed;
}

TEST(Trace, EnvOverrideForcesCaptureOn)
{
    MachineConfig c = MachineConfig::forCores(2);
    c.numCores = 2;
    {
        Machine off(c);
        EXPECT_EQ(off.traceWriter(), nullptr);
    }
    ASSERT_EQ(setenv("COMMTM_CAPTURE_TRACE", "1", 1), 0);
    {
        Machine forced(c);
        EXPECT_NE(forced.traceWriter(), nullptr);
    }
    ASSERT_EQ(unsetenv("COMMTM_CAPTURE_TRACE"), 0);
}

} // namespace
} // namespace commtm
