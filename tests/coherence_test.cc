/**
 * @file
 * Protocol-level unit tests of the MESI+U coherence implementation,
 * driven directly through MemorySystem with a scripted HtmHooks stub:
 * the five GETU cases (Sec. III-B3), reductions (III-B4), gathers
 * (Sec. IV), U-line evictions (III-B5), and conflict resolution
 * (Fig. 6), independent of the HTM and runtime layers.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "mem/coherence.h"

namespace commtm {
namespace {

/** Scriptable transaction view for the protocol. */
class FakeHtm : public HtmHooks
{
  public:
    struct TxState {
        bool active = false;
        Timestamp ts = 0;
        bool modified = false; //!< specModified() result for any line
    };

    bool
    inTx(CoreId c) const override
    {
        return tx.count(c) && tx.at(c).active;
    }
    Timestamp
    txTs(CoreId c) const override
    {
        return tx.at(c).ts;
    }
    bool
    specModified(CoreId c, Addr) const override
    {
        return tx.count(c) && tx.at(c).modified;
    }
    void
    remoteAbort(CoreId victim, AbortCause cause) override
    {
        aborts.push_back({victim, cause});
        tx[victim].active = false;
        if (mem)
            for (Addr line : specLines[victim])
                mem->clearSpec(victim, line);
    }
    void
    noteSpecLine(CoreId c, Addr line, SpecKind) override
    {
        specLines[c].push_back(line);
    }

    std::map<CoreId, TxState> tx;
    std::map<CoreId, std::vector<Addr>> specLines;
    std::vector<std::pair<CoreId, AbortCause>> aborts;
    MemorySystem *mem = nullptr;
};

class CoherenceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg_.numCores = 8;
        cfg_.hwLabels = 8;
        registry_ = std::make_unique<LabelRegistry>(cfg_.hwLabels);
        add_ = registry_->define(labels::makeAdd<int64_t>("ADD"));
        min_ = registry_->define(labels::makeMin<int64_t>("MIN"));
        rng_ = std::make_unique<Rng>(1);
        mem_ = std::make_unique<MemorySystem>(cfg_, memory_, *registry_,
                                              stats_, *rng_);
        mem_->setHtm(&htm_);
        htm_.mem = mem_.get();
    }

    AccessResult
    access(CoreId core, Addr addr, MemOp op, Label label = kNoLabel,
           bool is_tx = false, Timestamp ts = 0)
    {
        Access a;
        a.core = core;
        a.addr = addr;
        a.size = 8;
        a.op = op;
        a.label = label;
        a.isTx = is_tx;
        a.ts = ts;
        return mem_->access(a);
    }

    int64_t
    uValue(CoreId core, Addr line)
    {
        int64_t v;
        std::memcpy(&v, mem_->uCopy(core, line).data(), sizeof(v));
        return v;
    }

    void
    setUValue(CoreId core, Addr line, int64_t v)
    {
        std::memcpy(mem_->uCopy(core, line).data(), &v, sizeof(v));
    }

    MachineConfig cfg_;
    SimMemory memory_;
    std::unique_ptr<LabelRegistry> registry_;
    Label add_{}, min_{};
    MachineStats stats_;
    std::unique_ptr<Rng> rng_;
    std::unique_ptr<MemorySystem> mem_;
    FakeHtm htm_;
};

constexpr Addr kLine = 0x40000; // line-aligned test address

TEST_F(CoherenceTest, GetsGrantsExclusiveCleanToFirstReader)
{
    access(0, kLine, MemOp::Load);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::E);
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::M);
}

TEST_F(CoherenceTest, SecondReaderDowngradesOwnerToShared)
{
    access(0, kLine, MemOp::Load);
    access(1, kLine, MemOp::Load);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::S);
    EXPECT_EQ(mem_->privState(1, lineAddr(kLine)), PrivState::S);
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::S);
    EXPECT_EQ(mem_->sharerCount(lineAddr(kLine)), 2u);
}

TEST_F(CoherenceTest, StoreInvalidatesSharers)
{
    access(0, kLine, MemOp::Load);
    access(1, kLine, MemOp::Load);
    access(2, kLine, MemOp::Store);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::I);
    EXPECT_EQ(mem_->privState(1, lineAddr(kLine)), PrivState::I);
    EXPECT_EQ(mem_->privState(2, lineAddr(kLine)), PrivState::M);
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::M);
}

TEST_F(CoherenceTest, SilentEToMUpgradeOnLocalStore)
{
    access(0, kLine, MemOp::Load);
    ASSERT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::E);
    const uint64_t gets_before = stats_.totalL3Gets();
    access(0, kLine, MemOp::Store);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::M);
    EXPECT_EQ(stats_.totalL3Gets(), gets_before); // no dir traffic
}

// --- The five GETU cases (Sec. III-B3) ---

TEST_F(CoherenceTest, GetuCase1_NoSharers_ServesData)
{
    memory_.write<int64_t>(kLine, 24);
    access(0, kLine, MemOp::LabeledLoad, add_);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::U);
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::U);
    EXPECT_EQ(mem_->dirLabel(lineAddr(kLine)), add_);
    // The requester absorbed the memory value (Fig. 4a).
    EXPECT_EQ(uValue(0, lineAddr(kLine)), 24);
}

TEST_F(CoherenceTest, GetuCase2_InvalidatesReadOnlySharers)
{
    memory_.write<int64_t>(kLine, 7);
    access(0, kLine, MemOp::Load);
    access(1, kLine, MemOp::Load);
    access(2, kLine, MemOp::LabeledLoad, add_);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::I);
    EXPECT_EQ(mem_->privState(1, lineAddr(kLine)), PrivState::I);
    EXPECT_EQ(mem_->privState(2, lineAddr(kLine)), PrivState::U);
    EXPECT_EQ(uValue(2, lineAddr(kLine)), 7);
}

TEST_F(CoherenceTest, GetuCase3_DifferentLabelReducesAndRelabels)
{
    memory_.write<int64_t>(kLine, 10);
    access(0, kLine, MemOp::LabeledLoad, add_); // absorbs 10
    access(1, kLine, MemOp::LabeledLoad, add_); // identity 0
    setUValue(1, lineAddr(kLine), 5);           // simulate local adds
    access(2, kLine, MemOp::LabeledLoad, min_);
    // Old copies merged with the ADD reduction (10 + 5), then the line
    // re-enters U under MIN at the requester only.
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::U);
    EXPECT_EQ(mem_->dirLabel(lineAddr(kLine)), min_);
    EXPECT_EQ(mem_->sharerCount(lineAddr(kLine)), 1u);
    EXPECT_EQ(uValue(2, lineAddr(kLine)), 15);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::I);
    EXPECT_EQ(mem_->privState(1, lineAddr(kLine)), PrivState::I);
}

TEST_F(CoherenceTest, GetuCase4_SameLabelGrantsIdentityWithoutData)
{
    memory_.write<int64_t>(kLine, 24);
    access(0, kLine, MemOp::LabeledLoad, add_);
    access(1, kLine, MemOp::LabeledLoad, add_);
    EXPECT_EQ(mem_->sharerCount(lineAddr(kLine)), 2u);
    EXPECT_EQ(uValue(0, lineAddr(kLine)), 24); // kept the data
    EXPECT_EQ(uValue(1, lineAddr(kLine)), 0);  // identity (Fig. 4a/4b)
}

TEST_F(CoherenceTest, GetuCase5_DowngradesExclusiveOwnerWhoKeepsData)
{
    memory_.write<int64_t>(kLine, 24);
    access(0, kLine, MemOp::Store); // owner in M
    access(1, kLine, MemOp::LabeledLoad, add_);
    // Fig. 4b: owner downgraded M->U and retains the data; the
    // requester initializes to the identity.
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::U);
    EXPECT_EQ(mem_->privState(1, lineAddr(kLine)), PrivState::U);
    EXPECT_EQ(uValue(0, lineAddr(kLine)), 24);
    EXPECT_EQ(uValue(1, lineAddr(kLine)), 0);
    EXPECT_EQ(mem_->sharerCount(lineAddr(kLine)), 2u);
}

// --- Reductions (Sec. III-B4) ---

TEST_F(CoherenceTest, ConventionalLoadTriggersFullReduction)
{
    memory_.write<int64_t>(kLine, 3);
    access(0, kLine, MemOp::LabeledLoad, add_);
    access(1, kLine, MemOp::LabeledLoad, add_);
    access(2, kLine, MemOp::LabeledLoad, add_);
    setUValue(1, lineAddr(kLine), 20);
    setUValue(2, lineAddr(kLine), 100);
    const uint64_t reductions_before = stats_.reductions;
    access(3, kLine, MemOp::Load);
    EXPECT_EQ(stats_.reductions, reductions_before + 1);
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::M);
    EXPECT_EQ(memory_.read<int64_t>(kLine), 123);
    EXPECT_EQ(mem_->privState(3, lineAddr(kLine)), PrivState::M);
    EXPECT_EQ(mem_->privState(0, lineAddr(kLine)), PrivState::I);
}

TEST_F(CoherenceTest, SoleSharerUnlabeledAccessConvertsLocally)
{
    memory_.write<int64_t>(kLine, 42);
    access(0, kLine, MemOp::LabeledLoad, add_);
    access(0, kLine, MemOp::Load); // sole sharer: U -> M, no conflict
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::M);
    EXPECT_EQ(memory_.read<int64_t>(kLine), 42);
    EXPECT_TRUE(htm_.aborts.empty());
}

TEST_F(CoherenceTest, ReductionInvariant_ValueEqualsReducedCopies)
{
    memory_.write<int64_t>(kLine, 1);
    access(0, kLine, MemOp::LabeledLoad, add_);
    access(1, kLine, MemOp::LabeledLoad, add_);
    setUValue(0, lineAddr(kLine), 11);
    setUValue(1, lineAddr(kLine), 31);
    const LineData reduced = mem_->debugReducedValue(lineAddr(kLine));
    int64_t v;
    std::memcpy(&v, reduced.data(), sizeof(v));
    EXPECT_EQ(v, 42);
    EXPECT_EQ(mem_->debugUCopies(lineAddr(kLine)).size(), 2u);
}

// --- Conflicts (Fig. 6) ---

TEST_F(CoherenceTest, OlderRequesterAbortsYoungerLabeledHolder)
{
    access(0, kLine, MemOp::LabeledLoad, add_, true, 10);
    htm_.tx[0] = {true, 10, false};
    // Older (ts 5) conventional load: reduction; core 0 must abort.
    const AccessResult r = access(1, kLine, MemOp::Load, kNoLabel, true, 5);
    EXPECT_FALSE(r.mustAbort());
    ASSERT_EQ(htm_.aborts.size(), 1u);
    EXPECT_EQ(htm_.aborts[0].first, 0u);
    EXPECT_EQ(htm_.aborts[0].second, AbortCause::LabeledConflict);
}

TEST_F(CoherenceTest, YoungerRequesterGetsNackedAndKeepsMergedData)
{
    access(0, kLine, MemOp::LabeledLoad, add_, true, 5);
    htm_.tx[0] = {true, 5, false};
    const AccessResult r =
        access(1, kLine, MemOp::Load, kNoLabel, true, 10);
    EXPECT_TRUE(r.nackAbort);
    EXPECT_EQ(stats_.nacks, 1u);
    EXPECT_TRUE(htm_.aborts.empty());
    // The holder keeps its U copy (Fig. 6b).
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::U);
    EXPECT_TRUE(mem_->coreHasU(0, lineAddr(kLine)));
}

TEST_F(CoherenceTest, NonSpeculativeRequestsCannotBeNacked)
{
    access(0, kLine, MemOp::LabeledLoad, add_, true, 5);
    htm_.tx[0] = {true, 5, false};
    const AccessResult r = access(1, kLine, MemOp::Load); // non-tx
    EXPECT_FALSE(r.mustAbort());
    ASSERT_EQ(htm_.aborts.size(), 1u);
    EXPECT_EQ(htm_.aborts[0].first, 0u);
}

TEST_F(CoherenceTest, ReadAfterWriteConflictClassified)
{
    access(0, kLine, MemOp::Store, kNoLabel, true, 10);
    htm_.tx[0] = {true, 10, false};
    access(1, kLine, MemOp::Load, kNoLabel, true, 5);
    ASSERT_EQ(htm_.aborts.size(), 1u);
    EXPECT_EQ(htm_.aborts[0].second, AbortCause::ReadAfterWrite);
}

TEST_F(CoherenceTest, WriteAfterReadConflictClassified)
{
    access(0, kLine, MemOp::Load, kNoLabel, true, 10);
    htm_.tx[0] = {true, 10, false};
    access(1, kLine, MemOp::Store, kNoLabel, true, 5);
    ASSERT_EQ(htm_.aborts.size(), 1u);
    EXPECT_EQ(htm_.aborts[0].second, AbortCause::WriteAfterRead);
}

TEST_F(CoherenceTest, ReadersDoNotConflictWithSpeculativeReaders)
{
    access(0, kLine, MemOp::Load, kNoLabel, true, 10);
    htm_.tx[0] = {true, 10, false};
    access(1, kLine, MemOp::Load, kNoLabel, true, 5);
    EXPECT_TRUE(htm_.aborts.empty());
}

TEST_F(CoherenceTest, SelfDemotionOnUnlabeledAccessToModifiedLabeledData)
{
    access(0, kLine, MemOp::LabeledLoad, add_, true, 5);
    access(1, kLine, MemOp::LabeledLoad, add_, true, 6);
    htm_.tx[0] = {true, 5, true}; // speculatively modified
    htm_.tx[1] = {true, 6, false};
    const AccessResult r = access(0, kLine, MemOp::Load, kNoLabel, true, 5);
    EXPECT_TRUE(r.selfDemote);
    EXPECT_EQ(r.cause, AbortCause::SelfDemotion);
}

// --- Gathers (Sec. IV) ---

TEST_F(CoherenceTest, GatherRebalancesValueAcrossSharers)
{
    memory_.write<int64_t>(kLine, 128);
    access(0, kLine, MemOp::LabeledLoad, add_); // absorbs 128
    access(1, kLine, MemOp::LabeledLoad, add_); // identity
    access(1, kLine, MemOp::Gather, add_);
    // Two sharers: core 0 donates floor(128/2) = 64.
    EXPECT_EQ(uValue(0, lineAddr(kLine)), 64);
    EXPECT_EQ(uValue(1, lineAddr(kLine)), 64);
    EXPECT_EQ(mem_->dirState(lineAddr(kLine)), DirState::U);
    EXPECT_EQ(mem_->sharerCount(lineAddr(kLine)), 2u);
    EXPECT_EQ(stats_.gathers, 1u);
    EXPECT_EQ(stats_.splits, 1u);
}

TEST_F(CoherenceTest, GatherSkipsSharersWithNothingToDonate)
{
    memory_.write<int64_t>(kLine, 1);
    access(0, kLine, MemOp::LabeledLoad, add_); // absorbs 1
    access(1, kLine, MemOp::LabeledLoad, add_);
    access(2, kLine, MemOp::LabeledLoad, add_);
    htm_.tx[0] = {true, 1, false}; // would conflict if split
    access(2, kLine, MemOp::Gather, add_, true, 99);
    // floor(1/3) == 0: nothing to donate, so no split and no conflict.
    EXPECT_TRUE(htm_.aborts.empty());
    EXPECT_EQ(stats_.splits, 0u);
    EXPECT_EQ(uValue(0, lineAddr(kLine)), 1);
}

TEST_F(CoherenceTest, GatherAgainstOlderHolderGetsNacked)
{
    memory_.write<int64_t>(kLine, 100);
    access(0, kLine, MemOp::LabeledLoad, add_, true, 5);
    htm_.tx[0] = {true, 5, false};
    access(1, kLine, MemOp::LabeledLoad, add_, true, 10);
    htm_.tx[1] = {true, 10, false};
    const AccessResult r = access(1, kLine, MemOp::Gather, add_, true, 10);
    EXPECT_TRUE(r.nackAbort);
    EXPECT_EQ(r.cause, AbortCause::GatherAfterLabeled);
    EXPECT_EQ(uValue(0, lineAddr(kLine)), 100); // donor untouched
}

TEST_F(CoherenceTest, GatherAcquiresUWhenNotYetSharing)
{
    memory_.write<int64_t>(kLine, 64);
    access(0, kLine, MemOp::LabeledLoad, add_);
    access(1, kLine, MemOp::Gather, add_); // GETU first, then gather
    EXPECT_TRUE(mem_->coreHasU(1, lineAddr(kLine)));
    EXPECT_EQ(uValue(0, lineAddr(kLine)) + uValue(1, lineAddr(kLine)), 64);
}

// --- Evictions (Sec. III-B5) ---

TEST_F(CoherenceTest, SoleSharerUEvictionWritesBack)
{
    // Tiny private caches so a handful of fills force evictions.
    SimMemory memory2;
    MachineStats stats2;
    Rng rng2(3);
    MachineConfig geom;
    geom.numCores = 2;
    geom.l1SizeKB = 1; // 16 lines, 8 ways -> 2 sets
    geom.l2SizeKB = 2; // 32 lines, 8 ways -> 4 sets
    LabelRegistry reg(geom.hwLabels);
    const Label add = reg.define(labels::makeAdd<int64_t>("ADD"));
    MemorySystem ms(geom, memory2, reg, stats2, rng2);
    FakeHtm htm;
    htm.mem = &ms;
    ms.setHtm(&htm);

    // Touch one line with a labeled store, then flood its L2 set.
    const Addr base = 0x100000;
    memory2.write<int64_t>(base, 77);
    Access a;
    a.core = 0;
    a.addr = base;
    a.size = 8;
    a.op = MemOp::LabeledStore;
    a.label = add;
    ms.access(a);
    ASSERT_TRUE(ms.coreHasU(0, lineAddr(base)));
    // Flood: lines mapping to the same L2 set (stride = sets * 64).
    const uint32_t l2_sets = geom.l2Lines() / geom.l2Ways;
    for (uint32_t i = 1; i <= geom.l2Ways + 1; i++) {
        Access f;
        f.core = 0;
        f.addr = base + Addr(i) * l2_sets * kLineSize;
        f.size = 8;
        f.op = MemOp::Load;
        ms.access(f);
    }
    // The U line was evicted from the private hierarchy: written back.
    EXPECT_FALSE(ms.coreHasU(0, lineAddr(base)));
    EXPECT_EQ(ms.dirState(lineAddr(base)), DirState::NonCached);
    EXPECT_EQ(memory2.read<int64_t>(base), 77);
    EXPECT_EQ(stats2.uWritebacks, 1u);
}

TEST_F(CoherenceTest, MultiSharerUEvictionForwardsToAnotherSharer)
{
    SimMemory memory2;
    MachineStats stats2;
    Rng rng2(3);
    MachineConfig geom;
    geom.numCores = 2;
    geom.l1SizeKB = 1;
    geom.l2SizeKB = 2;
    LabelRegistry reg(geom.hwLabels);
    const Label add = reg.define(labels::makeAdd<int64_t>("ADD"));
    MemorySystem ms(geom, memory2, reg, stats2, rng2);
    FakeHtm htm;
    htm.mem = &ms;
    ms.setHtm(&htm);

    const Addr base = 0x200000;
    memory2.write<int64_t>(base, 50);
    for (CoreId c = 0; c < 2; c++) {
        Access a;
        a.core = c;
        a.addr = base;
        a.size = 8;
        a.op = MemOp::LabeledStore;
        a.label = add;
        ms.access(a);
    }
    // Core 0 has 50 (absorbed), core 1 identity; bump core 0 to check
    // the forward-merge.
    const uint32_t l2_sets = geom.l2Lines() / geom.l2Ways;
    for (uint32_t i = 1; i <= geom.l2Ways + 1; i++) {
        Access f;
        f.core = 0;
        f.addr = base + Addr(i) * l2_sets * kLineSize;
        f.size = 8;
        f.op = MemOp::Load;
        ms.access(f);
    }
    EXPECT_FALSE(ms.coreHasU(0, lineAddr(base)));
    ASSERT_TRUE(ms.coreHasU(1, lineAddr(base)));
    int64_t v;
    std::memcpy(&v, ms.uCopy(1, lineAddr(base)).data(), sizeof(v));
    EXPECT_EQ(v, 50); // core 0's copy merged into core 1's
    EXPECT_EQ(stats2.uForwards, 1u);
}

} // namespace
} // namespace commtm
