/**
 * @file
 * Stress tests for the event-driven wakeup-list scheduler
 * (rt/machine.cc, docs/ARCHITECTURE.md Sec. 2.2). Every test sets
 * schedCrossCheckEvery = 1, so each resume compares the heap's pick
 * (winner and runner-up key) against the pre-wakeup-list reference
 * linear scan via a Release-alive COMMTM_CHECK: any divergence kills
 * the test loudly in either build type.
 *
 * The randomized mix drives every wakeup source at once — compute
 * advances past the quantum, contended transactions abort into
 * far-future backoff stalls, barriers park and mass-release threads,
 * and a slice of threads finishes early each round (so releases also
 * come from the run() loop, not just the last arriver).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "rt/machine.h"

namespace commtm {
namespace {

/** Global interleaving trace: one (thread, cycle) pair per completed
 *  action, in the order the scheduler ran them. Identical traces mean
 *  identical resume sequences. */
using Trace = std::vector<std::pair<uint32_t, Cycle>>;

/**
 * Randomized advance/backoff/barrier/finish mix. Per-thread xorshift
 * streams make the action sequence a pure function of (thread id), so
 * two Machines with the same config replay the same workload.
 */
Trace
runRandomMix(uint32_t threads, uint32_t crossCheckEvery)
{
    MachineConfig c = MachineConfig::forCores(threads);
    c.schedCrossCheckEvery = crossCheckEvery;
    Machine m(c);
    // Few lines, many writers: contended txRun retries exercise the
    // abort-backoff wakeup path.
    std::vector<Addr> lines;
    for (int i = 0; i < 4; i++)
        lines.push_back(m.allocator().allocLines(1));
    Trace trace;
    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1) + 1;
            const auto rand = [&rng]() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                return rng;
            };
            for (int round = 0; round < 3; round++) {
                const int ops = 2 + int(rand() % 4);
                for (int i = 0; i < ops; i++) {
                    if (rand() % 2) {
                        ctx.compute(1 + rand() % 300);
                    } else {
                        const Addr line = lines[rand() % lines.size()];
                        ctx.txRun([&] {
                            const auto v = ctx.read<int64_t>(line);
                            ctx.write<int64_t>(line, v + 1);
                        });
                    }
                    trace.emplace_back(t, ctx.now());
                }
                // One slice finishes before the round's barrier: the
                // release then has to come from a finish event.
                if (t % 4 == 1 && round == 1)
                    return;
                ctx.barrier();
            }
        });
    }
    m.run();
    // The mix only stresses the backoff wakeup path if the contended
    // transactions really abort; at scale they must.
    if (threads >= 64) {
        EXPECT_GT(m.stats().aggregateThreads().txAborted, 0u);
    }
    return trace;
}

TEST(Scheduler, RandomMixMatchesReferenceEveryResume)
{
    // crossCheckEvery = 1: the reference scan vets literally every
    // scheduling decision. COMMTM_CHECK aborts on divergence, so
    // reaching the end is the assertion.
    for (uint32_t threads : {2u, 64u, 128u, 256u}) {
        const Trace trace = runRandomMix(threads, 1);
        EXPECT_FALSE(trace.empty());
    }
}

TEST(Scheduler, SameSeedSameResumeSequence)
{
    for (uint32_t threads : {2u, 64u, 128u}) {
        const Trace a = runRandomMix(threads, 1);
        const Trace b = runRandomMix(threads, 1);
        EXPECT_EQ(a, b) << threads << " threads";
    }
}

TEST(Scheduler, CrossCheckDoesNotPerturbSchedule)
{
    // The reference comparison is observation-only: traces with the
    // checker off must match traces with it maximally on.
    const Trace off = runRandomMix(64, 0);
    const Trace on = runRandomMix(64, 1);
    EXPECT_EQ(off, on);
}

TEST(Scheduler, AllParkedThenWake)
{
    // Seven threads park on the barrier at cycle ~0, draining the
    // wakeup list down to the one runner; its arrival mass-releases
    // everyone at the same cycle. Exercises the heap's empty->refill
    // edge and the last-arriver-releases-itself path.
    MachineConfig c = MachineConfig::forCores(8);
    c.schedCrossCheckEvery = 1;
    Machine m(c);
    std::vector<Cycle> released(8, 0);
    for (uint32_t t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (t == 7)
                ctx.compute(5000);
            ctx.barrier();
            released[t] = ctx.now();
        });
    }
    m.run();
    for (uint32_t t = 1; t < 8; t++)
        EXPECT_EQ(released[t], released[0]);
    EXPECT_GE(released[0], 5000u);
}

TEST(Scheduler, FinishReleasesBarrier)
{
    // Half the threads park early; the other half never arrives and
    // finishes late instead. The last finish is observed in the run()
    // loop (no thread is current), which must re-register all parked
    // threads or the machine deadlocks.
    MachineConfig c = MachineConfig::forCores(64);
    c.schedCrossCheckEvery = 1;
    Machine m(c);
    uint32_t released = 0;
    for (uint32_t t = 0; t < 64; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (t % 2 == 0) {
                ctx.compute(10);
                ctx.barrier();
                released++;
            } else {
                ctx.compute(1000 + t);
            }
        });
    }
    m.run();
    EXPECT_EQ(released, 32u);
}

} // namespace
} // namespace commtm
