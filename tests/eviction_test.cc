/**
 * @file
 * Inclusive-hierarchy eviction tests: L3/directory evictions must
 * back-invalidate private copies, reduce U lines to memory, and abort
 * transactions that speculatively accessed the victim (Sec. III-B5),
 * plus block-access (readBytes/writeBytes) semantics.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "lib/counter.h"
#include "lib/ordered_put.h"
#include "rt/machine.h"

namespace commtm {
namespace {

/** Machine with a tiny L3 (16 sets x 16 ways) to force L3 evictions. */
MachineConfig
tinyL3Config()
{
    MachineConfig c;
    c.numCores = 4;
    c.mode = SystemMode::CommTm;
    c.l3SizeKB = 16; // 256 lines, 16-way -> 16 sets
    return c;
}

TEST(L3Eviction, UEvictionReducesToMemoryAndAbortsAccessors)
{
    MachineConfig cfg = tinyL3Config();
    Machine m(cfg);
    const Label add = CommCounter::defineLabel(m);
    const uint32_t l3_sets = cfg.l3Lines() / cfg.l3Ways;
    const Addr target = m.allocator().allocLines(1);
    m.memory().write<int64_t>(target, 5);

    m.addThread([&](ThreadContext &ctx) {
        // Commit a labeled delta; the line stays in U.
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(target, add);
            ctx.writeLabeled<int64_t>(target, add, v + 37);
        });
        ASSERT_TRUE(m.memSys().coreHasU(0, lineAddr(target)));
        // Flood the target's L3 set from this core until the U line's
        // directory entry is evicted.
        for (uint32_t i = 1; i <= cfg.l3Ways + 4; i++) {
            ctx.read<int64_t>(target + Addr(i) * l3_sets * kLineSize);
        }
        EXPECT_FALSE(m.memSys().coreHasU(0, lineAddr(target)));
        // The reduction wrote the merged value back to memory.
        EXPECT_EQ(ctx.read<int64_t>(target), 42);
    });
    m.run();
    EXPECT_EQ(m.stats().machine.uWritebacks, 1u);
}

TEST(L3Eviction, BackInvalidationAbortsSpeculativeReaders)
{
    MachineConfig cfg = tinyL3Config();
    Machine m(cfg);
    const uint32_t l3_sets = cfg.l3Lines() / cfg.l3Ways;
    const Addr target = m.allocator().allocLines(1);
    m.memory().write<int64_t>(target, 7);
    uint32_t attempts = 0;

    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            const int64_t v = ctx.read<int64_t>(target); // read set
            EXPECT_EQ(v, 7);
            if (attempts > 1)
                return;
            // Flood the L3 set: eventually the target's directory
            // entry is evicted, which must abort us (the back-
            // invalidation removes a speculatively-read line).
            for (uint32_t i = 1; i <= cfg.l3Ways + 4; i++) {
                ctx.read<int64_t>(target +
                                  Addr(i) * l3_sets * kLineSize);
            }
        });
    });
    m.run();
    EXPECT_GE(attempts, 2u);
    EXPECT_GE(m.stats().aggregateThreads().txAborted, 1u);
}

/** Tiny private hierarchy (16-line L1, 32-line L2) to force L2
 *  evictions — and through them U-line evictions — with a short flood. */
MachineConfig
tinyL2Config(uint32_t cores)
{
    MachineConfig c;
    c.numCores = cores;
    c.mode = SystemMode::CommTm;
    c.l1SizeKB = 1; // 16 lines, 8-way -> 2 sets
    c.l2SizeKB = 2; // 32 lines, 8-way -> 4 sets
    return c;
}

TEST(UEviction, ForwardWhileTransactionHasBufferedWrites)
{
    // Core 1 evicts its U copy while core 0's transaction holds
    // buffered (uncommitted) labeled writes to the same line. The
    // forward must reduce only committed U state into core 0 (aborting
    // core 0's transaction), and the buffered bytes must not leak:
    // debugReducedValue sees exactly the committed contributions.
    MachineConfig cfg = tinyL2Config(2);
    Machine m(cfg);
    const Label add = CommCounter::defineLabel(m);
    const uint32_t l2_sets = cfg.l2Lines() / cfg.l2Ways;
    const Addr target = m.allocator().allocLines(1);
    m.memory().write<int64_t>(target, 100);

    bool t0InTx = false;
    bool floodDone = false;
    uint32_t attempts = 0;

    m.addThread([&](ThreadContext &ctx) { // core 0
        // Committed labeled add: absorbs the memory value into our
        // U copy (first GETU requester).
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(target, add);
            ctx.writeLabeled<int64_t>(target, add, v + 37);
        });
        ctx.txRun([&] {
            attempts++;
            const int64_t v = ctx.readLabeled<int64_t>(target, add);
            ctx.writeLabeled<int64_t>(target, add, v + 11); // buffered
            t0InTx = true;
            // Stay inside the transaction until core 1's flood has
            // evicted its U copy (the first attempt is doomed by the
            // resulting forward; compute() observes the doom).
            while (!floodDone)
                ctx.compute(50);
        });
    });

    m.addThread([&](ThreadContext &ctx) { // core 1
        // Join the reducible line (same label: initialized to identity).
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(target, add);
            ctx.writeLabeled<int64_t>(target, add, v + 5);
        });
        while (!t0InTx)
            ctx.compute(10);
        // Flood our own L2 set: the U line becomes LRU and is evicted,
        // forwarding our copy to the only other sharer — core 0.
        for (uint32_t i = 1; i <= cfg.l2Ways + 4; i++) {
            ctx.read<int64_t>(target + Addr(i) * l2_sets * kLineSize);
        }
        EXPECT_FALSE(m.memSys().coreHasU(1, lineAddr(target)));
        // Functional invariant (Sec. III-B3): the line's value is the
        // reduction of committed U copies — 100 + 37 + 5, with core
        // 0's buffered +11 invisible.
        LineData reduced = m.memSys().debugReducedValue(lineAddr(target));
        int64_t value;
        std::memcpy(&value, reduced.data(), sizeof(value));
        EXPECT_EQ(value, 142);
        floodDone = true;
    });

    m.run();
    // Core 0 retried and committed its +11 on the merged copy.
    EXPECT_EQ(attempts, 2u);
    EXPECT_EQ(m.stats().machine.uForwards, 1u);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_EQ(agg.txAborted, 1u);
    EXPECT_EQ(agg.abortsByCause[size_t(AbortCause::UEviction)], 1u);
    LineData reduced = m.memSys().debugReducedValue(lineAddr(target));
    int64_t final_value;
    std::memcpy(&final_value, reduced.data(), sizeof(final_value));
    EXPECT_EQ(final_value, 153);
}

TEST(UEviction, SoleSharerWritebackAbortsBufferingTransaction)
{
    // A transaction's own cache-pressure eviction of a U line it has
    // buffered writes to: the committed copy is written back to
    // memory, the transaction aborts, and the retry commits on a
    // re-acquired copy.
    MachineConfig cfg = tinyL2Config(1);
    Machine m(cfg);
    const Label add = CommCounter::defineLabel(m);
    const uint32_t l2_sets = cfg.l2Lines() / cfg.l2Ways;
    const Addr target = m.allocator().allocLines(1);
    m.memory().write<int64_t>(target, 7);
    uint32_t attempts = 0;

    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            const int64_t v = ctx.readLabeled<int64_t>(target, add);
            ctx.writeLabeled<int64_t>(target, add, v + 2); // buffered
            if (attempts > 1)
                return;
            // Evict the U line from our own L2 mid-transaction; one of
            // these fills dooms us (capacity or U-eviction abort).
            for (uint32_t i = 1; i <= cfg.l2Ways + 4; i++) {
                ctx.read<int64_t>(target +
                                  Addr(i) * l2_sets * kLineSize);
            }
        });
        // The buffered +2 of the aborted attempt must not have leaked.
        EXPECT_EQ(ctx.read<int64_t>(target), 9);
    });
    m.run();
    EXPECT_EQ(attempts, 2u);
    EXPECT_GE(m.stats().machine.uWritebacks, 1u);
    EXPECT_GE(m.stats().aggregateThreads().txAborted, 1u);
    EXPECT_EQ(m.memory().read<int64_t>(target), 9);
}

TEST(BlockAccess, ReadWriteBytesRoundTrip)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    Machine m(cfg);
    const Addr a = m.allocator().allocLines(4);
    std::vector<uint8_t> src(200);
    for (size_t i = 0; i < src.size(); i++)
        src[i] = uint8_t(i * 7);
    m.addThread([&](ThreadContext &ctx) {
        ctx.writeBytes(a + 10, src.data(), src.size()); // unaligned
        std::vector<uint8_t> back(src.size());
        ctx.readBytes(a + 10, back.data(), back.size());
        EXPECT_EQ(back, src);
    });
    m.run();
    std::vector<uint8_t> committed(src.size());
    m.memory().read(a + 10, committed.data(), committed.size());
    EXPECT_EQ(committed, src);
}

TEST(BlockAccess, TransactionalBlockWritesAreAtomic)
{
    MachineConfig cfg;
    cfg.numCores = 1;
    Machine m(cfg);
    const Addr a = m.allocator().allocLines(2);
    std::vector<uint8_t> ones(100, 1);
    m.addThread([&](ThreadContext &ctx) {
        bool first = true;
        ctx.txRun([&] {
            ctx.writeBytes(a, ones.data(), ones.size());
            if (first) {
                first = false;
                throw AbortException{AbortCause::Explicit, false};
            }
        });
    });
    m.run();
    // First attempt aborted: no partial bytes; second committed fully.
    std::vector<uint8_t> out(100);
    m.memory().read(a, out.data(), out.size());
    EXPECT_EQ(out, ones);
    EXPECT_EQ(m.stats().aggregateThreads().txAborted, 1u);
}

TEST(BlockAccess, OputCellsOnOneLineAreIndependent)
{
    // Four 16-byte OPUT cells per line; concurrent puts to different
    // cells of the same reducible line must not interfere.
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.mode = SystemMode::CommTm;
    Machine m(cfg);
    const Label oput = OrderedPut::defineLabel(m);
    const Addr base = m.allocator().allocLines(1);
    for (int i = 0; i < 4; i++)
        OrderedPut::initCell(m, base + 16 * Addr(i));
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            OrderedPut cell(base + 16 * Addr(t), oput);
            for (int i = 100; i > 0; i--)
                cell.put(ctx, t * 1000 + i, uint64_t(i));
        });
    }
    m.run();
    for (int t = 0; t < 4; t++) {
        OrderedPut cell(base + 16 * Addr(t), oput);
        const OrderedPut::Pair p = cell.peek(m);
        EXPECT_EQ(p.key, t * 1000 + 1) << "cell " << t;
        EXPECT_EQ(p.value, 1u);
    }
}

} // namespace
} // namespace commtm
