/**
 * @file
 * Tests of the microbenchmark harnesses themselves plus the headline
 * scaling-shape assertions the paper's Figs. 9-14 rest on, at
 * test-sized inputs: CommTM must beat the baseline on every contended
 * microbenchmark, gathers must beat reductions on refcounting, and all
 * runs must pass their internal functional validation.
 */

#include <gtest/gtest.h>

#include "apps/micro.h"

namespace commtm {
namespace {

MachineConfig
cfg(SystemMode mode)
{
    MachineConfig c;
    c.mode = mode;
    return c;
}

constexpr uint32_t kThreads = 32;

TEST(MicroShape, CounterCommTmBeatsBaseline)
{
    const MicroResult base =
        runCounterMicro(cfg(SystemMode::BaselineHtm), kThreads, 4000);
    const MicroResult comm =
        runCounterMicro(cfg(SystemMode::CommTm), kThreads, 4000);
    ASSERT_TRUE(base.valid);
    ASSERT_TRUE(comm.valid);
    // Fig. 9: at 32 threads CommTM should be an order of magnitude
    // ahead of the serialized baseline.
    EXPECT_GT(double(base.cycles()) / double(comm.cycles()), 10.0);
    EXPECT_EQ(comm.stats.aggregateThreads().txAborted, 0u);
}

TEST(MicroShape, RefcountGatherBeatsNoGatherBeatsNothing)
{
    const MicroResult base =
        runRefcountMicro(cfg(SystemMode::BaselineHtm), kThreads, 32000);
    const MicroResult nog = runRefcountMicro(
        cfg(SystemMode::CommTmNoGather), kThreads, 32000);
    const MicroResult full =
        runRefcountMicro(cfg(SystemMode::CommTm), kThreads, 32000);
    ASSERT_TRUE(base.valid && nog.valid && full.valid);
    // Fig. 10 ordering: gathers win big; without them reductions
    // serialize to roughly baseline level.
    EXPECT_GT(double(base.cycles()) / double(full.cycles()), 4.0);
    EXPECT_GT(double(nog.cycles()) / double(full.cycles()), 4.0);
    EXPECT_GT(full.stats.machine.gathers, 0u);
    EXPECT_EQ(base.stats.machine.gathers, 0u);
    EXPECT_EQ(nog.stats.machine.gathers, 0u);
    EXPECT_GT(nog.stats.machine.reductions, 0u);
}

TEST(MicroShape, EnqueueOnlyListScalesLinearly)
{
    const MicroResult comm =
        runListMicro(cfg(SystemMode::CommTm), kThreads, 6400, 100);
    const MicroResult one =
        runListMicro(cfg(SystemMode::CommTm), 1, 6400, 100);
    ASSERT_TRUE(comm.valid && one.valid);
    // Fig. 12a: near-linear (allow generous slack at test size).
    EXPECT_GT(double(one.cycles()) / double(comm.cycles()),
              0.6 * kThreads);
}

TEST(MicroShape, OrderedPutBothScaleCommTmMore)
{
    const MicroResult base =
        runOputMicro(cfg(SystemMode::BaselineHtm), kThreads, 8000);
    const MicroResult comm =
        runOputMicro(cfg(SystemMode::CommTm), kThreads, 8000);
    ASSERT_TRUE(base.valid && comm.valid);
    // Fig. 13: the baseline scales partially; CommTM at least as well.
    EXPECT_LE(comm.cycles(), base.cycles());
}

TEST(MicroShape, TopKCommTmAvoidsAllAborts)
{
    const MicroResult base =
        runTopkMicro(cfg(SystemMode::BaselineHtm), kThreads, 6400, 64);
    const MicroResult comm =
        runTopkMicro(cfg(SystemMode::CommTm), kThreads, 6400, 64);
    ASSERT_TRUE(base.valid && comm.valid);
    EXPECT_GT(base.stats.aggregateThreads().txAborted, 0u);
    EXPECT_EQ(comm.stats.aggregateThreads().txAborted, 0u);
    EXPECT_LT(comm.cycles(), base.cycles());
}

TEST(MicroShape, BaselineWasteIsReadAfterWrite)
{
    // Fig. 18: baseline wasted cycles are almost all RaW dependences.
    const MicroResult base =
        runCounterMicro(cfg(SystemMode::BaselineHtm), kThreads, 4000);
    const ThreadStats agg = base.stats.aggregateThreads();
    const Cycle raw =
        agg.wastedByCause[size_t(WasteBucket::ReadAfterWrite)];
    ASSERT_GT(agg.txAbortedCycles, 0u);
    EXPECT_GT(double(raw) / double(agg.txAbortedCycles), 0.5);
}

TEST(MicroShape, SubsetGathersStillCorrect)
{
    MachineConfig c = cfg(SystemMode::CommTm);
    c.gatherFanoutLimit = 4;
    const MicroResult r = runRefcountMicro(c, kThreads, 16000);
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.stats.machine.gathers, 0u);
}

TEST(MicroShape, LabeledFractionSmallButImpactful)
{
    // Sec. VII: labeled instructions are rare yet their effect is
    // large. On the counter microbenchmark the fraction is high by
    // construction; verify the counters plumb through.
    const MicroResult comm =
        runCounterMicro(cfg(SystemMode::CommTm), 8, 2000);
    const ThreadStats agg = comm.stats.aggregateThreads();
    EXPECT_GT(agg.labeledInstrs, 0u);
    EXPECT_LE(agg.labeledInstrs, agg.instrs);
}

} // namespace
} // namespace commtm
