/**
 * @file
 * Software model of TopK for the replay oracle: keep the K largest
 * inserted keys. Insert-only workloads are fully commutative, so the
 * final retained set is exact regardless of commit order; the
 * snapshot encoding sorts both sides (the structure's heap order is
 * an implementation detail, the retained multiset is the guarantee).
 */

#ifndef COMMTM_TESTS_MODELS_TOPK_MODEL_H
#define COMMTM_TESTS_MODELS_TOPK_MODEL_H

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lib/topk.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {

class TopKModel : public StructureModel
{
  public:
    enum Kind : uint32_t { kInsert = 0 };

    explicit TopKModel(const TopK *topk) : topk_(topk) {}

    static ModelOp
    insert(uint32_t sid, int64_t key)
    {
        return ModelOp{sid, kInsert, true, {uint64_t(key)}};
    }

    const char *name() const override { return "topk"; }

    bool
    apply(const ModelOp &op, std::string *diag) override
    {
        if (op.kind != kInsert) {
            *diag = "unknown op kind " + std::to_string(op.kind);
            return false;
        }
        retained_.insert(int64_t(op.args.at(0)));
        if (retained_.size() > topk_->k())
            retained_.erase(retained_.begin()); // drop the smallest
        return true;
    }

    std::vector<uint8_t>
    snapshotMachine(Machine &machine) override
    {
        std::vector<int64_t> got = topk_->peekAll(machine);
        std::sort(got.begin(), got.end());
        return encode(got);
    }

    std::vector<uint8_t>
    snapshotModel() override
    {
        // std::multiset iterates smallest-first: already sorted.
        return encode(std::vector<int64_t>(retained_.begin(),
                                           retained_.end()));
    }

  private:
    static std::vector<uint8_t>
    encode(const std::vector<int64_t> &vals)
    {
        std::vector<uint8_t> out;
        out.reserve(vals.size() * 8);
        for (int64_t v : vals) {
            for (int i = 0; i < 8; i++)
                out.push_back(uint8_t(uint64_t(v) >> (8 * i)));
        }
        return out;
    }

    const TopK *topk_;
    std::multiset<int64_t> retained_;
};

} // namespace commtm

#endif // COMMTM_TESTS_MODELS_TOPK_MODEL_H
