/**
 * @file
 * Software model of GridClaim for the replay oracle: an exact
 * per-cell token ledger. A successful claim needs a token at that
 * commit; a failed claim is only possible when the cell's committed
 * count was zero (claim's fallback path is a full read); a release
 * past capacity means the protocol minted a token (exactly the class
 * of lazy-mode bug PR 5's fuzz wall caught). Serial replay in commit
 * order is exact under both eager and lazy detection, strictly
 * stronger than the old host-order ledger, which had to relax
 * per-op checks under lazy.
 */

#ifndef COMMTM_TESTS_MODELS_GRID_CLAIM_MODEL_H
#define COMMTM_TESTS_MODELS_GRID_CLAIM_MODEL_H

#include <string>
#include <vector>

#include "lib/grid_claim.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {

class GridClaimModel : public StructureModel
{
  public:
    enum Kind : uint32_t { kClaim = 0, kRelease = 1, kClaimPath = 2 };

    explicit GridClaimModel(const GridClaim *grid)
        : grid_(grid), tokens_(grid->numCells(), grid->capacity())
    {
    }

    static ModelOp
    claim(uint32_t sid, uint32_t cell, bool got)
    {
        return ModelOp{sid, kClaim, got, {cell}};
    }

    static ModelOp
    release(uint32_t sid, uint32_t cell)
    {
        return ModelOp{sid, kRelease, true, {cell}};
    }

    static ModelOp
    claimPath(uint32_t sid, const std::vector<uint32_t> &cells,
              bool got)
    {
        ModelOp op{sid, kClaimPath, got, {}};
        op.args.assign(cells.begin(), cells.end());
        return op;
    }

    const char *name() const override { return "grid_claim"; }

    bool
    apply(const ModelOp &op, std::string *diag) override
    {
        switch (op.kind) {
          case kClaim:
            return applyClaim(uint32_t(op.args.at(0)), op.ok, diag);
          case kRelease: {
            const auto cell = uint32_t(op.args.at(0));
            if (!checkCell(cell, diag))
                return false;
            if (tokens_[cell] >= grid_->capacity()) {
                *diag = "release of cell " + std::to_string(cell) +
                        " would mint a token past capacity " +
                        std::to_string(int(grid_->capacity()));
                return false;
            }
            tokens_[cell]++;
            return true;
          }
          case kClaimPath: {
            bool all_free = true;
            for (uint64_t c : op.args) {
                if (!checkCell(uint32_t(c), diag))
                    return false;
                all_free = all_free && tokens_[uint32_t(c)] > 0;
            }
            if (op.ok != all_free) {
                *diag = std::string("claimPath ") +
                        (op.ok ? "succeeded" : "failed") +
                        " but the model " +
                        (all_free ? "has all cells free"
                                  : "has an empty cell");
                return false;
            }
            if (op.ok) {
                for (uint64_t c : op.args)
                    tokens_[uint32_t(c)]--;
            }
            return true;
          }
        }
        *diag = "unknown op kind " + std::to_string(op.kind);
        return false;
    }

    std::vector<uint8_t>
    snapshotMachine(Machine &machine) override
    {
        std::vector<uint8_t> out(grid_->numCells());
        for (uint32_t c = 0; c < grid_->numCells(); c++)
            out[c] = grid_->peekCell(machine, c);
        return out;
    }

    std::vector<uint8_t>
    snapshotModel() override
    {
        return tokens_;
    }

  private:
    bool
    checkCell(uint32_t cell, std::string *diag) const
    {
        if (cell >= tokens_.size()) {
            *diag = "cell " + std::to_string(cell) + " out of range";
            return false;
        }
        return true;
    }

    bool
    applyClaim(uint32_t cell, bool got, std::string *diag)
    {
        if (!checkCell(cell, diag))
            return false;
        if (got != (tokens_[cell] > 0)) {
            *diag = "claim of cell " + std::to_string(cell) +
                    (got ? " succeeded" : " failed") +
                    " but the model holds " +
                    std::to_string(int(tokens_[cell])) + " tokens";
            return false;
        }
        if (got)
            tokens_[cell]--;
        return true;
    }

    const GridClaim *grid_;
    std::vector<uint8_t> tokens_;
};

} // namespace commtm

#endif // COMMTM_TESTS_MODELS_GRID_CLAIM_MODEL_H
