/**
 * @file
 * Software model of an array of commutative ADD counters for the
 * replay oracle (sim/replay_oracle.h). Ops: add a delta, set (a
 * conventional overwrite), and read (whose recorded result must
 * match the model at the reading transaction's commit — a committed
 * transaction's reads are valid as of its commit in both eager and
 * lazy modes).
 */

#ifndef COMMTM_TESTS_MODELS_COUNTER_MODEL_H
#define COMMTM_TESTS_MODELS_COUNTER_MODEL_H

#include <cstring>
#include <string>
#include <vector>

#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {

class CounterModel : public StructureModel
{
  public:
    enum Kind : uint32_t { kAdd = 0, kSet = 1, kRead = 2 };

    explicit CounterModel(std::vector<Addr> counters)
        : counters_(std::move(counters)), values_(counters_.size(), 0)
    {
    }

    static ModelOp
    add(uint32_t sid, uint32_t index, int64_t delta)
    {
        return ModelOp{sid, kAdd, true, {index, uint64_t(delta)}};
    }

    static ModelOp
    set(uint32_t sid, uint32_t index, int64_t value)
    {
        return ModelOp{sid, kSet, true, {index, uint64_t(value)}};
    }

    static ModelOp
    read(uint32_t sid, uint32_t index, int64_t observed)
    {
        return ModelOp{sid, kRead, true, {index, uint64_t(observed)}};
    }

    const char *name() const override { return "counter"; }

    bool
    apply(const ModelOp &op, std::string *diag) override
    {
        const uint64_t index = op.args.at(0);
        if (index >= values_.size()) {
            *diag = "counter index " + std::to_string(index) +
                    " out of range";
            return false;
        }
        const int64_t arg = int64_t(op.args.at(1));
        switch (op.kind) {
          case kAdd:
            values_[index] += arg;
            return true;
          case kSet:
            values_[index] = arg;
            return true;
          case kRead:
            if (values_[index] != arg) {
                *diag = "read of counter " + std::to_string(index) +
                        " returned " + std::to_string(arg) +
                        ", model holds " +
                        std::to_string(values_[index]);
                return false;
            }
            return true;
        }
        *diag = "unknown op kind " + std::to_string(op.kind);
        return false;
    }

    std::vector<uint8_t>
    snapshotMachine(Machine &machine) override
    {
        std::vector<uint8_t> out;
        for (Addr a : counters_) {
            const LineData line =
                machine.memSys().debugReducedValue(lineAddr(a));
            int64_t v;
            std::memcpy(&v, line.data() + lineOffset(a), sizeof(v));
            appendValue(out, v);
        }
        return out;
    }

    std::vector<uint8_t>
    snapshotModel() override
    {
        std::vector<uint8_t> out;
        for (int64_t v : values_)
            appendValue(out, v);
        return out;
    }

  private:
    static void
    appendValue(std::vector<uint8_t> &out, int64_t v)
    {
        for (int i = 0; i < 8; i++)
            out.push_back(uint8_t(uint64_t(v) >> (8 * i)));
    }

    std::vector<Addr> counters_;
    std::vector<int64_t> values_;
};

} // namespace commtm

#endif // COMMTM_TESTS_MODELS_COUNTER_MODEL_H
