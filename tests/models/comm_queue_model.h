/**
 * @file
 * Software model of CommQueue for the replay oracle: an unordered
 * multiset. Enqueues insert; a successful dequeue must return a value
 * the multiset holds at that commit; a failed dequeue is only
 * possible when the committed queue was globally empty (dequeue's
 * full-read fallback reduces every partial list before giving up).
 * The final state check compares the sorted committed contents
 * byte-for-byte (unordered structure: multiset equivalence is the
 * exact guarantee).
 */

#ifndef COMMTM_TESTS_MODELS_COMM_QUEUE_MODEL_H
#define COMMTM_TESTS_MODELS_COMM_QUEUE_MODEL_H

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "lib/comm_queue.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {

class CommQueueModel : public StructureModel
{
  public:
    enum Kind : uint32_t { kEnqueue = 0, kDequeue = 1 };

    explicit CommQueueModel(const CommQueue *queue) : queue_(queue) {}

    static ModelOp
    enqueue(uint32_t sid, uint64_t value)
    {
        return ModelOp{sid, kEnqueue, true, {value}};
    }

    static ModelOp
    dequeue(uint32_t sid, bool got, uint64_t value)
    {
        return ModelOp{sid, kDequeue, got, {got ? value : 0}};
    }

    const char *name() const override { return "comm_queue"; }

    bool
    apply(const ModelOp &op, std::string *diag) override
    {
        switch (op.kind) {
          case kEnqueue:
            elems_[op.args.at(0)]++;
            size_++;
            return true;
          case kDequeue:
            if (!op.ok) {
                if (size_ != 0) {
                    *diag = "dequeue failed but the model holds " +
                            std::to_string(size_) + " elements";
                    return false;
                }
                return true;
            }
            {
                const uint64_t v = op.args.at(0);
                auto it = elems_.find(v);
                if (it == elems_.end()) {
                    *diag = "dequeued " + std::to_string(v) +
                            ", which the model does not hold";
                    return false;
                }
                if (--it->second == 0)
                    elems_.erase(it);
                size_--;
            }
            return true;
        }
        *diag = "unknown op kind " + std::to_string(op.kind);
        return false;
    }

    std::vector<uint8_t>
    snapshotMachine(Machine &machine) override
    {
        std::vector<uint64_t> got = queue_->peekAll(machine);
        std::sort(got.begin(), got.end());
        return encode(got);
    }

    std::vector<uint8_t>
    snapshotModel() override
    {
        std::vector<uint64_t> vals;
        vals.reserve(size_);
        for (const auto &kv : elems_) {
            for (uint64_t i = 0; i < kv.second; i++)
                vals.push_back(kv.first);
        }
        return encode(vals); // std::map iterates in sorted key order
    }

  private:
    static std::vector<uint8_t>
    encode(const std::vector<uint64_t> &vals)
    {
        std::vector<uint8_t> out;
        out.reserve(vals.size() * 8);
        for (uint64_t v : vals) {
            for (int i = 0; i < 8; i++)
                out.push_back(uint8_t(v >> (8 * i)));
        }
        return out;
    }

    const CommQueue *queue_;
    std::map<uint64_t, uint64_t> elems_; //!< value -> multiplicity
    uint64_t size_ = 0;
};

} // namespace commtm

#endif // COMMTM_TESTS_MODELS_COMM_QUEUE_MODEL_H
