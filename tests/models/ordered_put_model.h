/**
 * @file
 * Software model of OrderedPut for the replay oracle: the final pair
 * is the minimum-key pair. The key is exact under any commit order;
 * on key ties the surviving value depends on reduction-tree order
 * (which is not commit order), so the model keeps the set of values
 * put with the minimum key and checkFinal() accepts any of them —
 * the structure's commutative-equivalence guarantee, exactly.
 */

#ifndef COMMTM_TESTS_MODELS_ORDERED_PUT_MODEL_H
#define COMMTM_TESTS_MODELS_ORDERED_PUT_MODEL_H

#include <set>
#include <string>
#include <vector>

#include "lib/ordered_put.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {

class OrderedPutModel : public StructureModel
{
  public:
    enum Kind : uint32_t { kPut = 0 };

    explicit OrderedPutModel(const OrderedPut *cell) : cell_(cell) {}

    static ModelOp
    put(uint32_t sid, int64_t key, uint64_t value)
    {
        return ModelOp{sid, kPut, true, {uint64_t(key), value}};
    }

    const char *name() const override { return "ordered_put"; }

    bool
    apply(const ModelOp &op, std::string *diag) override
    {
        if (op.kind != kPut) {
            *diag = "unknown op kind " + std::to_string(op.kind);
            return false;
        }
        const int64_t key = int64_t(op.args.at(0));
        const uint64_t value = op.args.at(1);
        if (key < minKey_) {
            minKey_ = key;
            candidates_ = {value};
        } else if (key == minKey_) {
            candidates_.insert(value);
        }
        return true;
    }

    bool
    checkFinal(Machine &machine, std::string *diag) override
    {
        const OrderedPut::Pair got = cell_->peek(machine);
        if (got.key != minKey_) {
            if (diag) {
                *diag = "model 'ordered_put': final key " +
                        std::to_string(got.key) +
                        ", model minimum is " +
                        std::to_string(minKey_);
            }
            return false;
        }
        if (minKey_ != OrderedPut::kEmptyKey &&
            candidates_.count(got.value) == 0) {
            if (diag) {
                *diag = "model 'ordered_put': final value " +
                        std::to_string(got.value) +
                        " was never put with the minimum key " +
                        std::to_string(minKey_);
            }
            return false;
        }
        return true;
    }

    std::vector<uint8_t>
    snapshotMachine(Machine &machine) override
    {
        const OrderedPut::Pair got = cell_->peek(machine);
        return encode(got.key, got.value);
    }

    std::vector<uint8_t>
    snapshotModel() override
    {
        // Only well-defined when no key tie occurred; checkFinal()
        // (which the oracle uses) handles ties.
        const uint64_t value =
            candidates_.empty() ? 0 : *candidates_.begin();
        return encode(minKey_, value);
    }

  private:
    static std::vector<uint8_t>
    encode(int64_t key, uint64_t value)
    {
        std::vector<uint8_t> out;
        for (int i = 0; i < 8; i++)
            out.push_back(uint8_t(uint64_t(key) >> (8 * i)));
        for (int i = 0; i < 8; i++)
            out.push_back(uint8_t(value >> (8 * i)));
        return out;
    }

    const OrderedPut *cell_;
    int64_t minKey_ = OrderedPut::kEmptyKey;
    std::set<uint64_t> candidates_;
};

} // namespace commtm

#endif // COMMTM_TESTS_MODELS_ORDERED_PUT_MODEL_H
