/**
 * @file
 * HTM-layer tests through the full runtime: lazy versioning (write
 * buffer semantics), conflict detection and abort causes, timestamp
 * retention, capacity aborts, the labeled set, and self-demotion.
 */

#include <gtest/gtest.h>

#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

MachineConfig
cfg(SystemMode mode = SystemMode::CommTm, uint32_t cores = 4)
{
    MachineConfig c;
    c.numCores = cores;
    c.mode = mode;
    return c;
}

TEST(Htm, ReadYourOwnWrites)
{
    Machine m(cfg());
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 5);
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            EXPECT_EQ(ctx.read<int64_t>(a), 5);
            ctx.write<int64_t>(a, 9);
            EXPECT_EQ(ctx.read<int64_t>(a), 9); // own buffered write
        });
        EXPECT_EQ(ctx.read<int64_t>(a), 9); // committed
    });
    m.run();
    EXPECT_EQ(m.memory().read<int64_t>(a), 9);
}

TEST(Htm, AbortedWritesAreInvisible)
{
    Machine m(cfg());
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 1);
    m.addThread([&](ThreadContext &ctx) {
        bool first = true;
        ctx.txRun([&] {
            ctx.write<int64_t>(a, 99);
            if (first) {
                first = false;
                // Force one abort: the buffered 99 must be discarded.
                throw AbortException{AbortCause::Explicit, false};
            }
            ctx.write<int64_t>(a, 2);
        });
    });
    m.run();
    EXPECT_EQ(m.memory().read<int64_t>(a), 2);
    EXPECT_EQ(m.stats().aggregateThreads().txAborted, 1u);
}

TEST(Htm, ConflictingWritersSerializeCorrectly)
{
    Machine m(cfg(SystemMode::BaselineHtm, 4));
    const Addr a = m.allocator().allocLines(1);
    for (int t = 0; t < 4; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 64; i++) {
                ctx.txRun([&] {
                    const int64_t v = ctx.read<int64_t>(a);
                    ctx.compute(4);
                    ctx.write<int64_t>(a, v + 1);
                });
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read<int64_t>(a), 256);
    // Contention must have caused aborts, classified as RaW/WaR/WaW.
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_GT(agg.txAborted, 0u);
}

TEST(Htm, WastedCyclesTrackAbortedAttempts)
{
    Machine m(cfg(SystemMode::BaselineHtm, 2));
    const Addr a = m.allocator().allocLines(1);
    for (int t = 0; t < 2; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 128; i++) {
                ctx.txRun([&] {
                    const int64_t v = ctx.read<int64_t>(a);
                    ctx.compute(16);
                    ctx.write<int64_t>(a, v + 1);
                });
            }
        });
    }
    m.run();
    const ThreadStats agg = m.stats().aggregateThreads();
    if (agg.txAborted > 0) {
        EXPECT_GT(agg.txAbortedCycles, 0u);
        Cycle bucketed = 0;
        for (auto w : agg.wastedByCause)
            bucketed += w;
        EXPECT_EQ(bucketed, agg.txAbortedCycles);
    }
}

TEST(Htm, CapacityAbortOnSpeculativeEviction)
{
    MachineConfig c = cfg(SystemMode::CommTm, 1);
    c.l1SizeKB = 1; // 16 lines, 8 ways -> 2 sets
    c.l2SizeKB = 2;
    Machine m(c);
    const uint32_t l1_sets = c.l1Lines() / c.l1Ways;
    const Addr base = m.allocator().alloc(64 * kLineSize * 64, kLineSize);
    bool completed = false;
    uint32_t attempts = 0;
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            attempts++;
            if (attempts > 1)
                return; // satisfied after observing the capacity abort
            // Touch more same-set lines than the L1 can hold
            // speculatively.
            for (uint32_t i = 0; i <= c.l1Ways + 1; i++) {
                ctx.read<int64_t>(base +
                                  Addr(i) * l1_sets * kLineSize);
            }
        });
        completed = true;
    });
    m.run();
    EXPECT_TRUE(completed);
    EXPECT_GE(attempts, 2u);
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_GE(agg.abortsByCause[size_t(AbortCause::Capacity)], 1u);
}

TEST(Htm, SelfDemotionRetriesWithConventionalOps)
{
    Machine m(cfg(SystemMode::CommTm, 2));
    const Label add = CommCounter::defineLabel(m);
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 0);
    // Thread 1 holds the line in U so thread 0 is not the sole sharer.
    m.addThread([&](ThreadContext &ctx) {
        int64_t observed = -1;
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(a, add);
            ctx.writeLabeled<int64_t>(a, add, v + 7);
            // Unlabeled read of our own speculatively-modified labeled
            // data: Sec. III-B4 aborts and retries demoted; on the
            // demoted attempt everything is conventional and the read
            // sees the buffered 7.
            observed = ctx.read<int64_t>(a);
        });
        EXPECT_EQ(observed, 7);
        ctx.barrier();
    });
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(a, add);
            ctx.writeLabeled<int64_t>(a, add, v);
        });
        ctx.barrier();
    });
    m.run();
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_GE(agg.abortsByCause[size_t(AbortCause::SelfDemotion)] +
                  agg.abortsByCause[size_t(AbortCause::LabeledConflict)],
              0u);
    EXPECT_EQ(m.memory().read<int64_t>(a), 7);
}

TEST(Htm, NestedTransactionsExecuteFlat)
{
    Machine m(cfg());
    const Addr a = m.allocator().allocLines(1);
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            ctx.write<int64_t>(a, 1);
            ctx.txRun([&] { // closed flat nesting
                ctx.write<int64_t>(a + 8, 2);
            });
            ctx.write<int64_t>(a + 16, 3);
        });
    });
    m.run();
    EXPECT_EQ(m.memory().read<int64_t>(a), 1);
    EXPECT_EQ(m.memory().read<int64_t>(a + 8), 2);
    EXPECT_EQ(m.memory().read<int64_t>(a + 16), 3);
    // Only one (outer) transaction committed.
    EXPECT_EQ(m.stats().aggregateThreads().txCommitted, 1u);
}

TEST(Htm, LabeledCommitsGoToUCopy)
{
    Machine m(cfg(SystemMode::CommTm, 1));
    const Label add = CommCounter::defineLabel(m);
    const Addr a = m.allocator().allocLines(1);
    m.memory().write<int64_t>(a, 100);
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(a, add);
            ctx.writeLabeled<int64_t>(a, add, v + 1);
        });
    });
    m.run();
    // The line is still in U: simulated memory is stale, the U copy
    // holds the committed value.
    EXPECT_EQ(m.memSys().dirState(lineAddr(a)), DirState::U);
    int64_t v;
    std::memcpy(&v, m.memSys().uCopy(0, lineAddr(a)).data(), sizeof(v));
    EXPECT_EQ(v, 101);
}

TEST(Htm, WriteBufferOverlayIsByteGranular)
{
    WriteBuffer wb;
    uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    wb.write(0x100, bytes, 4); // first four bytes only
    uint8_t out[8] = {9, 9, 9, 9, 9, 9, 9, 9};
    wb.overlay(0x100, out, 8);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[3], 4);
    EXPECT_EQ(out[4], 9); // untouched
    EXPECT_TRUE(wb.touches(lineAddr(0x100)));
    EXPECT_FALSE(wb.touches(lineAddr(0x100) + 1));
    wb.clear();
    EXPECT_TRUE(wb.empty());
}

} // namespace
} // namespace commtm
