/**
 * @file
 * Determinism tests: every simulation is a pure function of the seed.
 * Two runs with identical configuration must produce bit-identical
 * statistics — including abort counts and cause breakdowns, which
 * depend on the order speculative-state containers are walked
 * (write-buffer commit application, lazy commit-time arbitration,
 * U-eviction forwarding). The flat containers (sim/flat_map.h) iterate
 * in address order precisely so this holds on every platform and
 * standard library; these tests pin the property within one platform,
 * and the checked-in bench/baselines.json pins it across platforms.
 */

#include <gtest/gtest.h>

#include <utility>

#include "apps/intruder.h"
#include "apps/labyrinth.h"
#include "apps/micro.h"
#include "apps/yada.h"
#include "sim/stats.h"

namespace commtm {
namespace {

void
expectEqualThreadStats(const ThreadStats &a, const ThreadStats &b,
                       size_t thread)
{
    EXPECT_EQ(a.nonTxCycles, b.nonTxCycles) << "thread " << thread;
    EXPECT_EQ(a.txCommittedCycles, b.txCommittedCycles)
        << "thread " << thread;
    EXPECT_EQ(a.txAbortedCycles, b.txAbortedCycles) << "thread " << thread;
    EXPECT_EQ(a.wastedByCause, b.wastedByCause) << "thread " << thread;
    EXPECT_EQ(a.txStarted, b.txStarted) << "thread " << thread;
    EXPECT_EQ(a.txCommitted, b.txCommitted) << "thread " << thread;
    EXPECT_EQ(a.txAborted, b.txAborted) << "thread " << thread;
    EXPECT_EQ(a.abortsByCause, b.abortsByCause) << "thread " << thread;
    EXPECT_EQ(a.instrs, b.instrs) << "thread " << thread;
    EXPECT_EQ(a.labeledInstrs, b.labeledInstrs) << "thread " << thread;
}

void
expectEqualMachineStats(const MachineStats &a, const MachineStats &b)
{
    EXPECT_EQ(a.l3Gets, b.l3Gets);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l3Hits, b.l3Hits);
    EXPECT_EQ(a.l3Misses, b.l3Misses);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.downgrades, b.downgrades);
    EXPECT_EQ(a.nacks, b.nacks);
    EXPECT_EQ(a.reductions, b.reductions);
    EXPECT_EQ(a.reductionLinesMerged, b.reductionLinesMerged);
    EXPECT_EQ(a.gathers, b.gathers);
    EXPECT_EQ(a.splits, b.splits);
    EXPECT_EQ(a.uWritebacks, b.uWritebacks);
    EXPECT_EQ(a.uForwards, b.uForwards);
    EXPECT_EQ(a.writebacks, b.writebacks);
}

void
expectEqualSnapshots(const StatsSnapshot &a, const StatsSnapshot &b)
{
    EXPECT_EQ(a.runtimeCycles(), b.runtimeCycles());
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t t = 0; t < a.threads.size(); t++)
        expectEqualThreadStats(a.threads[t], b.threads[t], t);
    expectEqualMachineStats(a.machine, b.machine);
}

TEST(Determinism, EagerCounterMicroIsSeedDeterministic)
{
    MachineConfig cfg;
    cfg.mode = SystemMode::BaselineHtm; // heavy conflicts and backoff
    const MicroResult a = runCounterMicro(cfg, 16, 4000);
    const MicroResult b = runCounterMicro(cfg, 16, 4000);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    expectEqualSnapshots(a.stats, b.stats);
}

TEST(Determinism, LazyArbitrationIsSeedDeterministic)
{
    // Lazy mode walks write sets at commit to pick abort victims; the
    // walk is over FlatLineSet in address order, so two runs agree on
    // every victim and cause.
    MachineConfig cfg;
    cfg.mode = SystemMode::BaselineHtm;
    cfg.conflictDetection = ConflictDetection::Lazy;
    const MicroResult a = runCounterMicro(cfg, 16, 4000);
    const MicroResult b = runCounterMicro(cfg, 16, 4000);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    expectEqualSnapshots(a.stats, b.stats);
}

TEST(Determinism, GatherHeavyListMicroIsSeedDeterministic)
{
    // Mixed enqueue/dequeue exercises gathers, splits, reductions, and
    // U evictions (random forward target drawn from the machine Rng).
    MachineConfig cfg;
    cfg.mode = SystemMode::CommTm;
    const MicroResult a = runListMicro(cfg, 8, 4000, 50, 16);
    const MicroResult b = runListMicro(cfg, 8, 4000, 50, 16);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    expectEqualSnapshots(a.stats, b.stats);
}

// ---------------------------------------------------------------------
// Beyond the inline sharer boundary: 256-thread machines exercise the
// spilled sharer representation (mem/line.h) and the scaled mesh
// geometry (MachineConfig::forCores). Same property: two same-seed runs
// must be bit-identical, in eager, lazy, and gather-heavy flavors.
// ---------------------------------------------------------------------

TEST(Determinism, Eager256ThreadCounterIsSeedDeterministic)
{
    MachineConfig cfg = MachineConfig::forCores(256);
    cfg.mode = SystemMode::BaselineHtm;
    // Periodic invariant sweeps over the spilled-sharer geometry;
    // observation-only, so both runs must still match bit-for-bit.
    cfg.checkInvariants = true;
    const MicroResult a = runCounterMicro(cfg, 256, 4096);
    const MicroResult b = runCounterMicro(cfg, 256, 4096);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    expectEqualSnapshots(a.stats, b.stats);
}

TEST(Determinism, Lazy256ThreadCounterIsSeedDeterministic)
{
    MachineConfig cfg = MachineConfig::forCores(256);
    cfg.mode = SystemMode::BaselineHtm;
    cfg.conflictDetection = ConflictDetection::Lazy;
    cfg.checkInvariants = true;
    const MicroResult a = runCounterMicro(cfg, 256, 4096);
    const MicroResult b = runCounterMicro(cfg, 256, 4096);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    expectEqualSnapshots(a.stats, b.stats);
}

TEST(Determinism, GatherHeavy256ThreadListIsSeedDeterministic)
{
    // 256 CommTM threads on one list descriptor: the sharer set spills,
    // and gathers/reductions fan out over >128 sharers.
    MachineConfig cfg = MachineConfig::forCores(256);
    cfg.mode = SystemMode::CommTm;
    cfg.checkInvariants = true;
    const MicroResult a = runListMicro(cfg, 256, 8192, 50, 4);
    const MicroResult b = runListMicro(cfg, 256, 8192, 50, 4);
    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    expectEqualSnapshots(a.stats, b.stats);
}

// ---------------------------------------------------------------------
// The CommQueue/GridClaim workloads (intruder, labyrinth, yada) add
// whole-chunk splitters, per-byte grid reductions, and worklist-driven
// control flow whose termination depends on simulated timing. Same
// property as above, at 128 threads (Table I machine) and at 256
// threads (scaled geometry + spilled sharer set).
// ---------------------------------------------------------------------

template <typename Run>
void
expectSameSeedBitIdentical(const Run &run)
{
    const StatsSnapshot a = run();
    const StatsSnapshot b = run();
    expectEqualSnapshots(a, b);
}

TEST(Determinism, Intruder128ThreadIsSeedDeterministic)
{
    expectSameSeedBitIdentical([] {
        MachineConfig cfg;
        cfg.mode = SystemMode::CommTm;
        IntruderConfig app;
        app.numFlows = 128;
        const IntruderResult r = runIntruder(cfg, 128, app);
        EXPECT_TRUE(r.valid());
        return r.stats;
    });
}

TEST(Determinism, Intruder256ThreadIsSeedDeterministic)
{
    expectSameSeedBitIdentical([] {
        MachineConfig cfg = MachineConfig::forCores(256);
        cfg.mode = SystemMode::CommTm;
        IntruderConfig app;
        app.numFlows = 192;
        const IntruderResult r = runIntruder(cfg, 256, app);
        EXPECT_TRUE(r.valid());
        return r.stats;
    });
}

TEST(Determinism, Labyrinth128ThreadIsSeedDeterministic)
{
    expectSameSeedBitIdentical([] {
        MachineConfig cfg;
        cfg.mode = SystemMode::CommTm;
        LabyrinthConfig app;
        app.numPaths = 160;
        const LabyrinthResult r = runLabyrinth(cfg, 128, app);
        EXPECT_TRUE(r.valid());
        return r.stats;
    });
}

TEST(Determinism, Labyrinth256ThreadIsSeedDeterministic)
{
    expectSameSeedBitIdentical([] {
        MachineConfig cfg = MachineConfig::forCores(256);
        cfg.mode = SystemMode::CommTm;
        LabyrinthConfig app;
        app.numPaths = 256;
        const LabyrinthResult r = runLabyrinth(cfg, 256, app);
        EXPECT_TRUE(r.valid());
        return r.stats;
    });
}

TEST(Determinism, Yada128ThreadIsSeedDeterministic)
{
    expectSameSeedBitIdentical([] {
        MachineConfig cfg;
        cfg.mode = SystemMode::CommTm;
        YadaConfig app;
        app.initialBad = 48;
        const YadaResult r = runYada(cfg, 128, app);
        EXPECT_TRUE(r.valid());
        return r.stats;
    });
}

TEST(Determinism, Yada256ThreadIsSeedDeterministic)
{
    expectSameSeedBitIdentical([] {
        MachineConfig cfg = MachineConfig::forCores(256);
        cfg.mode = SystemMode::CommTm;
        YadaConfig app;
        app.initialBad = 64;
        const YadaResult r = runYada(cfg, 256, app);
        EXPECT_TRUE(r.valid());
        return r.stats;
    });
}

// ---------------------------------------------------------------------
// Oracle-enabled determinism: the same 256-thread apps with commit
// recording on (MachineConfig::recordCommits), under eager AND lazy
// detection. Two same-seed runs must agree bit-for-bit in every
// counter (recording is observation-only, so these equal the
// unrecorded runs' stats too) and in the serialized commit log — the
// log itself is part of the machine's deterministic output, which is
// what lets the replay oracle diff logs across runs at all.
// ---------------------------------------------------------------------

template <typename Run>
void
expectOracleRunBitIdentical(const Run &run)
{
    const auto a = run(); // pair<StatsSnapshot, serialized log>
    const auto b = run();
    expectEqualSnapshots(a.first, b.first);
    EXPECT_FALSE(a.second.empty());
    EXPECT_EQ(a.second, b.second) << "serialized commit logs differ";
}

MachineConfig
oracleConfig256(ConflictDetection detection)
{
    MachineConfig cfg = MachineConfig::forCores(256);
    cfg.mode = SystemMode::CommTm;
    cfg.conflictDetection = detection;
    cfg.recordCommits = true;
    return cfg;
}

class OracleDeterminism : public ::testing::TestWithParam<int>
{
  protected:
    ConflictDetection
    detection() const
    {
        return ConflictDetection(GetParam());
    }
};

TEST_P(OracleDeterminism, Intruder256ThreadWithRecordingOn)
{
    expectOracleRunBitIdentical([&] {
        IntruderConfig app;
        app.numFlows = 160;
        const IntruderResult r =
            runIntruder(oracleConfig256(detection()), 256, app);
        EXPECT_TRUE(r.valid());
        return std::make_pair(r.stats, r.commitLog);
    });
}

TEST_P(OracleDeterminism, Labyrinth256ThreadWithRecordingOn)
{
    expectOracleRunBitIdentical([&] {
        LabyrinthConfig app;
        app.numPaths = 192;
        const LabyrinthResult r =
            runLabyrinth(oracleConfig256(detection()), 256, app);
        EXPECT_TRUE(r.valid());
        return std::make_pair(r.stats, r.commitLog);
    });
}

TEST_P(OracleDeterminism, Yada256ThreadWithRecordingOn)
{
    expectOracleRunBitIdentical([&] {
        YadaConfig app;
        app.initialBad = 48;
        const YadaResult r =
            runYada(oracleConfig256(detection()), 256, app);
        EXPECT_TRUE(r.valid());
        return std::make_pair(r.stats, r.commitLog);
    });
}

INSTANTIATE_TEST_SUITE_P(
    EagerAndLazy, OracleDeterminism,
    ::testing::Values(int(ConflictDetection::Eager),
                      int(ConflictDetection::Lazy)),
    [](const auto &params) {
        return params.param == int(ConflictDetection::Eager)
                   ? "eager"
                   : "lazy";
    });

} // namespace
} // namespace commtm
