/**
 * @file
 * Tests for the seeded arrival streams and the Zipfian sampler
 * (rt/arrival.h), and for the open-loop frontend built on them
 * (docs/ARCHITECTURE.md Sec. 12). The pinned sequences are a
 * contract: they are what makes the svc_* baseline rows in
 * bench/baselines.json portable, so a change that shifts any of them
 * must show up here first. Moment checks tie the generators to their
 * closed forms, and the 256-thread double-run check proves a full
 * open-loop service run is a bit-identical function of its config.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "lib/counter.h"
#include "rt/machine.h"
#include "rt/open_loop.h"

namespace commtm {
namespace {

TEST(Arrival, PinnedPoissonSequences)
{
    ArrivalPattern p;
    p.meanGap = 1000.0;

    ArrivalStream s1(p, 1);
    const Cycle want1[] = {1214, 1949, 2803, 3299,
                           4494, 4649, 4723, 5203};
    for (Cycle want : want1)
        EXPECT_EQ(s1.next(), want);

    ArrivalStream s42(p, 42);
    const Cycle want42[] = {88, 564, 1704, 4290,
                            9094, 10563, 11833, 13730};
    for (Cycle want : want42)
        EXPECT_EQ(s42.next(), want);
}

TEST(Arrival, PinnedBurstySequence)
{
    ArrivalPattern p;
    p.kind = ArrivalPattern::Kind::Bursty;
    p.meanGap = 1000.0;
    p.burstFactor = 8.0;
    p.onMean = 2000.0;
    p.offMean = 6000.0;

    ArrivalStream s(p, 7);
    // The tight clusters (1611, 1619, 1633, ...) are an ON phase at
    // 8x the base rate; the jumps are OFF silences.
    const Cycle want[] = {41, 270, 766, 1353, 1611, 1619, 1633, 1698};
    for (Cycle w : want)
        EXPECT_EQ(s.next(), w);
}

TEST(Arrival, PinnedZipfSequences)
{
    ZipfSampler zipf(16, 0.99);

    Rng rng3(3);
    const uint64_t want3[] = {5, 4, 0, 2, 1, 1, 0, 5, 13, 0, 12, 5};
    for (uint64_t want : want3)
        EXPECT_EQ(zipf.sample(rng3), want);

    Rng rng9(9);
    const uint64_t want9[] = {0, 0, 0, 6, 12, 6, 5, 2, 0, 2, 6, 15};
    for (uint64_t want : want9)
        EXPECT_EQ(zipf.sample(rng9), want);
}

TEST(Arrival, ArrivalsStrictlyIncrease)
{
    for (auto kind : {ArrivalPattern::Kind::Poisson,
                      ArrivalPattern::Kind::Bursty}) {
        ArrivalPattern p;
        p.kind = kind;
        p.meanGap = 3.0; // tiny gaps: the floor-at-1 path is hot
        ArrivalStream s(p, 123);
        Cycle prev = 0;
        for (int i = 0; i < 4096; i++) {
            const Cycle c = s.next();
            EXPECT_GT(c, prev);
            prev = c;
        }
    }
}

TEST(Arrival, PoissonMeanMatchesClosedForm)
{
    ArrivalPattern p;
    p.meanGap = 1000.0;
    ArrivalStream s(p, 5);
    Cycle prev = 0;
    double sum = 0.0;
    constexpr int kN = 8192;
    for (int i = 0; i < kN; i++) {
        const Cycle c = s.next();
        sum += double(c - prev);
        prev = c;
    }
    // Sample mean of kN exponential gaps: stddev is mean/sqrt(kN),
    // about 11 cycles here; 2.5% is a > 2-sigma band.
    EXPECT_NEAR(sum / kN, 1000.0, 25.0);
}

TEST(Arrival, ZipfFrequenciesMatchClosedForm)
{
    constexpr uint64_t kItems = 16;
    constexpr double kS = 0.99;
    constexpr int kDraws = 8192;
    ZipfSampler zipf(kItems, kS);
    Rng rng(11);
    uint64_t freq[kItems] = {0};
    for (int i = 0; i < kDraws; i++)
        freq[zipf.sample(rng)]++;

    double norm = 0.0;
    for (uint64_t k = 1; k <= kItems; k++)
        norm += std::pow(double(k), -kS);
    for (uint64_t k = 0; k < 4; k++) {
        const double expect = std::pow(double(k + 1), -kS) / norm;
        EXPECT_NEAR(double(freq[k]) / kDraws, expect, 0.02)
            << "rank " << k;
    }
    // Heavy head: the hottest key dominates the coldest by far.
    EXPECT_GT(freq[0], 8 * freq[kItems - 1]);
}

/** Shared run shape for the determinism checks below. */
struct OpenLoopRun {
    StatsSnapshot stats;
    LatencyHistogram measure;
    LatencyHistogram warmup;
    ServiceStats service;
    int64_t total = 0;
};

OpenLoopRun
runOpenLoopCounter(uint32_t threads)
{
    MachineConfig mc = MachineConfig::forCores(threads);
    mc.mode = SystemMode::CommTm;
    Machine m(mc);
    const Label add = CommCounter::defineLabel(m);
    std::vector<std::unique_ptr<CommCounter>> counters;
    for (int c = 0; c < 8; c++)
        counters.push_back(std::make_unique<CommCounter>(m, add));

    OpenLoopConfig cfg;
    cfg.pattern.kind = ArrivalPattern::Kind::Bursty;
    cfg.pattern.meanGap = 200.0;
    cfg.arrivalsPerThread = 24;
    cfg.warmupPerThread = 4;
    cfg.queueDepth = 4;
    cfg.zipfItems = 8;
    OpenLoopFrontend fe(cfg, threads,
                        [&](ThreadContext &ctx, uint64_t key) {
                            counters[key]->add(ctx, 1);
                        });
    fe.attach(m);
    m.run();

    OpenLoopRun r;
    r.stats = m.stats();
    r.measure = fe.mergedMeasure();
    r.warmup = fe.mergedWarmup();
    r.service = fe.totalService();
    for (const auto &counter : counters)
        r.total += counter->peek(m);
    return r;
}

TEST(OpenLoop, SameSeed256ThreadRunIsBitIdentical)
{
    const OpenLoopRun a = runOpenLoopCounter(256);
    const OpenLoopRun b = runOpenLoopCounter(256);

    EXPECT_EQ(a.stats.runtimeCycles(), b.stats.runtimeCycles());
    ASSERT_EQ(a.stats.threads.size(), b.stats.threads.size());
    for (size_t t = 0; t < a.stats.threads.size(); t++) {
        EXPECT_EQ(a.stats.threads[t].txCommitted,
                  b.stats.threads[t].txCommitted)
            << "thread " << t;
        EXPECT_EQ(a.stats.threads[t].instrs, b.stats.threads[t].instrs)
            << "thread " << t;
    }
    EXPECT_TRUE(a.measure == b.measure);
    EXPECT_TRUE(a.warmup == b.warmup);
    EXPECT_EQ(a.service.admitted, b.service.admitted);
    EXPECT_EQ(a.service.dropped, b.service.dropped);
    EXPECT_EQ(a.service.completed, b.service.completed);
    EXPECT_EQ(a.service.maxDepth, b.service.maxDepth);
    EXPECT_EQ(a.total, b.total);
}

TEST(OpenLoop, AccountingIsConsistent)
{
    const OpenLoopRun r = runOpenLoopCounter(64);
    // Every arrival was either admitted or dropped; every admitted
    // request was serviced exactly once; every serviced request
    // committed exactly one counter increment.
    EXPECT_EQ(r.service.admitted + r.service.dropped, 64u * 24u);
    EXPECT_EQ(r.service.completed, r.service.admitted);
    EXPECT_EQ(r.total, int64_t(r.service.completed));
    // The tight burst config must actually exercise the bounded
    // queue, and warmup/measure must split where configured.
    EXPECT_GT(r.service.dropped, 0u);
    EXPECT_EQ(r.warmup.totalCount(), 64u * 4u);
    EXPECT_EQ(r.measure.totalCount(),
              r.service.completed - 64u * 4u);
}

} // namespace
} // namespace commtm
