/**
 * @file
 * Composition tests for the open-loop service frontend
 * (docs/ARCHITECTURE.md Sec. 12) against the rest of the checking
 * stack: an open-loop fuzz case runs with commit recording and the
 * full-density invariant sweeps on and re-executes the recorded
 * commit order through the software counter model (Sec. 9, Sec. 10),
 * and a
 * captured open-loop run replays bit-identically through the trace
 * machinery (Sec. 11) — possible because the frontend expresses all
 * idle waiting as ordinary compute ops.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "lib/counter.h"
#include "models/counter_model.h"
#include "rt/machine.h"
#include "rt/open_loop.h"
#include "sim/replay_oracle.h"
#include "trace/replay.h"
#include "trace/trace_reader.h"

namespace commtm {
namespace {

/** Tiny-cache CommTM machine with every observation layer on:
 *  commit recording, invariant sweeps at full density. */
MachineConfig
checkedConfig(uint32_t cores, uint64_t seed)
{
    MachineConfig c = MachineConfig::forCores(cores);
    c.numCores = cores;
    c.mode = SystemMode::CommTm;
    c.l1SizeKB = 1;
    c.l2SizeKB = 2;
    c.l3SizeKB = 32;
    c.seed = seed;
    c.recordCommits = true;
    c.checkInvariants = true;
    c.invariantOnTxEnd = true;
    c.invariantOnDrain = true;
    return c;
}

/** Bursty open-loop shape tight enough to overflow the queue. */
OpenLoopConfig
burstyConfig(uint64_t seed)
{
    OpenLoopConfig cfg;
    cfg.pattern.kind = ArrivalPattern::Kind::Bursty;
    cfg.pattern.meanGap = 300.0;
    cfg.pattern.burstFactor = 8.0;
    cfg.pattern.onMean = 600.0;
    cfg.pattern.offMean = 1800.0;
    cfg.arrivalsPerThread = 32;
    cfg.warmupPerThread = 4;
    cfg.queueDepth = 6;
    cfg.zipfItems = 12;
    cfg.seed = seed;
    return cfg;
}

class OpenLoopFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(OpenLoopFuzz, OracleAndInvariantsComposeWithOpenLoop)
{
    const uint64_t seed = GetParam();
    const uint32_t kCores = 48;
    constexpr uint32_t kCounters = 12;

    Machine m(checkedConfig(kCores, seed));
    const Label add = CommCounter::defineLabel(m);
    std::vector<Addr> counters;
    for (uint32_t i = 0; i < kCounters; i++)
        counters.push_back(m.allocator().allocLines(1));

    std::vector<int64_t> model(kCounters, 0);
    ReplayOracle oracle(m);
    const uint32_t cm =
        oracle.addModel(std::make_unique<CounterModel>(counters));

    OpenLoopConfig cfg = burstyConfig(seed);
    cfg.zipfItems = kCounters;
    OpenLoopFrontend fe(
        cfg, kCores, [&](ThreadContext &ctx, uint64_t key) {
            const Addr a = counters[key];
            const uint32_t action = uint32_t(ctx.rng().below(100));
            if (action < 70) {
                ctx.txRun([&] {
                    const int64_t v = ctx.readLabeled<int64_t>(a, add);
                    ctx.writeLabeled<int64_t>(a, add, v + 1);
                });
                model[key]++;
                oracle.recordOp(ctx, CounterModel::add(cm, key, 1));
            } else if (action < 90) {
                int64_t v = 0;
                ctx.txRun([&] { v = ctx.read<int64_t>(a); });
                oracle.recordOp(ctx, CounterModel::read(cm, key, v));
            } else {
                ctx.txRun([&] { ctx.write<int64_t>(a, 0); });
                model[key] = 0;
                oracle.recordOp(ctx, CounterModel::set(cm, key, 0));
            }
        });
    fe.attach(m);
    m.run();

    // The machine state, the host model, and the serially re-executed
    // commit order must all agree — with the invariant sweeps having
    // run at every tx end and drain along the way.
    for (uint32_t c = 0; c < kCounters; c++) {
        const LineData line =
            m.memSys().debugReducedValue(lineAddr(counters[c]));
        int64_t v;
        std::memcpy(&v, line.data(), sizeof(v));
        EXPECT_EQ(v, model[c]) << "counter " << c;
    }
    std::string diag;
    EXPECT_TRUE(oracle.replaySerial(&diag)) << diag;

    // The shape must have exercised open-loop queueing for real.
    const ServiceStats svc = fe.totalService();
    EXPECT_EQ(svc.completed, svc.admitted);
    EXPECT_GT(svc.dropped, 0u);
    EXPECT_GT(svc.maxDepth, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpenLoopFuzz,
                         ::testing::Values(0x51ull, 0x52ull, 0x53ull));

/** Full-stats equality, as in trace_test.cc: replay must reproduce
 *  every counter, not just the headline cycles. */
void
expectStatsEqual(const StatsSnapshot &a, const StatsSnapshot &b)
{
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t t = 0; t < a.threads.size(); t++) {
        const ThreadStats &x = a.threads[t];
        const ThreadStats &y = b.threads[t];
        EXPECT_EQ(x.nonTxCycles, y.nonTxCycles) << "thread " << t;
        EXPECT_EQ(x.txCommittedCycles, y.txCommittedCycles)
            << "thread " << t;
        EXPECT_EQ(x.txAbortedCycles, y.txAbortedCycles)
            << "thread " << t;
        EXPECT_EQ(x.wastedByCause, y.wastedByCause) << "thread " << t;
        EXPECT_EQ(x.txStarted, y.txStarted) << "thread " << t;
        EXPECT_EQ(x.txCommitted, y.txCommitted) << "thread " << t;
        EXPECT_EQ(x.txAborted, y.txAborted) << "thread " << t;
        EXPECT_EQ(x.abortsByCause, y.abortsByCause) << "thread " << t;
        EXPECT_EQ(x.instrs, y.instrs) << "thread " << t;
        EXPECT_EQ(x.labeledInstrs, y.labeledInstrs) << "thread " << t;
    }
    const MachineStats &m = a.machine;
    const MachineStats &n = b.machine;
    EXPECT_EQ(m.l3Gets, n.l3Gets);
    EXPECT_EQ(m.l1Hits, n.l1Hits);
    EXPECT_EQ(m.l1Misses, n.l1Misses);
    EXPECT_EQ(m.l2Hits, n.l2Hits);
    EXPECT_EQ(m.l2Misses, n.l2Misses);
    EXPECT_EQ(m.l3Hits, n.l3Hits);
    EXPECT_EQ(m.l3Misses, n.l3Misses);
    EXPECT_EQ(m.invalidations, n.invalidations);
    EXPECT_EQ(m.downgrades, n.downgrades);
    EXPECT_EQ(m.nacks, n.nacks);
    EXPECT_EQ(m.reductions, n.reductions);
    EXPECT_EQ(m.reductionLinesMerged, n.reductionLinesMerged);
    EXPECT_EQ(m.gathers, n.gathers);
    EXPECT_EQ(m.splits, n.splits);
    EXPECT_EQ(m.uWritebacks, n.uWritebacks);
    EXPECT_EQ(m.uForwards, n.uForwards);
    EXPECT_EQ(m.writebacks, n.writebacks);
}

TEST(OpenLoopTrace, CapturedOpenLoopRunReplaysBitIdentically)
{
    MachineConfig cfg = MachineConfig::forCores(32);
    cfg.numCores = 32;
    cfg.mode = SystemMode::CommTm;
    cfg.captureTrace = true;

    StatsSnapshot captured;
    int64_t captured_total = 0;
    std::vector<uint8_t> bytes;
    {
        Machine m(cfg);
        const Label add = CommCounter::defineLabel(m);
        std::vector<std::unique_ptr<CommCounter>> counters;
        for (int c = 0; c < 8; c++)
            counters.push_back(std::make_unique<CommCounter>(m, add));
        OpenLoopConfig ol = burstyConfig(0x77);
        ol.zipfItems = 8;
        OpenLoopFrontend fe(ol, 32,
                            [&](ThreadContext &ctx, uint64_t key) {
                                counters[key]->add(ctx, 1);
                            });
        fe.attach(m);
        m.run();
        captured = m.stats();
        for (const auto &counter : counters)
            captured_total += counter->peek(m);
        bytes = m.traceWriter()->serialize();
        // Idle gaps must be in the trace as ordinary compute ops —
        // that is what makes open-loop timing replayable at all.
        EXPECT_EQ(int64_t(fe.totalService().completed),
                  captured_total);
    }

    Trace t;
    std::string err;
    ASSERT_TRUE(TraceReader::parse(bytes, &t, &err)) << err;

    MachineConfig replay_cfg = cfg;
    replay_cfg.captureTrace = false;
    Machine m(replay_cfg);
    const Label add = CommCounter::defineLabel(m);
    std::vector<std::unique_ptr<CommCounter>> counters;
    for (int c = 0; c < 8; c++)
        counters.push_back(std::make_unique<CommCounter>(m, add));
    ReplayFrontend fe(t);
    fe.attach(m);
    m.run();

    expectStatsEqual(captured, m.stats());
    int64_t replayed_total = 0;
    for (const auto &counter : counters)
        replayed_total += counter->peek(m);
    EXPECT_EQ(replayed_total, captured_total);
}

} // namespace
} // namespace commtm
