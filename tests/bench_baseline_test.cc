/**
 * @file
 * Regression tests for the perf-baseline JSON reader/writer
 * (bench/baseline_io.h). Two historical bugs anchor these:
 *
 *  - parseNumber handed p_ straight to strtod, which scans until a
 *    non-number byte; on a buffer that ends mid-number (truncated
 *    file, or any mmap'd range with no trailing NUL) it read past
 *    end_. The guard-page tests here put the text flush against a
 *    PROT_NONE page so the overread faults deterministically instead
 *    of silently depending on heap layout.
 *
 *  - parseEntry routed the exact counters through double, so any
 *    sim_cycles value above 2^53 was rounded to the nearest
 *    representable double and the "exact" baseline check compared
 *    rounded values. The counters now parse as uint64_t directly.
 */

#include <gtest/gtest.h>

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/baseline_io.h"

namespace commtm {
namespace benchutil {
namespace baseline {
namespace {

bool
parseText(const std::string &text, File &out, std::string &err)
{
    Parser parser(text.data(), text.data() + text.size());
    return parser.parseFile(out, err);
}

TEST(BaselineParser, RoundTripsWriterOutput)
{
    File file;
    file["fig09"]["Baseline @128t"] = {123456789, 1000, 37, 1.0};
    file["fig09"]["CommTM @128t"] = {1234, 1000, 0, 95.5};
    file["fig12"]["CommTM/lazy @256t"] = {42, 7, 3, 0.125};

    const std::string path =
        ::testing::TempDir() + "/baseline_roundtrip.json";
    ASSERT_TRUE(save(path, file));
    File loaded;
    std::string err;
    ASSERT_TRUE(load(path, loaded, err)) << err;
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded["fig09"]["Baseline @128t"].simCycles, 123456789u);
    EXPECT_EQ(loaded["fig09"]["CommTM @128t"].speedup, 95.5);
    EXPECT_EQ(loaded["fig12"]["CommTM/lazy @256t"].aborts, 3u);
    std::remove(path.c_str());
}

TEST(BaselineParser, CountersAboveDoublePrecisionStayExact)
{
    // 2^53 + 1 is the first integer a double cannot represent; the old
    // through-double path parsed it as 9007199254740992.
    const uint64_t big = 9007199254740993ull;
    File file;
    file["fam"]["row"] = {big, UINT64_MAX, 0, 1.0};

    const std::string path = ::testing::TempDir() + "/baseline_exact.json";
    ASSERT_TRUE(save(path, file));
    File loaded;
    std::string err;
    ASSERT_TRUE(load(path, loaded, err)) << err;
    EXPECT_EQ(loaded["fam"]["row"].simCycles, big);
    EXPECT_EQ(loaded["fam"]["row"].commits, UINT64_MAX);
    std::remove(path.c_str());
}

TEST(BaselineParser, RejectsNonIntegerCounters)
{
    File out;
    std::string err;
    EXPECT_FALSE(parseText(
        R"({"f": {"r": {"sim_cycles": 1.5}}})", out, err));
    EXPECT_FALSE(parseText(
        R"({"f": {"r": {"commits": -1}}})", out, err));
    EXPECT_FALSE(parseText(
        R"({"f": {"r": {"aborts": 1e3}}})", out, err));
    // One past UINT64_MAX must overflow, not wrap or saturate quietly.
    EXPECT_FALSE(parseText(
        R"({"f": {"r": {"commits": 18446744073709551616}}})", out, err));
    EXPECT_NE(err.find("overflows"), std::string::npos) << err;
    // speedup stays a double: fractions and exponents are fine there.
    File ok;
    EXPECT_TRUE(parseText(
        R"({"f": {"r": {"speedup": 1.5e-3}}})", ok, err)) << err;
    EXPECT_EQ(ok["f"]["r"].speedup, 1.5e-3);
}

TEST(BaselineParser, RejectsOverlongNumberToken)
{
    std::string text = R"({"f": {"r": {"sim_cycles": )";
    text.append(80, '9');
    text += "}}}";
    File out;
    std::string err;
    EXPECT_FALSE(parseText(text, out, err));
    EXPECT_NE(err.find("too long"), std::string::npos) << err;
}

/**
 * Lay @p text out so its last byte is flush against a PROT_NONE guard
 * page: any read one past the end faults instead of returning
 * whatever the heap happens to hold. Returns the pointer to the text
 * (not NUL-terminated, by construction).
 */
class GuardedBuffer
{
  public:
    explicit GuardedBuffer(const std::string &text)
    {
        page_ = size_t(sysconf(_SC_PAGESIZE));
        ASSERT_TRUE_CTOR(text.size() <= page_);
        map_ = static_cast<char *>(
            mmap(nullptr, 2 * page_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
        ASSERT_TRUE_CTOR(map_ != MAP_FAILED);
        ASSERT_TRUE_CTOR(
            mprotect(map_ + page_, page_, PROT_NONE) == 0);
        begin_ = map_ + page_ - text.size();
        std::memcpy(begin_, text.data(), text.size());
        end_ = map_ + page_;
    }

    ~GuardedBuffer()
    {
        if (map_ && map_ != MAP_FAILED)
            munmap(map_, 2 * page_);
    }

    const char *begin() const { return begin_; }
    const char *end() const { return end_; }

  private:
    // gtest's ASSERT_* need a void return; constructors don't have
    // one. abort() keeps the failure loud without that plumbing.
    static void
    ASSERT_TRUE_CTOR(bool ok)
    {
        if (!ok)
            abort();
    }

    size_t page_ = 0;
    char *map_ = nullptr;
    char *begin_ = nullptr;
    char *end_ = nullptr;
};

TEST(BaselineParser, TruncatedNumberAtBufferEndDoesNotOverread)
{
    // The buffer ends mid-number, with no trailing NUL: the old
    // strtod(p_, ...) call scanned into the guard page and SIGSEGV'd
    // here. The fixed parser must stop at end_ and report a clean
    // error (truncated file — the object is never closed).
    GuardedBuffer buf(R"({"f": {"r": {"sim_cycles": 123456)");
    Parser parser(buf.begin(), buf.end());
    File out;
    std::string err;
    EXPECT_FALSE(parser.parseFile(out, err));
    EXPECT_NE(err.find("EOF"), std::string::npos) << err;
}

TEST(BaselineParser, CompleteFileAgainstGuardPageParses)
{
    // A well-formed file whose final byte touches the guard page: the
    // parser must consume it fully without peeking past end_.
    GuardedBuffer buf(
        R"({"f": {"r": {"sim_cycles": 7, "speedup": 2.5}}})");
    Parser parser(buf.begin(), buf.end());
    File out;
    std::string err;
    ASSERT_TRUE(parser.parseFile(out, err)) << err;
    EXPECT_EQ(out["f"]["r"].simCycles, 7u);
    EXPECT_EQ(out["f"]["r"].speedup, 2.5);
}

TEST(BaselineParser, NumberFlushAgainstGuardPageParses)
{
    // Edge case of the bounded tokenizer itself: the number's last
    // digit is the last readable byte. numberToken must not test
    // p_[len] before checking p_ + len < end_.
    GuardedBuffer buf(R"({"f": {"r": {"speedup": 0.25)");
    Parser parser(buf.begin(), buf.end());
    File out;
    std::string err;
    EXPECT_FALSE(parser.parseFile(out, err));
    // The number itself parsed; the failure is the missing '}'.
    EXPECT_NE(err.find("EOF"), std::string::npos) << err;
}

TEST(BaselineParser, QuantileFieldsRoundTrip)
{
    File file;
    Entry svc;
    svc.simCycles = 81660;
    svc.commits = 6144;
    svc.aborts = 0;
    svc.speedup = 2.119;
    svc.hasQuantiles = true;
    svc.p50 = 59;
    svc.p99 = 991;
    svc.p999 = 9007199254740993ull; // above 2^53: must stay exact
    file["svc_counter"]["CommTM burst @128t"] = svc;
    file["fig09"]["Baseline @128t"] = {123, 45, 6, 1.0};

    const std::string path =
        ::testing::TempDir() + "/baseline_quantiles.json";
    ASSERT_TRUE(save(path, file));
    File loaded;
    std::string err;
    ASSERT_TRUE(load(path, loaded, err)) << err;
    const Entry &got = loaded["svc_counter"]["CommTM burst @128t"];
    EXPECT_TRUE(got.hasQuantiles);
    EXPECT_EQ(got.p50, 59u);
    EXPECT_EQ(got.p99, 991u);
    EXPECT_EQ(got.p999, 9007199254740993ull);
    // Closed-loop rows neither write nor acquire quantile keys: old
    // baseline files and new ones must stay byte-interchangeable for
    // every pre-existing row.
    EXPECT_FALSE(loaded["fig09"]["Baseline @128t"].hasQuantiles);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const size_t fig_at = text.find("\"fig09\"");
    const size_t svc_at = text.find("\"svc_counter\"");
    ASSERT_NE(fig_at, std::string::npos);
    ASSERT_NE(svc_at, std::string::npos);
    // Families serialize in map order, so fig09's row text is the
    // [fig09, svc_counter) range: it must carry no quantile keys.
    ASSERT_LT(fig_at, svc_at);
    EXPECT_EQ(text.substr(fig_at, svc_at - fig_at).find("\"p50\""),
              std::string::npos);
    EXPECT_NE(text.find("\"p50\": 59", svc_at), std::string::npos);
    std::remove(path.c_str());
}

TEST(BaselineParser, UnknownNumericFieldsAreTolerated)
{
    // Forward tolerance: a future writer may pin counters this reader
    // does not know. Numbers skip cleanly; anything else still fails.
    File out;
    std::string err;
    ASSERT_TRUE(parseText(
        R"({"f": {"r": {"sim_cycles": 7, "p75": 12,)"
        R"( "frobnication_index": 1.5e9, "p999": 42}}})",
        out, err))
        << err;
    EXPECT_EQ(out["f"]["r"].simCycles, 7u);
    EXPECT_EQ(out["f"]["r"].p999, 42u);
    EXPECT_TRUE(out["f"]["r"].hasQuantiles);
    EXPECT_FALSE(parseText(
        R"({"f": {"r": {"novel_key": "a string"}}})", out, err));
    EXPECT_FALSE(parseText(
        R"({"f": {"r": {"p50": 1.5}}})", out, err));
}

TEST(BaselineCheck, QuantilePresenceRules)
{
    Entry pinned;
    pinned.simCycles = 10;
    pinned.speedup = 1.0;
    pinned.hasQuantiles = true;
    pinned.p50 = 5;
    pinned.p99 = 50;
    pinned.p999 = 500;

    File file;
    file["svc"]["row"] = pinned;

    // Exact match passes.
    recordedRows().clear();
    recordedRows().push_back({"svc", "row", pinned});
    EXPECT_TRUE(check(file, false));

    // A single drifted quantile fails.
    recordedRows().back().entry.p999 = 501;
    EXPECT_FALSE(check(file, false));

    // A row that stopped reporting pinned quantiles is a regression.
    recordedRows().back().entry = {10, 0, 0, 1.0};
    EXPECT_FALSE(check(file, false));

    // The reverse — bench reports quantiles, baseline file predates
    // them — checks cleanly, so old files stay usable until the next
    // --write-baseline.
    File old_file;
    old_file["svc"]["row"] = {10, 0, 0, 1.0};
    recordedRows().back().entry = pinned;
    EXPECT_TRUE(check(old_file, false));
    recordedRows().clear();
}

TEST(BaselineCheck, MergeReplacesRecordedRowsOnly)
{
    recordedRows().clear();
    recordedRows().push_back({"figA", "row1", {10, 1, 0, 1.0}});
    File file;
    file["figA"]["row1"] = {99, 9, 9, 9.0};
    file["figA"]["row2"] = {7, 7, 7, 7.0};
    file["figB"]["rowX"] = {5, 5, 5, 5.0};
    mergeRecorded(file);
    EXPECT_EQ(file["figA"]["row1"].simCycles, 10u);
    EXPECT_EQ(file["figA"]["row2"].simCycles, 7u); // untouched
    EXPECT_EQ(file["figB"]["rowX"].simCycles, 5u); // untouched
    recordedRows().clear();
}

} // namespace
} // namespace baseline
} // namespace benchutil
} // namespace commtm
