/**
 * @file
 * Property-based sweeps (parameterized gtest): system-level invariants
 * that must hold for every (mode, thread-count, contention) point —
 * counter sums, bounded-counter non-negativity, top-K correctness, and
 * the microbenchmarks' internal validation.
 */

#include <gtest/gtest.h>

#include "apps/micro.h"
#include "lib/bounded_counter.h"
#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

struct Sweep {
    SystemMode mode;
    uint32_t threads;
    uint32_t opsPerThread;
};

std::string
sweepName(const ::testing::TestParamInfo<Sweep> &info)
{
    std::string name;
    switch (info.param.mode) {
      case SystemMode::BaselineHtm:    name = "Baseline"; break;
      case SystemMode::CommTmNoGather: name = "NoGather"; break;
      case SystemMode::CommTm:         name = "CommTM"; break;
    }
    return name + "_" + std::to_string(info.param.threads) + "t_" +
           std::to_string(info.param.opsPerThread) + "ops";
}

class Property : public ::testing::TestWithParam<Sweep>
{
  protected:
    MachineConfig
    cfg() const
    {
        MachineConfig c;
        c.numCores = std::max(GetParam().threads, 1u);
        c.mode = GetParam().mode;
        return c;
    }
};

TEST_P(Property, CounterSumInvariant)
{
    const auto p = GetParam();
    const MicroResult r =
        runCounterMicro(cfg(), p.threads,
                        uint64_t(p.threads) * p.opsPerThread);
    EXPECT_TRUE(r.valid) << "observed " << r.observed << " expected "
                         << r.expected;
}

TEST_P(Property, RefcountConservation)
{
    const auto p = GetParam();
    const MicroResult r =
        runRefcountMicro(cfg(), p.threads,
                         uint64_t(p.threads) * p.opsPerThread, 4);
    EXPECT_TRUE(r.valid) << "observed " << r.observed << " expected "
                         << r.expected;
}

TEST_P(Property, ListMultisetInvariant)
{
    const auto p = GetParam();
    const MicroResult r =
        runListMicro(cfg(), p.threads,
                     uint64_t(p.threads) * p.opsPerThread, 50, 4);
    EXPECT_TRUE(r.valid) << "observed " << r.observed << " expected "
                         << r.expected;
}

TEST_P(Property, OrderedPutMinimumInvariant)
{
    const auto p = GetParam();
    const MicroResult r = runOputMicro(
        cfg(), p.threads, uint64_t(p.threads) * p.opsPerThread);
    EXPECT_TRUE(r.valid);
}

TEST_P(Property, TopKExactness)
{
    const auto p = GetParam();
    const MicroResult r =
        runTopkMicro(cfg(), p.threads,
                     uint64_t(p.threads) * p.opsPerThread, 32);
    EXPECT_TRUE(r.valid);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, Property,
    ::testing::Values(Sweep{SystemMode::BaselineHtm, 1, 50},
                      Sweep{SystemMode::BaselineHtm, 4, 50},
                      Sweep{SystemMode::BaselineHtm, 16, 30},
                      Sweep{SystemMode::CommTmNoGather, 4, 50},
                      Sweep{SystemMode::CommTmNoGather, 16, 30},
                      Sweep{SystemMode::CommTm, 1, 50},
                      Sweep{SystemMode::CommTm, 4, 50},
                      Sweep{SystemMode::CommTm, 16, 30},
                      Sweep{SystemMode::CommTm, 32, 20},
                      Sweep{SystemMode::CommTm, 64, 10}),
    sweepName);

/** Bounded counters never observe a negative value, under fuzzed
 *  schedules driven by different machine seeds. */
class BoundedFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BoundedFuzz, NeverNegativeAndConserving)
{
    MachineConfig c;
    c.numCores = 12;
    c.mode = SystemMode::CommTm;
    c.seed = GetParam();
    Machine m(c);
    const Label b = BoundedCounter::defineLabel(m);
    BoundedCounter counter(m, b, 3);
    std::vector<int64_t> net(12, 0);
    for (int t = 0; t < 12; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 60; i++) {
                if (rng.chance(0.45)) {
                    counter.increment(ctx);
                    net[t]++;
                } else if (counter.decrement(ctx)) {
                    net[t]--;
                }
            }
        });
    }
    m.run();
    int64_t expected = 3;
    for (auto n : net)
        expected += n;
    EXPECT_EQ(counter.peek(m), expected);
    EXPECT_GE(expected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace commtm
