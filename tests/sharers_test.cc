/**
 * @file
 * Cross-checks the runtime-sized sharer set (mem/line.h) against a
 * reference std::set<uint32_t> model through randomized
 * add/remove/snapshot/iterate sequences at machine sizes on both sides
 * of the inline/spill boundary, and pins the hot-path invariant that
 * sharer snapshots at <= 128 cores never touch the heap (the inline
 * representation must not silently regress to allocations when the
 * spill path changes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "mem/line.h"
#include "sim/rng.h"

// ---------------------------------------------------------------------
// Global allocation counter. Replacing the global operator new/delete
// pair lets the tests below assert the inline representation is
// allocation-free; the hooks only count (one relaxed atomic), so they
// are safe under sanitizers and gtest internals.
// ---------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocs{0};
} // namespace

// GCC's -Wmismatched-new-delete pairs an inlined replacement operator
// new (malloc-backed) with the replacement delete (free) at some call
// sites and misreports a mismatch; malloc/free-backed replacement
// operators are exactly the intended pairing here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}

namespace commtm {
namespace {

uint64_t
heapAllocs()
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

/** Parameter: the simulated machine's core count. */
class SharersModel : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SharersModel, RandomOpsMatchReferenceSet)
{
    const uint32_t cores = GetParam();
    Rng rng(0xc0ffee ^ cores);
    Sharers s;
    std::set<uint32_t> model;

    for (int step = 0; step < 4000; step++) {
        const CoreId c = CoreId(rng.below(cores));
        switch (rng.below(4)) {
          case 0:
          case 1:
            s.set(c);
            model.insert(c);
            break;
          case 2:
            s.clear(c);
            model.erase(c);
            break;
          default:
            EXPECT_EQ(s.test(c), model.count(c) > 0) << "core " << c;
            break;
        }
        if (step % 64 != 0)
            continue;
        // Full membership and iteration-order check.
        std::vector<uint32_t> got;
        s.forEach([&](CoreId x) { got.push_back(x); });
        const std::vector<uint32_t> want(model.begin(), model.end());
        ASSERT_EQ(got, want) << "after step " << step;
        EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
        EXPECT_EQ(s.count(), uint32_t(model.size()));
        EXPECT_EQ(s.any(), !model.empty());
        if (!model.empty()) {
            EXPECT_EQ(s.first(), CoreId(*model.begin()));
            EXPECT_EQ(s.only(*model.begin()), model.size() == 1);
        }
    }

    s.resetAll();
    EXPECT_FALSE(s.any());
    EXPECT_EQ(s.count(), 0u);
    s.forEach([](CoreId) { FAIL() << "forEach on an empty set"; });
}

TEST_P(SharersModel, SnapshotCopyAndAssignArePreserving)
{
    const uint32_t cores = GetParam();
    Rng rng(0x5eed ^ cores);
    Sharers s;
    std::set<uint32_t> model;
    for (int i = 0; i < 300; i++) {
        const CoreId c = CoreId(rng.below(cores));
        s.set(c);
        model.insert(c);
    }

    // SharerList is the directory handlers' stack snapshot: identical
    // membership, ascending order.
    SharerList snap;
    s.forEach([&](CoreId x) { snap.push(x); });
    ASSERT_EQ(snap.size(), uint32_t(model.size()));
    uint32_t i = 0;
    for (uint32_t m : model)
        EXPECT_EQ(snap[i++], CoreId(m));
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));

    // Copies are deep on both sides of the inline/spill boundary
    // (CacheArray::insert returns evicted directory entries by copy).
    Sharers copy = s;
    for (uint32_t m : model)
        copy.clear(m);
    EXPECT_FALSE(copy.any());
    EXPECT_EQ(s.count(), uint32_t(model.size()));
    for (uint32_t m : model)
        EXPECT_TRUE(s.test(m));

    Sharers assigned;
    assigned.set(0);
    assigned = s;
    EXPECT_EQ(assigned.count(), uint32_t(model.size()));
    s.resetAll();
    for (uint32_t m : model)
        EXPECT_TRUE(assigned.test(m));
}

TEST_P(SharersModel, SingleSharerInvariants)
{
    const uint32_t cores = GetParam();
    const CoreId c = cores - 1; // highest id: exercises the last word
    Sharers s;
    EXPECT_FALSE(s.any());
    s.set(c);
    EXPECT_TRUE(s.any());
    EXPECT_TRUE(s.test(c));
    EXPECT_TRUE(s.only(c));
    EXPECT_EQ(s.first(), c);
    EXPECT_EQ(s.count(), 1u);
    if (c > 0) {
        EXPECT_FALSE(s.test(0));
        EXPECT_FALSE(s.only(0));
        s.set(0);
        EXPECT_FALSE(s.only(c));
        EXPECT_EQ(s.first(), 0u);
    }
    s.clear(c);
    EXPECT_FALSE(s.test(c));
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, SharersModel,
                         ::testing::Values(1u, 64u, 127u, 128u, 129u,
                                           256u, 512u));

// ---------------------------------------------------------------------
// Allocation regression guards (ISSUE 3 satellite): the inline
// representation must keep fig09-style directory traffic heap-free at
// Table I scale, while the spill path must actually spill beyond it.
// All gtest assertions sit outside the counted regions — EXPECT itself
// may allocate.
// ---------------------------------------------------------------------

TEST(SharersAlloc, InlineSnapshotPathIsAllocationFree)
{
    // fig09-style directory action: every core joins the sharer set,
    // the handler snapshots it, walks the snapshot, and clears the
    // sharers (a full reduction), plus an entry copy as on L3 eviction.
    Sharers s;
    uint64_t sum = 0;
    uint32_t copies = 0;

    const uint64_t before = heapAllocs();
    for (int round = 0; round < 100; round++) {
        for (CoreId c = 0; c < Sharers::kInlineSharers; c++)
            s.set(c);
        SharerList snap;
        s.forEach([&](CoreId c) { snap.push(c); });
        for (const CoreId c : snap)
            sum += c;
        Sharers victim_copy = s;
        copies += victim_copy.count();
        for (const CoreId c : snap)
            s.clear(c);
        s.resetAll();
    }
    const uint64_t after = heapAllocs();

    EXPECT_EQ(after - before, 0u)
        << "inline sharer snapshot path allocated on the heap";
    EXPECT_EQ(sum, 100ull * (127 * 128 / 2));
    EXPECT_EQ(copies, 100u * 128u);
}

TEST(SharersAlloc, SpillPathAllocatesAndStaysExact)
{
    Sharers s;
    const uint64_t before = heapAllocs();
    for (CoreId c = Sharers::kInlineSharers; c < 512; c += 7)
        s.set(c);
    const uint64_t after = heapAllocs();
    EXPECT_GT(after - before, 0u) << "spill block must be heap-hosted";

    for (CoreId c = 0; c < 600; c++) {
        const bool expect = c >= Sharers::kInlineSharers && c < 512 &&
                            (c - Sharers::kInlineSharers) % 7 == 0;
        ASSERT_EQ(s.test(c), expect) << "core " << c;
    }
    s.resetAll();
    EXPECT_FALSE(s.any());
}

TEST(SharersAlloc, SharerListSpillsPast128)
{
    SharerList snap;
    for (CoreId c = 0; c < 400; c++)
        snap.push(c);
    ASSERT_EQ(snap.size(), 400u);
    for (uint32_t i = 0; i < 400; i++)
        ASSERT_EQ(snap[i], CoreId(i));
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
    snap.truncate(10);
    EXPECT_EQ(snap.size(), 10u);
}

} // namespace
} // namespace commtm
