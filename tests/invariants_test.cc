/**
 * @file
 * Negative tests of the machine-wide InvariantChecker (Sec. 10): each
 * fault-injection hook corrupts exactly one protocol field, and the
 * next sweep must report the matching violation kind with
 * field-precise diagnostics. A clean machine must sweep clean both
 * after a run and inside a live transaction.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lib/counter.h"
#include "rt/machine.h"
#include "sim/invariants.h"

namespace commtm {
namespace {

/** Lines spaced so they land in the same L1 *and* L2 set (the strides
 *  are the two sets' line counts; 256 is a multiple of 64). */
constexpr Addr kSetStrideBytes = 256 * kLineSize;

/**
 * A 4-core machine run to completion with known post-run cache state:
 * `shared` is dir-S with sharers {0,1}, `owned` is dir-M owned by
 * core 0, the counter line is dir-U with both cores' partials, and
 * core 0 holds 8 conventional lines that map to one L1/L2 set
 * (`stride(0..7)`).
 */
struct Rig {
    Rig()
    {
        cfg.numCores = 4;
        cfg.seed = 0x5eed;
        m = std::make_unique<Machine>(cfg);
        const Label add = CommCounter::defineLabel(*m);
        counter = std::make_unique<CommCounter>(*m, add);
        shared = m->allocator().alloc(64, 64);
        owned = m->allocator().alloc(64, 64);
        arena = m->allocator().alloc(8 * kSetStrideBytes, 64);
        m->addThread([&](ThreadContext &ctx) {
            (void)ctx.read<uint64_t>(shared);
            ctx.write<uint64_t>(owned, 42);
            counter->add(ctx, 1);
            for (int k = 0; k < 8; k++)
                (void)ctx.read<uint64_t>(stride(k));
        });
        m->addThread([&](ThreadContext &ctx) {
            (void)ctx.read<uint64_t>(shared);
            counter->add(ctx, 2);
        });
        m->run();
        chk = std::make_unique<InvariantChecker>(cfg, m->memSys(),
                                                 m->htm());
    }

    Addr stride(int k) const { return arena + Addr(k) * kSetStrideBytes; }
    Addr counterLine() const { return lineAddr(counter->addr()); }

    std::vector<InvariantViolation>
    sweep()
    {
        std::vector<InvariantViolation> v;
        chk->sweep(v);
        return v;
    }

    MachineConfig cfg;
    std::unique_ptr<Machine> m;
    std::unique_ptr<CommCounter> counter;
    std::unique_ptr<InvariantChecker> chk;
    Addr shared = 0, owned = 0, arena = 0;
};

bool
has(const std::vector<InvariantViolation> &v, InvariantKind kind)
{
    for (const InvariantViolation &x : v)
        if (x.kind == kind)
            return true;
    return false;
}

/** First message reported for @p kind ("" when absent). */
std::string
msgFor(const std::vector<InvariantViolation> &v, InvariantKind kind)
{
    for (const InvariantViolation &x : v)
        if (x.kind == kind)
            return x.message;
    return "";
}

TEST(Invariants, CleanMachineSweepsClean)
{
    Rig r;
    ASSERT_EQ(r.m->memSys().dirState(lineAddr(r.shared)), DirState::S);
    ASSERT_EQ(r.m->memSys().dirState(lineAddr(r.owned)), DirState::M);
    ASSERT_EQ(r.m->memSys().dirState(r.counterLine()), DirState::U);
    EXPECT_TRUE(r.sweep().empty());
    EXPECT_EQ(r.chk->sweeps(), 1u);
}

TEST(Invariants, DirSharerNotPresent)
{
    Rig r;
    // Core 2 never touched `shared`: a ghost sharer bit must name it.
    r.m->memSys().testFlipSharerBit(lineAddr(r.shared), 2);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::DirSharerNotPresent));
    const std::string msg =
        msgFor(v, InvariantKind::DirSharerNotPresent);
    EXPECT_NE(msg.find("sharer holds no private copy"),
              std::string::npos) << msg;
    EXPECT_NE(msg.find("dir=S"), std::string::npos) << msg;
    // Diagnostic carries both halves of the diff: the directory's
    // sharer mask and the cores that actually hold a copy.
    EXPECT_NE(msg.find("sharers={0,1,2}"), std::string::npos) << msg;
    EXPECT_NE(msg.find("priv={0,1}"), std::string::npos) << msg;
}

TEST(Invariants, PrivLineNotInDir)
{
    Rig r;
    // Clearing the owner's sharer bit orphans its private M copy.
    r.m->memSys().testFlipSharerBit(lineAddr(r.owned), 0);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::PrivLineNotInDir));
    const std::string msg = msgFor(v, InvariantKind::PrivLineNotInDir);
    EXPECT_NE(msg.find("core=0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("untracked"), std::string::npos) << msg;
}

TEST(Invariants, DirStateMismatch)
{
    Rig r;
    r.m->memSys().testFlipPrivState(0, lineAddr(r.shared),
                                    PrivState::M);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::DirStateMismatch));
    // The private sweep also flags the illegal exclusive copy.
    EXPECT_TRUE(has(v, InvariantKind::ExclusivityViolation));
}

TEST(Invariants, ExclusivityViolation)
{
    Rig r;
    // Dir-M with two sharers: M requires exactly one owner.
    r.m->memSys().testFlipDirState(lineAddr(r.shared), DirState::M);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::ExclusivityViolation));
    const std::string msg =
        msgFor(v, InvariantKind::ExclusivityViolation);
    EXPECT_NE(msg.find("exactly one owner"), std::string::npos) << msg;
}

TEST(Invariants, SharerCountMismatch)
{
    Rig r;
    r.m->memSys().testFlipDirState(lineAddr(r.owned),
                                   DirState::NonCached);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::SharerCountMismatch));
    const std::string msg =
        msgFor(v, InvariantKind::SharerCountMismatch);
    EXPECT_NE(msg.find("NonCached line has sharers"),
              std::string::npos) << msg;
}

TEST(Invariants, ULabelMismatchOnConventionalLine)
{
    Rig r;
    // A conventional (kNoLabel) line flipped to U has no reduction
    // label to merge partials with.
    r.m->memSys().testFlipDirState(lineAddr(r.owned), DirState::U);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::ULabelMismatch));
    EXPECT_NE(msgFor(v, InvariantKind::ULabelMismatch)
                  .find("unregistered label"),
              std::string::npos);
}

TEST(Invariants, ULabelMismatchOnLabeledLine)
{
    Rig r;
    // The counter line keeps its ADD label but leaves U: only U lines
    // may carry a label.
    r.m->memSys().testFlipDirState(r.counterLine(), DirState::S);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::ULabelMismatch));
    EXPECT_NE(msgFor(v, InvariantKind::ULabelMismatch)
                  .find("non-U line carries a label"),
              std::string::npos);
}

TEST(Invariants, UCopyMissing)
{
    Rig r;
    r.m->memSys().testDropUCopy(0, r.counterLine());
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::UCopyMissing));
    const std::string msg = msgFor(v, InvariantKind::UCopyMissing);
    EXPECT_NE(msg.find("dir-U sharer holds no U copy"),
              std::string::npos) << msg;
}

TEST(Invariants, UCopyOrphan)
{
    Rig r;
    // Dir leaves U while the sharers keep their partial-value copies.
    r.m->memSys().testFlipDirState(r.counterLine(), DirState::S);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::UCopyOrphan));
}

TEST(Invariants, InclusionViolation)
{
    Rig r;
    // L1-only flip: the L1 and inclusive L2 now disagree.
    r.m->memSys().testFlipL1State(0, lineAddr(r.owned), PrivState::S);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::InclusionViolation));
    EXPECT_NE(msgFor(v, InvariantKind::InclusionViolation)
                  .find("disagree"),
              std::string::npos);
}

TEST(Invariants, ReservedWayViolation)
{
    Rig r;
    // The 8 stride lines fill one 8-way set; flipping them all to U
    // leaves no conventional way (paper Sec. III-B4).
    for (int k = 0; k < 8; k++) {
        const Addr line = lineAddr(r.stride(k));
        ASSERT_NE(r.m->memSys().privState(0, line), PrivState::I)
            << "stride line " << k << " was evicted; rig broken";
        r.m->memSys().testFlipPrivState(0, line, PrivState::U);
    }
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::ReservedWayViolation));
    const std::string msg =
        msgFor(v, InvariantKind::ReservedWayViolation);
    EXPECT_NE(msg.find("reserved-way rule"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core=0"), std::string::npos) << msg;
}

TEST(Invariants, SpecBitsOutsideTx)
{
    Rig r;
    // A noted bit surviving past its transaction would poison the
    // next transaction's conflict detection on that core.
    r.m->memSys().testFlipNotedBit(0, lineAddr(r.owned));
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::SpecBitsOutsideTx));
    EXPECT_NE(msgFor(v, InvariantKind::SpecBitsOutsideTx)
                  .find("no live transaction"),
              std::string::npos);
}

TEST(Invariants, SpecStateLeak)
{
    Rig r;
    // Buffered bytes on a core with no live transaction: remoteAbort
    // and abortAttempt must have cleared them.
    const uint64_t bogus = 7;
    r.m->htm().writeBuffer(0).write(r.owned, &bogus, sizeof(bogus));
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::SpecStateLeak));
    EXPECT_NE(msgFor(v, InvariantKind::SpecStateLeak)
                  .find("outlives"),
              std::string::npos);
}

TEST(Invariants, HandlerDepthExceeded)
{
    Rig r;
    r.m->memSys().testSetHandlerDepth(2);
    const auto v = r.sweep();
    EXPECT_TRUE(has(v, InvariantKind::HandlerDepthExceeded));
    EXPECT_NE(msgFor(v, InvariantKind::HandlerDepthExceeded)
                  .find("handlerDepth=2"),
              std::string::npos);
    r.m->memSys().testSetHandlerDepth(0);
}

/** Mid-transaction checks need a live tx: run the corruption and the
 *  sweep inside the transaction body itself. */
TEST(Invariants, WriteBufferNotInSetMidTx)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    Machine m(cfg);
    const Addr a = m.allocator().alloc(64, 64);
    const Addr b = m.allocator().alloc(64, 64);
    InvariantChecker chk(cfg, m.memSys(), m.htm());
    std::vector<InvariantViolation> in_tx, clean;
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            ctx.write<uint64_t>(a, 1);
            chk.sweep(clean); // live tx, consistent: must be clean
            // Inject a buffered line that no conflict check has seen.
            const uint64_t bogus = 9;
            m.htm().writeBuffer(ctx.id()).write(b, &bogus,
                                                sizeof(bogus));
            chk.sweep(in_tx);
        });
    });
    m.run();
    EXPECT_TRUE(clean.empty());
    EXPECT_TRUE(has(in_tx, InvariantKind::WriteBufferNotInSet));
    EXPECT_NE(msgFor(in_tx, InvariantKind::WriteBufferNotInSet)
                  .find("outside write/labeled sets"),
              std::string::npos);
}

TEST(Invariants, SignatureSetMismatchMidTx)
{
    MachineConfig cfg;
    cfg.numCores = 2;
    Machine m(cfg);
    const Addr a = m.allocator().alloc(64, 64);
    const Addr pre = m.allocator().alloc(64, 64);
    InvariantChecker chk(cfg, m.memSys(), m.htm());
    std::vector<InvariantViolation> v;
    m.addThread([&](ThreadContext &ctx) {
        // Cache `pre` non-speculatively so it has an L1 entry with no
        // noted bits, then forge a notedRead inside a live tx.
        (void)ctx.read<uint64_t>(pre);
        ctx.txRun([&] {
            (void)ctx.read<uint64_t>(a);
            m.memSys().testFlipNotedBit(ctx.id(), lineAddr(pre));
            chk.sweep(v);
            m.memSys().testFlipNotedBit(ctx.id(), lineAddr(pre));
        });
    });
    m.run();
    EXPECT_TRUE(has(v, InvariantKind::SignatureSetMismatch));
    EXPECT_NE(msgFor(v, InvariantKind::SignatureSetMismatch)
                  .find("notedRead line missing from the read set"),
              std::string::npos);
}

/** The production entry point prints every violation and aborts. */
TEST(InvariantsDeathTest, CheckAbortsWithDiagnostics)
{
    Rig r;
    r.m->memSys().testSetHandlerDepth(2);
    EXPECT_DEATH(
        r.chk->check(InvariantChecker::SyncPoint::Manual),
        "\\[HandlerDepthExceeded\\] handlerDepth=2");
}

} // namespace
} // namespace commtm
