/**
 * @file
 * NoC and geometry tests: the bank-to-tile placement (bankTile), its
 * use by NocModel::coreToBank, and validate()'s rejection of ragged
 * bank/tile geometries (the old mapping silently aliased banks onto
 * wrong tiles whenever l3Banks != numTiles).
 */

#include <gtest/gtest.h>

#include "mem/noc.h"
#include "sim/config.h"

namespace commtm {
namespace {

TEST(Noc, BankTileIsIdentityWhenBanksMatchTiles)
{
    MachineConfig c; // Table I: 16 banks, 16 tiles
    ASSERT_EQ(c.validate(), nullptr);
    for (uint32_t b = 0; b < c.l3Banks; b++)
        EXPECT_EQ(c.bankTile(b), b);
    // forCores keeps one bank per tile at every scale.
    const MachineConfig big = MachineConfig::forCores(512);
    ASSERT_EQ(big.validate(), nullptr);
    for (uint32_t b = 0; b < big.l3Banks; b++)
        EXPECT_EQ(big.bankTile(b), b);
}

TEST(Noc, MoreBanksThanTilesStripeRoundRobin)
{
    MachineConfig c;
    c.l3Banks = 32; // two banks per tile
    ASSERT_EQ(c.validate(), nullptr);
    for (uint32_t b = 0; b < c.l3Banks; b++) {
        EXPECT_EQ(c.bankTile(b), b % c.numTiles);
        EXPECT_LT(c.bankTile(b), c.numTiles);
    }
}

TEST(Noc, FewerBanksThanTilesSpreadOverTheMesh)
{
    MachineConfig c;
    c.l3Banks = 4; // every fourth tile hosts a bank
    ASSERT_EQ(c.validate(), nullptr);
    EXPECT_EQ(c.bankTile(0), 0u);
    EXPECT_EQ(c.bankTile(1), 4u);
    EXPECT_EQ(c.bankTile(2), 8u);
    EXPECT_EQ(c.bankTile(3), 12u);
    // The old `bank % numTiles` crowded all four banks onto tiles
    // 0..3; the spread placement must stay in-grid and collision-free.
    for (uint32_t b = 0; b < c.l3Banks; b++)
        EXPECT_LT(c.bankTile(b), c.numTiles);
}

TEST(Noc, ValidateRejectsRaggedBankGeometries)
{
    MachineConfig c;
    c.l3Banks = 12; // 12 % 16 != 0 and 16 % 12 != 0
    EXPECT_NE(c.validate(), nullptr);
    c.l3Banks = 24; // more banks than tiles, but not a multiple
    EXPECT_NE(c.validate(), nullptr);
    c.l3Banks = 48; // 3 banks per tile: fine
    EXPECT_EQ(c.validate(), nullptr);
    c.l3Banks = 8; // every other tile: fine
    EXPECT_EQ(c.validate(), nullptr);
}

TEST(Noc, CoreToBankUsesTheBankTilePlacement)
{
    MachineConfig c;
    c.l3Banks = 4;
    ASSERT_EQ(c.validate(), nullptr);
    const NocModel noc(c);
    // Core 0 sits on tile 0; bank 3 sits on tile 12 (mesh corner
    // (0,3)): 3 hops, not the 3-tile-aliased 2 hops of the old map.
    EXPECT_EQ(noc.hops(c.coreTile(0), c.bankTile(3)), 3u);
    EXPECT_EQ(noc.coreToBank(0, 3),
              noc.latency(c.coreTile(0), c.bankTile(3)));
    // Same-tile access is router-only at every geometry.
    EXPECT_EQ(noc.coreToBank(0, 0), c.routerLatency);
}

} // namespace
} // namespace commtm
