/**
 * @file
 * Unit tests for the commit log (docs/ARCHITECTURE.md Sec. 9): pinned
 * digest values for a tiny two-core eager run (the serialized format
 * and the digest definition are both contracts — a refactor that
 * changes either must show up here), serialize/deserialize round
 * trips, precise rejection diagnostics for corrupted logs, the three
 * diff policies, abort hygiene, and the COMMTM_RECORD_COMMITS
 * override.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "rt/machine.h"
#include "sim/commit_log.h"

namespace commtm {
namespace {

MachineConfig
twoCoreConfig()
{
    MachineConfig c = MachineConfig::forCores(2);
    c.numCores = 2;
    c.mode = SystemMode::CommTm;
    c.conflictDetection = ConflictDetection::Eager;
    c.seed = 42;
    c.recordCommits = true;
    return c;
}

/** Fold one labeled op's structural fields the way noteLabeledOp
 *  does, so the test recomputes expected digests independently. */
void
foldShape(FnvDigest &d, CommitOpKind kind, Addr addr, Label label,
          uint32_t size)
{
    d.u8(uint8_t(kind));
    d.u64(addr);
    d.u8(label);
    d.u32(size);
}

TEST(CommitLog, PinnedDigestsForTwoCoreEagerRun)
{
    Machine m(twoCoreConfig());
    ASSERT_NE(m.commitLog(), nullptr);
    const Label add =
        m.labels().define(labels::makeAdd<int64_t>("ADD"));
    const Addr a = m.allocator().allocLines(1);
    const Addr b = m.allocator().allocLines(1);

    // Core 0 commits a labeled increment on a, then a conventional
    // write on b; the barrier forces core 1's labeled read of a to
    // commit last. The global commit order is therefore pinned:
    // txId 0 and 1 from core 0, txId 2 from core 1.
    m.addThread([&](ThreadContext &ctx) {
        ctx.txRun([&] {
            const int64_t v = ctx.readLabeled<int64_t>(a, add);
            ctx.writeLabeled<int64_t>(a, add, v + 7);
        });
        ctx.txRun(
            [&] { ctx.write<int64_t>(b, 0x1122334455667788ll); });
        ctx.barrier();
    });
    m.addThread([&](ThreadContext &ctx) {
        ctx.barrier();
        ctx.txRun([&] { (void)ctx.readLabeled<int64_t>(a, add); });
    });
    m.run();

    const CommitLog &log = *m.commitLog();
    ASSERT_EQ(log.records().size(), 3u);
    const CommitRecord &r0 = log.records()[0];
    const CommitRecord &r1 = log.records()[1];
    const CommitRecord &r2 = log.records()[2];

    EXPECT_EQ(r0.txId, 0u);
    EXPECT_EQ(r0.core, 0u);
    EXPECT_EQ(r0.commitIndex, 0u);
    EXPECT_EQ(r0.labeledOps, 2u);
    EXPECT_EQ(r0.writeLines, 0u);
    EXPECT_EQ(r1.txId, 1u);
    EXPECT_EQ(r1.core, 0u);
    EXPECT_EQ(r1.commitIndex, 1u);
    EXPECT_EQ(r1.labeledOps, 0u);
    EXPECT_EQ(r1.writeLines, 1u);
    EXPECT_EQ(r2.txId, 2u);
    EXPECT_EQ(r2.core, 1u);
    EXPECT_EQ(r2.commitIndex, 0u);
    EXPECT_EQ(r2.labeledOps, 1u);
    EXPECT_EQ(r2.writeLines, 0u);
    // Commit cycles are timing, not contract: only require order.
    EXPECT_LT(r0.commitCycle, r1.commitCycle);
    EXPECT_LT(r1.commitCycle, r2.commitCycle);

    // Recompute every digest from first principles.
    FnvDigest shape0, values0;
    foldShape(shape0, CommitOpKind::LabeledLoad, a, add, 8);
    foldShape(shape0, CommitOpKind::LabeledStore, a, add, 8);
    foldShape(values0, CommitOpKind::LabeledLoad, a, add, 8);
    foldShape(values0, CommitOpKind::LabeledStore, a, add, 8);
    const int64_t stored = 7; // memory starts zeroed, so 0 + 7
    values0.bytes(&stored, sizeof(stored));
    EXPECT_EQ(r0.labeledShape, shape0.value());
    EXPECT_EQ(r0.labeledValues, values0.value());
    EXPECT_EQ(r0.writeSet, FnvDigest::kBasis);

    FnvDigest writes1;
    writes1.u64(lineAddr(b));
    writes1.u64(0xffull); // 8-byte write at line offset 0
    const uint64_t wval = 0x1122334455667788ull;
    for (int i = 0; i < 8; i++)
        writes1.u8(uint8_t(wval >> (8 * i)));
    EXPECT_EQ(r1.labeledShape, FnvDigest::kBasis);
    EXPECT_EQ(r1.labeledValues, FnvDigest::kBasis);
    EXPECT_EQ(r1.writeSet, writes1.value());

    FnvDigest shape2;
    foldShape(shape2, CommitOpKind::LabeledLoad, a, add, 8);
    EXPECT_EQ(r2.labeledShape, shape2.value());
    EXPECT_EQ(r2.labeledValues, shape2.value()); // load: no operand
    EXPECT_EQ(r2.writeSet, FnvDigest::kBasis);

    // Pinned values: the digest definition (FNV-1a over LE-encoded
    // fields), the allocator base, and label numbering are all
    // contracts. If one changes intentionally, re-pin deliberately.
    EXPECT_EQ(a, 0x10000u);
    EXPECT_EQ(b, 0x10040u);
    EXPECT_EQ(add, Label(0));
    EXPECT_EQ(r0.labeledShape, 0x4fe51f6bffd14b10ull);
    EXPECT_EQ(r0.labeledValues, 0xcba0cb017a2853f7ull);
    EXPECT_EQ(r1.writeSet, 0x23a2a8423c6786ffull);
    EXPECT_EQ(r2.labeledShape, 0x5d0f511f8a7ddd5aull);
    EXPECT_EQ(FnvDigest::kBasis, 0xcbf29ce484222325ull);
}

/** Host-built three-record sample log: core 0 commits a labeled
 *  store and later an empty transaction, core 1 commits one
 *  conventional write line in between. */
CommitLog
sampleLog()
{
    CommitLog log(2);
    const int64_t v = 7;
    log.noteLabeledOp(0, CommitOpKind::LabeledStore, 0x10000, 1, &v,
                      sizeof(v));
    log.sealCommit(0, 100);
    uint8_t line[kLineSize] = {};
    line[0] = 0xab;
    line[3] = 0xcd;
    log.noteWriteLine(1, 0x20000, 0x9, line);
    log.sealCommit(1, 120);
    log.sealCommit(0, 140);
    return log;
}

TEST(CommitLog, SerializeDeserializeRoundTrip)
{
    const CommitLog log = sampleLog();
    const std::vector<uint8_t> bytes = log.serialize();
    ASSERT_EQ(bytes.size(), CommitLog::kHeaderBytes +
                                3 * CommitLog::kRecordBytes);

    CommitLog back(0);
    std::string err;
    ASSERT_TRUE(CommitLog::deserialize(bytes, &back, &err)) << err;
    EXPECT_EQ(back.numCores(), 2u);
    ASSERT_EQ(back.records().size(), 3u);
    EXPECT_EQ(back.commitsOf(0), 2u);
    EXPECT_EQ(back.commitsOf(1), 1u);

    const CommitLogDiff d =
        CommitLog::diff(log, back, DiffMode::Exact);
    EXPECT_TRUE(d.equal) << d.message;
    EXPECT_EQ(back.serialize(), bytes);
}

TEST(CommitLog, CorruptedLogsRejectedWithPreciseDiagnostics)
{
    const std::vector<uint8_t> good = sampleLog().serialize();
    const auto expectReject = [&](std::vector<uint8_t> bytes,
                                  const char *what) {
        CommitLog out(0);
        std::string err;
        EXPECT_FALSE(CommitLog::deserialize(bytes, &out, &err));
        EXPECT_NE(err.find(what), std::string::npos)
            << "diagnostic \"" << err << "\" lacks \"" << what
            << "\"";
    };
    const size_t kRec = CommitLog::kRecordBytes;
    const size_t kHdr = CommitLog::kHeaderBytes;

    std::vector<uint8_t> bad = good;
    bad[0] ^= 0x20;
    expectReject(bad, "bad magic");

    bad = good;
    bad[8] = 9; // version field
    expectReject(bad, "unsupported version 9");

    bad = good;
    bad.resize(kHdr - 1);
    expectReject(bad, "truncated header");

    bad = good;
    bad.pop_back();
    expectReject(bad, "truncated records");

    bad = good;
    bad[kHdr + kRec * 1 + 0] = 5; // record 1's txId field
    expectReject(bad, "record 1: txId field is 5, expected 1");

    bad = good;
    bad[kHdr + kRec * 1 + 8] = 7; // record 1's core field
    expectReject(bad,
                 "record 1 (txId 1): core field is 7, log has 2");

    bad = good;
    bad[kHdr + kRec * 2 + 12] = 5; // record 2's commitIndex field
    expectReject(bad, "record 2 (txId 2): commitIndex field is 5, "
                      "expected 1 for core 0");
}

TEST(CommitLog, DiffModesSeparateInterleavingValuesAndShape)
{
    const int64_t v = 7;
    const auto buildTwoCore = [&](bool core1_first, int64_t operand,
                                  Addr addr) {
        CommitLog log(2);
        const auto sealCore0 = [&] {
            log.noteLabeledOp(0, CommitOpKind::LabeledStore, addr, 1,
                              &operand, sizeof(operand));
            log.sealCommit(0, 10);
        };
        const auto sealCore1 = [&] {
            log.noteLabeledOp(1, CommitOpKind::LabeledLoad, 0x30000,
                              2, nullptr, 8);
            log.sealCommit(1, 20);
        };
        if (core1_first) {
            sealCore1();
            sealCore0();
        } else {
            sealCore0();
            sealCore1();
        }
        return log;
    };
    const CommitLog a = buildTwoCore(false, v, 0x10000);

    // Same per-core streams, different interleaving: Exact catches
    // it, PerCore and Shape accept it.
    const CommitLog b = buildTwoCore(true, v, 0x10000);
    CommitLogDiff d = CommitLog::diff(a, b, DiffMode::Exact);
    EXPECT_FALSE(d.equal);
    EXPECT_NE(d.message.find("record 0"), std::string::npos)
        << d.message;
    EXPECT_NE(d.message.find("core"), std::string::npos) << d.message;
    EXPECT_TRUE(CommitLog::diff(a, b, DiffMode::PerCore).equal);
    EXPECT_TRUE(CommitLog::diff(a, b, DiffMode::Shape).equal);

    // Different store operand: same shape, different values. Shape
    // accepts (the eager-vs-lazy comparison policy), PerCore names
    // the digest and the commit.
    const CommitLog c = buildTwoCore(false, v + 1, 0x10000);
    EXPECT_TRUE(CommitLog::diff(a, c, DiffMode::Shape).equal);
    d = CommitLog::diff(a, c, DiffMode::PerCore);
    EXPECT_FALSE(d.equal);
    EXPECT_NE(d.message.find("core 0 commit #0"), std::string::npos)
        << d.message;
    EXPECT_NE(d.message.find("labeledValues"), std::string::npos)
        << d.message;

    // Different address: even Shape fails.
    const CommitLog e = buildTwoCore(false, v, 0x10040);
    d = CommitLog::diff(a, e, DiffMode::Shape);
    EXPECT_FALSE(d.equal);
    EXPECT_NE(d.message.find("labeledShape"), std::string::npos)
        << d.message;

    // Missing commit on one side: per-core counts differ.
    CommitLog f(2);
    f.noteLabeledOp(0, CommitOpKind::LabeledStore, 0x10000, 1, &v,
                    sizeof(v));
    f.sealCommit(0, 10);
    d = CommitLog::diff(a, f, DiffMode::Shape);
    EXPECT_FALSE(d.equal);
    EXPECT_NE(d.message.find("core 1 committed 1 vs 0"),
              std::string::npos)
        << d.message;
}

TEST(CommitLog, AbortDiscardsPendingDigestsAndNotifiesListeners)
{
    struct Counting : CommitLog::Listener {
        int commits = 0;
        int aborts = 0;
        void onCommit(const CommitRecord &) override { commits++; }
        void onAbort(CoreId) override { aborts++; }
    } counting;

    CommitLog log(1);
    log.addListener(&counting);
    const int64_t v = 99;
    log.noteLabeledOp(0, CommitOpKind::LabeledStore, 0x10000, 1, &v,
                      sizeof(v));
    log.abortAttempt(0); // discard the attempt's digests
    log.sealCommit(0, 50);
    log.removeListener(&counting);
    log.sealCommit(0, 60); // not observed: listener removed

    ASSERT_EQ(log.records().size(), 2u);
    const CommitRecord &r = log.records()[0];
    EXPECT_EQ(r.labeledShape, FnvDigest::kBasis);
    EXPECT_EQ(r.labeledValues, FnvDigest::kBasis);
    EXPECT_EQ(r.labeledOps, 0u);
    EXPECT_EQ(counting.commits, 1);
    EXPECT_EQ(counting.aborts, 1);
}

TEST(CommitLog, OperandFlipHookChangesOnlyTheValuesDigest)
{
    const auto build = [](bool flip) {
        CommitLog log(1);
        if (flip)
            log.setTestOperandFlip(0, 0, 0, 2);
        const int64_t v = 7;
        log.noteLabeledOp(0, CommitOpKind::LabeledStore, 0x10000, 1,
                          &v, sizeof(v));
        log.sealCommit(0, 10);
        return log;
    };
    const CommitLog plain = build(false);
    const CommitLog flipped = build(true);
    EXPECT_TRUE(
        CommitLog::diff(plain, flipped, DiffMode::Shape).equal);
    const CommitLogDiff d =
        CommitLog::diff(plain, flipped, DiffMode::PerCore);
    EXPECT_FALSE(d.equal);
    EXPECT_NE(d.message.find("labeledValues"), std::string::npos)
        << d.message;
}

TEST(CommitLog, EnvOverrideForcesRecordingOn)
{
    MachineConfig c = twoCoreConfig();
    c.recordCommits = false;
    {
        Machine off(c);
        EXPECT_EQ(off.commitLog(), nullptr);
    }
    ASSERT_EQ(setenv("COMMTM_RECORD_COMMITS", "1", 1), 0);
    {
        Machine forced(c);
        EXPECT_NE(forced.commitLog(), nullptr);
    }
    ASSERT_EQ(unsetenv("COMMTM_RECORD_COMMITS"), 0);
}

} // namespace
} // namespace commtm
