/**
 * @file
 * Unit tests for the set-associative tag array: lookup, LRU
 * replacement, victim-eligibility predicates, and the deferred-victim
 * insert contract.
 */

#include <gtest/gtest.h>

#include "mem/cache_array.h"
#include "mem/line.h"

namespace commtm {
namespace {

/** Lines that map to set @p set of an array with @p sets sets. */
Addr
lineInSet(uint32_t set, uint32_t sets, uint32_t i)
{
    return Addr(set) + Addr(i) * sets;
}

TEST(CacheArray, MissesOnEmpty)
{
    CacheArray<PrivLine> arr(16, 4);
    EXPECT_EQ(arr.lookup(3), nullptr);
}

TEST(CacheArray, InsertThenHit)
{
    CacheArray<PrivLine> arr(16, 4);
    auto r = arr.insert(3);
    EXPECT_FALSE(r.evicted);
    r.entry->state = PrivState::S;
    ASSERT_NE(arr.lookup(3), nullptr);
    EXPECT_EQ(arr.lookup(3)->state, PrivState::S);
}

TEST(CacheArray, EvictsLruWhenSetFull)
{
    CacheArray<PrivLine> arr(16, 4); // 4 sets x 4 ways
    const uint32_t sets = arr.numSets();
    for (uint32_t i = 0; i < 4; i++)
        arr.insert(lineInSet(0, sets, i));
    // Touch line 0 so it is MRU; the LRU is line 1.
    arr.touch(arr.lookup(lineInSet(0, sets, 0)));
    auto r = arr.insert(lineInSet(0, sets, 4));
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim.line, lineInSet(0, sets, 1));
    EXPECT_EQ(arr.lookup(lineInSet(0, sets, 1)), nullptr);
    EXPECT_NE(arr.lookup(lineInSet(0, sets, 0)), nullptr);
}

TEST(CacheArray, VictimPredicateSkipsIneligible)
{
    CacheArray<PrivLine> arr(8, 4); // 2 sets x 4 ways
    const uint32_t sets = arr.numSets();
    for (uint32_t i = 0; i < 4; i++) {
        auto r = arr.insert(lineInSet(0, sets, i));
        r.entry->state = i == 0 ? PrivState::S : PrivState::U;
    }
    // Only non-U lines may be evicted: line 0 despite being LRU-oldest
    // among eligible (it is the only eligible one).
    auto r = arr.insert(lineInSet(0, sets, 7), [](const PrivLine &e) {
        return e.state != PrivState::U;
    });
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim.line, lineInSet(0, sets, 0));
}

TEST(CacheArray, EraseInvalidates)
{
    CacheArray<PrivLine> arr(16, 4);
    arr.insert(5);
    arr.erase(5);
    EXPECT_EQ(arr.lookup(5), nullptr);
}

TEST(CacheArray, CountInSetAndFindLru)
{
    CacheArray<PrivLine> arr(8, 4);
    const uint32_t sets = arr.numSets();
    for (uint32_t i = 0; i < 3; i++) {
        auto r = arr.insert(lineInSet(1, sets, i));
        r.entry->state = i < 2 ? PrivState::U : PrivState::M;
    }
    const auto is_u = [](const PrivLine &e) {
        return e.state == PrivState::U;
    };
    EXPECT_EQ(arr.countInSet(lineInSet(1, sets, 0), is_u), 2u);
    PrivLine *lru_u = arr.findLruWhere(lineInSet(1, sets, 0), is_u);
    ASSERT_NE(lru_u, nullptr);
    EXPECT_EQ(lru_u->line, lineInSet(1, sets, 0));
}

TEST(CacheArray, ClearEmptiesEverything)
{
    CacheArray<PrivLine> arr(16, 4);
    for (Addr l = 0; l < 8; l++)
        arr.insert(l);
    arr.clear();
    for (Addr l = 0; l < 8; l++)
        EXPECT_EQ(arr.lookup(l), nullptr);
}

TEST(Sharers, SetClearCountFirst)
{
    Sharers s;
    EXPECT_FALSE(s.any());
    s.set(3);
    s.set(70);
    s.set(127);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.test(70));
    EXPECT_EQ(s.first(), 3u);
    EXPECT_FALSE(s.only(3));
    s.clear(3);
    s.clear(70);
    EXPECT_TRUE(s.only(127));
    std::vector<CoreId> seen;
    s.forEach([&](CoreId c) { seen.push_back(c); });
    EXPECT_EQ(seen, (std::vector<CoreId>{127}));
}

} // namespace
} // namespace commtm
