/**
 * @file
 * Integration tests: each full application produces functionally
 * correct results (validated against host-side references) under the
 * baseline HTM, CommTM without gathers, and full CommTM.
 */

#include <gtest/gtest.h>

#include "apps/boruvka.h"
#include "apps/genome.h"
#include "apps/intruder.h"
#include "apps/kmeans.h"
#include "apps/labyrinth.h"
#include "apps/ssca2.h"
#include "apps/vacation.h"
#include "apps/yada.h"

namespace commtm {
namespace {

MachineConfig
cfgFor(SystemMode mode, uint32_t cores)
{
    MachineConfig cfg;
    cfg.numCores = cores;
    cfg.mode = mode;
    return cfg;
}

struct Case {
    SystemMode mode;
    uint32_t threads;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string name;
    switch (info.param.mode) {
      case SystemMode::BaselineHtm:    name = "Baseline"; break;
      case SystemMode::CommTmNoGather: name = "NoGather"; break;
      case SystemMode::CommTm:         name = "CommTM"; break;
    }
    return name + "_" + std::to_string(info.param.threads) + "t";
}

class Apps : public ::testing::TestWithParam<Case>
{
  protected:
    MachineConfig
    machineCfg() const
    {
        return cfgFor(GetParam().mode, GetParam().threads);
    }
    uint32_t threads() const { return GetParam().threads; }
};

TEST_P(Apps, BoruvkaMatchesKruskal)
{
    BoruvkaConfig cfg;
    cfg.numVertices = 512;
    const BoruvkaResult r = runBoruvka(machineCfg(), threads(), cfg);
    EXPECT_EQ(r.mstWeight, r.referenceWeight);
    EXPECT_GT(r.rounds, 0u);
}

TEST_P(Apps, KmeansAssignsEveryPoint)
{
    KmeansConfig cfg;
    cfg.numPoints = 256;
    cfg.maxIters = 4;
    const KmeansResult r = runKmeans(machineCfg(), threads(), cfg);
    EXPECT_TRUE(r.valid(cfg.numPoints));
    EXPECT_GE(r.iterations, 1u);
}

TEST_P(Apps, Ssca2BuildsConsistentAdjacency)
{
    Ssca2Config cfg;
    cfg.scale = 8;
    cfg.edgeFactor = 4;
    const Ssca2Result r = runSsca2(machineCfg(), threads(), cfg);
    EXPECT_TRUE(r.valid());
    EXPECT_GT(r.metadataCount, 0);
}

TEST_P(Apps, GenomeDeduplicatesAndLinks)
{
    GenomeConfig cfg;
    cfg.genomeLength = 1024;
    cfg.numSegments = 2048;
    const GenomeResult r = runGenome(machineCfg(), threads(), cfg);
    EXPECT_EQ(r.uniqueSegments, r.expectedUnique);
    EXPECT_EQ(r.linkedSegments, r.expectedLinked);
    EXPECT_GT(r.tableResizes, 0u); // 2048 draws over 1024 slots resize
}

TEST_P(Apps, VacationConservesInventory)
{
    VacationConfig cfg;
    cfg.relations = 256;
    cfg.numTasks = 512;
    const VacationResult r = runVacation(machineCfg(), threads(), cfg);
    EXPECT_TRUE(r.valid()) << "sold=" << r.unitsSold
                           << " finalFree=" << r.finalFree
                           << " initialFree=" << r.initialFree;
    EXPECT_GT(r.reservationsMade, 0);
}

TEST_P(Apps, IntruderDetectsEveryAttack)
{
    IntruderConfig cfg;
    cfg.numFlows = 96;
    const IntruderResult r = runIntruder(machineCfg(), threads(), cfg);
    EXPECT_TRUE(r.valid())
        << "processed=" << r.fragmentsProcessed << "/"
        << r.fragmentsSent << " flows=" << r.flowsCompleted << "/"
        << r.expectedFlows << " attacks=" << r.attacksDetected << "/"
        << r.expectedAttacks << " leftover=" << r.queueLeftover;
    EXPECT_GT(r.expectedAttacks, 0);
}

TEST_P(Apps, LabyrinthRoutesWithoutOverlap)
{
    LabyrinthConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    cfg.numPaths = 48;
    const LabyrinthResult r = runLabyrinth(machineCfg(), threads(), cfg);
    EXPECT_TRUE(r.valid())
        << "routed=" << r.pathsRouted << " failed=" << r.pathsFailed
        << " cells=" << r.cellsClaimed << " tokens="
        << r.tokensConsumed << " overlapFree=" << r.overlapFree;
    EXPECT_GT(r.pathsRouted, 0u);
}

TEST_P(Apps, YadaRefinesTheWholeForest)
{
    YadaConfig cfg;
    cfg.initialBad = 24;
    cfg.maxDepth = 4;
    const YadaResult r = runYada(machineCfg(), threads(), cfg);
    EXPECT_TRUE(r.valid())
        << "processed=" << r.elementsProcessed << "/"
        << r.expectedElements << " counter=" << r.processedCounter
        << " minQ=" << r.minQuality << "/" << r.expectedMinQuality
        << " dups=" << r.duplicates << " leftover=" << r.queueLeftover;
    EXPECT_GT(r.expectedElements, cfg.initialBad);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndThreads, Apps,
    ::testing::Values(Case{SystemMode::BaselineHtm, 1},
                      Case{SystemMode::BaselineHtm, 8},
                      Case{SystemMode::CommTmNoGather, 8},
                      Case{SystemMode::CommTm, 1},
                      Case{SystemMode::CommTm, 8},
                      Case{SystemMode::CommTm, 16}),
    caseName);

} // namespace
} // namespace commtm
