/**
 * @file
 * Tests for the host-side graph generators and references used by the
 * graph applications.
 */

#include <gtest/gtest.h>

#include <set>

#include "apps/graph.h"

namespace commtm {
namespace {

TEST(Graph, RoadNetworkIsConnected)
{
    for (uint32_t n : {16u, 257u, 1000u}) {
        const HostGraph g = roadNetwork(n, 1);
        EXPECT_EQ(g.numVertices, n);
        EXPECT_TRUE(isConnected(g)) << "n=" << n;
    }
}

TEST(Graph, RoadNetworkHasUniqueWeights)
{
    const HostGraph g = roadNetwork(500, 7);
    std::set<uint64_t> weights;
    for (const Edge &e : g.edges)
        EXPECT_TRUE(weights.insert(e.weight).second);
}

TEST(Graph, RoadNetworkDegreeIsRoadLike)
{
    const HostGraph g = roadNetwork(2000, 3);
    const double avg_degree =
        2.0 * double(g.edges.size()) / double(g.numVertices);
    EXPECT_GT(avg_degree, 1.9); // at least the spanning tree
    EXPECT_LT(avg_degree, 4.0); // sparse, road-like
}

TEST(Graph, RoadNetworkDeterministicPerSeed)
{
    const HostGraph a = roadNetwork(100, 5);
    const HostGraph b = roadNetwork(100, 5);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t i = 0; i < a.edges.size(); i++) {
        EXPECT_EQ(a.edges[i].u, b.edges[i].u);
        EXPECT_EQ(a.edges[i].v, b.edges[i].v);
        EXPECT_EQ(a.edges[i].weight, b.edges[i].weight);
    }
}

TEST(Graph, RmatShapeAndSkew)
{
    const HostGraph g = rmat(10, 8, 11);
    EXPECT_EQ(g.numVertices, 1024u);
    EXPECT_EQ(g.edges.size(), 8192u);
    // R-MAT skew: low-numbered vertices receive many more edges.
    uint64_t low = 0, high = 0;
    for (const Edge &e : g.edges) {
        if (e.u < 512)
            low++;
        else
            high++;
    }
    EXPECT_GT(low, 2 * high);
}

TEST(Graph, KruskalOnKnownGraph)
{
    HostGraph g;
    g.numVertices = 4;
    // Square with one diagonal: MST = 1 + 2 + 3.
    g.edges = {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 10}, {0, 2, 9}};
    EXPECT_EQ(kruskalMstWeight(g), 6u);
}

TEST(Graph, KruskalIgnoresDisconnectedAsPartialForest)
{
    HostGraph g;
    g.numVertices = 4;
    g.edges = {{0, 1, 5}, {2, 3, 7}};
    EXPECT_FALSE(isConnected(g));
    EXPECT_EQ(kruskalMstWeight(g), 12u); // spanning forest weight
}

} // namespace
} // namespace commtm
