/**
 * @file
 * Runtime tests: scheduler determinism, barrier semantics (uneven
 * arrival, early-finishing threads), stats reset, scheduling-quantum
 * invariance of functional results, and cycle accounting.
 */

#include <gtest/gtest.h>

#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

MachineConfig
cfg(uint32_t cores, uint64_t seed = 0x5eed)
{
    MachineConfig c;
    c.numCores = cores;
    c.seed = seed;
    return c;
}

Cycle
runContendedCounter(MachineConfig c, uint32_t threads)
{
    Machine m(c);
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (uint32_t t = 0; t < threads; t++) {
        m.addThread([&](ThreadContext &ctx) {
            for (int i = 0; i < 100; i++)
                counter.add(ctx, 1);
        });
    }
    m.run();
    EXPECT_EQ(counter.peek(m), int64_t(threads) * 100);
    return m.stats().runtimeCycles();
}

TEST(Machine, DeterministicAcrossRuns)
{
    const Cycle a = runContendedCounter(cfg(8), 8);
    const Cycle b = runContendedCounter(cfg(8), 8);
    EXPECT_EQ(a, b);
}

TEST(Machine, SeedChangesScheduleButNotResult)
{
    // Functional correctness is seed-independent (checked inside);
    // timing may differ.
    runContendedCounter(cfg(8, 1), 8);
    runContendedCounter(cfg(8, 2), 8);
}

TEST(Machine, QuantumDoesNotAffectFunctionalResults)
{
    for (Cycle q : {1u, 10u, 1000u}) {
        MachineConfig c = cfg(8);
        c.schedQuantum = q;
        runContendedCounter(c, 8);
    }
}

TEST(Machine, BarrierSynchronizesUnevenThreads)
{
    Machine m(cfg(4));
    std::vector<Cycle> after(4);
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            ctx.compute(uint64_t(t) * 1000); // very uneven arrival
            ctx.barrier();
            after[t] = ctx.now();
        });
    }
    m.run();
    // Everyone leaves the barrier at the same cycle: the slowest's.
    for (int t = 1; t < 4; t++)
        EXPECT_EQ(after[t], after[0]);
    EXPECT_GE(after[0], 3000u);
}

TEST(Machine, BarrierToleratesFinishedThreads)
{
    Machine m(cfg(4));
    int released = 0;
    for (int t = 0; t < 4; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (t == 3)
                return; // finishes before ever reaching the barrier
            ctx.compute(10);
            ctx.barrier();
            released++;
        });
    }
    m.run();
    EXPECT_EQ(released, 3);
}

TEST(Machine, ConsecutiveBarriers)
{
    Machine m(cfg(3));
    std::vector<int> order;
    for (int t = 0; t < 3; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            for (int phase = 0; phase < 5; phase++) {
                ctx.compute(uint64_t((t * 7 + phase * 3) % 11) + 1);
                ctx.barrier();
                if (t == 0)
                    order.push_back(phase);
            }
        });
    }
    m.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Machine, ResetStatsClearsCounters)
{
    Machine m(cfg(2));
    const Addr a = m.allocator().allocLines(1);
    for (int t = 0; t < 2; t++) {
        m.addThread([&](ThreadContext &ctx) {
            ctx.txRun([&] { ctx.write<int64_t>(a, 1); });
            ctx.barrier();
        });
    }
    m.run();
    EXPECT_GT(m.stats().aggregateThreads().txCommitted, 0u);
    m.resetStats();
    EXPECT_EQ(m.stats().aggregateThreads().txCommitted, 0u);
    EXPECT_EQ(m.stats().runtimeCycles(), 0u);
    EXPECT_EQ(m.stats().machine.totalL3Gets(), 0u);
}

TEST(Machine, CycleBucketsAreExclusive)
{
    Machine m(cfg(1));
    const Addr a = m.allocator().allocLines(1);
    m.addThread([&](ThreadContext &ctx) {
        ctx.compute(50); // non-tx
        ctx.txRun([&] {
            ctx.compute(30);
            ctx.write<int64_t>(a, 1);
        });
    });
    m.run();
    const ThreadStats agg = m.stats().aggregateThreads();
    EXPECT_GE(agg.nonTxCycles, 50u);
    EXPECT_GE(agg.txCommittedCycles, 30u);
    EXPECT_EQ(agg.txAbortedCycles, 0u);
    EXPECT_EQ(agg.totalCycles(),
              agg.nonTxCycles + agg.txCommittedCycles);
}

TEST(Machine, LatenciesFollowHierarchy)
{
    Machine m(cfg(2));
    const Addr a = m.allocator().allocLines(1);
    Cycle cold = 0, warm = 0;
    m.addThread([&](ThreadContext &ctx) {
        Cycle t0 = ctx.now();
        ctx.read<int64_t>(a); // cold: memory
        cold = ctx.now() - t0;
        t0 = ctx.now();
        ctx.read<int64_t>(a); // warm: L1
        warm = ctx.now() - t0;
    });
    m.run();
    EXPECT_EQ(warm, m.config().l1Latency);
    EXPECT_GT(cold, m.config().memLatency); // memory + L3 + NoC
}

} // namespace
} // namespace commtm
