/**
 * @file
 * Tests for the resizable hash table: functional map semantics,
 * concurrent inserts with duplicates, non-speculative resizing racing
 * transactional inserters, and remaining-space conservation (the
 * conditionally-commutative counter at the heart of genome/vacation).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "lib/hash_table.h"
#include "rt/machine.h"

namespace commtm {
namespace {

class HashTableModes : public ::testing::TestWithParam<SystemMode>
{
  protected:
    MachineConfig
    cfg(uint32_t cores = 8) const
    {
        MachineConfig c;
        c.numCores = cores;
        c.mode = GetParam();
        return c;
    }
};

TEST_P(HashTableModes, BasicMapSemantics)
{
    Machine m(cfg(1));
    const Label b = BoundedCounter::defineLabel(m);
    ResizableHashMap table(m, b, 16, 2.0);
    m.addThread([&](ThreadContext &ctx) {
        EXPECT_TRUE(table.insert(ctx, 1, 100));
        EXPECT_FALSE(table.insert(ctx, 1, 200)); // duplicate
        uint64_t v = 0;
        EXPECT_TRUE(table.lookup(ctx, 1, &v));
        EXPECT_EQ(v, 100u);
        EXPECT_FALSE(table.lookup(ctx, 2, &v));
        EXPECT_TRUE(table.update(ctx, 1, 300));
        EXPECT_TRUE(table.lookup(ctx, 1, &v));
        EXPECT_EQ(v, 300u);
        EXPECT_FALSE(table.update(ctx, 9, 1));
        EXPECT_TRUE(table.erase(ctx, 1));
        EXPECT_FALSE(table.erase(ctx, 1));
        EXPECT_FALSE(table.lookup(ctx, 1, &v));
    });
    m.run();
    EXPECT_EQ(table.peekSize(m), 0u);
}

TEST_P(HashTableModes, UpdateWithIsAtomic)
{
    Machine m(cfg());
    const Label b = BoundedCounter::defineLabel(m);
    ResizableHashMap table(m, b, 64, 2.0);
    // One row with 50 units; 8 threads try to take 10 each.
    std::vector<int64_t> taken(8, 0);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            if (t == 0)
                table.insert(ctx, 7, 50);
            ctx.barrier();
            for (int i = 0; i < 10; i++) {
                const bool got =
                    table.updateWith(ctx, 7, [](uint64_t &v) {
                        if (v == 0)
                            return false;
                        v--;
                        return true;
                    });
                if (got)
                    taken[t]++;
            }
        });
    }
    m.run();
    int64_t total = 0;
    for (auto v : taken)
        total += v;
    EXPECT_EQ(total, 50);
    uint64_t left = 0;
    EXPECT_TRUE(table.peekLookup(m, 7, &left));
    EXPECT_EQ(left, 0u);
}

TEST_P(HashTableModes, ConcurrentInsertsWithDuplicates)
{
    Machine m(cfg());
    const Label b = BoundedCounter::defineLabel(m);
    ResizableHashMap table(m, b, 64, 1.0);
    constexpr uint32_t kKeySpace = 400;
    std::vector<std::vector<uint64_t>> wins(8);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 150; i++) {
                const uint64_t key = 1 + rng.below(kKeySpace);
                if (table.insert(ctx, key, key * 2))
                    wins[t].push_back(key);
            }
        });
    }
    m.run();
    // Each key inserted exactly once across all threads.
    std::unordered_set<uint64_t> unique;
    for (const auto &w : wins) {
        for (uint64_t k : w)
            EXPECT_TRUE(unique.insert(k).second)
                << "key " << k << " inserted twice";
    }
    EXPECT_EQ(table.peekSize(m), unique.size());
    for (uint64_t k : unique) {
        uint64_t v = 0;
        EXPECT_TRUE(table.peekLookup(m, k, &v));
        EXPECT_EQ(v, k * 2);
    }
    // 64 * 1.0 capacity with ~350 unique inserts: must have resized.
    EXPECT_GE(table.resizes(), 2u);
}

TEST_P(HashTableModes, RemainingSpaceConservation)
{
    Machine m(cfg());
    const Label b = BoundedCounter::defineLabel(m);
    const uint32_t initial_buckets = 32;
    const double fill = 1.5;
    ResizableHashMap table(m, b, initial_buckets, fill);
    for (int t = 0; t < 8; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < 80; i++) {
                const uint64_t key = 1 + rng.below(300);
                if (rng.chance(0.8))
                    table.insert(ctx, key, 1);
                else
                    table.erase(ctx, key);
            }
        });
    }
    m.run();
    // capacity(now) - size == remaining space.
    const uint64_t buckets = table.peekBuckets(m);
    const int64_t capacity = int64_t(fill * double(buckets));
    // Structural invariant: the table never exceeds its capacity.
    EXPECT_LE(table.peekSize(m), uint64_t(capacity));
}

INSTANTIATE_TEST_SUITE_P(AllModes, HashTableModes,
                         ::testing::Values(SystemMode::BaselineHtm,
                                           SystemMode::CommTmNoGather,
                                           SystemMode::CommTm),
                         [](const auto &modes) -> std::string {
                             switch (modes.param) {
                               case SystemMode::BaselineHtm:
                                 return "Baseline";
                               case SystemMode::CommTmNoGather:
                                 return "NoGather";
                               default:
                                 return "CommTM";
                             }
                         });

} // namespace
} // namespace commtm
