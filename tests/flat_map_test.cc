/**
 * @file
 * Unit tests for the flat, deterministic line-address containers
 * (sim/flat_map.h) and the WriteBuffer rebuilt on top of them —
 * including the regression for the cross-line write that used to
 * memcpy past the 64-byte entry.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "htm/write_buffer.h"
#include "sim/flat_map.h"
#include "sim/rng.h"

namespace commtm {
namespace {

TEST(FlatLineMap, InsertFindErase)
{
    FlatLineMap<int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), nullptr);

    m[7] = 70;
    m[9] = 90;
    EXPECT_EQ(m.size(), 2u);
    EXPECT_TRUE(m.contains(7));
    ASSERT_NE(m.find(9), nullptr);
    EXPECT_EQ(*m.find(9), 90);

    m[7] = 71; // overwrite, not duplicate
    EXPECT_EQ(m.size(), 2u);
    EXPECT_EQ(*m.find(7), 71);

    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_FALSE(m.contains(7));
    EXPECT_EQ(m.size(), 1u);

    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.contains(9));
}

TEST(FlatLineMap, GrowsPastInitialCapacity)
{
    FlatLineMap<uint64_t> m;
    for (Addr k = 0; k < 1000; k++)
        m[k * 3] = k;
    EXPECT_EQ(m.size(), 1000u);
    for (Addr k = 0; k < 1000; k++) {
        ASSERT_NE(m.find(k * 3), nullptr) << k;
        EXPECT_EQ(*m.find(k * 3), k);
    }
}

TEST(FlatLineMap, SortedIterationIsAscending)
{
    FlatLineMap<int> m;
    // Keys chosen to collide under any masking of the low bits.
    const std::vector<Addr> keys = {1024, 1, 4096, 65, 2, 640, 129};
    for (Addr k : keys)
        m[k] = int(k);
    std::vector<Addr> seen;
    m.forEachSorted([&](Addr k, const int &v) {
        EXPECT_EQ(v, int(k));
        seen.push_back(k);
    });
    std::vector<Addr> expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(seen, expect);
    EXPECT_EQ(m.sortedKeys(), expect);
}

/** Randomized cross-check against std::map, exercising the
 *  backward-shift deletion chains. */
TEST(FlatLineMap, MatchesReferenceUnderRandomOps)
{
    FlatLineMap<uint32_t> flat;
    std::map<Addr, uint32_t> ref;
    Rng rng(123);
    for (int op = 0; op < 20000; op++) {
        const Addr key = rng.below(512); // dense: force probe chains
        switch (rng.below(3)) {
          case 0:
          case 1: {
            const uint32_t value = uint32_t(rng.next());
            flat[key] = value;
            ref[key] = value;
            break;
          }
          case 2:
            EXPECT_EQ(flat.erase(key), ref.erase(key) == 1);
            break;
        }
    }
    EXPECT_EQ(flat.size(), ref.size());
    for (const auto &[k, v] : ref) {
        ASSERT_NE(flat.find(k), nullptr) << k;
        EXPECT_EQ(*flat.find(k), v);
    }
    std::vector<Addr> ref_keys;
    for (const auto &[k, v] : ref)
        ref_keys.push_back(k);
    EXPECT_EQ(flat.sortedKeys(), ref_keys);
}

TEST(FlatLineSet, Basics)
{
    FlatLineSet s;
    s.insert(5);
    s.insert(3);
    s.insert(5); // idempotent
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(4));
    std::vector<Addr> seen;
    s.forEachSorted([&](Addr k) { seen.push_back(k); });
    EXPECT_EQ(seen, (std::vector<Addr>{3, 5}));
    EXPECT_TRUE(s.erase(3));
    EXPECT_FALSE(s.contains(3));
    s.clear();
    EXPECT_TRUE(s.empty());
}

// ---------------------------------------------------------------------
// WriteBuffer
// ---------------------------------------------------------------------

/** Regression: an 8-byte write at line offset 60 used to memcpy 4
 *  bytes past the 64-byte entry (and mark mask bytes out of bounds).
 *  It must split across the two lines instead. */
TEST(WriteBuffer, CrossLineWriteSplits)
{
    WriteBuffer wb;
    const Addr base = 0x1000; // line-aligned
    const uint64_t value = 0x1122334455667788ull;
    wb.write(base + 60, &value, sizeof(value));

    EXPECT_EQ(wb.numLines(), 2u);
    EXPECT_TRUE(wb.touches(lineAddr(base)));
    EXPECT_TRUE(wb.touches(lineAddr(base + kLineSize)));

    // Overlay over a zeroed committed view reproduces the full value,
    // reading across the same line boundary.
    uint64_t out = 0;
    wb.overlay(base + 60, &out, sizeof(out));
    EXPECT_EQ(out, value);

    // Only bytes [60, 64) of the first line and [0, 4) of the second
    // are masked.
    int masked = 0;
    wb.forEach([&](Addr line, const WriteBuffer::Entry &e) {
        if (line == lineAddr(base))
            EXPECT_EQ(e.mask, 0xFull << 60);
        else
            EXPECT_EQ(e.mask, 0xFull);
        masked++;
    });
    EXPECT_EQ(masked, 2);
}

TEST(WriteBuffer, OverlayMergesBufferedBytesOnly)
{
    WriteBuffer wb;
    const Addr base = 0x2000;
    const uint32_t buffered = 0xAABBCCDD;
    wb.write(base + 8, &buffered, sizeof(buffered));

    uint8_t view[16];
    std::memset(view, 0x11, sizeof(view));
    wb.overlay(base, view, sizeof(view));
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(view[i], 0x11) << i;
    uint32_t got;
    std::memcpy(&got, view + 8, 4);
    EXPECT_EQ(got, buffered);
    for (int i = 12; i < 16; i++)
        EXPECT_EQ(view[i], 0x11) << i;
}

TEST(WriteBuffer, ForEachVisitsLinesInAddressOrder)
{
    WriteBuffer wb;
    const uint8_t byte = 0xEE;
    for (Addr line : {Addr(9), Addr(2), Addr(700), Addr(41)})
        wb.write(lineBase(line), &byte, 1);
    std::vector<Addr> order;
    wb.forEach([&](Addr line, const WriteBuffer::Entry &) {
        order.push_back(line);
    });
    EXPECT_EQ(order, (std::vector<Addr>{2, 9, 41, 700}));
    wb.clear();
    EXPECT_TRUE(wb.empty());
}

#if COMMTM_FLATMAP_SANITIZE
// Debug-only reference sanitizer (docs/ARCHITECTURE.md Sec. 10.4):
// a find() handle held across any mutation, and a mutation during
// forEach, must trap at the use site instead of silently reading a
// relocated value. In Release these handles are raw pointers and
// these tests compile out with the sanitizer itself.

TEST(FlatMapSanitizerDeathTest, StaleHandleAfterInsertTraps)
{
    FlatLineMap<int> m;
    m[10] = 1;
    auto h = m.find(10);
    ASSERT_TRUE(bool(h));
    EXPECT_EQ(*h, 1);         // fresh handle: fine
    m[11] = 2;                // may grow and relocate every value
    EXPECT_DEATH((void)*h, "FlatLineMap sanitizer: stale");
}

TEST(FlatMapSanitizerDeathTest, StaleHandleAfterEraseTraps)
{
    FlatLineMap<int> m;
    m[10] = 1;
    m[77] = 2;
    auto h = m.find(77);
    m.erase(10);              // backward-shift may move key 77
    EXPECT_DEATH((void)*h, "FlatLineMap sanitizer: stale");
}

TEST(FlatMapSanitizerDeathTest, EmptyHandleDerefTraps)
{
    FlatLineMap<int> m;
    auto h = m.find(123);
    EXPECT_FALSE(bool(h));
    EXPECT_DEATH((void)*h, "FlatLineMap sanitizer: dereference");
}

TEST(FlatMapSanitizerDeathTest, MutationDuringForEachTraps)
{
    FlatLineMap<int> m;
    m[1] = 1;
    m[2] = 2;
    EXPECT_DEATH(m.forEach([&](Addr, const int &) { m[99] = 9; }),
                 "FlatLineMap sanitizer: container mutated during");
}
#endif // COMMTM_FLATMAP_SANITIZE

} // namespace
} // namespace commtm
