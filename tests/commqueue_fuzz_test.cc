/**
 * @file
 * Randomized fuzzing of the CommQueue and GridClaim library layer,
 * in the style of protocol_fuzz_test: tiny caches for maximal
 * eviction pressure, seed-randomized core counts on both sides of
 * the 128-sharer inline/spill boundary, and both conflict-detection
 * schemes.
 *
 * Checking goes through the replay oracle (docs/ARCHITECTURE.md
 * Sec. 9) and the extracted software models (tests/models/): every
 * structure call records one ModelOp against the transaction that
 * committed it, and the recorded commit order is re-executed
 * serially at the end. Because a committed transaction's reads are
 * valid as of its commit under both eager and lazy detection, serial
 * replay is exact in both modes — strictly stronger than the old
 * inline host-order ledgers, which had to relax per-op checks under
 * lazy (txRun's post-commit latency advance yields, so another
 * thread could commit between our commit and our return).
 * COMMTM_FUZZ_SEED_OFFSET shifts every seed (CI oracle leg).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "lib/comm_queue.h"
#include "lib/grid_claim.h"
#include "models/comm_queue_model.h"
#include "models/grid_claim_model.h"
#include "rt/machine.h"
#include "sim/replay_oracle.h"

namespace commtm {
namespace {

/** CI seed randomization: shifts every fuzz seed, 0 by default. */
uint64_t
fuzzSeedOffset()
{
    static const uint64_t offset = [] {
        const char *s = std::getenv("COMMTM_FUZZ_SEED_OFFSET");
        return s ? std::strtoull(s, nullptr, 10) : 0ull;
    }();
    return offset;
}

/** Tiny-cache machine (see protocol_fuzz_test): geometry from
 *  forCores so >128-core seeds also run the scaled mesh. Commit
 *  recording is on for every fuzz machine (observation-only). */
MachineConfig
fuzzConfig(uint64_t seed, uint32_t cores, ConflictDetection detection)
{
    MachineConfig c = MachineConfig::forCores(cores);
    c.numCores = cores;
    c.mode = SystemMode::CommTm;
    c.conflictDetection = detection;
    c.l1SizeKB = 1;  // 2 sets x 8 ways
    c.l2SizeKB = 2;  // 4 sets x 8 ways
    c.l3SizeKB = 32; // 32 sets x 16 ways
    c.seed = seed;
    c.recordCommits = true;
    // Invariant sweeps (Sec. 10): full density (every commit,
    // abort, and drain-loop exit) up to the 128-sharer inline
    // boundary; the spilled-sharer geometries keep periodic +
    // end-of-run sweeps — a whole-machine sweep per access at
    // 130-256 cores multiplies Debug fuzz time ~10x without adding
    // invariant coverage.
    c.checkInvariants = true;
    if (cores <= 128) {
        c.invariantOnTxEnd = true;
        c.invariantOnDrain = true;
    }

    return c;
}

/** Core count for a fuzz seed: randomized over both sides of the
 *  128-sharer inline/spill boundary, pinned per seed. */
uint32_t
fuzzCores(uint64_t seed)
{
    static constexpr uint32_t kCounts[] = {2,   5,   13,  40,
                                           130, 144, 192, 256};
    return kCounts[seed % 8];
}

/** Fewer ops per thread on big machines keeps total work bounded. */
int
fuzzOps(uint32_t cores, int small_machine_ops)
{
    return cores > 128 ? small_machine_ops / 8 : small_machine_ops;
}

class CommQueueFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{
  protected:
    uint64_t
    seed() const
    {
        return std::get<0>(GetParam()) + fuzzSeedOffset();
    }
    ConflictDetection
    detection() const
    {
        return ConflictDetection(std::get<1>(GetParam()));
    }
};

TEST_P(CommQueueFuzz, QueueMatchesMultisetReference)
{
    const uint32_t kCores = fuzzCores(seed());
    const int kOps = fuzzOps(kCores, 200);
    Machine m(fuzzConfig(seed(), kCores, detection()));
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label);

    ReplayOracle oracle(m);
    const uint32_t qm = oracle.addModel(
        std::make_unique<CommQueueModel>(&queue));

    // Unique values (thread << 32 | i) make the model multiset an
    // exact check: every dequeued value was enqueued exactly once.
    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOps; i++) {
                const uint32_t action = uint32_t(rng.below(100));
                if (action < 55) {
                    const uint64_t v =
                        (uint64_t(t) << 32) | uint64_t(i);
                    queue.enqueue(ctx, v);
                    oracle.recordOp(ctx,
                                    CommQueueModel::enqueue(qm, v));
                } else {
                    uint64_t out = 0;
                    const bool got = queue.dequeue(ctx, &out);
                    oracle.recordOp(
                        ctx, CommQueueModel::dequeue(qm, got, out));
                }
            }
        });
    }
    m.run();

    // Serial re-execution: replay the commit order through the
    // multiset model, then diff final states byte-for-byte.
    std::string diag;
    EXPECT_TRUE(oracle.replaySerial(&diag)) << diag;
    // The run must have exercised the U-state machinery.
    EXPECT_GT(m.stats().machine.reductions, 0u);
}

TEST_P(CommQueueFuzz, GridClaimMatchesTokenReference)
{
    // Offset pick: a different core-count schedule than the queue
    // fuzz, still covering >128-core (spilled-sharer) machines.
    const uint32_t kCores = fuzzCores(seed() + 3);
    const int kOps = fuzzOps(kCores, 150);
    Machine m(fuzzConfig(seed() ^ 0xfeedbeef, kCores, detection()));
    const Label label = GridClaim::defineLabel(m);
    // Capacity 3: multi-token cells give the per-byte splitter
    // something to donate, so gathers move tokens too.
    constexpr uint8_t kCapacity = 3;
    GridClaim grid(m, label, 16, 8, kCapacity);

    ReplayOracle oracle(m);
    const uint32_t gm = oracle.addModel(
        std::make_unique<GridClaimModel>(&grid));

    // held[] drives random releases; the exact-token ledger itself
    // lives in GridClaimModel and is re-derived in commit order,
    // which is exact under BOTH detection schemes (this is the wall
    // that pinned conservation and caught the lazy-mode protocol
    // bugs; see src/mem/coherence.cc markSpec / battle and htm.cc
    // lazyArbitrate).
    std::vector<std::vector<uint32_t>> held(kCores);
    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOps; i++) {
                const uint32_t action = uint32_t(rng.below(100));
                if (action < 25 && !held[t].empty()) {
                    const size_t pick = rng.below(held[t].size());
                    const uint32_t cell = held[t][pick];
                    grid.release(ctx, cell);
                    oracle.recordOp(ctx,
                                    GridClaimModel::release(gm, cell));
                    held[t][pick] = held[t].back();
                    held[t].pop_back();
                } else if (action < 75) {
                    const auto cell =
                        uint32_t(rng.below(grid.numCells()));
                    const bool got = grid.claim(ctx, cell);
                    oracle.recordOp(
                        ctx, GridClaimModel::claim(gm, cell, got));
                    if (got)
                        held[t].push_back(cell);
                } else {
                    // Short multi-cell path claim, duplicate-free.
                    const auto base =
                        uint32_t(rng.below(grid.numCells() - 3));
                    const std::vector<uint32_t> cells = {
                        base, base + 1, base + 2};
                    const bool got = grid.claimPath(ctx, cells);
                    oracle.recordOp(ctx, GridClaimModel::claimPath(
                                             gm, cells, got));
                    if (got) {
                        for (uint32_t c : cells)
                            held[t].push_back(c);
                    }
                }
            }
        });
    }
    m.run();

    std::string diag;
    EXPECT_TRUE(oracle.replaySerial(&diag)) << diag;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDetection, CommQueueFuzz,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                         88),
                       ::testing::Values(
                           int(ConflictDetection::Eager),
                           int(ConflictDetection::Lazy))),
    [](const auto &params) {
        return "seed" + std::to_string(std::get<0>(params.param)) +
               (std::get<1>(params.param) ==
                        int(ConflictDetection::Eager)
                    ? "_eager"
                    : "_lazy");
    });

/** Differential cases run eager AND lazy themselves, so they are
 *  parameterized over seeds only. */
class CommQueueDifferential
    : public ::testing::TestWithParam<uint64_t>
{
  protected:
    uint64_t seed() const { return GetParam() + fuzzSeedOffset(); }
};

TEST_P(CommQueueDifferential, EnqueueOnlyEagerLazyAgree)
{
    // Enqueue-only keeps the per-core labeled-op shape stream a pure
    // function of the thread's op sequence (chunk boundaries fall
    // every kChunkCap enqueues on the core's private partial list),
    // so the Shape diff is exact across detection modes; mixed
    // enq/deq outcomes are interleaving-dependent and are covered by
    // the serial-replay cases above instead. The end state is the
    // multiset of all enqueued values — identical by construction,
    // and the check proves neither mode drops or duplicates one.
    //
    // Table-I-sized caches, NOT the tiny fuzz caches: a U eviction
    // forwards a core's partial list to another sharer, resetting
    // its local tail and moving subsequent chunk boundaries — and
    // evictions are timing-dependent, hence detection-mode-dependent.
    // Shape comparability needs the control flow to be a pure
    // function of the op sequence, so the descriptor must stay
    // resident (default caches never evict this working set).
    const uint64_t s = seed();
    const uint32_t kCores = fuzzCores(s + 5);
    const int kOps = fuzzOps(kCores, 96);

    const auto workload = [&](const MachineConfig &cfg) {
        Machine m(cfg);
        const Label label = CommQueue::defineLabel(m);
        CommQueue queue(m, label);
        for (uint32_t t = 0; t < kCores; t++) {
            m.addThread([&, t](ThreadContext &ctx) {
                for (int i = 0; i < kOps; i++) {
                    queue.enqueue(
                        ctx, (uint64_t(t) << 32) | uint64_t(i));
                }
            });
        }
        m.run();
        DifferentialRun out;
        out.log = m.commitLog()->serialize();
        std::vector<uint64_t> vals = queue.peekAll(m);
        std::sort(vals.begin(), vals.end());
        for (uint64_t v : vals) {
            for (int b = 0; b < 8; b++)
                out.endState.push_back(uint8_t(v >> (8 * b)));
        }
        return out;
    };

    MachineConfig base = MachineConfig::forCores(kCores);
    base.numCores = kCores;
    base.mode = SystemMode::CommTm;
    base.seed = s;
    const DifferentialResult res =
        runDifferential(base, workload, DiffMode::Shape);
    EXPECT_TRUE(res.ok) << res.diag;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommQueueDifferential,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

} // namespace
} // namespace commtm
