/**
 * @file
 * Randomized fuzzing of the CommQueue and GridClaim library layer
 * against sequential reference models, in the style of
 * protocol_fuzz_test: tiny caches for maximal eviction pressure,
 * seed-randomized core counts on both sides of the 128-sharer
 * inline/spill boundary, and both conflict-detection schemes. The
 * functional commit order equals host execution order (the simulator
 * is sequential and each op/model-update pair runs without a fiber
 * switch between them), so the models track committed state exactly.
 */

#include <gtest/gtest.h>

#include <set>

#include "lib/comm_queue.h"
#include "lib/grid_claim.h"
#include "rt/machine.h"

namespace commtm {
namespace {

/** Tiny-cache machine (see protocol_fuzz_test): geometry from
 *  forCores so >128-core seeds also run the scaled mesh. */
MachineConfig
fuzzConfig(uint64_t seed, uint32_t cores, ConflictDetection detection)
{
    MachineConfig c = MachineConfig::forCores(cores);
    c.numCores = cores;
    c.mode = SystemMode::CommTm;
    c.conflictDetection = detection;
    c.l1SizeKB = 1;  // 2 sets x 8 ways
    c.l2SizeKB = 2;  // 4 sets x 8 ways
    c.l3SizeKB = 32; // 32 sets x 16 ways
    c.seed = seed;
    return c;
}

/** Core count for a fuzz seed: randomized over both sides of the
 *  128-sharer inline/spill boundary, pinned per seed. */
uint32_t
fuzzCores(uint64_t seed)
{
    static constexpr uint32_t kCounts[] = {2,   5,   13,  40,
                                           130, 144, 192, 256};
    return kCounts[seed % 8];
}

/** Fewer ops per thread on big machines keeps total work bounded. */
int
fuzzOps(uint32_t cores, int small_machine_ops)
{
    return cores > 128 ? small_machine_ops / 8 : small_machine_ops;
}

class CommQueueFuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{
  protected:
    uint64_t seed() const { return std::get<0>(GetParam()); }
    ConflictDetection
    detection() const
    {
        return ConflictDetection(std::get<1>(GetParam()));
    }
};

TEST_P(CommQueueFuzz, QueueMatchesMultisetReference)
{
    const uint32_t kCores = fuzzCores(seed());
    const int kOps = fuzzOps(kCores, 200);
    Machine m(fuzzConfig(seed(), kCores, detection()));
    const Label label = CommQueue::defineLabel(m);
    CommQueue queue(m, label);

    // Unique values (thread << 32 | i) make multiset bookkeeping an
    // exact set check: every dequeued value was enqueued exactly once.
    std::vector<std::vector<uint64_t>> enqueued(kCores), dequeued(kCores);
    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOps; i++) {
                const uint32_t action = uint32_t(rng.below(100));
                if (action < 55) {
                    const uint64_t v =
                        (uint64_t(t) << 32) | uint64_t(i);
                    queue.enqueue(ctx, v);
                    enqueued[t].push_back(v);
                } else {
                    uint64_t out;
                    if (queue.dequeue(ctx, &out))
                        dequeued[t].push_back(out);
                }
            }
        });
    }
    m.run();

    std::multiset<uint64_t> expected;
    for (const auto &ops : enqueued)
        expected.insert(ops.begin(), ops.end());
    for (const auto &ops : dequeued) {
        for (uint64_t v : ops) {
            auto it = expected.find(v);
            ASSERT_NE(it, expected.end())
                << "dequeued a value never enqueued (or twice)";
            expected.erase(it);
        }
    }
    const std::vector<uint64_t> got = queue.peekAll(m);
    const std::multiset<uint64_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected);
    // The run must have exercised the U-state machinery.
    EXPECT_GT(m.stats().machine.reductions, 0u);
}

TEST_P(CommQueueFuzz, GridClaimMatchesTokenReference)
{
    // Offset pick: a different core-count schedule than the queue
    // fuzz, still covering >128-core (spilled-sharer) machines.
    const uint32_t kCores = fuzzCores(seed() + 3);
    const int kOps = fuzzOps(kCores, 150);
    Machine m(fuzzConfig(seed() ^ 0xfeedbeef, kCores, detection()));
    const Label label = GridClaim::defineLabel(m);
    // Capacity 3: multi-token cells give the per-byte splitter
    // something to donate, so gathers move tokens too.
    constexpr uint8_t kCapacity = 3;
    GridClaim grid(m, label, 16, 8, kCapacity);

    // Reference ledger, updated in host order right after each call.
    // Under EAGER detection, per-op results compare exactly against
    // it: any commit that could invalidate an in-flight claim's reads
    // dooms it at access time, so the (read .. commit .. return)
    // window is conflict-free and the ledger at the return equals the
    // functional state at the commit. Under LAZY detection txRun's
    // post-commit latency advance yields, so another thread can
    // commit AND update the ledger between our commit and our return
    // — per-op results are then checked only for the final exact
    // per-cell state (which is what pins conservation and caught the
    // lazy-mode protocol bugs; see src/mem/coherence.cc markSpec /
    // battle and htm.cc lazyArbitrate).
    const bool exact_per_op = detection() == ConflictDetection::Eager;
    std::vector<int> model(grid.numCells(), kCapacity);
    std::vector<std::vector<uint32_t>> held(kCores);
    for (uint32_t t = 0; t < kCores; t++) {
        m.addThread([&, t](ThreadContext &ctx) {
            Rng &rng = ctx.rng();
            for (int i = 0; i < kOps; i++) {
                const uint32_t action = uint32_t(rng.below(100));
                if (action < 25 && !held[t].empty()) {
                    const size_t pick = rng.below(held[t].size());
                    const uint32_t cell = held[t][pick];
                    grid.release(ctx, cell);
                    model[cell]++;
                    held[t][pick] = held[t].back();
                    held[t].pop_back();
                } else if (action < 75) {
                    const auto cell =
                        uint32_t(rng.below(grid.numCells()));
                    const bool got = grid.claim(ctx, cell);
                    if (exact_per_op) {
                        ASSERT_EQ(got, model[cell] > 0)
                            << "claim of cell " << cell
                            << " disagrees with the reference";
                    }
                    if (got) {
                        model[cell]--;
                        held[t].push_back(cell);
                    }
                } else {
                    // Short multi-cell path claim, duplicate-free.
                    const auto base =
                        uint32_t(rng.below(grid.numCells() - 3));
                    const std::vector<uint32_t> cells = {
                        base, base + 1, base + 2};
                    const bool got = grid.claimPath(ctx, cells);
                    // Evaluate the reference AFTER the call: other
                    // threads commit claims during it, and functional
                    // commit order is host execution order, so the
                    // ledger is consistent exactly at the return.
                    const bool all_free = model[cells[0]] > 0 &&
                                          model[cells[1]] > 0 &&
                                          model[cells[2]] > 0;
                    if (exact_per_op) {
                        ASSERT_EQ(got, all_free)
                            << "claimPath at " << base
                            << " disagrees with the reference";
                    }
                    if (got) {
                        for (uint32_t c : cells) {
                            model[c]--;
                            held[t].push_back(c);
                        }
                    }
                }
            }
        });
    }
    m.run();

    for (uint32_t c = 0; c < grid.numCells(); c++) {
        EXPECT_EQ(grid.peekCell(m, c), model[c]) << "cell " << c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDetection, CommQueueFuzz,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                         88),
                       ::testing::Values(
                           int(ConflictDetection::Eager),
                           int(ConflictDetection::Lazy))),
    [](const auto &info) {
        return "seed" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ==
                        int(ConflictDetection::Eager)
                    ? "_eager"
                    : "_lazy");
    });

} // namespace
} // namespace commtm
