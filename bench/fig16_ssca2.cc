/**
 * @file
 * Figs. 16c/17c/18c: ssca2. Shared commutative updates are rare, so the
 * paper reports only +0.2% for CommTM — the "commutativity barely
 * matters here" control case. The interesting check is that CommTM does
 * not hurt.
 */

#include "bench_util.h"

#include "apps/ssca2.h"

namespace commtm {
namespace {

void
BM_Fig16_Ssca2(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    Ssca2Config cfg;
    cfg.scale = 14; // paper: -s16; small scales create artificial contention
    cfg.edgeFactor = 8;
    Ssca2Result r;
    for (auto _ : state)
        r = runSsca2(benchutil::machineCfg(mode, threads), threads, cfg);
    if (!r.valid())
        state.SkipWithError("ssca2 adjacency inconsistent");
    benchutil::reportStats(state, "fig16_ssca2", mode, threads, r.stats);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Ssca2)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::appThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
