/**
 * @file
 * Ablation: reduction-handler cost sensitivity (Sec. III-B4 argues a
 * dedicated shadow thread keeps reductions fast). The reduction-heavy
 * configuration — reference counting on CommTM *without* gathers, where
 * threads whose local value hits zero trigger frequent reductions —
 * runs with increasing per-line reduction costs. CommTM-with-gathers is
 * included at each point to show gathers also insulate against slow
 * reduction hardware.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 8000;
constexpr uint32_t kThreads = 32;

void
BM_Ablation_ReductionCost(benchmark::State &state)
{
    const auto cost = Cycle(state.range(0));
    const auto mode = SystemMode(state.range(1));
    MicroResult r;
    for (auto _ : state) {
        MachineConfig cfg = benchutil::machineCfg(mode);
        cfg.reductionFixedCost = cost;
        r = runRefcountMicro(cfg, kThreads, kTotalOps);
    }
    if (!r.valid)
        state.SkipWithError("refcount validation failed");
    benchutil::reportStats(state, "abl_reduction_cost", r.stats);
    state.counters["reduction_cost"] = double(cost);
    state.SetLabel(std::string(benchutil::modeName(mode)) +
                   " cost=" + std::to_string(cost));
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Ablation_ReductionCost)
    ->ArgsProduct({{0, 8, 64, 512},
                   {int(commtm::SystemMode::CommTmNoGather),
                    int(commtm::SystemMode::CommTm)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
