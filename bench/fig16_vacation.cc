/**
 * @file
 * Figs. 16e/17e/18e: vacation. Travel-reservation database over
 * resizable hash tables; the paper reports +45% for CommTM at 128
 * threads and 2.6x fewer wasted cycles. Like genome, vacation uses
 * gathers (Table II), so the no-gather configuration is included.
 */

#include "bench_util.h"

#include "apps/vacation.h"

namespace commtm {
namespace {

void
BM_Fig16_Vacation(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    VacationConfig cfg;
    cfg.relations = 2048;
    cfg.numTasks = 6144;
    VacationResult r;
    for (auto _ : state)
        r = runVacation(benchutil::machineCfg(mode, threads), threads, cfg);
    if (!r.valid())
        state.SkipWithError("vacation inventory not conserved");
    benchutil::reportStats(state, "fig16_vacation", mode, threads, r.stats);
    state.counters["reservations"] = double(r.reservationsMade);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Vacation)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTmNoGather),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::appThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
