/**
 * @file
 * Perf-baseline file I/O: the exact-counter records behind
 * --check-baseline / --write-baseline (see bench_util.h and
 * docs/BENCHMARKS.md, "Perf baselines and regression checking").
 *
 * Split out of bench_util.h so the regression tests can exercise the
 * parser without linking google-benchmark: this header depends only on
 * the standard library. The benchmark-facing glue (reportStats,
 * benchMain) stays in bench_util.h.
 */

#ifndef COMMTM_BENCH_BASELINE_IO_H
#define COMMTM_BENCH_BASELINE_IO_H

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace commtm {
namespace benchutil {
namespace baseline {

/** Exact counters of one benchmark row. Integers compare exactly;
 *  speedup is a formatted double and compares with a small relative
 *  tolerance (see docs/BENCHMARKS.md). Open-loop service rows
 *  additionally pin exact latency quantiles in simulated cycles
 *  (sim/latency_hist.h bucket bounds, so they are platform-exact);
 *  rows without them — every closed-loop row — neither write nor
 *  check the quantile keys, keeping old baseline files valid. */
struct Entry {
    uint64_t simCycles = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    double speedup = 0.0;
    bool hasQuantiles = false;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
};

/** family -> row label ("Baseline @128t") -> counters. */
using Family = std::map<std::string, Entry>;
using File = std::map<std::string, Family>;

/** Rows recorded by reportStats() in this process, in run order. */
struct Recorded {
    std::string family;
    std::string row;
    Entry entry;
};

inline std::vector<Recorded> &
recordedRows()
{
    static std::vector<Recorded> rows;
    return rows;
}

// --- minimal JSON subset reader (objects, string keys, numbers) ---
// The baseline file is machine-written by --write-baseline; this
// parser accepts exactly that shape (nested objects of numbers) and
// rejects everything else with a position-tagged error.

class Parser
{
  public:
    Parser(const char *begin, const char *end) : p_(begin), end_(end) {}

    bool
    parseFile(File &out, std::string &err)
    {
        skipWs();
        if (!expect('{', err))
            return false;
        skipWs();
        if (peek() == '}')
            return next(), true;
        for (;;) {
            std::string family;
            if (!parseString(family, err) || !expectColon(err))
                return false;
            if (!parseFamily(out[family], err))
                return false;
            skipWs();
            if (peek() == ',') {
                next();
                skipWs();
                continue;
            }
            return expect('}', err);
        }
    }

  private:
    bool
    parseFamily(Family &out, std::string &err)
    {
        skipWs();
        if (!expect('{', err))
            return false;
        skipWs();
        if (peek() == '}')
            return next(), true;
        for (;;) {
            std::string row;
            if (!parseString(row, err) || !expectColon(err))
                return false;
            if (!parseEntry(out[row], err))
                return false;
            skipWs();
            if (peek() == ',') {
                next();
                skipWs();
                continue;
            }
            return expect('}', err);
        }
    }

    bool
    parseEntry(Entry &out, std::string &err)
    {
        skipWs();
        if (!expect('{', err))
            return false;
        for (;;) {
            std::string key;
            if (!parseString(key, err) || !expectColon(err))
                return false;
            // sim_cycles/commits/aborts are exact 64-bit counters and
            // must not detour through double: above 2^53 the nearest
            // representable double differs from the written integer,
            // and the baseline check would compare against a silently
            // rounded value.
            if (key == "sim_cycles") {
                if (!parseUint64(out.simCycles, err))
                    return false;
            } else if (key == "commits") {
                if (!parseUint64(out.commits, err))
                    return false;
            } else if (key == "aborts") {
                if (!parseUint64(out.aborts, err))
                    return false;
            } else if (key == "speedup") {
                if (!parseNumber(out.speedup, err))
                    return false;
            } else if (key == "p50" || key == "p99" || key == "p999") {
                uint64_t *field = key == "p50"
                                      ? &out.p50
                                      : key == "p99" ? &out.p99
                                                     : &out.p999;
                if (!parseUint64(*field, err))
                    return false;
                out.hasQuantiles = true;
            } else {
                // Forward tolerance: a newer writer may pin counters
                // this reader does not know. Any numeric value is
                // skipped; non-numbers still fail (the file is
                // machine-written, so anything else is corruption).
                double ignored = 0.0;
                if (!parseNumber(ignored, err))
                    return false;
            }
            skipWs();
            if (peek() == ',') {
                next();
                skipWs();
                continue;
            }
            return expect('}', err);
        }
    }

    bool
    parseString(std::string &out, std::string &err)
    {
        skipWs();
        if (!expect('"', err))
            return false;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\')
                return fail(err, "escapes are not used in baselines");
            out.push_back(*p_++);
        }
        return expect('"', err);
    }

    /**
     * Copy the number token at p_ into @p buf (NUL-terminated) without
     * reading past end_. strtod/strtoull expect a NUL-terminated
     * string, but the parse buffer is a [begin, end) range with no
     * terminator guarantee: handing p_ to them directly read past the
     * end of a buffer that stops mid-number. Returns the token length,
     * or 0 with @p err set.
     */
    size_t
    numberToken(char *buf, size_t cap, std::string &err)
    {
        size_t len = 0;
        while (p_ + len < end_ &&
               std::strchr("+-0123456789.eE", p_[len])) {
            if (len + 1 >= cap) {
                fail(err, "number token too long");
                return 0;
            }
            buf[len] = p_[len];
            len++;
        }
        if (len == 0) {
            fail(err, "expected a number");
            return 0;
        }
        buf[len] = '\0';
        return len;
    }

    bool
    parseNumber(double &out, std::string &err)
    {
        skipWs();
        char buf[64];
        const size_t len = numberToken(buf, sizeof(buf), err);
        if (len == 0)
            return false;
        char *parse_end = nullptr;
        out = std::strtod(buf, &parse_end);
        if (parse_end != buf + len)
            return fail(err, "expected a number");
        p_ += len;
        return true;
    }

    bool
    parseUint64(uint64_t &out, std::string &err)
    {
        skipWs();
        char buf[64];
        const size_t len = numberToken(buf, sizeof(buf), err);
        if (len == 0)
            return false;
        // The writer emits counters as plain decimal digits; signs,
        // fractions, and exponents mean the value is not an exact
        // uint64 round-trip, so reject rather than round.
        for (size_t i = 0; i < len; i++) {
            if (!std::isdigit(static_cast<unsigned char>(buf[i])))
                return fail(err,
                            "expected an unsigned integer counter");
        }
        errno = 0;
        char *parse_end = nullptr;
        out = std::strtoull(buf, &parse_end, 10);
        if (parse_end != buf + len)
            return fail(err, "expected an unsigned integer counter");
        if (errno == ERANGE)
            return fail(err, "integer counter overflows uint64");
        p_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_)))
            p_++;
    }

    char peek() const { return p_ < end_ ? *p_ : '\0'; }
    void next() { p_++; }

    bool
    expect(char c, std::string &err)
    {
        skipWs();
        if (peek() != c) {
            return fail(err, std::string("expected '") + c + "', got '" +
                                 (p_ < end_ ? std::string(1, *p_) : "EOF") +
                                 "'");
        }
        next();
        return true;
    }

    bool
    expectColon(std::string &err)
    {
        return expect(':', err);
    }

    bool
    fail(std::string &err, const std::string &what)
    {
        err = what;
        return false;
    }

    const char *p_;
    const char *end_;
};

inline bool
load(const std::string &path, File &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    Parser parser(text.data(), text.data() + text.size());
    if (!parser.parseFile(out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

inline bool
save(const std::string &path, const File &file)
{
    std::ofstream out(path);
    if (!out)
        return false;
    char num[64];
    out << "{\n";
    bool first_family = true;
    for (const auto &[family, rows] : file) {
        if (!first_family)
            out << ",\n";
        first_family = false;
        out << "  \"" << family << "\": {\n";
        bool first_row = true;
        for (const auto &[row, e] : rows) {
            if (!first_row)
                out << ",\n";
            first_row = false;
            // %.17g round-trips the double exactly through strtod.
            std::snprintf(num, sizeof(num), "%.17g", e.speedup);
            out << "    \"" << row << "\": {\"sim_cycles\": " << e.simCycles
                << ", \"commits\": " << e.commits
                << ", \"aborts\": " << e.aborts << ", \"speedup\": " << num;
            if (e.hasQuantiles) {
                out << ", \"p50\": " << e.p50 << ", \"p99\": " << e.p99
                    << ", \"p999\": " << e.p999;
            }
            out << "}";
        }
        out << "\n  }";
    }
    out << "\n}\n";
    return bool(out);
}

/** Merge this run's rows into @p file (replacing recorded families). */
inline void
mergeRecorded(File &file)
{
    for (const auto &r : recordedRows())
        file[r.family].erase(r.row); // replaced below; keeps other rows
    for (const auto &r : recordedRows())
        file[r.family][r.row] = r.entry;
}

/**
 * Compare this run's rows against @p file. Counters are exact;
 * speedup uses a 1e-6 relative tolerance and is skipped entirely when
 * @p filtered (a --benchmark_filter run may have skipped the family's
 * reference row, which redefines every speedup in the family).
 */
inline bool
check(const File &file, bool filtered)
{
    bool ok = true;
    size_t checked = 0;
    const auto complain = [&](const Recorded &r, const char *what,
                              const std::string &got,
                              const std::string &want) {
        std::fprintf(stderr,
                     "baseline MISMATCH: [%s] %s: %s = %s, baseline says "
                     "%s\n",
                     r.family.c_str(), r.row.c_str(), what, got.c_str(),
                     want.c_str());
        ok = false;
    };
    for (const auto &r : recordedRows()) {
        const auto fam = file.find(r.family);
        if (fam == file.end()) {
            std::fprintf(stderr,
                         "baseline MISSING family '%s' — regenerate with "
                         "--write-baseline\n",
                         r.family.c_str());
            ok = false;
            continue;
        }
        const auto row = fam->second.find(r.row);
        if (row == fam->second.end()) {
            std::fprintf(stderr,
                         "baseline MISSING row [%s] %s — regenerate with "
                         "--write-baseline\n",
                         r.family.c_str(), r.row.c_str());
            ok = false;
            continue;
        }
        const Entry &want = row->second;
        const Entry &got = r.entry;
        checked++;
        if (got.simCycles != want.simCycles)
            complain(r, "sim_cycles", std::to_string(got.simCycles),
                     std::to_string(want.simCycles));
        if (got.commits != want.commits)
            complain(r, "commits", std::to_string(got.commits),
                     std::to_string(want.commits));
        if (got.aborts != want.aborts)
            complain(r, "aborts", std::to_string(got.aborts),
                     std::to_string(want.aborts));
        // Quantiles compare exactly, but only when the baseline row
        // pins them: a pre-quantile baselines.json still checks
        // cleanly against a quantile-reporting bench (regenerate to
        // start pinning). A baseline that pins them against a row
        // that stopped reporting them is a real regression and fails.
        if (want.hasQuantiles) {
            if (!got.hasQuantiles) {
                complain(r, "quantiles", "absent", "present");
            } else {
                if (got.p50 != want.p50)
                    complain(r, "p50", std::to_string(got.p50),
                             std::to_string(want.p50));
                if (got.p99 != want.p99)
                    complain(r, "p99", std::to_string(got.p99),
                             std::to_string(want.p99));
                if (got.p999 != want.p999)
                    complain(r, "p999", std::to_string(got.p999),
                             std::to_string(want.p999));
            }
        }
        if (!filtered) {
            const double tol =
                1e-6 * std::max(std::fabs(got.speedup),
                                std::fabs(want.speedup));
            if (std::fabs(got.speedup - want.speedup) > tol)
                complain(r, "speedup", std::to_string(got.speedup),
                         std::to_string(want.speedup));
        }
    }
    if (ok) {
        std::fprintf(stderr,
                     "baseline check PASSED: %zu rows exact%s\n", checked,
                     filtered ? " (speedup skipped: filtered run)" : "");
    }
    return ok;
}

} // namespace baseline
} // namespace benchutil
} // namespace commtm

#endif // COMMTM_BENCH_BASELINE_IO_H
