/**
 * @file
 * Open-loop top-K service: every request inserts a scored element
 * into one shared TopK(64) leaderboard — the highest-contention
 * service shape, since all threads hit one descriptor
 * (docs/BENCHMARKS.md, "Open-loop service rows"). Scores put the
 * Zipfian key in the high bits, so hot keys fight for the retained
 * set; baseline HTM serializes every insert while CommTM's
 * commutative heap merges keep tails flat.
 */

#include "svc_util.h"

#include <algorithm>
#include <functional>

#include "lib/topk.h"
#include "rt/machine.h"

namespace commtm {
namespace {

constexpr uint32_t kK = 64;
constexpr uint64_t kZipfItems = 64;
constexpr uint64_t kRequestWork = 48;   // non-tx cycles per request
constexpr double kServiceCycles = 100;  // nominal uncontended latency

void
BM_Svc_Topk(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto det = ConflictDetection(state.range(1));
    const auto arrival = uint32_t(state.range(2));
    const auto threads = uint32_t(state.range(3));

    Machine m(benchutil::machineCfg(mode, det, threads));
    const Label label = TopK::defineLabel(m, kK);
    TopK set(m, label, kK);
    std::vector<std::vector<int64_t>> inserted(threads);

    const OpenLoopConfig cfg =
        benchutil::svcConfig(arrival, kServiceCycles, kZipfItems);
    OpenLoopFrontend fe(
        cfg, threads, [&](ThreadContext &ctx, uint64_t key) {
            ctx.compute(kRequestWork);
            // Key in the high bits, per-thread random tiebreak below:
            // hot keys contend for the same region of the retained set.
            const int64_t score =
                int64_t((key << 40) | (ctx.rng().next() >> 24));
            set.insert(ctx, score);
            inserted[ctx.id()].push_back(score);
        });
    fe.attach(m);
    for (auto _ : state)
        m.run();

    const ServiceStats svc = fe.totalService();
    // Host reference: the K largest of everything inserted.
    std::vector<int64_t> all;
    for (const auto &v : inserted)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end(), std::greater<int64_t>());
    if (all.size() > kK)
        all.resize(kK);
    std::vector<int64_t> got = set.peekAll(m);
    std::sort(got.begin(), got.end(), std::greater<int64_t>());
    if (got != all)
        state.SkipWithError("topk service validation failed");
    benchutil::reportServiceStats(
        state, "svc_topk",
        benchutil::svcRowName(mode, det, arrival, threads), m.stats(),
        fe.mergedMeasure(), svc);
}

} // namespace
} // namespace commtm

COMMTM_SVC_SWEEP(commtm::BM_Svc_Topk);

COMMTM_BENCH_MAIN();
