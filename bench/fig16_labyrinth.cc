/**
 * @file
 * labyrinth (STAMP port beyond the paper's five applications): grid
 * routing with all-or-nothing path claims on a GridClaim table. On the
 * baseline HTM every claim transaction conflicts at cache-line
 * granularity (64 cells per line); GridClaim's per-cell tokens make
 * claims of different cells commute, so only true cell overlaps
 * serialize. Each system runs under both eager and lazy conflict
 * detection; all rows carry checked-in exact-counter baselines.
 */

#include "bench_util.h"

#include "apps/labyrinth.h"

namespace commtm {
namespace {

void
BM_Fig16_Labyrinth(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto detection = ConflictDetection(state.range(1));
    const auto threads = uint32_t(state.range(2));
    LabyrinthConfig cfg;
    cfg.width = 128; // scaled down from STAMP's 512x512 maze (see docs)
    cfg.height = 128;
    cfg.numPaths = 1024;
    cfg.maxDisp = 8; // short routes: the grid stays undersubscribed
    LabyrinthResult r;
    for (auto _ : state)
        r = runLabyrinth(
            benchutil::machineCfg(mode, detection, threads), threads,
            cfg);
    if (!r.valid())
        state.SkipWithError("labyrinth token/overlap mismatch");
    benchutil::reportStats(state, "fig16_labyrinth",
                           benchutil::rowName(mode, detection,
                                              threads),
                           r.stats);
    state.counters["routed"] = double(r.pathsRouted);
    state.counters["cells"] = double(r.cellsClaimed);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Labyrinth)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)},
                   {1, 32, 128}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
