/**
 * @file
 * Figs. 16b/17b/18b and 19b: kmeans. The paper's strongest result:
 * commutative FP-ADD centroid updates give CommTM 3.4x over the
 * baseline at 128 threads, 25x fewer wasted cycles, and 45% fewer
 * L3 GET requests.
 */

#include "bench_util.h"

#include "apps/kmeans.h"

namespace commtm {
namespace {

void
BM_Fig16_Kmeans(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    KmeansConfig cfg;
    cfg.numPoints = 2048;
    cfg.maxIters = 4;
    KmeansResult r;
    for (auto _ : state)
        r = runKmeans(benchutil::machineCfg(mode, threads), threads, cfg);
    if (!r.valid(cfg.numPoints))
        state.SkipWithError("kmeans population mismatch");
    benchutil::reportStats(state, "fig16_kmeans", mode, threads, r.stats);
    state.counters["iterations"] = r.iterations;
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Kmeans)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::appThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
