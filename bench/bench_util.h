/**
 * @file
 * Shared benchmark-harness utilities. Every bench binary regenerates
 * one table or figure of the paper: each google-benchmark row is one
 * (system, thread-count) point, with counters carrying the simulated
 * results (cycles, speedup vs. the baseline HTM at 1 thread, abort and
 * traffic breakdowns). Wall time of the rows is simulator host time
 * and is not meaningful; read the counters.
 */

#ifndef COMMTM_BENCH_BENCH_UTIL_H
#define COMMTM_BENCH_BENCH_UTIL_H

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "sim/config.h"
#include "sim/stats.h"

namespace commtm {
namespace benchutil {

inline MachineConfig
machineCfg(SystemMode mode)
{
    MachineConfig cfg; // Table I defaults: 128 cores, 16 tiles, ...
    cfg.mode = mode;
    return cfg;
}

inline const char *
modeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::BaselineHtm:    return "Baseline";
      case SystemMode::CommTmNoGather: return "CommTM-NoGather";
      case SystemMode::CommTm:         return "CommTM";
    }
    return "?";
}

/** Per-figure cache of the reference runtime (baseline HTM, 1 thread).
 *  Rows must be registered baseline-first so the reference fills in
 *  before the other systems report speedups. */
inline double &
referenceCycles(const std::string &family)
{
    static std::map<std::string, double> cache;
    return cache[family];
}

/** Fill the standard counters every figure reports. */
inline void
reportStats(benchmark::State &state, const std::string &family,
            const StatsSnapshot &stats)
{
    const ThreadStats agg = stats.aggregateThreads();
    const double cycles = double(stats.runtimeCycles());
    double &base = referenceCycles(family);
    if (base == 0.0)
        base = cycles;

    state.counters["sim_Mcycles"] = cycles / 1e6;
    state.counters["speedup"] = base / cycles;
    state.counters["commits"] = double(agg.txCommitted);
    state.counters["aborts"] = double(agg.txAborted);

    // Fig. 17-style cycle breakdown.
    const double total = double(agg.totalCycles());
    state.counters["cyc_nonTx%"] =
        total ? 100.0 * double(agg.nonTxCycles) / total : 0;
    state.counters["cyc_committed%"] =
        total ? 100.0 * double(agg.txCommittedCycles) / total : 0;
    state.counters["cyc_wasted%"] =
        total ? 100.0 * double(agg.txAbortedCycles) / total : 0;

    // Fig. 18-style wasted-cycle breakdown.
    const double wasted = double(agg.txAbortedCycles);
    const auto frac = [&](WasteBucket b) {
        return wasted ? 100.0 * double(agg.wastedByCause[size_t(b)]) /
                            wasted
                      : 0.0;
    };
    state.counters["waste_RaW%"] = frac(WasteBucket::ReadAfterWrite);
    state.counters["waste_WaR%"] = frac(WasteBucket::WriteAfterRead);
    state.counters["waste_gather%"] =
        frac(WasteBucket::GatherAfterLabeled);
    state.counters["waste_other%"] = frac(WasteBucket::Others);

    // Fig. 19-style GET breakdown (L2 <-> L3 requests).
    state.counters["GETS"] =
        double(stats.machine.l3Gets[size_t(GetType::GETS)]);
    state.counters["GETX"] =
        double(stats.machine.l3Gets[size_t(GetType::GETX)]);
    state.counters["GETU"] =
        double(stats.machine.l3Gets[size_t(GetType::GETU)]);

    state.counters["labeled_frac"] =
        agg.instrs ? double(agg.labeledInstrs) / double(agg.instrs) : 0;
    state.counters["reductions"] = double(stats.machine.reductions);
    state.counters["gathers"] = double(stats.machine.gathers);
}

/** Thread counts swept in the paper's figures (x-axes of Figs. 9-16). */
inline const std::vector<int64_t> &
threadSweep()
{
    static const std::vector<int64_t> sweep = {1, 2, 4, 8, 16,
                                               32, 64, 96, 128};
    return sweep;
}

/** Reduced sweep for the (slower) full applications. */
inline const std::vector<int64_t> &
appThreadSweep()
{
    static const std::vector<int64_t> sweep = {1, 8, 32, 64, 128};
    return sweep;
}

} // namespace benchutil
} // namespace commtm

#endif // COMMTM_BENCH_BENCH_UTIL_H
