/**
 * @file
 * Shared benchmark-harness utilities. Every bench binary regenerates
 * one table or figure of the paper: each google-benchmark row is one
 * (system, thread-count) point, with counters carrying the simulated
 * results (cycles, speedup vs. the baseline HTM at 1 thread, abort and
 * traffic breakdowns). Wall time of the rows is simulator host time
 * and is not meaningful; read the counters.
 *
 * Perf-baseline subsystem: because every run is a deterministic
 * function of the seed, exact counter values can be checked in
 * (bench/baselines.json) and compared on every CI run. Figure benches
 * use COMMTM_BENCH_MAIN(), which accepts
 *
 *   --check-baseline[=path]   after running, compare each row's
 *                             sim_cycles/commits/aborts (exact) and
 *                             speedup (1e-6 relative) against the
 *                             baseline file; nonzero exit on mismatch.
 *   --write-baseline[=path]   regenerate this binary's families in the
 *                             baseline file, preserving the others.
 *
 * See docs/BENCHMARKS.md ("Perf baselines and regression checking").
 */

#ifndef COMMTM_BENCH_BENCH_UTIL_H
#define COMMTM_BENCH_BENCH_UTIL_H

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/stats.h"

#ifndef COMMTM_BASELINE_FILE
#define COMMTM_BASELINE_FILE "bench/baselines.json"
#endif

namespace commtm {
namespace benchutil {

/**
 * Machine for a bench row. Up to 128 threads this is exactly the
 * Table I machine (so the checked-in baselines are stable); beyond
 * that, geometry scales proportionally via MachineConfig::forCores
 * (8 cores/tile, one bank/tile, smallest square mesh).
 */
inline MachineConfig
machineCfg(SystemMode mode, uint32_t threads = 0)
{
    MachineConfig cfg = MachineConfig::forCores(threads);
    cfg.mode = mode;
    return cfg;
}

inline const char *
modeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::BaselineHtm:    return "Baseline";
      case SystemMode::CommTmNoGather: return "CommTM-NoGather";
      case SystemMode::CommTm:         return "CommTM";
    }
    return "?";
}

/** Machine for a (system, detection) bench row — the eager/lazy
 *  variants the STAMP-port benches sweep. */
inline MachineConfig
machineCfg(SystemMode mode, ConflictDetection detection,
           uint32_t threads)
{
    MachineConfig cfg = machineCfg(mode, threads);
    cfg.conflictDetection = detection;
    return cfg;
}

/** Row label for a (system, detection, threads) bench row: the
 *  baseline file keys on these strings ("CommTM/lazy @128t"), so
 *  every bench must build them identically. */
inline std::string
rowName(SystemMode mode, ConflictDetection detection, uint32_t threads)
{
    std::string row = modeName(mode);
    if (detection == ConflictDetection::Lazy)
        row += "/lazy";
    return row + " @" + std::to_string(threads) + "t";
}

/** Per-figure cache of the reference runtime (baseline HTM, 1 thread).
 *  Rows must be registered baseline-first so the reference fills in
 *  before the other systems report speedups. */
inline double &
referenceCycles(const std::string &family)
{
    static std::map<std::string, double> cache;
    return cache[family];
}

// ---------------------------------------------------------------------
// Baseline recording and checking
// ---------------------------------------------------------------------

namespace baseline {

/** Exact counters of one benchmark row. Integers compare exactly;
 *  speedup is a formatted double and compares with a small relative
 *  tolerance (see docs/BENCHMARKS.md). */
struct Entry {
    uint64_t simCycles = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    double speedup = 0.0;
};

/** family -> row label ("Baseline @128t") -> counters. */
using Family = std::map<std::string, Entry>;
using File = std::map<std::string, Family>;

/** Rows recorded by reportStats() in this process, in run order. */
struct Recorded {
    std::string family;
    std::string row;
    Entry entry;
};

inline std::vector<Recorded> &
recordedRows()
{
    static std::vector<Recorded> rows;
    return rows;
}

// --- minimal JSON subset reader (objects, string keys, numbers) ---
// The baseline file is machine-written by --write-baseline; this
// parser accepts exactly that shape (nested objects of numbers) and
// rejects everything else with a position-tagged error.

class Parser
{
  public:
    Parser(const char *begin, const char *end) : p_(begin), end_(end) {}

    bool
    parseFile(File &out, std::string &err)
    {
        skipWs();
        if (!expect('{', err))
            return false;
        skipWs();
        if (peek() == '}')
            return next(), true;
        for (;;) {
            std::string family;
            if (!parseString(family, err) || !expectColon(err))
                return false;
            if (!parseFamily(out[family], err))
                return false;
            skipWs();
            if (peek() == ',') {
                next();
                skipWs();
                continue;
            }
            return expect('}', err);
        }
    }

  private:
    bool
    parseFamily(Family &out, std::string &err)
    {
        skipWs();
        if (!expect('{', err))
            return false;
        skipWs();
        if (peek() == '}')
            return next(), true;
        for (;;) {
            std::string row;
            if (!parseString(row, err) || !expectColon(err))
                return false;
            if (!parseEntry(out[row], err))
                return false;
            skipWs();
            if (peek() == ',') {
                next();
                skipWs();
                continue;
            }
            return expect('}', err);
        }
    }

    bool
    parseEntry(Entry &out, std::string &err)
    {
        skipWs();
        if (!expect('{', err))
            return false;
        for (;;) {
            std::string key;
            double value = 0;
            if (!parseString(key, err) || !expectColon(err) ||
                !parseNumber(value, err))
                return false;
            if (key == "sim_cycles")
                out.simCycles = uint64_t(value);
            else if (key == "commits")
                out.commits = uint64_t(value);
            else if (key == "aborts")
                out.aborts = uint64_t(value);
            else if (key == "speedup")
                out.speedup = value;
            else
                return fail(err, "unknown counter key '" + key + "'");
            skipWs();
            if (peek() == ',') {
                next();
                skipWs();
                continue;
            }
            return expect('}', err);
        }
    }

    bool
    parseString(std::string &out, std::string &err)
    {
        skipWs();
        if (!expect('"', err))
            return false;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            if (*p_ == '\\')
                return fail(err, "escapes are not used in baselines");
            out.push_back(*p_++);
        }
        return expect('"', err);
    }

    bool
    parseNumber(double &out, std::string &err)
    {
        skipWs();
        char *parse_end = nullptr;
        out = std::strtod(p_, &parse_end);
        if (parse_end == p_)
            return fail(err, "expected a number");
        p_ = parse_end;
        return true;
    }

    void
    skipWs()
    {
        while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_)))
            p_++;
    }

    char peek() const { return p_ < end_ ? *p_ : '\0'; }
    void next() { p_++; }

    bool
    expect(char c, std::string &err)
    {
        skipWs();
        if (peek() != c) {
            return fail(err, std::string("expected '") + c + "', got '" +
                                 (p_ < end_ ? std::string(1, *p_) : "EOF") +
                                 "'");
        }
        next();
        return true;
    }

    bool
    expectColon(std::string &err)
    {
        return expect(':', err);
    }

    bool
    fail(std::string &err, const std::string &what)
    {
        err = what;
        return false;
    }

    const char *p_;
    const char *end_;
};

inline bool
load(const std::string &path, File &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    Parser parser(text.data(), text.data() + text.size());
    if (!parser.parseFile(out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

inline bool
save(const std::string &path, const File &file)
{
    std::ofstream out(path);
    if (!out)
        return false;
    char num[64];
    out << "{\n";
    bool first_family = true;
    for (const auto &[family, rows] : file) {
        if (!first_family)
            out << ",\n";
        first_family = false;
        out << "  \"" << family << "\": {\n";
        bool first_row = true;
        for (const auto &[row, e] : rows) {
            if (!first_row)
                out << ",\n";
            first_row = false;
            // %.17g round-trips the double exactly through strtod.
            std::snprintf(num, sizeof(num), "%.17g", e.speedup);
            out << "    \"" << row << "\": {\"sim_cycles\": " << e.simCycles
                << ", \"commits\": " << e.commits
                << ", \"aborts\": " << e.aborts << ", \"speedup\": " << num
                << "}";
        }
        out << "\n  }";
    }
    out << "\n}\n";
    return bool(out);
}

/** Merge this run's rows into @p file (replacing recorded families). */
inline void
mergeRecorded(File &file)
{
    for (const auto &r : recordedRows())
        file[r.family].erase(r.row); // replaced below; keeps other rows
    for (const auto &r : recordedRows())
        file[r.family][r.row] = r.entry;
}

/**
 * Compare this run's rows against @p file. Counters are exact;
 * speedup uses a 1e-6 relative tolerance and is skipped entirely when
 * @p filtered (a --benchmark_filter run may have skipped the family's
 * reference row, which redefines every speedup in the family).
 */
inline bool
check(const File &file, bool filtered)
{
    bool ok = true;
    size_t checked = 0;
    const auto complain = [&](const Recorded &r, const char *what,
                              const std::string &got,
                              const std::string &want) {
        std::fprintf(stderr,
                     "baseline MISMATCH: [%s] %s: %s = %s, baseline says "
                     "%s\n",
                     r.family.c_str(), r.row.c_str(), what, got.c_str(),
                     want.c_str());
        ok = false;
    };
    for (const auto &r : recordedRows()) {
        const auto fam = file.find(r.family);
        if (fam == file.end()) {
            std::fprintf(stderr,
                         "baseline MISSING family '%s' — regenerate with "
                         "--write-baseline\n",
                         r.family.c_str());
            ok = false;
            continue;
        }
        const auto row = fam->second.find(r.row);
        if (row == fam->second.end()) {
            std::fprintf(stderr,
                         "baseline MISSING row [%s] %s — regenerate with "
                         "--write-baseline\n",
                         r.family.c_str(), r.row.c_str());
            ok = false;
            continue;
        }
        const Entry &want = row->second;
        const Entry &got = r.entry;
        checked++;
        if (got.simCycles != want.simCycles)
            complain(r, "sim_cycles", std::to_string(got.simCycles),
                     std::to_string(want.simCycles));
        if (got.commits != want.commits)
            complain(r, "commits", std::to_string(got.commits),
                     std::to_string(want.commits));
        if (got.aborts != want.aborts)
            complain(r, "aborts", std::to_string(got.aborts),
                     std::to_string(want.aborts));
        if (!filtered) {
            const double tol =
                1e-6 * std::max(std::fabs(got.speedup),
                                std::fabs(want.speedup));
            if (std::fabs(got.speedup - want.speedup) > tol)
                complain(r, "speedup", std::to_string(got.speedup),
                         std::to_string(want.speedup));
        }
    }
    if (ok) {
        std::fprintf(stderr,
                     "baseline check PASSED: %zu rows exact%s\n", checked,
                     filtered ? " (speedup skipped: filtered run)" : "");
    }
    return ok;
}

} // namespace baseline

/** Fill the standard counters every figure reports (no row label, no
 *  baseline recording — ablation/extension benches label themselves). */
inline void
reportStats(benchmark::State &state, const std::string &family,
            const StatsSnapshot &stats)
{
    const ThreadStats agg = stats.aggregateThreads();
    const double cycles = double(stats.runtimeCycles());
    double &base = referenceCycles(family);
    if (base == 0.0)
        base = cycles;

    state.counters["sim_Mcycles"] = cycles / 1e6;
    state.counters["speedup"] = base / cycles;
    state.counters["commits"] = double(agg.txCommitted);
    state.counters["aborts"] = double(agg.txAborted);

    // Fig. 17-style cycle breakdown.
    const double total = double(agg.totalCycles());
    state.counters["cyc_nonTx%"] =
        total ? 100.0 * double(agg.nonTxCycles) / total : 0;
    state.counters["cyc_committed%"] =
        total ? 100.0 * double(agg.txCommittedCycles) / total : 0;
    state.counters["cyc_wasted%"] =
        total ? 100.0 * double(agg.txAbortedCycles) / total : 0;

    // Fig. 18-style wasted-cycle breakdown.
    const double wasted = double(agg.txAbortedCycles);
    const auto frac = [&](WasteBucket b) {
        return wasted ? 100.0 * double(agg.wastedByCause[size_t(b)]) /
                            wasted
                      : 0.0;
    };
    state.counters["waste_RaW%"] = frac(WasteBucket::ReadAfterWrite);
    state.counters["waste_WaR%"] = frac(WasteBucket::WriteAfterRead);
    state.counters["waste_gather%"] =
        frac(WasteBucket::GatherAfterLabeled);
    state.counters["waste_other%"] = frac(WasteBucket::Others);

    // Fig. 19-style GET breakdown (L2 <-> L3 requests).
    state.counters["GETS"] =
        double(stats.machine.l3Gets[size_t(GetType::GETS)]);
    state.counters["GETX"] =
        double(stats.machine.l3Gets[size_t(GetType::GETX)]);
    state.counters["GETU"] =
        double(stats.machine.l3Gets[size_t(GetType::GETU)]);

    state.counters["labeled_frac"] =
        agg.instrs ? double(agg.labeledInstrs) / double(agg.instrs) : 0;
    state.counters["reductions"] = double(stats.machine.reductions);
    state.counters["gathers"] = double(stats.machine.gathers);
}

/**
 * Figure-bench variant with an explicit row label: fill the standard
 * counters, label the row, and record the exact counters for the
 * baseline subsystem (--check-baseline / --write-baseline). Used by
 * benches whose rows are not fully described by (mode, threads) —
 * e.g. the eager/lazy variants of the new STAMP workloads.
 */
inline void
reportStats(benchmark::State &state, const std::string &family,
            const std::string &row, const StatsSnapshot &stats)
{
    reportStats(state, family, stats);
    const ThreadStats agg = stats.aggregateThreads();
    state.SetLabel(row);
    baseline::Recorded rec;
    rec.family = family;
    rec.row = row;
    rec.entry.simCycles = stats.runtimeCycles();
    rec.entry.commits = agg.txCommitted;
    rec.entry.aborts = agg.txAborted;
    rec.entry.speedup =
        referenceCycles(family) / double(stats.runtimeCycles());
    baseline::recordedRows().push_back(rec);
}

/**
 * Figure-bench variant: standard "<Mode> @<threads>t" row label.
 */
inline void
reportStats(benchmark::State &state, const std::string &family,
            SystemMode mode, uint32_t threads, const StatsSnapshot &stats)
{
    reportStats(state, family,
                std::string(modeName(mode)) + " @" +
                    std::to_string(threads) + "t",
                stats);
}

/** Thread counts swept in the paper's figures (x-axes of Figs. 9-16). */
inline const std::vector<int64_t> &
threadSweep()
{
    static const std::vector<int64_t> sweep = {1, 2, 4, 8, 16,
                                               32, 64, 96, 128};
    return sweep;
}

/** threadSweep extended past the paper's 128-thread machine, for the
 *  benches that probe the scaled (256-core) geometry and the spilled
 *  sharer representation. */
inline const std::vector<int64_t> &
extendedThreadSweep()
{
    static const std::vector<int64_t> sweep = {1, 2, 4, 8, 16, 32,
                                               64, 96, 128, 256};
    return sweep;
}

/** Reduced sweep for the (slower) full applications. */
inline const std::vector<int64_t> &
appThreadSweep()
{
    static const std::vector<int64_t> sweep = {1, 8, 32, 64, 128};
    return sweep;
}

/**
 * main() for figure benches: google-benchmark plus the
 * --check-baseline / --write-baseline modes described in the file
 * header. Unrecognized flags still error out via benchmark itself.
 */
inline int
benchMain(int argc, char **argv)
{
    bool check_mode = false;
    bool write_mode = false;
    bool filtered = false;
    std::string path = COMMTM_BASELINE_FILE;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value_of = [&](const char *flag) {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0) {
                path = arg.substr(prefix.size());
                return true;
            }
            return arg == flag;
        };
        if (value_of("--check-baseline")) {
            check_mode = true;
        } else if (value_of("--write-baseline")) {
            write_mode = true;
        } else {
            if (arg.rfind("--benchmark_filter", 0) == 0)
                filtered = true;
            args.push_back(argv[i]);
        }
    }
    int bench_argc = int(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (write_mode) {
        if (filtered) {
            // A filtered run latches the wrong speedup reference
            // (referenceCycles fills from the first row that runs),
            // which would poison the written speedups.
            std::fprintf(stderr,
                         "--write-baseline refuses to run with "
                         "--benchmark_filter: run the full sweep\n");
            return 1;
        }
        baseline::File file;
        std::string err;
        baseline::load(path, file, err); // absent/empty file is fine
        baseline::mergeRecorded(file);
        if (!baseline::save(path, file)) {
            std::fprintf(stderr, "cannot write baseline file %s\n",
                         path.c_str());
            return 1;
        }
        std::fprintf(stderr, "baseline updated: %s (%zu rows)\n",
                     path.c_str(),
                     baseline::recordedRows().size());
    }
    if (check_mode) {
        baseline::File file;
        std::string err;
        if (!baseline::load(path, file, err)) {
            std::fprintf(stderr, "baseline check FAILED: %s\n",
                         err.c_str());
            return 1;
        }
        if (!baseline::check(file, filtered))
            return 1;
    }
    return 0;
}

} // namespace benchutil
} // namespace commtm

/** Use instead of BENCHMARK_MAIN() in benches with checked-in baselines. */
#define COMMTM_BENCH_MAIN()                                               \
    int main(int argc, char **argv)                                       \
    {                                                                     \
        return commtm::benchutil::benchMain(argc, argv);                  \
    }

#endif // COMMTM_BENCH_BENCH_UTIL_H
