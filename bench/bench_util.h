/**
 * @file
 * Shared benchmark-harness utilities. Every bench binary regenerates
 * one table or figure of the paper: each google-benchmark row is one
 * (system, thread-count) point, with counters carrying the simulated
 * results (cycles, speedup vs. the baseline HTM at 1 thread, abort and
 * traffic breakdowns). Wall time of the rows is simulator host time
 * and is not meaningful; read the counters.
 *
 * Perf-baseline subsystem: because every run is a deterministic
 * function of the seed, exact counter values can be checked in
 * (bench/baselines.json) and compared on every CI run. Figure benches
 * use COMMTM_BENCH_MAIN(), which accepts
 *
 *   --check-baseline[=path]   after running, compare each row's
 *                             sim_cycles/commits/aborts (exact) and
 *                             speedup (1e-6 relative) against the
 *                             baseline file; nonzero exit on mismatch.
 *   --write-baseline[=path]   regenerate this binary's families in the
 *                             baseline file, preserving the others.
 *
 * See docs/BENCHMARKS.md ("Perf baselines and regression checking").
 */

#ifndef COMMTM_BENCH_BENCH_UTIL_H
#define COMMTM_BENCH_BENCH_UTIL_H

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline_io.h"
#include "rt/open_loop.h"
#include "sim/config.h"
#include "sim/latency_hist.h"
#include "sim/stats.h"

#ifndef COMMTM_BASELINE_FILE
#define COMMTM_BASELINE_FILE "bench/baselines.json"
#endif

namespace commtm {
namespace benchutil {

/**
 * Machine for a bench row. Up to 128 threads this is exactly the
 * Table I machine (so the checked-in baselines are stable); beyond
 * that, geometry scales proportionally via MachineConfig::forCores
 * (8 cores/tile, one bank/tile, smallest square mesh).
 */
inline MachineConfig
machineCfg(SystemMode mode, uint32_t threads = 0)
{
    MachineConfig cfg = MachineConfig::forCores(threads);
    cfg.mode = mode;
    return cfg;
}

inline const char *
modeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::BaselineHtm:    return "Baseline";
      case SystemMode::CommTmNoGather: return "CommTM-NoGather";
      case SystemMode::CommTm:         return "CommTM";
    }
    return "?";
}

/** Machine for a (system, detection) bench row — the eager/lazy
 *  variants the STAMP-port benches sweep. */
inline MachineConfig
machineCfg(SystemMode mode, ConflictDetection detection,
           uint32_t threads)
{
    MachineConfig cfg = machineCfg(mode, threads);
    cfg.conflictDetection = detection;
    return cfg;
}

/** Row label for a (system, detection, threads) bench row: the
 *  baseline file keys on these strings ("CommTM/lazy @128t"), so
 *  every bench must build them identically. */
inline std::string
rowName(SystemMode mode, ConflictDetection detection, uint32_t threads)
{
    std::string row = modeName(mode);
    if (detection == ConflictDetection::Lazy)
        row += "/lazy";
    return row + " @" + std::to_string(threads) + "t";
}

/** Per-figure cache of the reference runtime (baseline HTM, 1 thread).
 *  Rows must be registered baseline-first so the reference fills in
 *  before the other systems report speedups. */
inline double &
referenceCycles(const std::string &family)
{
    static std::map<std::string, double> cache;
    return cache[family];
}

// ---------------------------------------------------------------------
// Baseline recording and checking: the Entry/File types, the JSON
// parser, and load/save/check live in baseline_io.h (benchmark-free,
// so tests/bench_baseline_test.cc links them without google-benchmark).
// ---------------------------------------------------------------------

/** Fill the standard counters every figure reports (no row label, no
 *  baseline recording — ablation/extension benches label themselves). */
inline void
reportStats(benchmark::State &state, const std::string &family,
            const StatsSnapshot &stats)
{
    const ThreadStats agg = stats.aggregateThreads();
    const double cycles = double(stats.runtimeCycles());
    double &base = referenceCycles(family);
    if (base == 0.0)
        base = cycles;

    state.counters["sim_Mcycles"] = cycles / 1e6;
    state.counters["speedup"] = base / cycles;
    state.counters["commits"] = double(agg.txCommitted);
    state.counters["aborts"] = double(agg.txAborted);

    // Fig. 17-style cycle breakdown.
    const double total = double(agg.totalCycles());
    state.counters["cyc_nonTx%"] =
        total ? 100.0 * double(agg.nonTxCycles) / total : 0;
    state.counters["cyc_committed%"] =
        total ? 100.0 * double(agg.txCommittedCycles) / total : 0;
    state.counters["cyc_wasted%"] =
        total ? 100.0 * double(agg.txAbortedCycles) / total : 0;

    // Fig. 18-style wasted-cycle breakdown.
    const double wasted = double(agg.txAbortedCycles);
    const auto frac = [&](WasteBucket b) {
        return wasted ? 100.0 * double(agg.wastedByCause[size_t(b)]) /
                            wasted
                      : 0.0;
    };
    state.counters["waste_RaW%"] = frac(WasteBucket::ReadAfterWrite);
    state.counters["waste_WaR%"] = frac(WasteBucket::WriteAfterRead);
    state.counters["waste_gather%"] =
        frac(WasteBucket::GatherAfterLabeled);
    state.counters["waste_other%"] = frac(WasteBucket::Others);

    // Fig. 19-style GET breakdown (L2 <-> L3 requests).
    state.counters["GETS"] =
        double(stats.machine.l3Gets[size_t(GetType::GETS)]);
    state.counters["GETX"] =
        double(stats.machine.l3Gets[size_t(GetType::GETX)]);
    state.counters["GETU"] =
        double(stats.machine.l3Gets[size_t(GetType::GETU)]);

    state.counters["labeled_frac"] =
        agg.instrs ? double(agg.labeledInstrs) / double(agg.instrs) : 0;
    state.counters["reductions"] = double(stats.machine.reductions);
    state.counters["gathers"] = double(stats.machine.gathers);
}

/**
 * Figure-bench variant with an explicit row label: fill the standard
 * counters, label the row, and record the exact counters for the
 * baseline subsystem (--check-baseline / --write-baseline). Used by
 * benches whose rows are not fully described by (mode, threads) —
 * e.g. the eager/lazy variants of the new STAMP workloads.
 */
inline void
reportStats(benchmark::State &state, const std::string &family,
            const std::string &row, const StatsSnapshot &stats)
{
    reportStats(state, family, stats);
    const ThreadStats agg = stats.aggregateThreads();
    state.SetLabel(row);
    baseline::Recorded rec;
    rec.family = family;
    rec.row = row;
    rec.entry.simCycles = stats.runtimeCycles();
    rec.entry.commits = agg.txCommitted;
    rec.entry.aborts = agg.txAborted;
    rec.entry.speedup =
        referenceCycles(family) / double(stats.runtimeCycles());
    baseline::recordedRows().push_back(rec);
}

/**
 * Open-loop service-bench variant: the standard counters plus the
 * measurement-window latency quantiles (simulated cycles, exact) and
 * the queueing outcomes, with p50/p99/p999 recorded into the baseline
 * row (docs/BENCHMARKS.md, "Open-loop service rows"). @p hist must be
 * the measurement-window merge — warmup requests are excluded by
 * construction (rt/open_loop.h).
 */
inline void
reportServiceStats(benchmark::State &state, const std::string &family,
                   const std::string &row, const StatsSnapshot &stats,
                   const LatencyHistogram &hist,
                   const ServiceStats &svc)
{
    reportStats(state, family, row, stats);
    state.counters["p50_cyc"] = double(hist.p50());
    state.counters["p99_cyc"] = double(hist.p99());
    state.counters["p999_cyc"] = double(hist.p999());
    state.counters["admitted"] = double(svc.admitted);
    state.counters["dropped"] = double(svc.dropped);
    state.counters["qdepth_max"] = double(svc.maxDepth);
    baseline::Entry &entry = baseline::recordedRows().back().entry;
    entry.hasQuantiles = true;
    entry.p50 = hist.p50();
    entry.p99 = hist.p99();
    entry.p999 = hist.p999();
}

/**
 * Figure-bench variant: standard "<Mode> @<threads>t" row label.
 */
inline void
reportStats(benchmark::State &state, const std::string &family,
            SystemMode mode, uint32_t threads, const StatsSnapshot &stats)
{
    reportStats(state, family,
                std::string(modeName(mode)) + " @" +
                    std::to_string(threads) + "t",
                stats);
}

/** Thread counts swept in the paper's figures (x-axes of Figs. 9-16). */
inline const std::vector<int64_t> &
threadSweep()
{
    static const std::vector<int64_t> sweep = {1, 2, 4, 8, 16,
                                               32, 64, 96, 128};
    return sweep;
}

/** threadSweep extended past the paper's 128-thread machine, for the
 *  benches that probe the scaled (256-core) geometry and the spilled
 *  sharer representation. */
inline const std::vector<int64_t> &
extendedThreadSweep()
{
    static const std::vector<int64_t> sweep = {1, 2, 4, 8, 16, 32,
                                               64, 96, 128, 256};
    return sweep;
}

/** Reduced sweep for the (slower) full applications. */
inline const std::vector<int64_t> &
appThreadSweep()
{
    static const std::vector<int64_t> sweep = {1, 8, 32, 64, 128};
    return sweep;
}

/**
 * main() for figure benches: google-benchmark plus the
 * --check-baseline / --write-baseline modes described in the file
 * header. Unrecognized flags still error out via benchmark itself.
 */
inline int
benchMain(int argc, char **argv)
{
    bool check_mode = false;
    bool write_mode = false;
    bool filtered = false;
    std::string path = COMMTM_BASELINE_FILE;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        const auto value_of = [&](const char *flag) {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) == 0) {
                path = arg.substr(prefix.size());
                return true;
            }
            return arg == flag;
        };
        if (value_of("--check-baseline")) {
            check_mode = true;
        } else if (value_of("--write-baseline")) {
            write_mode = true;
        } else {
            if (arg.rfind("--benchmark_filter", 0) == 0)
                filtered = true;
            args.push_back(argv[i]);
        }
    }
    int bench_argc = int(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (write_mode) {
        if (filtered) {
            // A filtered run latches the wrong speedup reference
            // (referenceCycles fills from the first row that runs),
            // which would poison the written speedups.
            std::fprintf(stderr,
                         "--write-baseline refuses to run with "
                         "--benchmark_filter: run the full sweep\n");
            return 1;
        }
        baseline::File file;
        std::string err;
        baseline::load(path, file, err); // absent/empty file is fine
        baseline::mergeRecorded(file);
        if (!baseline::save(path, file)) {
            std::fprintf(stderr, "cannot write baseline file %s\n",
                         path.c_str());
            return 1;
        }
        std::fprintf(stderr, "baseline updated: %s (%zu rows)\n",
                     path.c_str(),
                     baseline::recordedRows().size());
    }
    if (check_mode) {
        baseline::File file;
        std::string err;
        if (!baseline::load(path, file, err)) {
            std::fprintf(stderr, "baseline check FAILED: %s\n",
                         err.c_str());
            return 1;
        }
        if (!baseline::check(file, filtered))
            return 1;
    }
    return 0;
}

} // namespace benchutil
} // namespace commtm

/** Use instead of BENCHMARK_MAIN() in benches with checked-in baselines. */
#define COMMTM_BENCH_MAIN()                                               \
    int main(int argc, char **argv)                                       \
    {                                                                     \
        return commtm::benchutil::benchMain(argc, argv);                  \
    }

#endif // COMMTM_BENCH_BENCH_UTIL_H
