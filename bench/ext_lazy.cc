/**
 * @file
 * Extension: lazy (commit-time) conflict detection — Sec. III-D argues
 * CommTM "applies to HTMs with lazy conflict detection, such as TCC or
 * Bulk". This bench crosses detection scheme x system on the counter
 * and kmeans workloads: CommTM's commutative updates avoid conflicts
 * under either detection scheme, while conventional HTMs serialize
 * under both.
 */

#include "bench_util.h"

#include "apps/kmeans.h"
#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint32_t kThreads = 64;

MachineConfig
cfgFor(SystemMode mode, ConflictDetection detection)
{
    MachineConfig cfg = benchutil::machineCfg(mode);
    cfg.conflictDetection = detection;
    return cfg;
}

void
setRowLabel(benchmark::State &state, SystemMode mode,
            ConflictDetection detection)
{
    state.SetLabel(std::string(benchutil::modeName(mode)) + " / " +
                   (detection == ConflictDetection::Eager ? "eager"
                                                          : "lazy"));
}

void
BM_Ext_Lazy_Counter(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto detection = ConflictDetection(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runCounterMicro(cfgFor(mode, detection), kThreads, 12000);
    if (!r.valid)
        state.SkipWithError("counter validation failed");
    benchutil::reportStats(state, "ext_lazy_counter", r.stats);
    setRowLabel(state, mode, detection);
}

void
BM_Ext_Lazy_Kmeans(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto detection = ConflictDetection(state.range(1));
    KmeansConfig cfg;
    cfg.numPoints = 1024;
    cfg.maxIters = 3;
    KmeansResult r;
    for (auto _ : state)
        r = runKmeans(cfgFor(mode, detection), kThreads, cfg);
    if (!r.valid(cfg.numPoints))
        state.SkipWithError("kmeans population mismatch");
    benchutil::reportStats(state, "ext_lazy_kmeans", r.stats);
    setRowLabel(state, mode, detection);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Ext_Lazy_Counter)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(commtm::BM_Ext_Lazy_Kmeans)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
