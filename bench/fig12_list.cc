/**
 * @file
 * Fig. 12: speedup of the linked-list microbenchmark. (a) 100%
 * enqueues; (b) 50% enqueues / 50% dequeues, randomly interleaved. The
 * baseline allocates head and tail pointers on separate lines to avoid
 * false sharing (Sec. VI); CommTM uses a single reducible descriptor.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 64000; // paper: 10M ops, scaled

void
runListBench(benchmark::State &state, const std::string &family,
             uint32_t enqueue_pct)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    // The mixed run seeds each thread's local list: the paper's 10M-op
    // run builds this standing buffer on its own (failed dequeues tilt
    // the enqueue/dequeue balance); scaled runs must start from it.
    const uint32_t prefill = enqueue_pct < 100 ? 16 : 0;
    MicroResult r;
    for (auto _ : state)
        r = runListMicro(benchutil::machineCfg(mode, threads), threads,
                         kTotalOps, enqueue_pct, prefill);
    if (!r.valid)
        state.SkipWithError("list validation failed");
    benchutil::reportStats(state, family, mode, threads, r.stats);
}

void
BM_Fig12a_Enqueues(benchmark::State &state)
{
    runListBench(state, "fig12a", 100);
}

void
BM_Fig12b_Mixed(benchmark::State &state)
{
    runListBench(state, "fig12b", 50);
}

} // namespace
} // namespace commtm

// Both sweeps run past the paper's 128-thread machine: the 256t rows
// exercise the scaled mesh geometry and the spilled sharer set.
BENCHMARK(commtm::BM_Fig12a_Enqueues)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::extendedThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(commtm::BM_Fig12b_Mixed)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::extendedThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
