/**
 * @file
 * Ablation: timing-model sensitivity to the scheduling quantum (the
 * interleaving granularity of the simulator, docs/ARCHITECTURE.md
 * Sec. 2.1 — zsim's bound-phase analog). If the reported speedups were
 * artifacts of the interleaving granularity, they would move with the
 * quantum;
 * stable results across two orders of magnitude validate the model.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 8000;
constexpr uint32_t kThreads = 32;

void
BM_Ablation_Quantum(benchmark::State &state)
{
    const auto quantum = Cycle(state.range(0));
    const auto mode = SystemMode(state.range(1));
    MicroResult r;
    for (auto _ : state) {
        MachineConfig cfg = benchutil::machineCfg(mode);
        cfg.schedQuantum = quantum;
        r = runCounterMicro(cfg, kThreads, kTotalOps);
    }
    if (!r.valid)
        state.SkipWithError("counter validation failed");
    benchutil::reportStats(state, "abl_quantum", r.stats);
    state.counters["quantum"] = double(quantum);
    state.SetLabel(std::string(benchutil::modeName(mode)) +
                   " quantum=" + std::to_string(quantum));
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Ablation_Quantum)
    ->ArgsProduct({{10, 100, 1000},
                   {int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
