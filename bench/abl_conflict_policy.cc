/**
 * @file
 * Ablation: conflict-resolution policy. The paper's baseline resolves
 * conflicts by timestamp (older wins, NACKs), which avoids the classic
 * eager-HTM pathologies (Sec. III-B1). This ablation compares it with
 * requester-wins on the highly contended counter and mixed-list
 * workloads, for both the baseline HTM and CommTM.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 8000;
constexpr uint32_t kThreads = 32;

MachineConfig
cfgWith(SystemMode mode, ConflictPolicy policy)
{
    MachineConfig cfg = benchutil::machineCfg(mode);
    cfg.conflictPolicy = policy;
    return cfg;
}

void
label(benchmark::State &state, SystemMode mode, ConflictPolicy policy)
{
    state.SetLabel(std::string(benchutil::modeName(mode)) + " / " +
                   (policy == ConflictPolicy::TimestampOlderWins
                        ? "timestamp"
                        : "requester-wins"));
}

void
BM_Ablation_Policy_Counter(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto policy = ConflictPolicy(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runCounterMicro(cfgWith(mode, policy), kThreads, kTotalOps);
    if (!r.valid)
        state.SkipWithError("counter validation failed");
    benchutil::reportStats(state, "abl_policy_counter", r.stats);
    label(state, mode, policy);
}

void
BM_Ablation_Policy_List(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto policy = ConflictPolicy(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runListMicro(cfgWith(mode, policy), kThreads, kTotalOps, 50);
    if (!r.valid)
        state.SkipWithError("list validation failed");
    benchutil::reportStats(state, "abl_policy_list", r.stats);
    label(state, mode, policy);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Ablation_Policy_Counter)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictPolicy::TimestampOlderWins),
                    int(commtm::ConflictPolicy::RequesterWins)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(commtm::BM_Ablation_Policy_List)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictPolicy::TimestampOlderWins),
                    int(commtm::ConflictPolicy::RequesterWins)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
