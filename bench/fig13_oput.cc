/**
 * @file
 * Fig. 13: speedup of the ordered-put (priority update) microbenchmark:
 * random 64-bit key-value pairs replace the stored pair when the new
 * key is lower. The baseline scales partially (only smaller keys cause
 * conflicting writes); CommTM scales near-linearly.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 24000; // paper: 10M, scaled

void
BM_Fig13_OrderedPut(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runOputMicro(benchutil::machineCfg(mode, threads), threads,
                         kTotalOps);
    if (!r.valid)
        state.SkipWithError("ordered-put validation failed");
    benchutil::reportStats(state, "fig13", mode, threads, r.stats);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig13_OrderedPut)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::threadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
