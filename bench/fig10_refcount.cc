/**
 * @file
 * Fig. 10: speedup of the reference-counting microbenchmark (bounded
 * non-negative counters, Sec. IV). Three systems, as in the paper:
 * baseline HTM, CommTM without gather requests (frequent reductions
 * serialize once local values hit zero), and CommTM with gathers.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

// The paper runs 1M references; the scaled run must still be large
// enough that steady-state gather behavior (not the cold-start burst)
// dominates at 128 threads: >= ~60 ops per (thread, object) pair.
constexpr uint64_t kTotalOps = 128000;
constexpr uint32_t kObjects = 16;

void
BM_Fig10_Refcount(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runRefcountMicro(benchutil::machineCfg(mode, threads), threads,
                             kTotalOps, kObjects);
    if (!r.valid)
        state.SkipWithError("refcount validation failed");
    benchutil::reportStats(state, "fig10", mode, threads, r.stats);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig10_Refcount)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTmNoGather),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::threadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
