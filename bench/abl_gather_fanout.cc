/**
 * @file
 * Ablation: subset gathers — the paper's future-work enhancement of
 * load_gather to "query a subset of sharers" (Sec. IV). The directory
 * forwards split requests to only the N sharers nearest the requester.
 * Smaller fanouts cut per-gather latency and split conflicts but lower
 * the yield per gather (more gathers and reduction fallbacks); the
 * sweep maps that tradeoff on the gather-heavy workloads.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint32_t kThreads = 64;

void
BM_Ablation_GatherFanout_Refcount(benchmark::State &state)
{
    const auto fanout = uint32_t(state.range(0));
    MicroResult r;
    for (auto _ : state) {
        MachineConfig cfg = benchutil::machineCfg(SystemMode::CommTm);
        cfg.gatherFanoutLimit = fanout;
        r = runRefcountMicro(cfg, kThreads, 64000);
    }
    if (!r.valid)
        state.SkipWithError("refcount validation failed");
    benchutil::reportStats(state, "abl_fanout_refcount", r.stats);
    state.counters["fanout"] = fanout;
    state.SetLabel(fanout == 0 ? "all sharers (paper)"
                               : "fanout " + std::to_string(fanout));
}

void
BM_Ablation_GatherFanout_List(benchmark::State &state)
{
    const auto fanout = uint32_t(state.range(0));
    MicroResult r;
    for (auto _ : state) {
        MachineConfig cfg = benchutil::machineCfg(SystemMode::CommTm);
        cfg.gatherFanoutLimit = fanout;
        r = runListMicro(cfg, kThreads, 32000, 50, 16);
    }
    if (!r.valid)
        state.SkipWithError("list validation failed");
    benchutil::reportStats(state, "abl_fanout_list", r.stats);
    state.counters["fanout"] = fanout;
    state.SetLabel(fanout == 0 ? "all sharers (paper)"
                               : "fanout " + std::to_string(fanout));
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Ablation_GatherFanout_Refcount)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Arg(48)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(commtm::BM_Ablation_GatherFanout_List)
    ->Arg(0)
    ->Arg(4)
    ->Arg(16)
    ->Arg(48)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
