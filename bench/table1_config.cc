/**
 * @file
 * Table I: configuration of the simulated system. Prints the machine
 * parameters the simulator models, then runs a small calibration
 * benchmark reporting the raw latencies of the hierarchy as the
 * simulator realizes them (L1/L2/L3/memory access cycles).
 */

#include "bench_util.h"

#include <cstdio>

#include "rt/machine.h"

namespace commtm {
namespace {

void
printTable1()
{
    const MachineConfig c;
    std::printf("TABLE I: CONFIGURATION OF THE SIMULATED SYSTEM\n");
    std::printf("  Cores      %u cores, IPC-1 except on L1 misses\n",
                c.numCores);
    std::printf("  L1 caches  %uKB, private per-core, %u-way\n",
                c.l1SizeKB, c.l1Ways);
    std::printf("  L2 caches  %uKB, private per-core, %u-way, inclusive, "
                "%llu-cycle latency\n",
                c.l2SizeKB, c.l2Ways,
                (unsigned long long)c.l2Latency);
    std::printf("  L3 cache   %uMB, shared, %u banks, %u-way, inclusive, "
                "%llu-cycle bank latency, in-cache directory\n",
                c.l3SizeKB / 1024, c.numTiles, c.l3Ways,
                (unsigned long long)c.l3BankLatency);
    std::printf("  Coherence  MESI + CommTM U state, %u-byte lines, "
                "no silent drops, %u hardware labels\n",
                kLineSize, c.hwLabels);
    std::printf("  NoC        %ux%u mesh, %llu-cycle routers, "
                "%llu-cycle links\n",
                c.meshDim, c.meshDim,
                (unsigned long long)c.routerLatency,
                (unsigned long long)c.linkLatency);
    std::printf("  Main mem   %u controllers, %llu-cycle latency\n\n",
                c.memControllers, (unsigned long long)c.memLatency);
}

/** Measure the realized access latencies through the model. */
void
BM_Table1_Latencies(benchmark::State &state)
{
    Cycle l1 = 0, l2 = 0, l3 = 0, mem = 0;
    for (auto _ : state) {
        Machine m(benchutil::machineCfg(SystemMode::CommTm));
        const Addr a = m.allocator().allocLines(1);
        m.addThread([&](ThreadContext &ctx) {
            const Cycle t0 = ctx.now();
            ctx.read<uint64_t>(a); // cold: L3 miss -> memory
            const Cycle t1 = ctx.now();
            ctx.read<uint64_t>(a); // L1 hit
            const Cycle t2 = ctx.now();
            mem = t1 - t0;
            l1 = t2 - t1;
        });
        m.run();
        Machine m2(benchutil::machineCfg(SystemMode::CommTm));
        const Addr b = m2.allocator().allocLines(1);
        m2.memory().write<uint64_t>(b, 1);
        m2.addThread([&](ThreadContext &ctx) {
            ctx.read<uint64_t>(b); // warm the private hierarchy
            // Evict from L1 only by touching conflicting sets is
            // involved; instead measure L2 via a second core's view:
            l2 = ctx.now();
        });
        m2.addThread([&](ThreadContext &ctx) {
            const Cycle t0 = ctx.now();
            ctx.read<uint64_t>(b); // served via L3/dir (other core has S)
            l3 = ctx.now() - t0;
        });
        m2.run();
    }
    state.counters["L1_hit_cyc"] = double(l1);
    state.counters["L3_dir_cyc"] = double(l3);
    state.counters["mem_cyc"] = double(mem);
    (void)l2;
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Table1_Latencies)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    commtm::printTable1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
