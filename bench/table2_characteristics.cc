/**
 * @file
 * Table II: benchmark characteristics — which commutative operations
 * each application uses, whether it uses gathers, and the fraction of
 * labeled instructions (reported in Sec. VII's text). Each row runs
 * the application once on CommTM at 16 threads and reports the
 * measured characteristics as counters.
 */

#include "bench_util.h"

#include <cstdio>

#include "apps/boruvka.h"
#include "apps/genome.h"
#include "apps/kmeans.h"
#include "apps/ssca2.h"
#include "apps/vacation.h"

namespace commtm {
namespace {

constexpr uint32_t kThreads = 16;

void
report(benchmark::State &state, const StatsSnapshot &stats,
       const char *ops, bool uses_gather)
{
    const ThreadStats agg = stats.aggregateThreads();
    state.counters["labeled_frac"] =
        agg.instrs ? double(agg.labeledInstrs) / double(agg.instrs) : 0;
    state.counters["uses_gather"] = uses_gather ? 1 : 0;
    state.counters["gathers_measured"] = double(stats.machine.gathers);
    state.counters["splits"] = double(stats.machine.splits);
    state.counters["reductions"] = double(stats.machine.reductions);
    state.SetLabel(ops);
}

void
BM_Table2_Boruvka(benchmark::State &state)
{
    BoruvkaResult r;
    for (auto _ : state) {
        BoruvkaConfig cfg;
        cfg.numVertices = 2048;
        r = runBoruvka(benchutil::machineCfg(SystemMode::CommTm),
                       kThreads, cfg);
    }
    report(state, r.stats,
           "min-weight edges (64b OPUT); union (64b MIN); "
           "mark edges (64b MAX); MST weight (64b ADD)",
           false);
}

void
BM_Table2_Kmeans(benchmark::State &state)
{
    KmeansResult r;
    for (auto _ : state) {
        KmeansConfig cfg;
        cfg.numPoints = 1024;
        cfg.maxIters = 3;
        r = runKmeans(benchutil::machineCfg(SystemMode::CommTm),
                      kThreads, cfg);
    }
    report(state, r.stats,
           "cluster centers (32b ADD, 32b FP ADD)", false);
}

void
BM_Table2_Ssca2(benchmark::State &state)
{
    Ssca2Result r;
    for (auto _ : state) {
        Ssca2Config cfg;
        cfg.scale = 10;
        r = runSsca2(benchutil::machineCfg(SystemMode::CommTm), kThreads,
                     cfg);
    }
    report(state, r.stats, "global graph metadata (32b ADD)", false);
}

void
BM_Table2_Genome(benchmark::State &state)
{
    GenomeResult r;
    for (auto _ : state) {
        GenomeConfig cfg;
        cfg.genomeLength = 4096;
        cfg.numSegments = 8192;
        r = runGenome(benchutil::machineCfg(SystemMode::CommTm), kThreads,
                      cfg);
    }
    report(state, r.stats,
           "remaining-space counter of a resizable hash table "
           "(bounded 64b ADD)",
           true);
}

void
BM_Table2_Vacation(benchmark::State &state)
{
    VacationResult r;
    for (auto _ : state) {
        VacationConfig cfg;
        cfg.relations = 1024;
        cfg.numTasks = 2048;
        r = runVacation(benchutil::machineCfg(SystemMode::CommTm),
                        kThreads, cfg);
    }
    report(state, r.stats,
           "remaining-space counter of a resizable hash table "
           "(bounded 64b ADD)",
           true);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Table2_Boruvka)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Kmeans)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Ssca2)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Genome)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Vacation)->Iterations(1)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
