/**
 * @file
 * Table II: benchmark characteristics — which commutative operations
 * each application uses, whether it uses gathers, and the fraction of
 * labeled instructions (reported in Sec. VII's text). Each row runs
 * the application once on CommTM at 16 threads and reports the
 * measured characteristics as counters.
 */

#include "bench_util.h"

#include <cstdio>

#include "apps/boruvka.h"
#include "apps/genome.h"
#include "apps/intruder.h"
#include "apps/kmeans.h"
#include "apps/labyrinth.h"
#include "apps/ssca2.h"
#include "apps/vacation.h"
#include "apps/yada.h"

namespace commtm {
namespace {

constexpr uint32_t kThreads = 16;

void
report(benchmark::State &state, const StatsSnapshot &stats,
       const char *ops, bool uses_gather)
{
    const ThreadStats agg = stats.aggregateThreads();
    state.counters["labeled_frac"] =
        agg.instrs ? double(agg.labeledInstrs) / double(agg.instrs) : 0;
    state.counters["uses_gather"] = uses_gather ? 1 : 0;
    state.counters["gathers_measured"] = double(stats.machine.gathers);
    state.counters["splits"] = double(stats.machine.splits);
    state.counters["reductions"] = double(stats.machine.reductions);
    // Abort characterization (read/write-set conflicts observed on
    // CommTM at the measurement thread count).
    state.counters["commits"] = double(agg.txCommitted);
    state.counters["aborts"] = double(agg.txAborted);
    state.SetLabel(ops);
}

void
BM_Table2_Boruvka(benchmark::State &state)
{
    BoruvkaResult r;
    for (auto _ : state) {
        BoruvkaConfig cfg;
        cfg.numVertices = 2048;
        r = runBoruvka(benchutil::machineCfg(SystemMode::CommTm),
                       kThreads, cfg);
    }
    report(state, r.stats,
           "min-weight edges (64b OPUT); union (64b MIN); "
           "mark edges (64b MAX); MST weight (64b ADD)",
           false);
}

void
BM_Table2_Kmeans(benchmark::State &state)
{
    KmeansResult r;
    for (auto _ : state) {
        KmeansConfig cfg;
        cfg.numPoints = 1024;
        cfg.maxIters = 3;
        r = runKmeans(benchutil::machineCfg(SystemMode::CommTm),
                      kThreads, cfg);
    }
    report(state, r.stats,
           "cluster centers (32b ADD, 32b FP ADD)", false);
}

void
BM_Table2_Ssca2(benchmark::State &state)
{
    Ssca2Result r;
    for (auto _ : state) {
        Ssca2Config cfg;
        cfg.scale = 10;
        r = runSsca2(benchutil::machineCfg(SystemMode::CommTm), kThreads,
                     cfg);
    }
    report(state, r.stats, "global graph metadata (32b ADD)", false);
}

void
BM_Table2_Genome(benchmark::State &state)
{
    GenomeResult r;
    for (auto _ : state) {
        GenomeConfig cfg;
        cfg.genomeLength = 4096;
        cfg.numSegments = 8192;
        r = runGenome(benchutil::machineCfg(SystemMode::CommTm), kThreads,
                      cfg);
    }
    report(state, r.stats,
           "remaining-space counter of a resizable hash table "
           "(bounded 64b ADD)",
           true);
}

void
BM_Table2_Vacation(benchmark::State &state)
{
    VacationResult r;
    for (auto _ : state) {
        VacationConfig cfg;
        cfg.relations = 1024;
        cfg.numTasks = 2048;
        r = runVacation(benchutil::machineCfg(SystemMode::CommTm),
                        kThreads, cfg);
    }
    report(state, r.stats,
           "remaining-space counter of a resizable hash table "
           "(bounded 64b ADD)",
           true);
}

void
BM_Table2_Intruder(benchmark::State &state)
{
    IntruderResult r;
    for (auto _ : state) {
        IntruderConfig cfg;
        cfg.numFlows = 256;
        r = runIntruder(benchutil::machineCfg(SystemMode::CommTm),
                        kThreads, cfg);
    }
    report(state, r.stats,
           "fragment stream (chunked FIFO CommQueue); "
           "attack counter (64b ADD); reassembly-table space "
           "(bounded 64b ADD)",
           true);
}

void
BM_Table2_Labyrinth(benchmark::State &state)
{
    LabyrinthResult r;
    for (auto _ : state) {
        LabyrinthConfig cfg;
        cfg.width = 64;
        cfg.height = 64;
        cfg.numPaths = 256;
        cfg.maxDisp = 8;
        r = runLabyrinth(benchutil::machineCfg(SystemMode::CommTm),
                         kThreads, cfg);
    }
    report(state, r.stats,
           "routing tasks (chunked FIFO CommQueue); "
           "grid cell claims (bounded 8b ADD, spatial splitter)",
           true);
}

void
BM_Table2_Yada(benchmark::State &state)
{
    YadaResult r;
    for (auto _ : state) {
        YadaConfig cfg;
        cfg.initialBad = 128;
        cfg.maxDepth = 5;
        r = runYada(benchutil::machineCfg(SystemMode::CommTm), kThreads,
                    cfg);
    }
    report(state, r.stats,
           "bad-element worklist (chunked FIFO CommQueue); "
           "refined counter (64b ADD); quality floor (64b MIN)",
           true);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Table2_Boruvka)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Kmeans)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Ssca2)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Genome)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Vacation)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Intruder)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Labyrinth)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(commtm::BM_Table2_Yada)->Iterations(1)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
