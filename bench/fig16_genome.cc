/**
 * @file
 * Figs. 16d/17d/18d: genome. The resizable hash table's remaining-space
 * counter (bounded ADD with gather) dominates: the paper reports 3.0x
 * for CommTM at 128 threads and 8.3x fewer wasted cycles. The
 * no-gather configuration is included to show gathers matter here
 * (genome is one of the two gather-using applications, Table II).
 */

#include "bench_util.h"

#include "apps/genome.h"

namespace commtm {
namespace {

void
BM_Fig16_Genome(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    GenomeConfig cfg;
    cfg.genomeLength = 8192;
    cfg.numSegments = 16384;
    GenomeResult r;
    for (auto _ : state)
        r = runGenome(benchutil::machineCfg(mode, threads), threads, cfg);
    if (!r.valid())
        state.SkipWithError("genome dedup/link mismatch");
    benchutil::reportStats(state, "fig16_genome", mode, threads, r.stats);
    state.counters["resizes"] = double(r.tableResizes);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Genome)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTmNoGather),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::appThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
