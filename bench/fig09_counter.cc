/**
 * @file
 * Fig. 9: speedup of the counter microbenchmark. Threads perform
 * increments to a single shared counter. The paper's CommTM scales
 * linearly while the baseline HTM serializes all transactions.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 24000; // paper: 10M, scaled to sim speed

void
BM_Fig09_Counter(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runCounterMicro(benchutil::machineCfg(mode, threads), threads,
                            kTotalOps);
    if (!r.valid)
        state.SkipWithError("counter validation failed");
    benchutil::reportStats(state, "fig09", mode, threads, r.stats);
}

} // namespace
} // namespace commtm

// The sweep runs past the paper's 128-thread machine: the 256t rows
// exercise the scaled mesh geometry and the spilled sharer set.
BENCHMARK(commtm::BM_Fig09_Counter)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::extendedThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
