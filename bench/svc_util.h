/**
 * @file
 * Shared shape of the open-loop service benches (svc_counter,
 * svc_list, svc_topk; docs/BENCHMARKS.md, "Open-loop service rows").
 * Each bench sweeps {Baseline, CommTM} x {eager, lazy} x arrival
 * discipline at 64-256 threads; the arrival dimension is an index
 * into svcArrivals(): two Poisson points at 50% and 90% of the
 * bench's nominal per-thread service rate, and one on-off burst
 * point whose ON phases spike to 8x the base rate (2x on average) —
 * the contention-spike shape the tail-latency claim is about.
 */

#ifndef COMMTM_BENCH_SVC_UTIL_H
#define COMMTM_BENCH_SVC_UTIL_H

#include "bench_util.h"

#include "rt/open_loop.h"

namespace commtm {
namespace benchutil {

/** One point of the arrival sweep. loadPct scales the base rate
 *  against the bench's nominal service time. */
struct SvcArrival {
    const char *tag;
    ArrivalPattern::Kind kind;
    uint32_t loadPct;
};

inline const std::vector<SvcArrival> &
svcArrivals()
{
    static const std::vector<SvcArrival> sweep = {
        {"ld50", ArrivalPattern::Kind::Poisson, 50},
        {"ld90", ArrivalPattern::Kind::Poisson, 90},
        {"burst", ArrivalPattern::Kind::Bursty, 50},
    };
    return sweep;
}

/**
 * Arrival pattern for sweep point @p index, rated against
 * @p service_cycles (the bench's nominal uncontended per-request
 * service time). Burst phases average 16 arrivals ON (at 8x the base
 * rate) followed by a 6x-gap OFF silence.
 */
inline ArrivalPattern
svcPattern(uint32_t index, double service_cycles)
{
    const SvcArrival &point = svcArrivals()[index];
    ArrivalPattern pattern;
    pattern.kind = point.kind;
    pattern.meanGap = service_cycles * 100.0 / double(point.loadPct);
    pattern.burstFactor = 8.0;
    pattern.onMean = 2.0 * pattern.meanGap;
    pattern.offMean = 6.0 * pattern.meanGap;
    return pattern;
}

/** Row label: "CommTM/lazy burst @256t" — the baseline file keys on
 *  these, like rowName() for the closed-loop rows. */
inline std::string
svcRowName(SystemMode mode, ConflictDetection detection,
           uint32_t arrival_index, uint32_t threads)
{
    std::string row = modeName(mode);
    if (detection == ConflictDetection::Lazy)
        row += "/lazy";
    row += std::string(" ") + svcArrivals()[arrival_index].tag;
    return row + " @" + std::to_string(threads) + "t";
}

/** Thread counts of the service sweep: the high-contention end the
 *  tail-latency story is about. */
inline const std::vector<int64_t> &
svcThreadSweep()
{
    static const std::vector<int64_t> sweep = {64, 128, 256};
    return sweep;
}

/** Shared open-loop window shape of every service bench. */
inline OpenLoopConfig
svcConfig(uint32_t arrival_index, double service_cycles,
          uint64_t zipf_items)
{
    OpenLoopConfig cfg;
    cfg.pattern = svcPattern(arrival_index, service_cycles);
    cfg.arrivalsPerThread = 48;
    cfg.warmupPerThread = 8;
    cfg.queueDepth = 16;
    cfg.zipfItems = zipf_items;
    cfg.zipfS = 0.99;
    return cfg;
}

} // namespace benchutil
} // namespace commtm

/** Registers the standard service sweep for one benchmark function:
 *  {Baseline, CommTM} x {eager, lazy} x arrival x threads, with the
 *  Baseline/eager/ld50/64t row first (the family speedup reference). */
#define COMMTM_SVC_SWEEP(fn)                                              \
    BENCHMARK(fn)                                                         \
        ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),             \
                        int(commtm::SystemMode::CommTm)},                 \
                       {int(commtm::ConflictDetection::Eager),            \
                        int(commtm::ConflictDetection::Lazy)},            \
                       {0, 1, 2},                                         \
                       commtm::benchutil::svcThreadSweep()})              \
        ->Iterations(1)                                                   \
        ->Unit(benchmark::kMillisecond)

#endif // COMMTM_BENCH_SVC_UTIL_H
