/**
 * @file
 * Fig. 14: speedup of top-K insertion (K = 1000). The baseline
 * serializes on superfluous read-write dependences through the global
 * heap; CommTM builds per-core heaps that merge on reads.
 */

#include "bench_util.h"

#include "apps/micro.h"

namespace commtm {
namespace {

constexpr uint64_t kTotalOps = 48000; // paper: 10M inserts, scaled
constexpr uint32_t kK = 100; // paper: K=1000; K and ops scaled together

void
BM_Fig14_TopK(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    MicroResult r;
    for (auto _ : state)
        r = runTopkMicro(benchutil::machineCfg(mode, threads), threads,
                         kTotalOps, kK);
    if (!r.valid)
        state.SkipWithError("top-K validation failed");
    benchutil::reportStats(state, "fig14", mode, threads, r.stats);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig14_TopK)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::threadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
