/**
 * @file
 * intruder (STAMP port beyond the paper's five applications): packet
 * reassembly driven by a shared CommQueue. The queue descriptor is
 * the contended structure — every capture-phase enqueue and every
 * reassembly-phase dequeue goes through it — so the baseline HTM
 * serializes on it while CommTM keeps per-core partial queues and
 * moves whole chunks with gathers. Each system runs under both eager
 * and lazy (TCC/Bulk-style) conflict detection; all rows carry
 * checked-in exact-counter baselines.
 */

#include "bench_util.h"

#include "apps/intruder.h"

namespace commtm {
namespace {

void
BM_Fig16_Intruder(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto detection = ConflictDetection(state.range(1));
    const auto threads = uint32_t(state.range(2));
    IntruderConfig cfg;
    cfg.numFlows = 1024; // scaled down from STAMP's stream (see docs)
    cfg.maxFrags = 8;
    IntruderResult r;
    for (auto _ : state)
        r = runIntruder(
            benchutil::machineCfg(mode, detection, threads), threads,
            cfg);
    if (!r.valid())
        state.SkipWithError("intruder reassembly/detection mismatch");
    benchutil::reportStats(state, "fig16_intruder",
                           benchutil::rowName(mode, detection,
                                              threads),
                           r.stats);
    state.counters["flows"] = double(r.flowsCompleted);
    state.counters["attacks"] = double(r.attacksDetected);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Intruder)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)},
                   {1, 32, 128}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
