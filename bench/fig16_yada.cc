/**
 * @file
 * yada (STAMP port beyond the paper's five applications): worklist-
 * driven mesh refinement over a CommQueue. The worklist is both
 * producer and consumer hot — every refinement dequeues one element
 * and enqueues its children — so the baseline HTM serializes on the
 * queue descriptor while CommTM keeps the worklist per-core and
 * steals whole chunks via gathers only when a worker runs dry. Each
 * system runs under both eager and lazy conflict detection; all rows
 * carry checked-in exact-counter baselines.
 */

#include "bench_util.h"

#include "apps/yada.h"

namespace commtm {
namespace {

void
BM_Fig16_Yada(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto detection = ConflictDetection(state.range(1));
    const auto threads = uint32_t(state.range(2));
    YadaConfig cfg;
    cfg.initialBad = 512; // scaled down from STAMP's ttimeu inputs
    cfg.maxDepth = 6;
    cfg.cavityCost = 96;
    YadaResult r;
    for (auto _ : state)
        r = runYada(
            benchutil::machineCfg(mode, detection, threads), threads,
            cfg);
    if (!r.valid())
        state.SkipWithError("yada refinement mismatch");
    benchutil::reportStats(state, "fig16_yada",
                           benchutil::rowName(mode, detection,
                                              threads),
                           r.stats);
    state.counters["elements"] = double(r.elementsProcessed);
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Yada)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   {int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)},
                   {1, 32, 128}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
