/**
 * @file
 * Figs. 16a/17a/18a and 19a: boruvka. Speedup vs. threads, core-cycle
 * and wasted-cycle breakdowns (counters cyc_*, waste_*), and the
 * L2<->L3 GET-request breakdown (counters GETS/GETX/GETU). The paper
 * reports +35% for CommTM at 128 threads, all wasted cycles removed,
 * and 13% fewer L3 GETs.
 */

#include "bench_util.h"

#include "apps/boruvka.h"

namespace commtm {
namespace {

void
BM_Fig16_Boruvka(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto threads = uint32_t(state.range(1));
    BoruvkaConfig cfg;
    cfg.numVertices = 4096;
    BoruvkaResult r;
    for (auto _ : state)
        r = runBoruvka(benchutil::machineCfg(mode, threads), threads, cfg);
    if (!r.valid())
        state.SkipWithError("MST weight mismatch vs Kruskal");
    benchutil::reportStats(state, "fig16_boruvka", mode, threads, r.stats);
    state.counters["rounds"] = r.rounds;
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Fig16_Boruvka)
    ->ArgsProduct({{int(commtm::SystemMode::BaselineHtm),
                    int(commtm::SystemMode::CommTm)},
                   commtm::benchutil::appThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
