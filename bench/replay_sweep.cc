/**
 * @file
 * Trace-replay sweep (docs/ARCHITECTURE.md Sec. 11): capture the
 * fig09-shaped counter and fig12-shaped (enqueue-only) list workloads
 * once per thread count, then replay each capture across machine
 * variants — {eager, lazy} conflict detection and a half-size cache
 * geometry — without recompiling or re-running the workload bodies.
 * Every row replays ONE capture deterministically, so its counters
 * are exact and pinned in bench/baselines.json like any figure row.
 *
 * Replay is a timing replay (docs/BENCHMARKS.md). The counter rows
 * are strict: the add body is attempt-invariant (branch-free), so
 * every replay — any detection policy, any geometry — must land all
 * 24000 increments, and on the capture config the counters are
 * bit-identical to the capture run (tests/trace_test.cc pins that).
 * The list rows are determinism pins only: CommList::enqueue
 * branches on the tail it reads, so a capture-time abort can make
 * the recorded (committed) attempt differ from the attempt the
 * capture machine timed first, and the replayed list may diverge
 * from the capture's. What stays guaranteed on any config is that
 * every captured transaction commits exactly once, which is what the
 * list rows validate.
 */

#include "bench_util.h"

#include <map>

#include "lib/counter.h"
#include "lib/linked_list.h"
#include "rt/machine.h"
#include "trace/replay.h"
#include "trace/trace_reader.h"
#include "trace/trace_writer.h"

namespace commtm {
namespace {

constexpr uint64_t kCounterOps = 24000; // fig09's total
constexpr uint64_t kListOps = 16000;    // fig12-shaped, enqueue-only

uint64_t
opsOf(uint32_t thread, uint32_t threads, uint64_t total)
{
    return total / threads + (thread < total % threads ? 1 : 0);
}

/** Capture config: the Table I CommTM machine (eager) under capture.
 *  All replays of one thread count re-execute this one capture. */
MachineConfig
captureCfg(uint32_t threads)
{
    MachineConfig cfg =
        benchutil::machineCfg(SystemMode::CommTm, threads);
    cfg.captureTrace = true;
    return cfg;
}

/** Counter capture, once per thread count (rows share it). */
const Trace &
counterCapture(uint32_t threads)
{
    static std::map<uint32_t, Trace> cache;
    const auto it = cache.find(threads);
    if (it != cache.end())
        return it->second;
    Machine m(captureCfg(threads));
    const Label add = CommCounter::defineLabel(m);
    CommCounter counter(m, add);
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = opsOf(t, threads, kCounterOps);
        m.addThread([&counter, ops](ThreadContext &ctx) {
            for (uint64_t i = 0; i < ops; i++)
                counter.add(ctx, 1);
        });
    }
    m.run();
    Trace &t = cache[threads];
    std::string err;
    if (!TraceReader::parse(m.traceWriter()->serialize(), &t, &err))
        std::fprintf(stderr, "counter capture: %s\n", err.c_str());
    return t;
}

/** Enqueue-only list capture: fig12's structure without its rng
 *  draws, so the captured op stream is a pure function of (config,
 *  thread count) and replayed pointer stores carry capture-time node
 *  addresses (never wild pointers). */
const Trace &
listCapture(uint32_t threads)
{
    static std::map<uint32_t, Trace> cache;
    const auto it = cache.find(threads);
    if (it != cache.end())
        return it->second;
    Machine m(captureCfg(threads));
    const Label label = CommList::defineLabel(m);
    CommList list(m, label, false);
    for (uint32_t t = 0; t < threads; t++) {
        const uint64_t ops = opsOf(t, threads, kListOps);
        m.addThread([&list, t, ops](ThreadContext &ctx) {
            for (uint64_t i = 0; i < ops; i++) {
                list.enqueue(ctx, (uint64_t(t) << 32) | i);
                ctx.compute(8);
            }
        });
    }
    m.run();
    Trace &t = cache[threads];
    std::string err;
    if (!TraceReader::parse(m.traceWriter()->serialize(), &t, &err))
        std::fprintf(stderr, "list capture: %s\n", err.c_str());
    return t;
}

MachineConfig
replayCfg(ConflictDetection detection, uint32_t threads)
{
    return benchutil::machineCfg(SystemMode::CommTm, detection,
                                 threads);
}

void
BM_Replay_Counter(benchmark::State &state)
{
    const auto detection = ConflictDetection(state.range(0));
    const auto threads = uint32_t(state.range(1));
    const Trace &t = counterCapture(threads);
    StatsSnapshot stats;
    for (auto _ : state) {
        MachineConfig cfg = replayCfg(detection, threads);
        Machine m(cfg);
        const Label add = CommCounter::defineLabel(m);
        CommCounter counter(m, add);
        ReplayFrontend fe(t);
        fe.attach(m);
        m.run();
        if (counter.peek(m) != int64_t(kCounterOps))
            state.SkipWithError("counter end-state validation failed");
        stats = m.stats();
    }
    benchutil::reportStats(
        state, "replay",
        benchutil::rowName(SystemMode::CommTm, detection, threads),
        stats);
}

void
BM_Replay_CounterSmallCache(benchmark::State &state)
{
    const auto threads = uint32_t(state.range(0));
    const Trace &t = counterCapture(threads);
    StatsSnapshot stats;
    for (auto _ : state) {
        // Half-size caches at every level: the same capture under
        // real eviction pressure (U evictions, writebacks).
        MachineConfig cfg =
            replayCfg(ConflictDetection::Eager, threads);
        cfg.l1SizeKB /= 2;
        cfg.l2SizeKB /= 2;
        cfg.l3SizeKB /= 2;
        Machine m(cfg);
        const Label add = CommCounter::defineLabel(m);
        CommCounter counter(m, add);
        ReplayFrontend fe(t);
        fe.attach(m);
        m.run();
        if (counter.peek(m) != int64_t(kCounterOps))
            state.SkipWithError("counter end-state validation failed");
        stats = m.stats();
    }
    benchutil::reportStats(state, "replay",
                           "CommTM/small$ @" +
                               std::to_string(threads) + "t",
                           stats);
}

void
BM_Replay_List(benchmark::State &state)
{
    const auto detection = ConflictDetection(state.range(0));
    const auto threads = uint32_t(state.range(1));
    const Trace &t = listCapture(threads);
    StatsSnapshot stats;
    for (auto _ : state) {
        MachineConfig cfg = replayCfg(detection, threads);
        Machine m(cfg);
        (void)CommList::defineLabel(m);
        ReplayFrontend fe(t);
        fe.attach(m);
        m.run();
        stats = m.stats();
        // Determinism pin, not a functional pin (file header): check
        // that each captured transaction committed exactly once.
        if (stats.aggregateThreads().txCommitted != kListOps)
            state.SkipWithError("replayed commit count mismatch");
    }
    std::string row = "list";
    if (detection == ConflictDetection::Lazy)
        row += "/lazy";
    benchutil::reportStats(state, "replay",
                           row + " @" + std::to_string(threads) + "t",
                           stats);
}

} // namespace
} // namespace commtm

// Eager counter rows run first: the @1t eager replay is the family's
// speedup reference.
BENCHMARK(commtm::BM_Replay_Counter)
    ->ArgsProduct({{int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)},
                   commtm::benchutil::extendedThreadSweep()})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(commtm::BM_Replay_CounterSmallCache)
    ->ArgsProduct({{16, 64, 128, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(commtm::BM_Replay_List)
    ->ArgsProduct({{int(commtm::ConflictDetection::Eager),
                    int(commtm::ConflictDetection::Lazy)},
                   {1, 8, 32, 128, 256}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

COMMTM_BENCH_MAIN();
