/**
 * @file
 * Ablation: hardware-label pressure (Sec. III-D). A workload that uses
 * four different commutative operations (ADD counter, LIST, OPUT,
 * TOPK) runs with 0..4 hardware labels. Labels beyond the hardware
 * budget are demoted to conventional accesses (the always-safe
 * virtualization fallback), so performance degrades gracefully toward
 * the baseline as labels are removed.
 */

#include "bench_util.h"

#include "lib/counter.h"
#include "lib/linked_list.h"
#include "lib/ordered_put.h"
#include "lib/topk.h"
#include "rt/machine.h"

namespace commtm {
namespace {

constexpr uint32_t kThreads = 32;
constexpr uint64_t kOpsPerThread = 200;

void
BM_Ablation_Labels(benchmark::State &state)
{
    const auto hw_labels = uint32_t(state.range(0));
    Cycle cycles = 0;
    bool valid = true;
    for (auto _ : state) {
        MachineConfig cfg = benchutil::machineCfg(SystemMode::CommTm);
        cfg.hwLabels = hw_labels;
        Machine m(cfg);
        // Definition order = hardware priority (profile-guided label
        // assignment would order by profitability, Sec. III-D).
        const Label add = CommCounter::defineLabel(m);
        const Label lst = CommList::defineLabel(m);
        const Label opt = OrderedPut::defineLabel(m);
        const Label tpk = TopK::defineLabel(m, 64);
        CommCounter counter(m, add);
        CommList list(m, lst);
        OrderedPut oput(m, opt);
        TopK topk(m, tpk, 64);
        for (uint32_t t = 0; t < kThreads; t++) {
            m.addThread([&](ThreadContext &ctx) {
                Rng &rng = ctx.rng();
                for (uint64_t i = 0; i < kOpsPerThread; i++) {
                    switch (i % 4) {
                      case 0:
                        counter.add(ctx, 1);
                        break;
                      case 1:
                        list.enqueue(ctx, rng.next());
                        break;
                      case 2:
                        oput.put(ctx, int64_t(rng.next() >> 1), i);
                        break;
                      default:
                        topk.insert(ctx, int64_t(rng.next() >> 1));
                        break;
                    }
                    ctx.compute(8);
                }
            });
        }
        m.run();
        cycles = m.stats().runtimeCycles();
        valid = counter.peek(m) == int64_t(kThreads) * (kOpsPerThread / 4);
        benchutil::reportStats(state, "abl_labels", m.stats());
    }
    if (!valid)
        state.SkipWithError("counter validation failed");
    state.counters["hw_labels"] = hw_labels;
    state.counters["sim_Mcycles"] = double(cycles) / 1e6;
    state.SetLabel(std::to_string(hw_labels) + " hardware labels");
}

} // namespace
} // namespace commtm

BENCHMARK(commtm::BM_Ablation_Labels)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
