/**
 * @file
 * Open-loop counter service: each thread serves a seeded arrival
 * stream of increments against 16 shared counters picked by a
 * Zipfian(0.99) key, reporting enqueue-to-commit latency quantiles
 * (docs/BENCHMARKS.md, "Open-loop service rows"). Under the baseline
 * HTM the hot counters serialize, queueing delay compounds, and p99
 * explodes; CommTM's commutative adds keep the tail near the
 * uncontended service time even through the burst rows.
 */

#include "svc_util.h"

#include <memory>

#include "lib/counter.h"
#include "rt/machine.h"

namespace commtm {
namespace {

constexpr uint64_t kCounters = 16;
constexpr uint64_t kRequestWork = 48;   // non-tx cycles per request
constexpr double kServiceCycles = 100;  // nominal uncontended latency

void
BM_Svc_Counter(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto det = ConflictDetection(state.range(1));
    const auto arrival = uint32_t(state.range(2));
    const auto threads = uint32_t(state.range(3));

    Machine m(benchutil::machineCfg(mode, det, threads));
    const Label add = CommCounter::defineLabel(m);
    std::vector<std::unique_ptr<CommCounter>> counters;
    for (uint64_t c = 0; c < kCounters; c++)
        counters.push_back(std::make_unique<CommCounter>(m, add));

    const OpenLoopConfig cfg =
        benchutil::svcConfig(arrival, kServiceCycles, kCounters);
    OpenLoopFrontend fe(cfg, threads,
                        [&](ThreadContext &ctx, uint64_t key) {
                            ctx.compute(kRequestWork);
                            counters[key]->add(ctx, 1);
                        });
    fe.attach(m);
    for (auto _ : state)
        m.run();

    const ServiceStats svc = fe.totalService();
    int64_t sum = 0;
    for (const auto &counter : counters)
        sum += counter->peek(m);
    if (sum != int64_t(svc.completed))
        state.SkipWithError("counter service validation failed");
    benchutil::reportServiceStats(
        state, "svc_counter",
        benchutil::svcRowName(mode, det, arrival, threads), m.stats(),
        fe.mergedMeasure(), svc);
}

} // namespace
} // namespace commtm

COMMTM_SVC_SWEEP(commtm::BM_Svc_Counter);

COMMTM_BENCH_MAIN();
