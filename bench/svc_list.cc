/**
 * @file
 * Open-loop list service: seeded arrival streams of 70/30
 * enqueue/dequeue requests against 8 shared lists picked by a
 * Zipfian(0.99) key (docs/BENCHMARKS.md, "Open-loop service rows").
 * The hot list is where baseline HTM tails blow up: every
 * enqueue/dequeue conflicts on the head/tail lines, while CommTM's
 * partial-list descriptors commute until a dequeue actually needs a
 * gather.
 */

#include "svc_util.h"

#include <memory>

#include "lib/linked_list.h"
#include "rt/machine.h"

namespace commtm {
namespace {

constexpr uint64_t kLists = 8;
constexpr uint32_t kEnqueuePct = 70;
constexpr uint64_t kRequestWork = 48;   // non-tx cycles per request
constexpr double kServiceCycles = 300;  // nominal uncontended latency

void
BM_Svc_List(benchmark::State &state)
{
    const auto mode = SystemMode(state.range(0));
    const auto det = ConflictDetection(state.range(1));
    const auto arrival = uint32_t(state.range(2));
    const auto threads = uint32_t(state.range(3));

    Machine m(benchutil::machineCfg(mode, det, threads));
    const Label label = CommList::defineLabel(m);
    std::vector<std::unique_ptr<CommList>> lists;
    for (uint64_t l = 0; l < kLists; l++) {
        lists.push_back(std::make_unique<CommList>(
            m, label, mode == SystemMode::BaselineHtm));
    }

    // Host-side tallies, one slot per thread (fibers interleave
    // cooperatively, so unsynchronized per-slot writes are safe).
    std::vector<int64_t> net(threads, 0);
    std::vector<uint64_t> seq(threads, 0);

    const OpenLoopConfig cfg =
        benchutil::svcConfig(arrival, kServiceCycles, kLists);
    OpenLoopFrontend fe(
        cfg, threads, [&](ThreadContext &ctx, uint64_t key) {
            ctx.compute(kRequestWork);
            const uint32_t t = ctx.id();
            if (ctx.rng().below(100) < kEnqueuePct) {
                lists[key]->enqueue(ctx,
                                    (uint64_t(t) << 32) | seq[t]++);
                net[t]++;
            } else {
                uint64_t value;
                if (lists[key]->dequeue(ctx, &value))
                    net[t]--;
            }
        });
    fe.attach(m);
    for (auto _ : state)
        m.run();

    const ServiceStats svc = fe.totalService();
    int64_t remaining = 0;
    for (const auto &list : lists)
        remaining += int64_t(list->peekSize(m));
    int64_t expected = 0;
    for (uint32_t t = 0; t < threads; t++)
        expected += net[t];
    if (remaining != expected)
        state.SkipWithError("list service validation failed");
    benchutil::reportServiceStats(
        state, "svc_list",
        benchutil::svcRowName(mode, det, arrival, threads), m.stats(),
        fe.mergedMeasure(), svc);
}

} // namespace
} // namespace commtm

COMMTM_SVC_SWEEP(commtm::BM_Svc_List);

COMMTM_BENCH_MAIN();
